// Object tracking: the paper's motivating scenario for holistic tasks with
// shared data.
//
// A device asks for the full trajectory of a tracked object, but it only
// recorded part of the trajectory itself; the rest (the external data
// ED_ij) sits on whichever device followed the object earlier — often in
// another cluster. Trajectory stitching needs all points at one place, so
// the tasks are holistic, and the assignment must decide where the data
// should meet: the asking device, its base station, or the cloud — under
// tight tracking deadlines.
//
//	go run ./examples/objecttracking
package main

import (
	"fmt"
	"os"

	"dsmec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "objecttracking:", err)
		os.Exit(1)
	}
}

func run() error {
	src := dsmec.NewSeed(7)

	// 30 cameras behind 5 stations; 90 trajectory queries whose external
	// share is large (up to the paper's 0.5× local) and whose deadlines
	// are strict — tracking responses lose value quickly.
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices:       30,
		NumStations:      5,
		NumTasks:         90,
		MaxInput:         2500 * dsmec.Kilobyte,
		ExternalMaxRatio: 0.5,
		DeadlineSlackMin: 1.0,
		DeadlineSlackMax: 1.6, // strict: at most 60% slack over the best placement
	})
	if err != nil {
		return err
	}

	crossCluster := 0
	for _, t := range sc.Tasks.All() {
		if !t.HasExternal() {
			continue
		}
		same, err := sc.System.SameCluster(t.ID.User, t.ExternalSource)
		if err != nil {
			return err
		}
		if !same {
			crossCluster++
		}
	}
	fmt.Printf("%d trajectory queries; %d need partial trajectories from another cluster\n\n",
		sc.Tasks.Len(), crossCluster)

	type row struct {
		name string
		a    *dsmec.Assignment
	}
	lph, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}
	hgos, err := dsmec.HGOS(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	offload, err := dsmec.AllOffload(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	rows := []row{
		{"LP-HTA", lph.Assignment},
		{"HGOS", hgos},
		{"AllOffload", offload},
		{"AllToC", dsmec.AllToC(sc.Tasks)},
	}

	fmt.Printf("%-11s %12s %14s %12s\n", "method", "energy (J)", "mean lat (s)", "missed DL")
	for _, r := range rows {
		m, err := dsmec.Evaluate(sc.Model, sc.Tasks, r.a)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %12.1f %14.3f %11.1f%%\n",
			r.name, m.TotalEnergy.Joules(), m.MeanLatency().Seconds(), 100*m.UnsatisfiedRate())
	}

	// LP-HTA is the only method that *guarantees* placed queries meet
	// their deadlines (C1); show it holds.
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, lph.Assignment); err != nil {
		return fmt.Errorf("LP-HTA feasibility violated: %w", err)
	}
	fmt.Println("\nLP-HTA's placements verified against C1-C5: every placed query meets its deadline.")

	// Where does LP-HTA put the cross-cluster queries?
	counts := map[dsmec.Subsystem]int{}
	for _, t := range sc.Tasks.All() {
		if !t.HasExternal() {
			continue
		}
		if same, err := sc.System.SameCluster(t.ID.User, t.ExternalSource); err == nil && !same {
			counts[lph.Assignment.Of(t.ID)]++
		}
	}
	fmt.Printf("cross-cluster queries: %d stitched on the asking camera, %d at its station, %d in the cloud, %d cancelled\n",
		counts[dsmec.OnDevice], counts[dsmec.OnStation], counts[dsmec.OnCloud], counts[dsmec.Cancelled])
	return nil
}
