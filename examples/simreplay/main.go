// Simreplay: plan with the analytic cost model, then execute the plan in
// the discrete-event simulator and compare.
//
// The paper evaluates assignments with closed-form costs (Section II) that
// assume every resource is free when a task needs it. This example replays
// an LP-HTA assignment against FIFO-queued radios, station CPUs and WAN
// links, showing how much real contention inflates latency — and that
// energy is untouched (queueing shifts time, not bytes).
//
//	go run ./examples/simreplay
package main

import (
	"fmt"
	"os"
	"sort"

	"dsmec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	src := dsmec.NewSeed(99)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices:  25,
		NumStations: 5,
		NumTasks:    150,
	})
	if err != nil {
		return err
	}

	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}
	analytic, err := dsmec.Evaluate(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		return err
	}

	// Replay under two station configurations: a generous 8-core edge
	// cloudlet and a single-core one.
	for _, cfg := range []struct {
		name string
		sim  dsmec.SimConfig
	}{
		{"8-core stations", dsmec.SimConfig{StationCores: 8}},
		{"1-core stations", dsmec.SimConfig{StationCores: 1}},
	} {
		sm, err := dsmec.Simulate(sc.Model, sc.Tasks, res.Assignment, cfg.sim)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  analytic mean latency:  %v\n", analytic.MeanLatency())
		fmt.Printf("  simulated mean latency: %v (%.2fx)\n",
			sm.MeanLatency(), sm.MeanLatency().Seconds()/analytic.MeanLatency().Seconds())
		fmt.Printf("  makespan:               %v\n", sm.Makespan)
		fmt.Printf("  deadline misses:        %d under queueing vs %d analytic\n",
			sm.DeadlineViolations, analytic.Unsatisfied-analytic.Cancelled)
		fmt.Printf("  energy check:           simulated %v, analytic %v\n\n",
			sm.TotalEnergy, analytic.TotalEnergy)

		if cfg.sim.StationCores != 8 {
			continue
		}
		// Which tasks suffered most from contention?
		type inflated struct {
			id     dsmec.TaskID
			factor float64
		}
		var worst []inflated
		for i := range sm.Outcomes {
			o := &sm.Outcomes[i]
			if o.Placed && o.Analytic > 0 {
				worst = append(worst, inflated{o.ID, o.Completion.Seconds() / o.Analytic.Seconds()})
			}
		}
		sort.Slice(worst, func(i, j int) bool {
			if worst[i].factor != worst[j].factor {
				return worst[i].factor > worst[j].factor
			}
			return worst[i].id.Less(worst[j].id)
		})
		fmt.Println("  most-delayed tasks (simulated/analytic):")
		for _, w := range worst[:3] {
			o, _ := sm.Outcome(w.id)
			fmt.Printf("    %v on %v: %v vs %v (%.1fx)\n",
				w.id, o.Subsystem, o.Completion, o.Analytic, w.factor)
		}
		fmt.Println()
	}
	return nil
}
