// Quickstart: build a small data-shared MEC system, assign holistic tasks
// with LP-HTA, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"dsmec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Every generated scenario derives from one seed, so runs are exactly
	// reproducible.
	src := dsmec.NewSeed(42)

	// 10 phones behind 2 base stations, raising 30 tasks with inputs up
	// to 3000 kB; defaults follow the paper's evaluation (Section V.A).
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices:  10,
		NumStations: 2,
		NumTasks:    30,
	})
	if err != nil {
		return err
	}

	// Run the paper's LP-based holistic task assignment.
	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}

	// The result is guaranteed to satisfy constraints C1-C5.
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, res.Assignment); err != nil {
		return err
	}

	metrics, err := dsmec.Evaluate(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		return err
	}

	fmt.Printf("assigned %d tasks: %d on devices, %d on stations, %d on the cloud, %d cancelled\n",
		metrics.NumTasks,
		metrics.CountByLevel[dsmec.OnDevice],
		metrics.CountByLevel[dsmec.OnStation],
		metrics.CountByLevel[dsmec.OnCloud],
		metrics.Cancelled)
	fmt.Printf("total energy:  %v\n", metrics.TotalEnergy)
	fmt.Printf("mean latency:  %v\n", metrics.MeanLatency())
	fmt.Printf("unsatisfied:   %.1f%%\n", 100*metrics.UnsatisfiedRate())
	fmt.Printf("ratio bound:   %.3f (Theorem 2: 3 + Δ/E_LP)\n", res.RatioBoundEstimate())

	// Where did the first few tasks go, and what did each choice cost?
	fmt.Println("\nper-task detail (first 5):")
	for i := 0; i < 5; i++ {
		t := sc.Tasks.At(i)
		opts, err := sc.Model.Eval(t)
		if err != nil {
			return err
		}
		chosen := res.Assignment.Of(t.ID)
		fmt.Printf("  %v: input %v (external %v) -> %v  [device %v | station %v | cloud %v]\n",
			t.ID, t.InputSize(), t.ExternalSize, chosen,
			opts.At(dsmec.OnDevice).Energy,
			opts.At(dsmec.OnStation).Energy,
			opts.At(dsmec.OnCloud).Energy)
	}
	return nil
}
