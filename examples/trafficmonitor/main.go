// Traffic monitor: the paper's motivating scenario for divisible tasks.
//
// A fleet of roadside devices each samples the vehicle flow of its own
// region; the regions overlap, so the same road segment may be observed by
// several devices. Users ask for city-wide aggregates ("average flow rate
// over the whole city") — Sum/Count-style queries that are divisible: each
// device can aggregate the segments it holds and only the small partial
// results need to travel.
//
// The example contrasts three ways of answering the same query workload:
//
//   - holistic LP-HTA, which ships raw samples to a single executor,
//
//   - DTA-Workload, which balances the segments across devices,
//
//   - DTA-Number, which concentrates them on as few devices as possible.
//
//     go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"os"

	"dsmec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficmonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	src := dsmec.NewSeed(2026)

	// 40 roadside units behind 4 stations monitor overlapping stretches of
	// road, cut into 100 kB observation blocks. 120 city-wide aggregate
	// queries arrive; results are Count-like (tiny compared to the raw
	// samples, η = 0.2 by default).
	sc, err := dsmec.GenerateDivisible(src, dsmec.WorkloadParams{
		NumDevices:  40,
		NumStations: 4,
		NumTasks:    120,
		MaxInput:    2000 * dsmec.Kilobyte,
	})
	if err != nil {
		return err
	}
	universe := sc.Tasks.Universe()
	fmt.Printf("road network: %d segments of %v, observed by %d devices (overlapping regions)\n",
		universe.Len(), sc.Placement.BlockSize(), sc.System.NumDevices())
	fmt.Printf("query load: %d divisible aggregate queries\n\n", sc.Tasks.Len())

	// Option 1: treat the queries as holistic — all raw samples must meet
	// at one executor per query.
	hol, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}
	hm, err := dsmec.Evaluate(sc.Model, sc.Tasks, hol.Assignment)
	if err != nil {
		return err
	}
	fmt.Printf("holistic LP-HTA:  %8.1f J   (raw samples travel to the executor)\n",
		hm.TotalEnergy.Joules())

	// Option 2: balance the segments across the fleet (fast response).
	byLoad, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement,
		dsmec.DTAOptions{Goal: dsmec.GoalWorkload})
	if err != nil {
		return err
	}
	fmt.Printf("DTA-Workload:     %8.1f J   %2d devices busy, answers in %v\n",
		byLoad.Metrics.TotalEnergy.Joules(),
		byLoad.Metrics.InvolvedDevices,
		byLoad.Metrics.ProcessingTime)

	// Option 3: wake as few devices as possible (battery preservation for
	// the rest of the fleet).
	byCount, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement,
		dsmec.DTAOptions{Goal: dsmec.GoalNumber})
	if err != nil {
		return err
	}
	fmt.Printf("DTA-Number:       %8.1f J   %2d devices busy, answers in %v\n",
		byCount.Metrics.TotalEnergy.Joules(),
		byCount.Metrics.InvolvedDevices,
		byCount.Metrics.ProcessingTime)

	fmt.Println("\ncost breakdown of DTA-Workload:")
	m := byLoad.Metrics
	fmt.Printf("  slice processing: %v\n", m.HTAEnergy)
	fmt.Printf("  query descriptors: %v (op/C/T shipped instead of raw data)\n", m.DescriptorEnergy)
	fmt.Printf("  partial results:   %v\n", m.ResultEnergy)
	fmt.Printf("  final aggregation: %v\n", m.AggregationEnergy)

	saved := 100 * (1 - byLoad.Metrics.TotalEnergy.Joules()/hm.TotalEnergy.Joules())
	fmt.Printf("\nrearranging the queries to follow the data saves %.0f%% energy.\n", saved)
	return nil
}
