# Development targets. `make verify` is the pre-commit gate: formatting,
# vet, build, the full test suite under the race detector, a
# single-iteration benchmark smoke run so the perf harness can't rot, the
# meclint static-analysis suite (which includes the repolint doc and link
# checks — see docs/LINTING.md), staticcheck when fetchable, a mecstat
# smoke over its committed fixtures, and a mecd service smoke that boots
# the daemon on a loopback port and drives one arrival/assign/departure
# cycle through the live HTTP API.

GO ?= go

# Pinned so CI and local runs agree; bump deliberately.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: verify build test vet fmt-check race bench bench-go bench-smoke bench-obs lint staticcheck doc-check link-check mecstat-smoke mecd-smoke workload-checks

verify: fmt-check vet build race bench-smoke lint staticcheck mecstat-smoke mecd-smoke workload-checks

# The full go vet analyzer set, spelled out so the suite only changes
# when this list does — a toolchain upgrade cannot silently drop a check.
VET_ANALYZERS = appends asmdecl assign atomic bools buildtag cgocall \
	composites copylocks defers directive errorsas framepointer \
	httpresponse ifaceassert loopclosure lostcancel nilfunc printf shift \
	sigchanyzer slog stdmethods stdversion stringintconv structtag \
	testinggoroutine tests timeformat unmarshal unreachable unsafeptr \
	unusedresult

vet:
	$(GO) vet $(foreach a,$(VET_ANALYZERS),-$(a)) ./...

# The repo's own analyzers (determinism, nilsafe, floatcmp, exitcode)
# plus the docs and links repo checks. See docs/LINTING.md.
lint:
	$(GO) run ./cmd/meclint

# Pinned staticcheck via `go run`, so nothing is installed globally.
# Skips with a notice when the module cannot be fetched (offline
# sandboxes). CI sets STRICT=1, which turns an unfetchable staticcheck
# into a hard failure instead of a silent skip.
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	elif [ -n "$(STRICT)" ]; then \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable and STRICT is set"; exit 1; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; fi

# Fail when any file is not gofmt-clean; print the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the performance baseline into BENCH_lphta.json (see
# docs/PERFORMANCE.md). bench-go runs the raw testing.B suite instead.
bench:
	$(GO) run ./cmd/mecperf -out BENCH_lphta.json

bench-go:
	$(GO) test -run xxx -bench . -benchmem ./...

# One iteration of every benchmark: catches bitrot without the cost of a
# real measurement run. The second step is the large-scenario memory
# gate: a 100k-device scenario generated, streamed to JSON, and
# stream-decoded under a pinned B/op budget (see
# internal/scenarioio/largescale_test.go).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	MEC_LARGE_SMOKE=1 $(GO) test -run TestLargeScenarioMemoryBudget ./internal/scenarioio/

# Every internal/ package must keep its package comment in a doc.go.
doc-check:
	$(GO) run ./cmd/repolint -doc

# Every relative markdown link in *.md and docs/*.md must resolve.
link-check:
	$(GO) run ./cmd/repolint -links

# Observability overhead check: disabled vs metrics-enabled pipelines.
# Every observability benchmark carries the BenchmarkObs prefix, so the
# filter never needs updating when one is added or renamed.
bench-obs:
	$(GO) test -run xxx -bench BenchmarkObs -benchmem ./...

# The ci-smoke machine class of the workload-checks corpus: every case
# through the full generate → LP-HTA → simulate pipeline, gated on its
# budgets.json. `go run ./cmd/mecwc` (no -class) runs every class.
workload-checks:
	$(GO) run ./cmd/mecwc -class ci-smoke

# mecstat must keep reading its own committed fixtures and gating clean
# on an identical pair; a regressed pair must trip the gate.
mecstat-smoke:
	$(GO) run ./cmd/mecstat -threshold 0.1 cmd/mecstat/testdata/base.json cmd/mecstat/testdata/base.json > /dev/null
	@if $(GO) run ./cmd/mecstat -threshold 0.2 cmd/mecstat/testdata/base.json cmd/mecstat/testdata/regressed.json > /dev/null 2>&1; then \
		echo "mecstat failed to flag the regressed fixture"; exit 1; fi

# The online assignment service must boot, accept an arrival over HTTP,
# assign it, survive its departure, and expose its counters on /metrics
# (see docs/SERVICE.md). -selfcheck picks a random loopback port.
mecd-smoke:
	$(GO) run ./cmd/mecd -selfcheck -preload 25 -log-level off > /dev/null
