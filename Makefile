# Development targets. `make verify` is the pre-commit gate: vet, build,
# and the full test suite under the race detector.

GO ?= go

.PHONY: verify build test vet race bench bench-obs

verify: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem .

# Observability overhead check: disabled vs metrics-enabled pipelines.
bench-obs:
	$(GO) test -run xxx -bench 'Observed|CounterDisabled|CounterEnabled|HistogramDisabled|HistogramEnabled' -benchmem ./...
