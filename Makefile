# Development targets. `make verify` is the pre-commit gate: vet, build,
# the full test suite under the race detector, and a single-iteration
# benchmark smoke run so the perf harness can't rot.

GO ?= go

.PHONY: verify build test vet race bench bench-go bench-smoke bench-obs

verify: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the performance baseline into BENCH_lphta.json (see
# docs/PERFORMANCE.md). bench-go runs the raw testing.B suite instead.
bench:
	$(GO) run ./cmd/mecperf -out BENCH_lphta.json

bench-go:
	$(GO) test -run xxx -bench . -benchmem ./...

# One iteration of every benchmark: catches bitrot without the cost of a
# real measurement run.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Observability overhead check: disabled vs metrics-enabled pipelines.
bench-obs:
	$(GO) test -run xxx -bench 'Observed|CounterDisabled|CounterEnabled|HistogramDisabled|HistogramEnabled' -benchmem ./...
