// Command mecwc runs the machine-class workload checks: a declarative
// corpus of scenario/fault/budget cases under workload-checks/ that
// exercises the full mecgen → LP-HTA → discrete-event pipeline and
// gates the result on per-case budget files.
//
// Usage:
//
//	mecwc                              # every machine class
//	mecwc -class ci-smoke              # one class (the CI gate)
//	mecwc -list                        # show the corpus
//	mecwc -class ci-smoke -report wc.jsonl
//	mecwc -parallel 4 -shards 8        # identical verdicts at any value
//
// A machine class is a directory workload-checks/<class>/ holding a
// machine.json (population scale + description) and cases/<case>/
// directories. Each case names its scenario source — a generator recipe
// with a seed, or a committed scenario document — plus a budgets.json
// of metric assertions (internal/workload format, shared with
// mecbench -check). Derived metrics (miss_rate, goodput,
// total_energy_joules, alloc_bytes_per_task, ...) are listed in
// docs/WORKLOAD_CHECKS.md.
//
// Stdout is byte-identical for any -parallel / -shards value: only the
// -report JSONL carries run-dependent clocks and allocation figures.
//
// Exit codes: 0 all cases pass, 1 budget violation or runtime failure,
// 2 malformed corpus or budget file (with a structured JSON record on
// stderr).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"dsmec"
	"dsmec/internal/obs"
	"dsmec/internal/recipes"
	"dsmec/internal/scenarioio"
	"dsmec/internal/texttable"
	"dsmec/internal/workload"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mecwc:", err)
	var be *workload.BudgetError
	if errors.As(err, &be) {
		be.WriteJSON(os.Stderr)
		os.Exit(2)
	}
	var ce *corpusError
	if errors.As(err, &ce) {
		_ = json.NewEncoder(os.Stderr).Encode(map[string]string{
			"error":  "corpus",
			"path":   ce.Path,
			"detail": ce.Detail,
		})
		os.Exit(2)
	}
	os.Exit(1)
}

// corpusError marks a malformed corpus: a broken machine.json or
// case.json, an unknown recipe, an unreadable scenario document. main
// maps it to exit code 2 so CI can tell "fix the corpus" from "the
// system regressed".
type corpusError struct {
	Path   string
	Detail string
}

func (e *corpusError) Error() string {
	return fmt.Sprintf("corpus %s: %s", e.Path, e.Detail)
}

// machineConfig is workload-checks/<class>/machine.json: the population
// scale every case of the class inherits.
type machineConfig struct {
	Description string `json:"description"`
	Devices     int    `json:"devices"`
	Stations    int    `json:"stations"`
	Tasks       int    `json:"tasks"`
	InputKB     int    `json:"input_kb"`
}

// caseSpec is cases/<case>/case.json: the scenario source. Exactly one
// of Recipe and Scenario must be set. Size fields, when non-zero,
// override the machine class defaults.
type caseSpec struct {
	Description string `json:"description"`
	Recipe      string `json:"recipe"`
	Scenario    string `json:"scenario"`
	Seed        int64  `json:"seed"`
	FaultSeed   int64  `json:"fault_seed"`
	Devices     int    `json:"devices"`
	Stations    int    `json:"stations"`
	Tasks       int    `json:"tasks"`
	InputKB     int    `json:"input_kb"`
}

// workCase is one discovered case, budgets already validated.
type workCase struct {
	Class   string
	Name    string
	Dir     string
	Spec    caseSpec
	Budgets []workload.Budget
}

// workClass is one discovered machine class with its cases in name
// order.
type workClass struct {
	Name   string
	Config machineConfig
	Cases  []workCase
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("mecwc", flag.ContinueOnError)
	var (
		root       = fs.String("root", "workload-checks", "corpus root directory")
		class      = fs.String("class", "", "machine class to run (default: every class)")
		list       = fs.Bool("list", false, "list the corpus and exit")
		reportPath = fs.String("report", "", "write one JSON record per case (plus a summary) to this JSONL file")
		parallel   = fs.Int("parallel", 0, "LP-HTA cluster worker count (0 = GOMAXPROCS); verdicts are identical for any value")
		shards     = fs.Int("shards", 0, "simulator event-heap shard count (0 = auto); verdicts are identical for any value")
		logLevel   = fs.String("log-level", "warn", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat  = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)

	classes, err := discover(*root, *class)
	if err != nil {
		return err
	}
	if *list {
		return writeCorpusList(classes, stdout)
	}

	var report *json.Encoder
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		report = json.NewEncoder(f)
	}

	totalCases, failedCases := 0, 0
	for _, cl := range classes {
		fmt.Fprintf(stdout, "class %s — %s (%d cases)\n", cl.Name, cl.Config.Description, len(cl.Cases))
		tb := texttable.New("CASE", "SOURCE", "TASKS", "MISS%", "GOODPUT", "ENERGY(J)", "BUDGETS", "STATUS")
		type failure struct {
			caseName   string
			violations []workload.Violation
		}
		var failures []failure
		for _, c := range cl.Cases {
			res, err := runCase(c, cl.Config, *parallel, *shards)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", cl.Name, c.Name, err)
			}
			totalCases++
			status := "ok"
			if len(res.Violations) > 0 {
				failedCases++
				status = "FAIL"
				failures = append(failures, failure{c.Name, res.Violations})
			}
			tb.AddRowf(c.Name, res.Source,
				fmt.Sprintf("%d", int(res.Metrics["tasks_total"])),
				fmt.Sprintf("%.1f", 100*res.Metrics["miss_rate"]),
				fmt.Sprintf("%.3f", res.Metrics["goodput"]),
				fmt.Sprintf("%.1f", res.Metrics["total_energy_joules"]),
				fmt.Sprintf("%d", len(c.Budgets)), status)
			if report != nil {
				if err := report.Encode(res.record(cl.Name, c)); err != nil {
					return err
				}
			}
		}
		if _, err := tb.WriteTo(stdout); err != nil {
			return err
		}
		// Violation details stay deterministic: limits come from the budget
		// file; actuals (possibly clocks) live in the -report JSONL only.
		for _, f := range failures {
			for _, v := range f.violations {
				if v.Limit != nil {
					fmt.Fprintf(stdout, "FAIL %s/%s: %s %s limit %g\n", cl.Name, f.caseName, v.Budget, v.Kind, *v.Limit)
				} else {
					fmt.Fprintf(stdout, "FAIL %s/%s: %s %s\n", cl.Name, f.caseName, v.Budget, v.Kind)
				}
			}
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "workload checks: %d/%d cases passed across %d class(es)\n",
		totalCases-failedCases, totalCases, len(classes))
	if report != nil {
		if err := report.Encode(map[string]any{
			"summary": true, "classes": len(classes), "cases": totalCases, "failed": failedCases,
		}); err != nil {
			return err
		}
	}
	if failedCases > 0 {
		return fmt.Errorf("%d workload-check case(s) failed", failedCases)
	}
	return nil
}

// discover walks the corpus root and validates every machine class and
// case up front, so a malformed corpus fails fast with exit code 2
// before any simulation runs.
func discover(root, classFilter string) ([]workClass, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, &corpusError{Path: root, Detail: err.Error()}
	}
	var classes []workClass
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		cl, err := loadClass(dir, e.Name())
		if err != nil {
			return nil, err
		}
		classes = append(classes, *cl)
	}
	if classFilter != "" {
		for _, cl := range classes {
			if cl.Name == classFilter {
				return []workClass{cl}, nil
			}
		}
		names := make([]string, 0, len(classes))
		for _, cl := range classes {
			names = append(names, cl.Name)
		}
		return nil, fmt.Errorf("unknown machine class %q (have: %s)", classFilter, strings.Join(names, ", "))
	}
	if len(classes) == 0 {
		return nil, &corpusError{Path: root, Detail: "no machine classes found"}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	return classes, nil
}

func loadClass(dir, name string) (*workClass, error) {
	mpath := filepath.Join(dir, "machine.json")
	data, err := os.ReadFile(mpath)
	if err != nil {
		return nil, &corpusError{Path: mpath, Detail: "every class directory needs a machine.json: " + err.Error()}
	}
	var cfg machineConfig
	if err := strictUnmarshal(data, &cfg); err != nil {
		return nil, &corpusError{Path: mpath, Detail: err.Error()}
	}
	if cfg.Devices <= 0 || cfg.Stations <= 0 || cfg.Tasks <= 0 {
		return nil, &corpusError{Path: mpath, Detail: "devices, stations, and tasks must all be positive"}
	}
	cl := &workClass{Name: name, Config: cfg}

	casesDir := filepath.Join(dir, "cases")
	entries, err := os.ReadDir(casesDir)
	if err != nil {
		return nil, &corpusError{Path: casesDir, Detail: err.Error()}
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := loadCase(filepath.Join(casesDir, e.Name()), name, e.Name())
		if err != nil {
			return nil, err
		}
		cl.Cases = append(cl.Cases, *c)
	}
	if len(cl.Cases) == 0 {
		return nil, &corpusError{Path: casesDir, Detail: "class has no cases"}
	}
	sort.Slice(cl.Cases, func(i, j int) bool { return cl.Cases[i].Name < cl.Cases[j].Name })
	return cl, nil
}

func loadCase(dir, class, name string) (*workCase, error) {
	cpath := filepath.Join(dir, "case.json")
	data, err := os.ReadFile(cpath)
	if err != nil {
		return nil, &corpusError{Path: cpath, Detail: err.Error()}
	}
	var spec caseSpec
	if err := strictUnmarshal(data, &spec); err != nil {
		return nil, &corpusError{Path: cpath, Detail: err.Error()}
	}
	switch {
	case spec.Recipe == "" && spec.Scenario == "":
		return nil, &corpusError{Path: cpath, Detail: "case needs a recipe or a scenario document"}
	case spec.Recipe != "" && spec.Scenario != "":
		return nil, &corpusError{Path: cpath, Detail: "recipe and scenario are mutually exclusive"}
	case spec.Recipe != "":
		if _, ok := recipes.ByName(spec.Recipe); !ok {
			return nil, &corpusError{Path: cpath, Detail: fmt.Sprintf("unknown recipe %q (see mecgen -list-recipes)", spec.Recipe)}
		}
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.FaultSeed == 0 {
		spec.FaultSeed = 1
	}
	budgets, err := workload.LoadBudgets(filepath.Join(dir, "budgets.json"))
	if err != nil {
		return nil, err
	}
	return &workCase{Class: class, Name: name, Dir: dir, Spec: spec, Budgets: budgets}, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so typos in
// corpus files surface as corpus errors instead of silently defaulting.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// caseResult carries everything one case run produced.
type caseResult struct {
	Source     string
	Metrics    map[string]float64
	Violations []workload.Violation
}

// record shapes the JSONL report line for one case.
func (r *caseResult) record(class string, c workCase) map[string]any {
	status := "pass"
	if len(r.Violations) > 0 {
		status = "fail"
	}
	rec := map[string]any{
		"class":   class,
		"case":    c.Name,
		"status":  status,
		"source":  r.Source,
		"seed":    c.Spec.Seed,
		"metrics": r.Metrics,
	}
	if len(r.Violations) > 0 {
		rec["violations"] = r.Violations
	}
	return rec
}

// runCase drives one case through the full pipeline: scenario (recipe
// generation or committed document) → LP-HTA → feasibility check →
// discrete-event replay with the case's fault plan → budget evaluation.
func runCase(c workCase, cfg machineConfig, parallel, shards int) (*caseResult, error) {
	var allocBefore runtime.MemStats
	runtime.ReadMemStats(&allocBefore)

	reg := obs.NewRegistry()
	manifest := obs.NewManifest("mecwc", nil)
	manifest.SetSeed(c.Spec.Seed)
	ins := obs.Instruments{Metrics: reg}

	sc, fp, source, err := buildScenario(c, cfg)
	if err != nil {
		return nil, err
	}
	reg.Counter("mecwc.cases").Inc()
	reg.Counter("mecwc.tasks").Add(int64(sc.Tasks.Len()))

	lph, err := dsmec.LPHTA(sc.Model, sc.Tasks, &dsmec.LPHTAOptions{Obs: ins, Parallelism: parallel})
	if err != nil {
		return nil, err
	}
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, lph.Assignment); err != nil {
		return nil, fmt.Errorf("LP-HTA produced an infeasible assignment: %w", err)
	}
	simRes, err := dsmec.Simulate(sc.Model, sc.Tasks, lph.Assignment,
		dsmec.SimConfig{Obs: ins, Faults: fp, Shards: shards})
	if err != nil {
		return nil, err
	}

	var allocAfter runtime.MemStats
	runtime.ReadMemStats(&allocAfter)
	manifest.Finish(reg)

	metrics := deriveMetrics(sc, simRes, allocAfter.TotalAlloc-allocBefore.TotalAlloc, manifest)
	resolve := workload.ChainResolvers(
		func(name string) (float64, bool) { v, ok := metrics[name]; return v, ok },
		workload.ManifestResolver(manifest),
	)
	// Budget detail lines carry run clocks, so they go to the report
	// metrics rather than the deterministic stdout stream.
	violations := workload.CheckBudgets(c.Budgets, resolve, io.Discard)
	return &caseResult{Source: source, Metrics: metrics, Violations: violations}, nil
}

// buildScenario resolves the case's scenario source: a named recipe
// (generated at the machine-class scale) or a committed document.
func buildScenario(c workCase, cfg machineConfig) (*dsmec.Scenario, *dsmec.FaultPlan, string, error) {
	if c.Spec.Scenario != "" {
		path := filepath.Join(c.Dir, c.Spec.Scenario)
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, "", &corpusError{Path: path, Detail: err.Error()}
		}
		defer f.Close()
		sc, fp, err := scenarioio.DecodeWithFaults(f)
		if err != nil {
			return nil, nil, "", &corpusError{Path: path, Detail: err.Error()}
		}
		if sc.Placement != nil {
			return nil, nil, "", &corpusError{Path: path, Detail: "divisible scenarios have no simulator replay; commit a holistic document"}
		}
		if fp.Empty() {
			fp = nil
		}
		return sc, fp, "scenario:" + c.Spec.Scenario, nil
	}

	recipe, _ := recipes.ByName(c.Spec.Recipe) // validated at discovery
	params := recipe.Params
	params.NumDevices = pick(c.Spec.Devices, cfg.Devices)
	params.NumStations = pick(c.Spec.Stations, cfg.Stations)
	params.NumTasks = pick(c.Spec.Tasks, cfg.Tasks)
	params.MaxInput = dsmec.ByteSize(pick(c.Spec.InputKB, cfg.InputKB)) * dsmec.Kilobyte
	sc, err := dsmec.GenerateHolistic(dsmec.NewSeed(c.Spec.Seed), params)
	if err != nil {
		return nil, nil, "", err
	}
	var fp *dsmec.FaultPlan
	if recipe.Faults != nil {
		fp = dsmec.GenerateFaultPlan(dsmec.NewSeed(c.Spec.FaultSeed), sc.System, *recipe.Faults)
	}
	return sc, fp, "recipe:" + c.Spec.Recipe, nil
}

// pick returns the case override when set, the class default otherwise.
func pick(override, fallback int) int {
	if override > 0 {
		return override
	}
	return fallback
}

// deriveMetrics computes the derived metric catalog (see
// workload.DerivedMetricNames) from one finished case.
func deriveMetrics(sc *dsmec.Scenario, res *dsmec.SimResult, allocBytes uint64, m *obs.Manifest) map[string]float64 {
	total := float64(sc.Tasks.Len())
	lost, faultMisses, capacityMisses := 0, 0, res.DeadlineViolations
	if res.Faults != nil {
		lost = res.Faults.Lost
		faultMisses = res.Faults.FaultMisses
		capacityMisses = res.Faults.CapacityMisses
	}
	metrics := map[string]float64{
		"tasks_total":          total,
		"tasks_placed":         float64(res.Placed),
		"tasks_lost":           float64(lost),
		"tasks_cancelled":      float64(res.Cancelled),
		"total_energy_joules":  res.TotalEnergy.Joules(),
		"makespan_seconds":     res.Makespan.Seconds(),
		"mean_latency_seconds": res.MeanLatency().Seconds(),
		"wall_seconds":         m.WallSeconds,
		"cpu_seconds":          m.CPUSeconds,
	}
	if total > 0 {
		metrics["miss_rate"] = float64(res.DeadlineViolations) / total
		metrics["miss_rate.fault"] = float64(faultMisses) / total
		metrics["miss_rate.capacity"] = float64(capacityMisses) / total
		metrics["goodput"] = float64(res.Placed-res.DeadlineViolations) / total
		metrics["alloc_bytes_per_task"] = float64(allocBytes) / total
	}
	return metrics
}

// writeCorpusList prints the discovered corpus.
func writeCorpusList(classes []workClass, w io.Writer) error {
	tb := texttable.New("CLASS", "CASE", "SOURCE", "DESCRIPTION")
	for _, cl := range classes {
		for _, c := range cl.Cases {
			source := "recipe:" + c.Spec.Recipe
			if c.Spec.Scenario != "" {
				source = "scenario:" + c.Spec.Scenario
			}
			desc := c.Spec.Description
			if desc == "" {
				if r, ok := recipes.ByName(c.Spec.Recipe); ok {
					desc = r.Description
				}
			}
			tb.AddRow(cl.Name, c.Name, source, desc)
		}
	}
	_, err := tb.WriteTo(w)
	return err
}
