package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/workload"
)

// corpusRoot points tests at the repo's committed corpus; cmd tests run
// in their package directory.
const corpusRoot = "../../workload-checks"

// writeCorpus scaffolds a one-class corpus in a temp dir. files maps
// paths relative to the class directory to contents.
func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, "tiny", rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const tinyMachine = `{"description": "test class", "devices": 10, "stations": 2, "tasks": 30, "input_kb": 3000}`

// TestCorpusDeterministicAcrossParallelism pins the runner-level
// determinism contract: stdout is byte-identical for any -parallel and
// -shards value over the committed corpus.
func TestCorpusDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	outputs := make([]string, 0, 3)
	for _, n := range []string{"1", "2", "8"} {
		var out strings.Builder
		if err := run([]string{"-root", corpusRoot, "-parallel", n, "-shards", n}, &out); err != nil {
			t.Fatalf("-parallel %s: %v\n%s", n, err, out.String())
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Error("stdout differs across -parallel/-shards values")
	}
	if !strings.Contains(outputs[0], "class ci-smoke") || !strings.Contains(outputs[0], "class edge-1k") {
		t.Errorf("corpus output missing expected classes:\n%s", outputs[0])
	}
}

// TestCommittedCorpusShape pins the acceptance floor of the committed
// corpus: at least two machine classes and six cases overall.
func TestCommittedCorpusShape(t *testing.T) {
	classes, err := discover(corpusRoot, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) < 2 {
		t.Errorf("%d machine classes committed, want >= 2", len(classes))
	}
	cases := 0
	scenarios := 0
	for _, cl := range classes {
		cases += len(cl.Cases)
		for _, c := range cl.Cases {
			if c.Spec.Scenario != "" {
				scenarios++
			}
		}
	}
	if cases < 6 {
		t.Errorf("%d cases committed, want >= 6", cases)
	}
	if scenarios == 0 {
		t.Error("no committed-scenario case; the corpus must exercise the document path")
	}
}

// TestInjectedViolationNamesCase proves a budget violation exits
// non-zero and names the failing case in both the table and the JSONL
// report.
func TestInjectedViolationNamesCase(t *testing.T) {
	root := writeCorpus(t, map[string]string{
		"machine.json":                 tinyMachine,
		"cases/will-fail/case.json":    `{"recipe": "steady-state", "seed": 3}`,
		"cases/will-fail/budgets.json": `{"budgets": [{"metric": "tasks_total", "max": 1}]}`,
		"cases/will-pass/case.json":    `{"recipe": "steady-state", "seed": 3}`,
		"cases/will-pass/budgets.json": `{"budgets": [{"metric": "tasks_total", "min": 1}]}`,
	})
	report := filepath.Join(t.TempDir(), "wc.jsonl")
	var out strings.Builder
	err := run([]string{"-root", root, "-report", report}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 workload-check case(s) failed") {
		t.Fatalf("err = %v, want one failed case\n%s", err, out.String())
	}
	var be *workload.BudgetError
	if errors.As(err, &be) {
		t.Fatal("violation surfaced as a budget-file error (exit 2); want plain failure (exit 1)")
	}
	if !strings.Contains(out.String(), "FAIL tiny/will-fail: tasks_total max limit 1") {
		t.Errorf("stdout does not name the failing case and budget:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1/2 cases passed") {
		t.Errorf("summary line wrong:\n%s", out.String())
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var failRec map[string]any
	var summary map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("report line is not JSON: %q", line)
		}
		switch {
		case rec["summary"] == true:
			summary = rec
		case rec["case"] == "will-fail":
			failRec = rec
		}
	}
	if failRec == nil {
		t.Fatalf("report has no record for the failing case:\n%s", data)
	}
	if failRec["status"] != "fail" {
		t.Errorf("failing case status = %v", failRec["status"])
	}
	vs, _ := failRec["violations"].([]any)
	if len(vs) != 1 {
		t.Errorf("failing case carries %d violations, want 1", len(vs))
	}
	if summary == nil || summary["failed"] != float64(1) {
		t.Errorf("summary record = %v, want failed=1", summary)
	}
}

// TestCorpusValidationErrors drives malformed-corpus inputs; all must
// surface as *corpusError or *workload.BudgetError (exit code 2), never
// as a silent pass or a plain runtime failure.
func TestCorpusValidationErrors(t *testing.T) {
	valid := map[string]string{
		"machine.json":          tinyMachine,
		"cases/ok/case.json":    `{"recipe": "steady-state"}`,
		"cases/ok/budgets.json": `{"budgets": [{"metric": "tasks_total", "min": 1}]}`,
	}
	cases := map[string]struct {
		mutate     func(files map[string]string)
		wantBudget bool // expects *workload.BudgetError instead of *corpusError
	}{
		"malformed machine.json": {mutate: func(f map[string]string) { f["machine.json"] = `{oops` }},
		"unknown machine field":  {mutate: func(f map[string]string) { f["machine.json"] = `{"devices": 5, "stations": 1, "tasks": 5, "cores": 4}` }},
		"zero populations":       {mutate: func(f map[string]string) { f["machine.json"] = `{"devices": 0, "stations": 0, "tasks": 0}` }},
		"malformed case.json":    {mutate: func(f map[string]string) { f["cases/ok/case.json"] = `{oops` }},
		"sourceless case":        {mutate: func(f map[string]string) { f["cases/ok/case.json"] = `{"seed": 3}` }},
		"double-sourced case": {mutate: func(f map[string]string) {
			f["cases/ok/case.json"] = `{"recipe": "steady-state", "scenario": "x.json"}`
		}},
		"unknown recipe":        {mutate: func(f map[string]string) { f["cases/ok/case.json"] = `{"recipe": "nope"}` }},
		"missing scenario file": {mutate: func(f map[string]string) { f["cases/ok/case.json"] = `{"scenario": "missing.json"}` }},
		"malformed budgets": {
			mutate: func(f map[string]string) {
				f["cases/ok/budgets.json"] = `{"budgets": [{"metric": "no.such.metric", "min": 1}]}`
			},
			wantBudget: true,
		},
	}
	for name, tc := range cases {
		files := make(map[string]string, len(valid))
		for k, v := range valid {
			files[k] = v
		}
		tc.mutate(files)
		root := writeCorpus(t, files)
		var out strings.Builder
		err := run([]string{"-root", root}, &out)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var ce *corpusError
		var be *workload.BudgetError
		switch {
		case tc.wantBudget && !errors.As(err, &be):
			t.Errorf("%s: error %T is not a *workload.BudgetError", name, err)
		case !tc.wantBudget && !errors.As(err, &ce):
			t.Errorf("%s: error %T is not a *corpusError", name, err)
		}
	}
}

// TestClassFilter proves -class selects exactly one class and rejects
// unknown names.
func TestClassFilter(t *testing.T) {
	classes, err := discover(corpusRoot, "ci-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || classes[0].Name != "ci-smoke" {
		t.Fatalf("filter returned %+v", classes)
	}
	if _, err := discover(corpusRoot, "nope"); err == nil {
		t.Error("unknown class accepted")
	} else {
		var ce *corpusError
		if errors.As(err, &ce) {
			t.Error("unknown -class is CLI misuse (exit 1), not a corpus error (exit 2)")
		}
	}
}

func TestListCorpus(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-root", corpusRoot, "-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ci-smoke", "edge-1k", "recipe:flash-crowd", "scenario:scenario.json"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("corpus list missing %q:\n%s", want, out.String())
		}
	}
}
