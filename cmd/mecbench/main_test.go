package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig2a", "fig6b", "simcheck", "battery"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "table1", "-trials", "1", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4G") || !strings.Contains(out.String(), "13.76") {
		t.Errorf("table1 output wrong:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "nope"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestNoAction(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no action should fail")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-experiment", "fig3", "-trials", "1", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "tasks,") {
		t.Errorf("csv header wrong: %q", string(data[:40]))
	}
	lines := strings.Count(string(data), "\n")
	if lines < 3 { // header + two quick-mode rows
		t.Errorf("csv has %d lines, want >= 3", lines)
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestParallelOutputByteIdentical(t *testing.T) {
	// The determinism guarantee of the parallel pipeline: the rendered
	// figure is byte-for-byte the same for any -parallel value.
	runWith := func(parallel string) string {
		var out strings.Builder
		err := run([]string{
			"-experiment", "fig2a", "-quick", "-trials", "2", "-parallel", parallel,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		// Drop the wall-clock footer: timing is the one line allowed to
		// change between runs.
		var lines []string
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(l, "(fig2a in ") {
				continue
			}
			lines = append(lines, l)
		}
		return strings.Join(lines, "\n")
	}
	seq := runWith("1")
	for _, p := range []string{"4", "0"} {
		if par := runWith(p); par != seq {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- sequential ---\n%s--- parallel ---\n%s",
				p, seq, par)
		}
	}
}
