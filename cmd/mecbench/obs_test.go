package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/workload"
)

func writeBudgets(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "budgets.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMetricsCollectedFromExperiments(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "bench.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-metrics", mpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool    string `json:"tool"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "mecbench" {
		t.Errorf("tool = %q", m.Tool)
	}
	// The experiment harness carries no Instruments; these counters only
	// appear if the global-registry fallback works end to end.
	for _, c := range []string{"bench.experiments", "lp.solves", "lphta.runs"} {
		if m.Metrics.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, m.Metrics.Counters[c])
		}
	}
}

func TestBudgetCheckPasses(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "min": 1},
		{"metric": "lp.pivots", "max": 100000000},
		{"metric": "wall_seconds", "max": 600},
		{"metric": "bench.experiment_seconds.count", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err != nil {
		t.Fatalf("in-budget run failed: %v\n%s", err, out.String())
	}
	if strings.Count(out.String(), "budget ok") != 4 {
		t.Errorf("expected 4 'budget ok' lines:\n%s", out.String())
	}
}

func TestBudgetCheckFails(t *testing.T) {
	dir := t.TempDir()
	// "lp.no_such_counter" has a known metric root, so it parses but
	// cannot resolve against the run — a "missing" violation, not a
	// parse-time rejection.
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "max": 0},
		{"metric": "lp.no_such_counter", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err == nil {
		t.Fatalf("out-of-budget run succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 budget violation") {
		t.Errorf("error = %v, want 2 violations", err)
	}
	if !strings.Contains(out.String(), "budget FAIL") {
		t.Errorf("violations not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric not found") {
		t.Errorf("unknown metric not reported:\n%s", out.String())
	}
	// Each failure also carries a machine-readable record.
	for _, want := range []string{`"kind":"max"`, `"kind":"missing"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("violation JSON %s missing:\n%s", want, out.String())
		}
	}
}

// TestBudgetFileValidation proves malformed budget files fail fast as
// structured *workload.BudgetError values — before any experiment runs —
// which main maps to exit code 2. (The full parsing edge-case matrix
// lives in internal/workload, shared with mecwc.)
func TestBudgetFileValidation(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"malformed":      `{not json`,
		"empty":          `{"budgets": []}`,
		"unnamed":        `{"budgets": [{"max": 1}]}`,
		"unbounded":      `{"budgets": [{"metric": "lp.pivots"}]}`,
		"unknown metric": `{"budgets": [{"metric": "no.such.metric", "min": 1}]}`,
		"negative limit": `{"budgets": [{"metric": "lp.pivots", "max": -1}]}`,
	}
	for name, content := range cases {
		bpath := writeBudgets(t, dir, content)
		var out strings.Builder
		err := run([]string{"-experiment", "fig2a", "-check", bpath}, &out)
		if err == nil {
			t.Errorf("%s budget file accepted", name)
			continue
		}
		var be *workload.BudgetError
		if !errors.As(err, &be) {
			t.Errorf("%s: error %T is not a *workload.BudgetError (would exit 1, want 2)", name, err)
		}
		if strings.Contains(out.String(), "(fig2a in") {
			t.Errorf("%s: experiment ran despite invalid budget file", name)
		}
	}
}

// TestBudgetFailureStillFlushesArtifacts pins the flush ordering: a run
// that fails its budget gate must still leave the -metrics manifest and
// a complete -obs-snapshots stream behind, so CI failures come with
// their evidence.
func TestBudgetFailureStillFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [{"metric": "lp.solves", "max": 0}]}`)
	mpath := filepath.Join(dir, "bench.json")
	spath := filepath.Join(dir, "snaps.jsonl")
	var out strings.Builder
	err := run([]string{
		"-experiment", "fig2a", "-trials", "1", "-quick",
		"-metrics", mpath, "-obs-snapshots", spath, "-check", bpath,
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "budget violation") {
		t.Fatalf("err = %v, want a budget violation", err)
	}
	var be *workload.BudgetError
	if errors.As(err, &be) {
		t.Fatalf("violation surfaced as a file error (exit 2); want plain error (exit 1)")
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("metrics manifest missing after failed gate: %v", err)
	}
	if !json.Valid(data) {
		t.Error("metrics manifest is not valid JSON")
	}
	snaps, err := os.ReadFile(spath)
	if err != nil {
		t.Fatalf("snapshot stream missing after failed gate: %v", err)
	}
	// Close writes one final record even when no interval elapsed; every
	// line must be complete JSON (i.e. the stream was flushed, not cut).
	lines := strings.Split(strings.TrimSpace(string(snaps)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("snapshot stream is empty after failed gate")
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("snapshot line %d is not complete JSON: %q", i, line)
		}
	}
}

func TestBenchTraceOutput(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "bench.trace.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-trace", tpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "experiment:fig2a" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing experiment span: %+v", doc.TraceEvents)
	}
}
