package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/obs"
)

func writeBudgets(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "budgets.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMetricsCollectedFromExperiments(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "bench.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-metrics", mpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool    string `json:"tool"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "mecbench" {
		t.Errorf("tool = %q", m.Tool)
	}
	// The experiment harness carries no Instruments; these counters only
	// appear if the global-registry fallback works end to end.
	for _, c := range []string{"bench.experiments", "lp.solves", "lphta.runs"} {
		if m.Metrics.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, m.Metrics.Counters[c])
		}
	}
}

func TestBudgetCheckPasses(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "min": 1},
		{"metric": "lp.pivots", "max": 100000000},
		{"metric": "wall_seconds", "max": 600},
		{"metric": "bench.experiment_seconds.count", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err != nil {
		t.Fatalf("in-budget run failed: %v\n%s", err, out.String())
	}
	if strings.Count(out.String(), "budget ok") != 4 {
		t.Errorf("expected 4 'budget ok' lines:\n%s", out.String())
	}
}

func TestBudgetCheckFails(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "max": 0},
		{"metric": "no.such.metric", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err == nil {
		t.Fatalf("out-of-budget run succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 budget violation") {
		t.Errorf("error = %v, want 2 violations", err)
	}
	if !strings.Contains(out.String(), "budget FAIL") {
		t.Errorf("violations not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric not found") {
		t.Errorf("unknown metric not reported:\n%s", out.String())
	}
	// Each failure also carries a machine-readable record.
	for _, want := range []string{`"kind":"max"`, `"kind":"missing"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("violation JSON %s missing:\n%s", want, out.String())
		}
	}
}

// TestBudgetViolationJSONFormat pins the exact shape of the JSON record
// printed alongside each human "budget FAIL" line; CI wrappers parse these
// lines, so the field set and encoding must not drift.
func TestBudgetViolationJSONFormat(t *testing.T) {
	m := &obs.Manifest{Metrics: obs.Snapshot{
		Counters: map[string]int64{"lp.pivots": 612},
		Gauges:   map[string]float64{"sim.utilization.st.cpu": 0.25},
	}}
	maxPivots, minUtil := 500.0, 0.5
	var out strings.Builder
	err := checkBudgets([]budget{
		{Metric: "lp.pivots", Max: &maxPivots},
		{Metric: "sim.utilization.st.cpu", Min: &minUtil},
		{Metric: "no.such.metric", Min: &minUtil},
	}, m, &out)
	if err == nil || !strings.Contains(err.Error(), "3 budget violation") {
		t.Fatalf("err = %v, want 3 violations", err)
	}
	for _, want := range []string{
		`{"budget":"lp.pivots","kind":"max","limit":500,"actual":612,"margin":112}`,
		`{"budget":"sim.utilization.st.cpu","kind":"min","limit":0.5,"actual":0.25,"margin":0.25}`,
		`{"budget":"no.such.metric","kind":"missing"}`,
	} {
		if !strings.Contains(out.String(), want+"\n") {
			t.Errorf("missing violation line %s in:\n%s", want, out.String())
		}
	}
}

func TestBudgetFileValidation(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"malformed": `{not json`,
		"empty":     `{"budgets": []}`,
		"unnamed":   `{"budgets": [{"max": 1}]}`,
		"unbounded": `{"budgets": [{"metric": "x"}]}`,
	}
	for name, content := range cases {
		bpath := writeBudgets(t, dir, content)
		var out strings.Builder
		// Validation happens before any experiment runs, so even -list-less
		// invalid invocations fail fast.
		if err := run([]string{"-experiment", "fig2a", "-check", bpath}, &out); err == nil {
			t.Errorf("%s budget file accepted", name)
		}
	}
}

func TestBenchTraceOutput(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "bench.trace.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-trace", tpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "experiment:fig2a" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing experiment span: %+v", doc.TraceEvents)
	}
}
