package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBudgets(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, "budgets.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMetricsCollectedFromExperiments(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "bench.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-metrics", mpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool    string `json:"tool"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "mecbench" {
		t.Errorf("tool = %q", m.Tool)
	}
	// The experiment harness carries no Instruments; these counters only
	// appear if the global-registry fallback works end to end.
	for _, c := range []string{"bench.experiments", "lp.solves", "lphta.runs"} {
		if m.Metrics.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, m.Metrics.Counters[c])
		}
	}
}

func TestBudgetCheckPasses(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "min": 1},
		{"metric": "lp.pivots", "max": 100000000},
		{"metric": "wall_seconds", "max": 600},
		{"metric": "bench.experiment_seconds.count", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err != nil {
		t.Fatalf("in-budget run failed: %v\n%s", err, out.String())
	}
	if strings.Count(out.String(), "budget ok") != 4 {
		t.Errorf("expected 4 'budget ok' lines:\n%s", out.String())
	}
}

func TestBudgetCheckFails(t *testing.T) {
	dir := t.TempDir()
	bpath := writeBudgets(t, dir, `{"budgets": [
		{"metric": "lp.solves", "max": 0},
		{"metric": "no.such.metric", "min": 1}
	]}`)
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-check", bpath}, &out)
	if err == nil {
		t.Fatalf("out-of-budget run succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "2 budget violation") {
		t.Errorf("error = %v, want 2 violations", err)
	}
	if !strings.Contains(out.String(), "budget FAIL") {
		t.Errorf("violations not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric not found") {
		t.Errorf("unknown metric not reported:\n%s", out.String())
	}
}

func TestBudgetFileValidation(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"malformed": `{not json`,
		"empty":     `{"budgets": []}`,
		"unnamed":   `{"budgets": [{"max": 1}]}`,
		"unbounded": `{"budgets": [{"metric": "x"}]}`,
	}
	for name, content := range cases {
		bpath := writeBudgets(t, dir, content)
		var out strings.Builder
		// Validation happens before any experiment runs, so even -list-less
		// invalid invocations fail fast.
		if err := run([]string{"-experiment", "fig2a", "-check", bpath}, &out); err == nil {
			t.Errorf("%s budget file accepted", name)
		}
	}
}

func TestBenchTraceOutput(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "bench.trace.json")
	var out strings.Builder
	err := run([]string{"-experiment", "fig2a", "-trials", "1", "-quick", "-trace", tpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "experiment:fig2a" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing experiment span: %+v", doc.TraceEvents)
	}
}
