package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stripTimings removes the nondeterministic "(id in 1.2s)" wall-clock
// lines so output can be compared across machines.
func stripTimings(s string) string {
	var kept []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "(") && strings.Contains(line, " in ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestGoldenSimcheck locks the simulator-facing experiment output against
// a capture taken before the fault-injection layer landed: with no -faults
// involved, the numbers must not move.
func TestGoldenSimcheck(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_simcheck.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-experiment", "simcheck", "-quick", "-trials", "2", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := stripTimings(out.String()); got != string(want) {
		t.Errorf("simcheck output drifted from golden:\n%s", got)
	}
}

func TestRobustnessExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "robustness", "-quick", "-trials", "1", "-seed", "3", "-fault-seed", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"robustness", "outage rate", "goodput", "wasted"} {
		if !strings.Contains(s, want) {
			t.Errorf("robustness output missing %q:\n%s", want, s)
		}
	}
}

// TestRobustnessDeterministicFaultSeed re-runs the sweep with the same and
// a different fault seed: same seed reproduces the table, different seed
// moves it.
func TestRobustnessDeterministicFaultSeed(t *testing.T) {
	render := func(faultSeed string) string {
		var out strings.Builder
		err := run([]string{"-experiment", "robustness", "-quick", "-trials", "1", "-seed", "3", "-fault-seed", faultSeed}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return stripTimings(out.String())
	}
	a, b, c := render("2"), render("2"), render("7")
	if a != b {
		t.Error("same fault seed should reproduce the sweep exactly")
	}
	if a == c {
		t.Error("different fault seeds should perturb the sweep")
	}
}
