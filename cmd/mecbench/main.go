// Command mecbench regenerates the tables and figures of the paper's
// evaluation (Section V), plus the validation and ablation studies that go
// beyond it.
//
// Usage:
//
//	mecbench -all                       # every artifact, paper sweeps
//	mecbench -experiment fig2a          # one artifact
//	mecbench -list                      # show what is available
//	mecbench -experiment fig5a -trials 5 -seed 7
//	mecbench -all -csv out/             # also write one CSV per figure
//	mecbench -all -quick                # endpoints only (smoke test)
//	mecbench -all -quick -metrics run.json -check budgets.json
//
// With -metrics, solver and simulator counters from deep inside the
// experiment harness are collected into a run manifest (the experiments
// record to the process-wide obs registry, so nothing needs threading).
// With -check, the final metrics are compared against a budget file and
// the command exits non-zero on any violation — a cheap performance
// regression gate for CI:
//
//	{"budgets": [
//	  {"metric": "lp.pivots", "max": 500000},
//	  {"metric": "sim.events", "min": 1},
//	  {"metric": "wall_seconds", "max": 300}
//	]}
//
// A budget metric names a counter or gauge, the special "wall_seconds" /
// "cpu_seconds" clocks, or a histogram with a .count/.sum/.mean suffix.
// Budget files are validated up front (shared with mecwc via
// internal/workload): malformed JSON, unknown metric names, or invalid
// bounds exit with code 2 and a structured JSON record on stderr, while
// a budget violation in a completed run exits 1 — after the -metrics,
// -trace, and -obs-snapshots outputs have all been flushed, so a failed
// gate still leaves its evidence behind.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dsmec"
	"dsmec/internal/lp"
	"dsmec/internal/obs"
	"dsmec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecbench:", err)
		var be *workload.BudgetError
		if errors.As(err, &be) {
			be.WriteJSON(os.Stderr)
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecbench", flag.ContinueOnError)
	var (
		expID       = fs.String("experiment", "", "experiment id to run (see -list)")
		all         = fs.Bool("all", false, "run every experiment")
		list        = fs.Bool("list", false, "list available experiments")
		seed        = fs.Int64("seed", 1, "root random seed")
		trials      = fs.Int("trials", 3, "seeded repetitions averaged per point")
		quick       = fs.Bool("quick", false, "sweep endpoints only")
		parallel    = fs.Int("parallel", 0, "worker count for sweep points and trials (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		csvDir      = fs.String("csv", "", "directory to write per-figure CSV files")
		metricsPath = fs.String("metrics", "", "write a run manifest (metrics + environment) to this JSON file")
		tracePath   = fs.String("trace", "", "write a Chrome trace_event JSON to this file")
		checkPath   = fs.String("check", "", "budget JSON file; exit non-zero when a final metric is out of budget")
		lpMethod    = fs.String("lp-method", "auto", "simplex implementation for LP relaxations: auto, revised, or dense")
		faultSeed   = fs.Int64("fault-seed", 1, "root seed for fault plans in fault-injecting experiments (robustness)")
		obsAddr     = fs.String("obs-addr", "", "serve live /metrics, /metrics.json, /manifest, and /debug/pprof over HTTP on this address for the duration of the run")
		snapPath    = fs.String("obs-snapshots", "", "append timestamped registry snapshots (JSON Lines) to this file while experiments run")
		snapEvery   = fs.Duration("obs-snapshot-interval", time.Second, "interval between -obs-snapshots records")
		logLevel    = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)
	// The experiment definitions build their solver options internally, so
	// the method is installed as the process default rather than threaded
	// through every definition — the same pattern obs.SetGlobal uses.
	method, err := lp.ParseMethod(*lpMethod)
	if err != nil {
		return err
	}
	lp.SetDefaultMethod(method)
	defer lp.SetDefaultMethod(lp.MethodAuto)

	if *list {
		for _, d := range dsmec.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", d.ID, d.Title)
		}
		return nil
	}

	var defs []dsmec.Experiment
	switch {
	case *all:
		defs = dsmec.Experiments()
	case *expID != "":
		d, ok := dsmec.ExperimentByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		defs = []dsmec.Experiment{d}
	default:
		return fmt.Errorf("nothing to do: pass -experiment <id>, -all, or -list")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// Load budgets before any work so a malformed file fails fast (with
	// exit code 2 via the *BudgetError mapping in main).
	var budgets []workload.Budget
	if *checkPath != "" {
		var err error
		budgets, err = workload.LoadBudgets(*checkPath)
		if err != nil {
			return err
		}
	}

	// The experiment harness builds its options internally, so metrics are
	// collected through the process-wide registry rather than threading an
	// Instruments value through every definition.
	var (
		reg      *obs.Registry
		trace    *obs.Trace
		manifest *obs.Manifest
	)
	closeSnapshotter := func() error { return nil }
	if *metricsPath != "" || *tracePath != "" || *checkPath != "" || *obsAddr != "" || *snapPath != "" {
		reg = obs.NewRegistry()
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
		manifest = obs.NewManifest("mecbench", args)
		manifest.SetSeed(*seed)
		if *tracePath != "" {
			trace = obs.NewTrace("mecbench")
		}
		if *obsAddr != "" {
			srv, err := obs.NewServer(*obsAddr, reg, manifest)
			if err != nil {
				return err
			}
			defer srv.Close()
			logger.Info("obs server listening", "url", srv.URL())
		}
		if *snapPath != "" {
			snap, err := obs.StartSnapshotter(*snapPath, *snapEvery, reg)
			if err != nil {
				return err
			}
			// Closed explicitly before the budget verdict so a failing
			// -check still leaves a complete snapshot file; the guard keeps
			// the deferred close from closing twice (Snapshotter.Close is
			// not idempotent).
			closed := false
			closeSnapshotter = func() error {
				if closed {
					return nil
				}
				closed = true
				return snap.Close()
			}
			defer closeSnapshotter()
		}
	}

	opts := dsmec.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick, Parallelism: *parallel, FaultSeed: *faultSeed}
	expSeconds := reg.Histogram("bench.experiment_seconds", obs.TimeBuckets)
	for _, d := range defs {
		span := trace.StartSpan("experiment:" + d.ID)
		start := time.Now()
		fig, err := d.Run(opts)
		elapsed := time.Since(start)
		span.Annotate("seconds", elapsed.Seconds())
		span.End()
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		reg.Counter("bench.experiments").Inc()
		expSeconds.Observe(elapsed.Seconds())
		if _, err := fig.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", d.ID, elapsed.Round(time.Millisecond))

		if *csvDir != "" {
			path := filepath.Join(*csvDir, d.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if manifest == nil {
		return nil
	}
	manifest.Finish(reg)
	if *metricsPath != "" {
		if err := manifest.WriteFile(*metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run manifest: %s\n", *metricsPath)
		if _, err := obs.SummaryTable(manifest.Metrics).WriteTo(stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := trace.WriteFile(*tracePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if *checkPath != "" {
		// Flush the snapshot stream before the verdict: a failed gate must
		// still leave complete observability artifacts behind.
		if err := closeSnapshotter(); err != nil {
			return err
		}
		if vs := workload.CheckBudgets(budgets, workload.ManifestResolver(manifest), stdout); len(vs) > 0 {
			return fmt.Errorf("%d budget violation(s)", len(vs))
		}
	}
	return nil
}
