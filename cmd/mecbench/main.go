// Command mecbench regenerates the tables and figures of the paper's
// evaluation (Section V), plus the validation and ablation studies that go
// beyond it.
//
// Usage:
//
//	mecbench -all                       # every artifact, paper sweeps
//	mecbench -experiment fig2a          # one artifact
//	mecbench -list                      # show what is available
//	mecbench -experiment fig5a -trials 5 -seed 7
//	mecbench -all -csv out/             # also write one CSV per figure
//	mecbench -all -quick                # endpoints only (smoke test)
//	mecbench -all -quick -metrics run.json -check budgets.json
//
// With -metrics, solver and simulator counters from deep inside the
// experiment harness are collected into a run manifest (the experiments
// record to the process-wide obs registry, so nothing needs threading).
// With -check, the final metrics are compared against a budget file and
// the command exits non-zero on any violation — a cheap performance
// regression gate for CI:
//
//	{"budgets": [
//	  {"metric": "lp.pivots", "max": 500000},
//	  {"metric": "sim.events", "min": 1},
//	  {"metric": "wall_seconds", "max": 300}
//	]}
//
// A budget metric names a counter or gauge, the special "wall_seconds" /
// "cpu_seconds" clocks, or a histogram with a .count/.sum/.mean suffix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dsmec"
	"dsmec/internal/lp"
	"dsmec/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecbench", flag.ContinueOnError)
	var (
		expID       = fs.String("experiment", "", "experiment id to run (see -list)")
		all         = fs.Bool("all", false, "run every experiment")
		list        = fs.Bool("list", false, "list available experiments")
		seed        = fs.Int64("seed", 1, "root random seed")
		trials      = fs.Int("trials", 3, "seeded repetitions averaged per point")
		quick       = fs.Bool("quick", false, "sweep endpoints only")
		parallel    = fs.Int("parallel", 0, "worker count for sweep points and trials (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		csvDir      = fs.String("csv", "", "directory to write per-figure CSV files")
		metricsPath = fs.String("metrics", "", "write a run manifest (metrics + environment) to this JSON file")
		tracePath   = fs.String("trace", "", "write a Chrome trace_event JSON to this file")
		checkPath   = fs.String("check", "", "budget JSON file; exit non-zero when a final metric is out of budget")
		lpMethod    = fs.String("lp-method", "auto", "simplex implementation for LP relaxations: auto, revised, or dense")
		faultSeed   = fs.Int64("fault-seed", 1, "root seed for fault plans in fault-injecting experiments (robustness)")
		obsAddr     = fs.String("obs-addr", "", "serve live /metrics, /metrics.json, /manifest, and /debug/pprof over HTTP on this address for the duration of the run")
		snapPath    = fs.String("obs-snapshots", "", "append timestamped registry snapshots (JSON Lines) to this file while experiments run")
		snapEvery   = fs.Duration("obs-snapshot-interval", time.Second, "interval between -obs-snapshots records")
		logLevel    = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)
	// The experiment definitions build their solver options internally, so
	// the method is installed as the process default rather than threaded
	// through every definition — the same pattern obs.SetGlobal uses.
	method, err := lp.ParseMethod(*lpMethod)
	if err != nil {
		return err
	}
	lp.SetDefaultMethod(method)
	defer lp.SetDefaultMethod(lp.MethodAuto)

	if *list {
		for _, d := range dsmec.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", d.ID, d.Title)
		}
		return nil
	}

	var defs []dsmec.Experiment
	switch {
	case *all:
		defs = dsmec.Experiments()
	case *expID != "":
		d, ok := dsmec.ExperimentByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		defs = []dsmec.Experiment{d}
	default:
		return fmt.Errorf("nothing to do: pass -experiment <id>, -all, or -list")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// Load budgets before any work so a malformed file fails fast.
	var budgets []budget
	if *checkPath != "" {
		var err error
		budgets, err = loadBudgets(*checkPath)
		if err != nil {
			return err
		}
	}

	// The experiment harness builds its options internally, so metrics are
	// collected through the process-wide registry rather than threading an
	// Instruments value through every definition.
	var (
		reg      *obs.Registry
		trace    *obs.Trace
		manifest *obs.Manifest
	)
	if *metricsPath != "" || *tracePath != "" || *checkPath != "" || *obsAddr != "" || *snapPath != "" {
		reg = obs.NewRegistry()
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
		manifest = obs.NewManifest("mecbench", args)
		manifest.SetSeed(*seed)
		if *tracePath != "" {
			trace = obs.NewTrace("mecbench")
		}
		if *obsAddr != "" {
			srv, err := obs.NewServer(*obsAddr, reg, manifest)
			if err != nil {
				return err
			}
			defer srv.Close()
			logger.Info("obs server listening", "url", srv.URL())
		}
		if *snapPath != "" {
			snap, err := obs.StartSnapshotter(*snapPath, *snapEvery, reg)
			if err != nil {
				return err
			}
			defer snap.Close()
		}
	}

	opts := dsmec.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick, Parallelism: *parallel, FaultSeed: *faultSeed}
	expSeconds := reg.Histogram("bench.experiment_seconds", obs.TimeBuckets)
	for _, d := range defs {
		span := trace.StartSpan("experiment:" + d.ID)
		start := time.Now()
		fig, err := d.Run(opts)
		elapsed := time.Since(start)
		span.Annotate("seconds", elapsed.Seconds())
		span.End()
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		reg.Counter("bench.experiments").Inc()
		expSeconds.Observe(elapsed.Seconds())
		if _, err := fig.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", d.ID, elapsed.Round(time.Millisecond))

		if *csvDir != "" {
			path := filepath.Join(*csvDir, d.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if manifest == nil {
		return nil
	}
	manifest.Finish(reg)
	if *metricsPath != "" {
		if err := manifest.WriteFile(*metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run manifest: %s\n", *metricsPath)
		if _, err := obs.SummaryTable(manifest.Metrics).WriteTo(stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := trace.WriteFile(*tracePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if *checkPath != "" {
		return checkBudgets(budgets, manifest, stdout)
	}
	return nil
}

// budget is one metric bound. Unset bounds do not apply.
type budget struct {
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
}

type budgetFile struct {
	Budgets []budget `json:"budgets"`
}

func loadBudgets(path string) ([]budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf budgetFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing budgets %s: %w", path, err)
	}
	if len(bf.Budgets) == 0 {
		return nil, fmt.Errorf("budgets %s: no budgets defined", path)
	}
	for _, b := range bf.Budgets {
		if b.Metric == "" {
			return nil, fmt.Errorf("budgets %s: budget with empty metric name", path)
		}
		if b.Max == nil && b.Min == nil {
			return nil, fmt.Errorf("budgets %s: %s has neither min nor max", path, b.Metric)
		}
	}
	return bf.Budgets, nil
}

// violation is the machine-readable record emitted alongside each human
// "budget FAIL" line, so CI wrappers can parse failures without scraping
// the column-aligned text. Margin is how far past the limit the run
// landed, always non-negative.
type violation struct {
	Budget string   `json:"budget"`
	Kind   string   `json:"kind"` // "max", "min", or "missing"
	Limit  *float64 `json:"limit,omitempty"`
	Actual *float64 `json:"actual,omitempty"`
	Margin *float64 `json:"margin,omitempty"`
}

// checkBudgets resolves every budget against the finished manifest and
// reports violations; any violation (or unresolvable metric) is an error,
// which main turns into a non-zero exit. Each failure prints a human line
// followed by a one-line JSON violation record.
func checkBudgets(budgets []budget, m *obs.Manifest, stdout io.Writer) error {
	violations := 0
	fail := func(v violation) {
		violations++
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(stdout, "%s\n", data)
	}
	for _, b := range budgets {
		v, ok := resolveMetric(b.Metric, m)
		if !ok {
			fmt.Fprintf(stdout, "budget FAIL %-32s metric not found in run\n", b.Metric)
			fail(violation{Budget: b.Metric, Kind: "missing"})
			continue
		}
		switch {
		case b.Max != nil && v > *b.Max:
			fmt.Fprintf(stdout, "budget FAIL %-32s %g > max %g\n", b.Metric, v, *b.Max)
			margin := v - *b.Max
			fail(violation{Budget: b.Metric, Kind: "max", Limit: b.Max, Actual: &v, Margin: &margin})
		case b.Min != nil && v < *b.Min:
			fmt.Fprintf(stdout, "budget FAIL %-32s %g < min %g\n", b.Metric, v, *b.Min)
			margin := *b.Min - v
			fail(violation{Budget: b.Metric, Kind: "min", Limit: b.Min, Actual: &v, Margin: &margin})
		default:
			fmt.Fprintf(stdout, "budget ok   %-32s %g\n", b.Metric, v)
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d budget violation(s)", violations)
	}
	return nil
}

// resolveMetric looks a budget metric up in the manifest: counters and
// gauges by name, the wall_seconds/cpu_seconds clocks, and histograms via
// a .count/.sum/.mean suffix.
func resolveMetric(name string, m *obs.Manifest) (float64, bool) {
	switch name {
	case "wall_seconds":
		return m.WallSeconds, true
	case "cpu_seconds":
		return m.CPUSeconds, true
	}
	if v, ok := m.Metrics.Counters[name]; ok {
		return float64(v), true
	}
	if v, ok := m.Metrics.Gauges[name]; ok {
		return v, true
	}
	for _, suffix := range []string{".count", ".sum", ".mean"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		h, ok := m.Metrics.Histograms[base]
		if !ok {
			continue
		}
		switch suffix {
		case ".count":
			return float64(h.Count), true
		case ".sum":
			return h.Sum, true
		case ".mean":
			return h.Mean(), true
		}
	}
	return 0, false
}
