// Command mecbench regenerates the tables and figures of the paper's
// evaluation (Section V), plus the validation and ablation studies that go
// beyond it.
//
// Usage:
//
//	mecbench -all                       # every artifact, paper sweeps
//	mecbench -experiment fig2a          # one artifact
//	mecbench -list                      # show what is available
//	mecbench -experiment fig5a -trials 5 -seed 7
//	mecbench -all -csv out/             # also write one CSV per figure
//	mecbench -all -quick                # endpoints only (smoke test)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dsmec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecbench", flag.ContinueOnError)
	var (
		expID    = fs.String("experiment", "", "experiment id to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		list     = fs.Bool("list", false, "list available experiments")
		seed     = fs.Int64("seed", 1, "root random seed")
		trials   = fs.Int("trials", 3, "seeded repetitions averaged per point")
		quick    = fs.Bool("quick", false, "sweep endpoints only")
		parallel = fs.Bool("parallel", true, "run the trials of each sweep point concurrently")
		csvDir   = fs.String("csv", "", "directory to write per-figure CSV files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range dsmec.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", d.ID, d.Title)
		}
		return nil
	}

	var defs []dsmec.Experiment
	switch {
	case *all:
		defs = dsmec.Experiments()
	case *expID != "":
		d, ok := dsmec.ExperimentByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		defs = []dsmec.Experiment{d}
	default:
		return fmt.Errorf("nothing to do: pass -experiment <id>, -all, or -list")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	opts := dsmec.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick, Parallel: *parallel}
	for _, d := range defs {
		start := time.Now()
		fig, err := d.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		if _, err := fig.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", d.ID, time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			path := filepath.Join(*csvDir, d.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
