package main

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFixtureFindings lints the seeded mini-module end to end and checks
// that every analyzer and repo check reports its planted violation.
func TestFixtureFindings(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-root", "testdata/fixture"}, &buf)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run: got error %v, want errFindings\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []struct{ tag, file string }{
		{"[determinism]", "core.go"},
		{"[floatcmp]", "core.go"},
		{"[allow]", "core.go"},
		{"[nilsafe]", "obs.go"},
		{"[exitcode]", "main.go"},
		{"[docs]", "nodoc"},
		{"[links]", "README.md"},
	} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, want.tag) && strings.Contains(line, want.file) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding with %s in %s\noutput:\n%s", want.tag, want.file, out)
		}
	}
	// The correctly guarded method and the well-documented packages must
	// not be flagged: exactly one nilsafe and one docs finding.
	for _, tag := range []string{"[nilsafe]", "[docs]"} {
		if n := strings.Count(out, tag); n != 1 {
			t.Errorf("got %d %s findings, want 1\noutput:\n%s", n, tag, out)
		}
	}
}

// TestFixtureSubset restricts the run to one check and verifies the
// others stay silent — including their unused-allow reporting, which
// must not fire for analyzers that did not run.
func TestFixtureSubset(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-root", "testdata/fixture", "-checks", "exitcode"}, &buf)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run: got error %v, want errFindings\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "[exitcode]") {
		t.Errorf("missing exitcode finding:\n%s", out)
	}
	for _, tag := range []string{"[determinism]", "[nilsafe]", "[floatcmp]", "[allow]", "[docs]", "[links]"} {
		if strings.Contains(out, tag) {
			t.Errorf("unexpected %s finding under -checks=exitcode:\n%s", tag, out)
		}
	}
}

// TestRealRepoIsClean is the self-check: the repository this test lives
// in must lint clean, suppressions included.
func TestRealRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint is slow; skipped with -short")
	}
	var buf strings.Builder
	if err := run([]string{"-root", "../.."}, &buf); err != nil {
		t.Fatalf("repository is not lint-clean: %v\n%s", err, buf.String())
	}
}

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := buf.String()
	for _, name := range []string{"determinism", "nilsafe", "floatcmp", "exitcode", "docs", "links"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output is missing %q:\n%s", name, out)
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	err := run([]string{"-root", "testdata/fixture", "-checks", "nonsense"}, io.Discard)
	if err == nil || errors.Is(err, errFindings) {
		t.Fatalf("got %v, want a usage error distinct from errFindings", err)
	}
}

func TestParseSubset(t *testing.T) {
	known := []string{"allow", "determinism", "docs"}

	all, err := parseSubset("", known)
	if err != nil {
		t.Fatalf("empty subset: %v", err)
	}
	for _, n := range known {
		if !all[n] {
			t.Errorf("empty subset does not select %q", n)
		}
	}

	one, err := parseSubset("determinism", known)
	if err != nil {
		t.Fatalf("single subset: %v", err)
	}
	if !one["determinism"] || one["docs"] {
		t.Errorf("subset selection wrong: %v", one)
	}

	if _, err := parseSubset("allow", known); err == nil {
		t.Error("selecting the allow pseudo-check must be rejected")
	}
	if _, err := parseSubset("bogus", known); err == nil {
		t.Error("unknown check name must be rejected")
	}
	if _, err := parseSubset(" , ,", known); err == nil {
		t.Error("a subset that selects nothing must be rejected")
	}
}
