// Command tool is a lint fixture seeding an exitcode violation.
package main

import "os"

func main() {
	if len(os.Args) > 3 {
		os.Exit(2)
	}
	helper()
}

// helper exits from below the top level, which the exitcode check
// reports.
func helper() {
	os.Exit(1)
}
