// Package nodoc has its comment here instead of in a doc.go, which the
// docs check reports.
package nodoc

// Answer exists so the package has content.
const Answer = 42
