package obs

// Meter counts events. A nil *Meter is a valid disabled meter whose
// methods are no-ops.
type Meter struct {
	n int
}

// Add increments the meter but forgets the nil-receiver guard the type
// contract promises.
func (m *Meter) Add(d int) {
	m.n += d
}

// Value is guarded correctly and must not be flagged.
func (m *Meter) Value() int {
	if m == nil {
		return 0
	}
	return m.n
}
