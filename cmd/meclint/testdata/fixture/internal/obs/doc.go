// Package obs is a lint fixture seeding a nilsafe violation.
package obs
