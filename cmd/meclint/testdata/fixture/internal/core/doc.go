// Package core is a lint fixture seeding determinism and floatcmp
// violations plus one unused suppression.
package core
