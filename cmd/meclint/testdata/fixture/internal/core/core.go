package core

import "time"

// Stamp leaks wall-clock time into a deterministic package.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Differs compares computed floats exactly.
func Differs(a, b float64) bool {
	return a != b
}

// The annotation below suppresses nothing and must be reported.
//
//meclint:allow(floatcmp) seeded unused suppression for the driver test
var sentinel int
