// Command meclint is the repo's static-analysis gate: a multichecker of
// repo-specific analyzers (internal/lint/checks) plus the repository
// hygiene checks (internal/repolint), machine-enforcing the invariants
// the test suite can only spot-check:
//
//	determinism  no wall-clock reads, global math/rand, or
//	             order-dependent map iteration in deterministic packages
//	nilsafe      nil-contract observability methods begin with a
//	             nil-receiver guard
//	floatcmp     no exact ==/!= between computed floats in internal/lp
//	             and internal/core
//	exitcode     cmd binaries call os.Exit only from main/run
//	docs         every internal/ package keeps its comment in doc.go
//	links        every relative markdown link resolves
//
// Findings are suppressed line by line with an annotation carrying a
// mandatory reason:
//
//	//meclint:allow(determinism) <why the rule does not apply here>
//
// placed trailing the offending line or on the line above it. An
// annotation that suppresses nothing is itself a finding, so stale
// allows fail the build. See docs/LINTING.md for the full catalog.
//
// Usage:
//
//	meclint [-root dir] [-checks a,b,...] [-list]
//
// Exit code 0 when clean, 1 with one line per finding, 2 on a usage or
// load error (the shared CLI exit-code contract).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsmec/internal/lint"
	"dsmec/internal/lint/checks"
	"dsmec/internal/repolint"
)

// errFindings distinguishes "the tree is dirty" (exit 1) from driver
// failures (exit 2).
var errFindings = errors.New("meclint: findings")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	if errors.Is(err, errFindings) {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "meclint:", err)
	os.Exit(2)
}

// repoChecks are the analyzer-style checks that inspect the repository
// tree rather than Go syntax.
var repoChecks = []struct {
	name string
	doc  string
	run  func(root string) ([]string, error)
}{
	{"docs", "every internal/ package keeps its package comment in doc.go", repolint.CheckDocs},
	{"links", "every relative markdown link in *.md and docs/*.md resolves", repolint.CheckLinks},
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meclint", flag.ContinueOnError)
	var (
		root   = fs.String("root", ".", "repository root to lint")
		subset = fs.String("checks", "", "comma-separated checks to run (default: all)")
		list   = fs.Bool("list", false, "list checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		for _, c := range repoChecks {
			fmt.Fprintf(stdout, "%-12s %s\n", c.name, c.doc)
		}
		return nil
	}

	known := []string{"allow"}
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	for _, c := range repoChecks {
		known = append(known, c.name)
	}
	selected, err := parseSubset(*subset, known)
	if err != nil {
		return err
	}

	var findings []string

	// Go analyzers over every package in the tree, scoped by
	// checks.Applies and the -checks subset.
	var active []*lint.Analyzer
	for _, a := range analyzers {
		if selected[a.Name] {
			active = append(active, a)
		}
	}
	if len(active) > 0 {
		modPath, err := lint.ModulePath(*root)
		if err != nil {
			return err
		}
		pkgs, err := lint.NewLoader().LoadTree(*root, modPath)
		if err != nil {
			return err
		}
		for _, pkg := range pkgs {
			var applicable []*lint.Analyzer
			for _, a := range active {
				if checks.Applies(a.Name, pkg.ImportPath) {
					applicable = append(applicable, a)
				}
			}
			diags, err := lint.RunPackage(pkg, applicable, known)
			if err != nil {
				return err
			}
			for _, d := range diags {
				findings = append(findings, d.String())
			}
		}
	}

	for _, c := range repoChecks {
		if !selected[c.name] {
			continue
		}
		violations, err := c.run(*root)
		if err != nil {
			return err
		}
		for _, v := range violations {
			findings = append(findings, fmt.Sprintf("%s [%s]", v, c.name))
		}
	}

	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("%d finding(s): %w", n, errFindings)
	}
	return nil
}

// parseSubset resolves the -checks flag against the known check names;
// empty selects everything except the internal "allow" pseudo-check
// (which always runs as part of suppression handling).
func parseSubset(subset string, known []string) (map[string]bool, error) {
	selected := make(map[string]bool, len(known))
	if subset == "" {
		for _, n := range known {
			selected[n] = true
		}
		return selected, nil
	}
	valid := make(map[string]bool, len(known))
	for _, n := range known {
		valid[n] = true
	}
	for _, n := range strings.Split(subset, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] || n == "allow" {
			return nil, fmt.Errorf("unknown check %q (run meclint -list)", n)
		}
		selected[n] = true
	}
	if len(selected) == 0 {
		return nil, errors.New("-checks selected nothing")
	}
	return selected, nil
}
