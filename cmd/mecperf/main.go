// Command mecperf records the repository's performance baseline. It runs
// the same instances as the testing.B benchmarks (via internal/perfbench)
// under testing.Benchmark and writes the results, plus the machine
// context needed to interpret them, to a JSON file — by convention
// BENCH_lphta.json at the repository root (see docs/PERFORMANCE.md).
//
// Usage:
//
//	mecperf                      # write BENCH_lphta.json in the cwd
//	mecperf -out perf/today.json
//	mecperf -quick               # smaller instances, for smoke tests
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dsmec/internal/core"
	"dsmec/internal/experiment"
	"dsmec/internal/lp"
	"dsmec/internal/perfbench"
	"dsmec/internal/sim"
)

// benchResult is one recorded measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepResult compares the sequential and parallel experiment pipeline on
// wall-clock time; the outputs themselves are byte-identical.
type sweepResult struct {
	Experiment        string  `json:"experiment"`
	Trials            int     `json:"trials"`
	Quick             bool    `json:"quick"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	ParallelWorkers   int     `json:"parallel_workers"`
	Speedup           float64 `json:"speedup"`
}

// baseline is the document written to BENCH_lphta.json.
type baseline struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Sweep       sweepResult   `json:"sweep"`
	Notes       []string      `json:"notes"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mecperf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("out", "BENCH_lphta.json", "output JSON path")
		quick = flag.Bool("quick", false, "smaller instances (smoke test)")
	)
	flag.Parse()

	lpBuildTasks, lpSolveTasks, htaTasks, simTasks := 300, 90, 450, 450
	if *quick {
		lpBuildTasks, lpSolveTasks, htaTasks, simTasks = 90, 30, 100, 100
	}

	doc := baseline{
		GeneratedBy: "mecperf",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Notes: []string{
			"lp build/solve compare dense vs sparse constraint rows on identical instances",
			"lphta compares Parallelism=1 vs one worker per core on the same scenario; outputs are byte-identical",
			"sweep compares mecbench-style experiment wall-clock, sequential vs parallel pipeline",
			"parallel speedups require multiple cores; on a single-core machine they measure pool overhead only",
		},
	}

	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		doc.Benchmarks = append(doc.Benchmarks, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-40s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, doc.Benchmarks[len(doc.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// LP constraint build: the sparse-row memory win.
	for _, sparse := range []bool{false, true} {
		form := map[bool]string{false: "dense", true: "sparse"}[sparse]
		record(fmt.Sprintf("lp_build/tasks=%d/%s", lpBuildTasks, form), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := perfbench.ClusterLP(lpBuildTasks, sparse)
				if len(p.Constraints) == 0 {
					b.Fatal("empty problem")
				}
			}
		})
	}

	// LP solve: build + tableau lowering + simplex.
	for _, sparse := range []bool{false, true} {
		form := map[bool]string{false: "dense", true: "sparse"}[sparse]
		record(fmt.Sprintf("lp_solve/tasks=%d/%s", lpSolveTasks, form), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := lp.Solve(perfbench.ClusterLP(lpSolveTasks, sparse))
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("status %v", s.Status)
				}
			}
		})
	}

	// LP-HTA: sequential vs one worker per core.
	sc, err := perfbench.HolisticScenario(htaTasks)
	if err != nil {
		return err
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		record(fmt.Sprintf("lphta/tasks=%d/workers=%d", htaTasks, workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LPHTA(sc.Model, sc.Tasks, &core.LPHTAOptions{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// DES engine: one full replay of the LP-HTA assignment.
	simSc, err := perfbench.HolisticScenario(simTasks)
	if err != nil {
		return err
	}
	assign, err := perfbench.Assign(simSc.Model, simSc.Tasks)
	if err != nil {
		return err
	}
	record(fmt.Sprintf("sim_engine/tasks=%d", simTasks), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(simSc.Model, simSc.Tasks, assign, sim.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Experiment sweep wall-clock: sequential vs parallel pipeline.
	trials := 3
	if *quick {
		trials = 1
	}
	sweep := func(parallelism int) (float64, error) {
		start := time.Now()
		fig, err := experiment.Fig2a(experiment.Options{Seed: 1, Trials: trials, Quick: *quick, Parallelism: parallelism})
		if err != nil {
			return 0, err
		}
		if len(fig.Rows) == 0 {
			return 0, fmt.Errorf("empty figure")
		}
		return time.Since(start).Seconds(), nil
	}
	seqSec, err := sweep(1)
	if err != nil {
		return err
	}
	parSec, err := sweep(0)
	if err != nil {
		return err
	}
	doc.Sweep = sweepResult{
		Experiment:        "fig2a",
		Trials:            trials,
		Quick:             *quick,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
		ParallelWorkers:   runtime.GOMAXPROCS(0),
		Speedup:           seqSec / parSec,
	}
	fmt.Printf("%-40s %12.3f s sequential, %.3f s parallel (%.2fx, %d workers)\n",
		"sweep/fig2a", seqSec, parSec, doc.Sweep.Speedup, doc.Sweep.ParallelWorkers)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
