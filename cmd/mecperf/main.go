// Command mecperf records the repository's performance baseline. It runs
// the same instances as the testing.B benchmarks (via internal/perfbench)
// under testing.Benchmark and writes the results, plus the machine
// context needed to interpret them, to a JSON file — by convention
// BENCH_lphta.json at the repository root (see docs/PERFORMANCE.md).
//
// Usage:
//
//	mecperf                      # write BENCH_lphta.json in the cwd
//	mecperf -out perf/today.json
//	mecperf -quick               # smaller instances, for smoke tests
//	mecperf -out fresh.json -against BENCH_lphta.json -tolerance 0.25
//
// With -against, the freshly recorded results are compared to a committed
// baseline: allocs/op and B/op must not regress beyond the tolerance
// (they are deterministic and machine-independent, so CI gates on them),
// while ns/op differences are printed as advisory only — wall-clock on
// shared runners is too noisy to gate a build on. The command exits
// non-zero on any gated regression.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dsmec/internal/core"
	"dsmec/internal/experiment"
	"dsmec/internal/lp"
	"dsmec/internal/obs"
	"dsmec/internal/perfbench"
	"dsmec/internal/scenarioio"
	"dsmec/internal/sim"
)

// benchResult is one recorded measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepResult compares the sequential and parallel experiment pipeline on
// wall-clock time; the outputs themselves are byte-identical.
type sweepResult struct {
	Experiment        string  `json:"experiment"`
	Trials            int     `json:"trials"`
	Quick             bool    `json:"quick"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	ParallelWorkers   int     `json:"parallel_workers"`
	Speedup           float64 `json:"speedup"`
}

// baseline is the document written to BENCH_lphta.json.
type baseline struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Sweep       sweepResult   `json:"sweep"`
	Notes       []string      `json:"notes"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mecperf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_lphta.json", "output JSON path")
		quick     = flag.Bool("quick", false, "smaller instances (smoke test)")
		against   = flag.String("against", "", "baseline JSON to compare against; gated metrics exit non-zero on regression")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional regression for gated metrics with -against")
		obsAddr   = flag.String("obs-addr", "", "serve live /metrics and /debug/pprof over HTTP on this address while benchmarks run (enables the global registry, which perturbs alloc counts — do not gate such a run)")
		logLevel  = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat = flag.String("log-format", "text", "structured log encoding: text or json")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		obs.SetGlobal(reg)
		defer obs.SetGlobal(nil)
		srv, err := obs.NewServer(*obsAddr, reg, obs.NewManifest("mecperf", os.Args[1:]))
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("obs server listening", "url", srv.URL())
	}

	lpBuildTasks, lpSolveTasks, htaTasks, simTasks := 300, 90, 450, 450
	methodTasks := []int{150, 300, 600}
	resolveTasks := []int{150, 300}
	if *quick {
		lpBuildTasks, lpSolveTasks, htaTasks, simTasks = 90, 30, 100, 100
		methodTasks = []int{30, 90}
		resolveTasks = []int{30, 90}
	}

	doc := baseline{
		GeneratedBy: "mecperf",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Notes: []string{
			"lp build/solve compare dense vs sparse constraint rows on identical instances",
			"lp_solve method=dense/revised compare the tableau oracle against the LU-factorized revised simplex",
			"lp_resolve start=cold rebuilds and cold-solves the mutated cluster; start=warm dual-simplex re-solves the same mutation from the previous optimal basis (see docs/ALGORITHMS.md)",
			"lphta compares Parallelism=1 vs one worker per core on the same scenario; outputs are byte-identical",
			"sim_engine shards=N rows replay the same assignment with an explicit event-heap shard count; outputs are byte-identical",
			"scenario_decode streams the canonical scenario document through the token-walking decoder",
			"the stations=N lphta row uses a production-shaped topology (many stations, moderate clusters)",
			"sweep compares mecbench-style experiment wall-clock, sequential vs parallel pipeline",
			"parallel speedups require multiple cores; on a single-core machine they measure pool overhead only",
		},
	}

	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		doc.Benchmarks = append(doc.Benchmarks, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-40s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, doc.Benchmarks[len(doc.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// LP constraint build: the sparse-row memory win.
	for _, sparse := range []bool{false, true} {
		form := map[bool]string{false: "dense", true: "sparse"}[sparse]
		record(fmt.Sprintf("lp_build/tasks=%d/%s", lpBuildTasks, form), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := perfbench.ClusterLP(lpBuildTasks, sparse)
				if len(p.Constraints) == 0 {
					b.Fatal("empty problem")
				}
			}
		})
	}

	// LP solve: build + tableau lowering + simplex.
	for _, sparse := range []bool{false, true} {
		form := map[bool]string{false: "dense", true: "sparse"}[sparse]
		record(fmt.Sprintf("lp_solve/tasks=%d/%s", lpSolveTasks, form), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := lp.Solve(perfbench.ClusterLP(lpSolveTasks, sparse))
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("status %v", s.Status)
				}
			}
		})
	}

	// LP solve by simplex implementation: the dense tableau oracle vs the
	// LU-factorized revised simplex, on identical sparse-row instances.
	for _, tasks := range methodTasks {
		for _, method := range []lp.Method{lp.MethodDense, lp.MethodRevised} {
			record(fmt.Sprintf("lp_solve/tasks=%d/method=%s", tasks, method), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := perfbench.ClusterLP(tasks, true)
					p.Method = method
					s, err := lp.Solve(p)
					if err != nil {
						b.Fatal(err)
					}
					if s.Status != lp.Optimal {
						b.Fatalf("status %v", s.Status)
					}
				}
			})
		}
	}

	// Incremental re-solve: the online service's steady state. start=cold
	// rebuilds the mutated cluster and solves it from scratch; start=warm
	// pushes the same single-bound mutation into a live lp.Incremental and
	// dual-simplex re-solves from the previous optimal basis.
	for _, tasks := range resolveTasks {
		record(fmt.Sprintf("lp_resolve/tasks=%d/start=cold", tasks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := perfbench.ClusterLP(tasks, true)
				p.Method = lp.MethodRevised
				p.Upper[0] *= 0.5
				s, err := lp.Solve(p)
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("status %v", s.Status)
				}
			}
		})
		record(fmt.Sprintf("lp_resolve/tasks=%d/start=warm", tasks), func(b *testing.B) {
			b.ReportAllocs()
			inc, err := lp.NewIncremental(perfbench.ClusterLP(tasks, true))
			if err != nil {
				b.Fatal(err)
			}
			u := inc.Problem().Upper[0]
			if s, err := inc.Resolve(obs.Instruments{}); err != nil || s.Status != lp.Optimal {
				b.Fatalf("seed solve: %v %v", s, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					inc.SetUpper(0, u*0.5)
				} else {
					inc.SetUpper(0, u)
				}
				s, err := inc.Resolve(obs.Instruments{})
				if err != nil {
					b.Fatal(err)
				}
				if s.Status != lp.Optimal {
					b.Fatalf("status %v", s.Status)
				}
			}
		})
		// One instrumented mutation pair, for the pivot story in the notes.
		if pivots, err := resolvePivots(tasks); err == nil {
			doc.Notes = append(doc.Notes, pivots)
			fmt.Println(pivots)
		} else {
			return err
		}
	}

	// LP-HTA: sequential vs one worker per core.
	sc, err := perfbench.HolisticScenario(htaTasks)
	if err != nil {
		return err
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		record(fmt.Sprintf("lphta/tasks=%d/workers=%d", htaTasks, workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LPHTA(sc.Model, sc.Tasks, &core.LPHTAOptions{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// DES engine: one full replay of the LP-HTA assignment.
	simSc, err := perfbench.HolisticScenario(simTasks)
	if err != nil {
		return err
	}
	assign, err := perfbench.Assign(simSc.Model, simSc.Tasks)
	if err != nil {
		return err
	}
	record(fmt.Sprintf("sim_engine/tasks=%d", simTasks), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(simSc.Model, simSc.Tasks, assign, sim.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// DES engine at explicit shard counts: per-station event heaps are a
	// locality/allocation layout, so B/op must hold at every count.
	for _, shards := range []int{1, 4, 8} {
		record(fmt.Sprintf("sim_engine/tasks=%d/shards=%d", simTasks, shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(simSc.Model, simSc.Tasks, assign, sim.Config{Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Scenario ingest: the streaming decoder over the canonical document.
	docBytes, err := perfbench.ScenarioDocument(simTasks)
	if err != nil {
		return err
	}
	record(fmt.Sprintf("scenario_decode/tasks=%d", simTasks), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scenarioio.Decode(bytes.NewReader(docBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Large-scale LP-HTA: production-shaped topology — many stations, each
	// carrying a moderate cluster — rather than one giant cluster.
	largeDev, largeSt, largeTasks := 500, 50, 3000
	if *quick {
		largeDev, largeSt, largeTasks = 100, 10, 300
	}
	largeSc, err := perfbench.ScaledScenario(largeDev, largeSt, largeTasks)
	if err != nil {
		return err
	}
	record(fmt.Sprintf("lphta/tasks=%d/stations=%d", largeTasks, largeSt), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.LPHTA(largeSc.Model, largeSc.Tasks, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Experiment sweep wall-clock: sequential vs parallel pipeline.
	trials := 3
	if *quick {
		trials = 1
	}
	sweep := func(parallelism int) (float64, error) {
		start := time.Now()
		fig, err := experiment.Fig2a(experiment.Options{Seed: 1, Trials: trials, Quick: *quick, Parallelism: parallelism})
		if err != nil {
			return 0, err
		}
		if len(fig.Rows) == 0 {
			return 0, fmt.Errorf("empty figure")
		}
		return time.Since(start).Seconds(), nil
	}
	seqSec, err := sweep(1)
	if err != nil {
		return err
	}
	parSec, err := sweep(0)
	if err != nil {
		return err
	}
	doc.Sweep = sweepResult{
		Experiment:        "fig2a",
		Trials:            trials,
		Quick:             *quick,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
		ParallelWorkers:   runtime.GOMAXPROCS(0),
		Speedup:           seqSec / parSec,
	}
	fmt.Printf("%-40s %12.3f s sequential, %.3f s parallel (%.2fx, %d workers)\n",
		"sweep/fig2a", seqSec, parSec, doc.Sweep.Speedup, doc.Sweep.ParallelWorkers)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		return compareBaseline(&doc, *against, *tolerance)
	}
	return nil
}

// resolvePivots runs one instrumented single-arrival re-solve against a
// warm cluster and reports its pivot count next to a cold solve of the
// identical mutated problem, for the baseline notes (the <10% budget
// itself is pinned by TestIncrementalWarmPivotBudget in internal/lp).
func resolvePivots(tasks int) (string, error) {
	const clusterDevices = 10 // perfbench's devicesPerCluster
	inc, err := lp.NewIncremental(perfbench.ClusterLP(tasks, true))
	if err != nil {
		return "", err
	}
	if s, err := inc.Resolve(obs.Instruments{}); err != nil || s.Status != lp.Optimal {
		return "", fmt.Errorf("seed solve: %v %v", s, err)
	}
	// One arrival: an EQ assignment row plus ClusterLP-shaped columns.
	c4 := inc.AddRow(lp.EQ, 1)
	inc.AddVariable(1.2, 0.8, []int{c4, tasks + tasks%clusterDevices}, []float64{1, 2})
	inc.AddVariable(1.9, 0.8, []int{c4, tasks + clusterDevices}, []float64{1, 2})
	inc.AddVariable(3.5, 0.8, []int{c4}, []float64{1})
	warm, err := inc.Resolve(obs.Instruments{})
	if err != nil {
		return "", err
	}
	cold, err := lp.Solve(inc.Problem()) // Problem() pins MethodRevised

	if err != nil {
		return "", err
	}
	if warm.Status != lp.Optimal || cold.Status != lp.Optimal {
		return "", fmt.Errorf("arrival re-solve: warm=%v cold=%v", warm.Status, cold.Status)
	}
	return fmt.Sprintf(
		"lp_resolve tasks=%d single-arrival pivots: warm=%d (dual=%d, bound flips=%d) vs cold=%d",
		tasks, warm.Stats.Pivots, warm.Stats.DualPivots, warm.Stats.BoundFlips,
		cold.Stats.Pivots), nil
}

// compareBaseline checks the fresh results against a committed baseline.
// Only benchmarks present in both documents are compared. allocs/op and
// B/op are gated — they are deterministic, so a regression beyond the
// tolerance is an error. ns/op is advisory: printed, never gating.
func compareBaseline(doc *baseline, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	prev := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}

	fmt.Printf("\ncomparing against %s (tolerance %.0f%%)\n", path, 100*tolerance)
	violations, compared, added := 0, 0, 0
	for _, cur := range doc.Benchmarks {
		old, ok := prev[cur.Name]
		if !ok {
			// A benchmark the baseline has never seen cannot regress, but
			// it must not vanish from the report either: print its numbers
			// so the row is ready to gate once the baseline is re-recorded.
			added++
			fmt.Printf("  new   %-42s %12.0f ns/op %10d B/op %8d allocs/op (not in baseline, advisory)\n",
				cur.Name, cur.NsPerOp, cur.BytesPerOp, cur.AllocsPerOp)
			continue
		}
		compared++
		gate := func(metric string, curV, oldV int64) {
			if oldV <= 0 {
				return
			}
			ratio := float64(curV) / float64(oldV)
			if ratio > 1+tolerance {
				fmt.Printf("  FAIL  %-42s %s %d -> %d (%+.1f%%)\n",
					cur.Name, metric, oldV, curV, 100*(ratio-1))
				violations++
				return
			}
			fmt.Printf("  ok    %-42s %s %d -> %d (%+.1f%%)\n",
				cur.Name, metric, oldV, curV, 100*(ratio-1))
		}
		gate("allocs/op", cur.AllocsPerOp, old.AllocsPerOp)
		gate("B/op", cur.BytesPerOp, old.BytesPerOp)
		if old.NsPerOp > 0 {
			fmt.Printf("  info  %-42s ns/op %.0f -> %.0f (%+.1f%%, advisory)\n",
				cur.Name, old.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/old.NsPerOp-1))
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no benchmark names with this run", path)
	}
	if violations > 0 {
		return fmt.Errorf("%d perf regression(s) beyond %.0f%% tolerance", violations, 100*tolerance)
	}
	fmt.Printf("all %d shared benchmarks within tolerance", compared)
	if added > 0 {
		fmt.Printf("; %d new benchmark(s) not in baseline (advisory — re-record to gate them)", added)
	}
	fmt.Println()
	return nil
}
