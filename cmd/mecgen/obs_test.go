package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateWithMetrics(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "gen.json")
	tpath := filepath.Join(dir, "gen.trace.json")
	opath := filepath.Join(dir, "sc.json")
	var out strings.Builder
	err := run([]string{"-tasks", "15", "-devices", "6", "-stations", "2",
		"-o", opath, "-metrics", mpath, "-trace", tpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// stdout must stay clean: the scenario went to -o, observability
	// chatter to stderr.
	if out.Len() != 0 {
		t.Errorf("stdout not clean: %q", out.String())
	}

	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool    string `json:"tool"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "mecgen" {
		t.Errorf("tool = %q", m.Tool)
	}
	if m.Metrics.Counters["gen.scenarios"] != 1 || m.Metrics.Counters["gen.tasks"] != 15 {
		t.Errorf("generator counters = %v", m.Metrics.Counters)
	}

	tdata, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"mecgen", "generate", "encode"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}

	// The generated scenario itself must be intact.
	if _, err := os.Stat(opath); err != nil {
		t.Errorf("scenario file: %v", err)
	}
}
