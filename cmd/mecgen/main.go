// Command mecgen generates a workload and writes it as a versioned JSON
// scenario document (internal/scenarioio format), so the scenarios the
// library evaluates can be archived, inspected, consumed by external
// tooling, and replayed exactly with `mecsim -load`.
//
// Usage:
//
//	mecgen -tasks 100 > scenario.json
//	mecgen -divisible -tasks 50 -seed 9 -o scenario.json
//	mecgen -tasks 100 -metrics gen.json -o scenario.json
//	mecgen -recipe flash-crowd -tasks 400 > crowd.json
//	mecgen -list-recipes
//	mecsim -load scenario.json
//
// -recipe names a workload shape from the internal/recipes catalog
// (flash crowds, diurnal waves, outage storms, ...); the size flags
// still pick the population scale. Recipes that carry a fault profile
// embed the generated fault plan automatically, seeded by -fault-seed.
//
// The scenario document goes to stdout (or -o); observability output —
// the -metrics run manifest summary and the -trace file note — goes to
// stderr so piping the scenario stays clean.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsmec"
	"dsmec/internal/obs"
	"dsmec/internal/recipes"
	"dsmec/internal/scenarioio"
	"dsmec/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("mecgen", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 1, "root random seed")
		devices     = fs.Int("devices", 50, "number of mobile devices")
		stations    = fs.Int("stations", 5, "number of base stations")
		tasks       = fs.Int("tasks", 100, "number of tasks")
		inputKB     = fs.Int("input", 3000, "maximum task input size (kB)")
		divisible   = fs.Bool("divisible", false, "generate divisible tasks with a data placement")
		faults      = fs.Bool("faults", false, "embed a generated fault plan (station outages, churn, link degradation) in the document")
		faultSeed   = fs.Int64("fault-seed", 1, "root seed for the embedded fault plan")
		recipeName  = fs.String("recipe", "", "generate a named workload shape (see -list-recipes)")
		listRecipes = fs.Bool("list-recipes", false, "list the recipe catalog and exit")
		out         = fs.String("o", "", "output file (default stdout)")
		metricsPath = fs.String("metrics", "", "write a run manifest to this JSON file (summary on stderr)")
		tracePath   = fs.String("trace", "", "write a Chrome trace_event JSON to this file")
		logLevel    = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listRecipes {
		return writeRecipeList(stdout)
	}
	var recipe recipes.Recipe
	if *recipeName != "" {
		var ok bool
		recipe, ok = recipes.ByName(*recipeName)
		if !ok {
			return fmt.Errorf("unknown recipe %q; run mecgen -list-recipes", *recipeName)
		}
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)

	var (
		reg      *obs.Registry
		trace    *obs.Trace
		root     *obs.Span
		manifest *obs.Manifest
	)
	if *metricsPath != "" || *tracePath != "" {
		reg = obs.NewRegistry()
		manifest = obs.NewManifest("mecgen", args)
		manifest.SetSeed(*seed)
		if *tracePath != "" {
			trace = obs.NewTrace("mecgen")
			root = trace.StartSpan("mecgen")
		}
	}

	// A recipe supplies the load shape; the size flags always pick the
	// population scale (recipes leave sizes zero by construction).
	params := recipe.Params
	params.NumDevices = *devices
	params.NumStations = *stations
	params.NumTasks = *tasks
	params.MaxInput = dsmec.ByteSize(*inputKB) * dsmec.Kilobyte
	if manifest != nil {
		manifest.SetScenarioHash(obs.HashJSON(struct {
			Seed      int64
			Params    dsmec.WorkloadParams
			Divisible bool
		}{*seed, params, *divisible}))
	}
	src := dsmec.NewSeed(*seed)

	gspan := root.Child("generate")
	var sc *dsmec.Scenario
	if *divisible {
		sc, err = dsmec.GenerateDivisible(src, params)
	} else {
		sc, err = dsmec.GenerateHolistic(src, params)
	}
	gspan.End()
	if err != nil {
		return err
	}
	reg.Counter("gen.scenarios").Inc()
	reg.Counter("gen.tasks").Add(int64(sc.Tasks.Len()))
	reg.Counter("gen.devices").Add(int64(sc.System.NumDevices()))

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	var fp *dsmec.FaultPlan
	if *faults || recipe.Faults != nil {
		if *divisible {
			return fmt.Errorf("fault plans apply to the holistic simulator replay; drop -divisible")
		}
		fparams := dsmec.DefaultFaultParams()
		if recipe.Faults != nil {
			fparams = *recipe.Faults
		}
		fp = dsmec.GenerateFaultPlan(dsmec.NewSeed(*faultSeed), sc.System, fparams)
	}
	espan := root.Child("encode")
	err = scenarioio.EncodeWithFaults(w, sc, fp)
	espan.End()
	if err != nil {
		return err
	}

	if manifest != nil {
		root.End()
		manifest.Finish(reg)
		if *metricsPath != "" {
			if err := manifest.WriteFile(*metricsPath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "run manifest: %s\n", *metricsPath)
			if _, err := obs.SummaryTable(manifest.Metrics).WriteTo(os.Stderr); err != nil {
				return err
			}
		}
		if *tracePath != "" {
			if err := trace.WriteFile(*tracePath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace: %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
		}
	}
	return nil
}

// writeRecipeList prints the recipe catalog as a table.
func writeRecipeList(w io.Writer) error {
	tbl := texttable.New("RECIPE", "FAULTS", "DESCRIPTION")
	for _, r := range recipes.All() {
		faults := "-"
		if r.Faults != nil {
			faults = "yes"
		}
		tbl.AddRow(r.Name, faults, r.Description)
	}
	_, err := tbl.WriteTo(w)
	return err
}
