// Command mecgen generates a workload and writes it as a versioned JSON
// scenario document (internal/scenarioio format), so the scenarios the
// library evaluates can be archived, inspected, consumed by external
// tooling, and replayed exactly with `mecsim -load`.
//
// Usage:
//
//	mecgen -tasks 100 > scenario.json
//	mecgen -divisible -tasks 50 -seed 9 -o scenario.json
//	mecsim -load scenario.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsmec"
	"dsmec/internal/scenarioio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("mecgen", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "root random seed")
		devices   = fs.Int("devices", 50, "number of mobile devices")
		stations  = fs.Int("stations", 5, "number of base stations")
		tasks     = fs.Int("tasks", 100, "number of tasks")
		inputKB   = fs.Int("input", 3000, "maximum task input size (kB)")
		divisible = fs.Bool("divisible", false, "generate divisible tasks with a data placement")
		out       = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := dsmec.WorkloadParams{
		NumDevices:  *devices,
		NumStations: *stations,
		NumTasks:    *tasks,
		MaxInput:    dsmec.ByteSize(*inputKB) * dsmec.Kilobyte,
	}
	src := dsmec.NewSeed(*seed)

	var sc *dsmec.Scenario
	if *divisible {
		sc, err = dsmec.GenerateDivisible(src, params)
	} else {
		sc, err = dsmec.GenerateHolistic(src, params)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return scenarioio.Encode(w, sc)
}
