package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/scenarioio"
)

func TestGenerateHolisticToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tasks", "20", "-devices", "8", "-stations", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	sc, err := scenarioio.Decode(&out)
	if err != nil {
		t.Fatalf("output is not a valid scenario document: %v", err)
	}
	if sc.System.NumDevices() != 8 || sc.Tasks.Len() != 20 {
		t.Errorf("decoded %d devices / %d tasks, want 8 / 20",
			sc.System.NumDevices(), sc.Tasks.Len())
	}
	if sc.Placement != nil {
		t.Error("holistic scenario should have no placement")
	}
}

func TestGenerateDivisibleToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	var out bytes.Buffer
	if err := run([]string{"-divisible", "-tasks", "12", "-devices", "6", "-stations", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("with -o, nothing should go to stdout")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := scenarioio.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Placement == nil {
		t.Error("divisible scenario should carry a placement")
	}
}

func TestDeterministicOutput(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-tasks", "10", "-devices", "5", "-stations", "1", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("identical seeds must produce identical documents")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestBadOutputPath(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tasks", "5", "-devices", "3", "-stations", "1", "-o", "/no/such/dir/x.json"}, &out); err == nil {
		t.Error("unwritable output path should fail")
	}
	if !strings.Contains(out.String(), "") { // keep the writer referenced
		t.Log("")
	}
}
