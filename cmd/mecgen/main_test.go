package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/scenarioio"
)

func TestGenerateHolisticToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tasks", "20", "-devices", "8", "-stations", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	sc, err := scenarioio.Decode(&out)
	if err != nil {
		t.Fatalf("output is not a valid scenario document: %v", err)
	}
	if sc.System.NumDevices() != 8 || sc.Tasks.Len() != 20 {
		t.Errorf("decoded %d devices / %d tasks, want 8 / 20",
			sc.System.NumDevices(), sc.Tasks.Len())
	}
	if sc.Placement != nil {
		t.Error("holistic scenario should have no placement")
	}
}

func TestGenerateDivisibleToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	var out bytes.Buffer
	if err := run([]string{"-divisible", "-tasks", "12", "-devices", "6", "-stations", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("with -o, nothing should go to stdout")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := scenarioio.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Placement == nil {
		t.Error("divisible scenario should carry a placement")
	}
}

func TestDeterministicOutput(t *testing.T) {
	gen := func() string {
		var out bytes.Buffer
		if err := run([]string{"-tasks", "10", "-devices", "5", "-stations", "1", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("identical seeds must produce identical documents")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestBadOutputPath(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tasks", "5", "-devices", "3", "-stations", "1", "-o", "/no/such/dir/x.json"}, &out); err == nil {
		t.Error("unwritable output path should fail")
	}
	if !strings.Contains(out.String(), "") { // keep the writer referenced
		t.Log("")
	}
}

func TestListRecipes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-recipes"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steady-state", "flash-crowd", "mass-station-outage", "DESCRIPTION"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("recipe list missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownRecipe(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-recipe", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-list-recipes") {
		t.Errorf("unknown recipe error = %v; want a pointer to -list-recipes", err)
	}
}

// TestRecipeShapesScenario proves -recipe reshapes the task spread while
// the size flags still pick the scale.
func TestRecipeShapesScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-recipe", "flash-crowd", "-tasks", "100", "-devices", "20", "-stations", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	sc, err := scenarioio.Decode(&out)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tasks.Len() != 100 || sc.System.NumDevices() != 20 {
		t.Fatalf("got %d tasks / %d devices, want 100 / 20", sc.Tasks.Len(), sc.System.NumDevices())
	}
	hot := 0
	for i := 0; i < sc.Tasks.Len(); i++ {
		if sc.Tasks.At(i).ID.User < 2 { // hottest 10% of 20 devices
			hot++
		}
	}
	if hot != 70 {
		t.Errorf("hot devices raise %d/100 tasks, want 70", hot)
	}
}

// TestRecipeEmbedsFaultPlan proves fault-bearing recipes embed their
// plan without an explicit -faults flag.
func TestRecipeEmbedsFaultPlan(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-recipe", "mass-station-outage", "-tasks", "20", "-devices", "10", "-stations", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	_, fp, err := scenarioio.DecodeWithFaults(&out)
	if err != nil {
		t.Fatal(err)
	}
	if fp == nil || len(fp.StationOutages) != 2 {
		t.Fatalf("fault plan = %+v; want 2 synchronized station outages (half of 4)", fp)
	}
	if fp.StationOutages[0].At != fp.StationOutages[1].At {
		t.Error("mass outage stations must fail simultaneously")
	}
}

func TestRecipeFaultsRejectDivisible(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-recipe", "device-churn-storm", "-divisible", "-tasks", "10", "-devices", "5", "-stations", "1"}, &out); err == nil {
		t.Error("fault-bearing recipe with -divisible should fail")
	}
}
