// Command mecsim runs one data-shared MEC scenario end to end: it
// generates a system and a task population, assigns the tasks with every
// algorithm, evaluates the analytic Section II cost model, and replays the
// LP-HTA assignment in the discrete-event simulator.
//
// Usage:
//
//	mecsim -tasks 200 -devices 50 -stations 5 -input 3000
//	mecsim -divisible -tasks 200          # DTA pipeline on divisible tasks
//	mecsim -seed 7 -tasks 450 -sim=false  # skip the simulator replay
//	mecsim -load scenario.json            # replay a mecgen-saved scenario
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsmec"
	"dsmec/internal/scenarioio"
	"dsmec/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mecsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecsim", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "root random seed")
		devices   = fs.Int("devices", 50, "number of mobile devices")
		stations  = fs.Int("stations", 5, "number of base stations")
		tasks     = fs.Int("tasks", 100, "number of tasks")
		inputKB   = fs.Int("input", 3000, "maximum task input size (kB)")
		divisible = fs.Bool("divisible", false, "generate divisible tasks and run the DTA pipeline")
		simulate  = fs.Bool("sim", true, "replay the LP-HTA assignment in the discrete-event simulator")
		load      = fs.String("load", "", "load a scenario JSON document instead of generating one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		sc, err := scenarioio.Decode(f)
		if err != nil {
			return err
		}
		if sc.Placement != nil {
			return runDivisibleScenario(sc, stdout)
		}
		return runHolisticScenario(sc, *simulate, stdout)
	}

	params := dsmec.WorkloadParams{
		NumDevices:  *devices,
		NumStations: *stations,
		NumTasks:    *tasks,
		MaxInput:    dsmec.ByteSize(*inputKB) * dsmec.Kilobyte,
	}
	src := dsmec.NewSeed(*seed)

	if *divisible {
		return runDivisible(src, params, stdout)
	}
	return runHolistic(src, params, *simulate, stdout)
}

func runHolistic(src *dsmec.Seed, params dsmec.WorkloadParams, simulate bool, stdout io.Writer) error {
	sc, err := dsmec.GenerateHolistic(src, params)
	if err != nil {
		return err
	}
	return runHolisticScenario(sc, simulate, stdout)
}

func runHolisticScenario(sc *dsmec.Scenario, simulate bool, stdout io.Writer) error {
	fmt.Fprintf(stdout, "scenario: %d devices, %d stations, %d holistic tasks\n\n",
		sc.System.NumDevices(), sc.System.NumStations(), sc.Tasks.Len())

	tb := texttable.New("method", "energy (J)", "mean latency (s)", "unsatisfied", "device/station/cloud/cancel")

	lph, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, lph.Assignment); err != nil {
		return fmt.Errorf("LP-HTA produced an infeasible assignment: %w", err)
	}
	if err := addRow(tb, "LP-HTA", sc, lph.Assignment); err != nil {
		return err
	}

	hgos, err := dsmec.HGOS(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	if err := addRow(tb, "HGOS", sc, hgos); err != nil {
		return err
	}
	offload, err := dsmec.AllOffload(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	if err := addRow(tb, "AllOffload", sc, offload); err != nil {
		return err
	}
	if err := addRow(tb, "AllToC", sc, dsmec.AllToC(sc.Tasks)); err != nil {
		return err
	}
	if _, err := tb.WriteTo(stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nLP-HTA internals: LP optimum %.1f J over %d simplex iterations; "+
		"%d fractional tasks; Δ = %v; ratio bound ≤ %.3f\n",
		float64(lph.LPObjective), lph.LPIterations, lph.FractionalTasks,
		lph.Delta, lph.RatioBoundEstimate())

	if !simulate {
		return nil
	}
	simRes, err := dsmec.Simulate(sc.Model, sc.Tasks, lph.Assignment, dsmec.SimConfig{})
	if err != nil {
		return err
	}
	analytic, err := dsmec.Evaluate(sc.Model, sc.Tasks, lph.Assignment)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ndiscrete-event replay of LP-HTA: mean latency %v (analytic %v), "+
		"makespan %v, %d deadline misses under queueing\n",
		simRes.MeanLatency(), analytic.MeanLatency(), simRes.Makespan, simRes.DeadlineViolations)
	return nil
}

func runDivisible(src *dsmec.Seed, params dsmec.WorkloadParams, stdout io.Writer) error {
	sc, err := dsmec.GenerateDivisible(src, params)
	if err != nil {
		return err
	}
	return runDivisibleScenario(sc, stdout)
}

func runDivisibleScenario(sc *dsmec.Scenario, stdout io.Writer) error {
	fmt.Fprintf(stdout, "scenario: %d devices, %d stations, %d divisible tasks over %d blocks of %v\n\n",
		sc.System.NumDevices(), sc.System.NumStations(), sc.Tasks.Len(),
		sc.Placement.NumBlocks(), sc.Placement.BlockSize())

	hol, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		return err
	}
	hm, err := dsmec.Evaluate(sc.Model, sc.Tasks, hol.Assignment)
	if err != nil {
		return err
	}

	tb := texttable.New("method", "energy (J)", "processing time (s)", "involved devices", "new tasks")
	tb.AddRowf("LP-HTA (holistic)", fmt.Sprintf("%.1f", hm.TotalEnergy.Joules()), "-", "-", "-")
	for _, goal := range []dsmec.Goal{dsmec.GoalWorkload, dsmec.GoalNumber} {
		res, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement, dsmec.DTAOptions{Goal: goal})
		if err != nil {
			return err
		}
		tb.AddRowf(goal.String(),
			fmt.Sprintf("%.1f", res.Metrics.TotalEnergy.Joules()),
			fmt.Sprintf("%.2f", res.Metrics.ProcessingTime.Seconds()),
			res.Metrics.InvolvedDevices,
			res.Metrics.NewTasks)
	}
	_, err = tb.WriteTo(stdout)
	return err
}

func addRow(tb *texttable.Table, name string, sc *dsmec.Scenario, a *dsmec.Assignment) error {
	m, err := dsmec.Evaluate(sc.Model, sc.Tasks, a)
	if err != nil {
		return err
	}
	tb.AddRowf(name,
		fmt.Sprintf("%.1f", m.TotalEnergy.Joules()),
		fmt.Sprintf("%.3f", m.MeanLatency().Seconds()),
		fmt.Sprintf("%.1f%%", 100*m.UnsatisfiedRate()),
		fmt.Sprintf("%d/%d/%d/%d",
			m.CountByLevel[dsmec.OnDevice], m.CountByLevel[dsmec.OnStation],
			m.CountByLevel[dsmec.OnCloud], m.CountByLevel[dsmec.Cancelled]))
	return nil
}
