// Command mecsim runs one data-shared MEC scenario end to end: it
// generates a system and a task population, assigns the tasks with every
// algorithm, evaluates the analytic Section II cost model, and replays the
// LP-HTA assignment in the discrete-event simulator.
//
// Usage:
//
//	mecsim -tasks 200 -devices 50 -stations 5 -input 3000
//	mecsim -divisible -tasks 200          # DTA pipeline on divisible tasks
//	mecsim -seed 7 -tasks 450 -sim=false  # skip the simulator replay
//	mecsim -load scenario.json            # replay a mecgen-saved scenario
//	mecsim -tasks 100 -metrics run.json -trace run.trace.json
//
// With -metrics, the run writes a JSON manifest (seed, scenario hash,
// toolchain, wall/CPU time, every counter/gauge/histogram) and prints a
// metric summary table. With -trace, it writes a Chrome trace_event JSON
// viewable in chrome://tracing or https://ui.perfetto.dev.
//
// Exit codes: 0 success, 1 runtime failure, 2 scenario parse failure
// (with a structured JSON error on stderr, so wrappers and budget checks
// can distinguish malformed input from real regressions).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dsmec"
	"dsmec/internal/obs"
	"dsmec/internal/scenarioio"
	"dsmec/internal/texttable"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	var pe *scenarioParseError
	if errors.As(err, &pe) {
		// Structured, machine-readable parse failure: budget-check
		// wrappers must be able to tell "bad input" from "regression".
		_ = json.NewEncoder(os.Stderr).Encode(map[string]string{
			"error":  "scenario_parse",
			"path":   pe.Path,
			"detail": pe.Err.Error(),
		})
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "mecsim:", err)
	os.Exit(1)
}

// scenarioParseError marks a malformed scenario document.
type scenarioParseError struct {
	Path string
	Err  error
}

func (e *scenarioParseError) Error() string {
	return fmt.Sprintf("parsing scenario %s: %v", e.Path, e.Err)
}

func (e *scenarioParseError) Unwrap() error { return e.Err }

// instrumentation bundles the optional observability outputs of one run.
type instrumentation struct {
	reg      *obs.Registry
	trace    *obs.Trace
	root     *obs.Span
	manifest *obs.Manifest
	server   *obs.Server
	snap     *obs.Snapshotter

	metricsPath, tracePath string
}

// testHookObsServer, when set by a test, is called synchronously with the
// exposition server's base URL after it starts listening, so tests can
// probe the live endpoints mid-run.
var testHookObsServer func(url string)

// enabled reports whether any observability flag was set.
func (in *instrumentation) enabled() bool { return in != nil && in.reg != nil }

// ins returns the Instruments value threaded through the pipeline.
func (in *instrumentation) ins() obs.Instruments {
	if !in.enabled() {
		return obs.Instruments{}
	}
	return obs.Instruments{Metrics: in.reg, Span: in.root}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecsim", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 1, "root random seed")
		devices     = fs.Int("devices", 50, "number of mobile devices")
		stations    = fs.Int("stations", 5, "number of base stations")
		tasks       = fs.Int("tasks", 100, "number of tasks")
		inputKB     = fs.Int("input", 3000, "maximum task input size (kB)")
		divisible   = fs.Bool("divisible", false, "generate divisible tasks and run the DTA pipeline")
		simulate    = fs.Bool("sim", true, "replay the LP-HTA assignment in the discrete-event simulator")
		load        = fs.String("load", "", "load a scenario JSON document instead of generating one")
		parallel    = fs.Int("parallel", 0, "LP-HTA cluster worker count (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		shards      = fs.Int("shards", 0, "simulator event-heap shard count (0 = auto); output is byte-identical for any value")
		lpMethod    = fs.String("lp-method", "auto", "simplex implementation for the LP relaxations: auto, revised, or dense")
		metricsPath = fs.String("metrics", "", "write a run manifest (metrics + environment) to this JSON file")
		tracePath   = fs.String("trace", "", "write a Chrome trace_event JSON to this file")
		faults      = fs.Bool("faults", false, "inject seeded faults (station outages, device churn, link degradation) into the simulator replay")
		faultSeed   = fs.Int64("fault-seed", 1, "root seed for the generated fault plan (ignored when -load embeds one)")
		obsAddr     = fs.String("obs-addr", "", "serve live /metrics, /metrics.json, /manifest, and /debug/pprof over HTTP on this address for the duration of the run")
		snapPath    = fs.String("obs-snapshots", "", "append timestamped registry snapshots (JSON Lines) to this file while the run progresses")
		snapEvery   = fs.Duration("obs-snapshot-interval", time.Second, "interval between -obs-snapshots records")
		logLevel    = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	method, err := dsmec.ParseLPMethod(*lpMethod)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)

	var instr *instrumentation
	if *metricsPath != "" || *tracePath != "" || *obsAddr != "" || *snapPath != "" {
		instr = &instrumentation{
			reg:         obs.NewRegistry(),
			manifest:    obs.NewManifest("mecsim", args),
			metricsPath: *metricsPath,
			tracePath:   *tracePath,
		}
		instr.manifest.SetSeed(*seed)
		if *tracePath != "" {
			instr.trace = obs.NewTrace("mecsim")
			instr.root = instr.trace.StartSpan("mecsim")
		}
		if *obsAddr != "" {
			srv, err := obs.NewServer(*obsAddr, instr.reg, instr.manifest)
			if err != nil {
				return err
			}
			instr.server = srv
			logger.Info("obs server listening", "url", srv.URL())
			if testHookObsServer != nil {
				testHookObsServer(srv.URL())
			}
		}
		if *snapPath != "" {
			snap, err := obs.StartSnapshotter(*snapPath, *snapEvery, instr.reg)
			if err != nil {
				return err
			}
			instr.snap = snap
		}
	}

	runErr := runScenario(instr, *load, *seed, *devices, *stations, *tasks, *inputKB,
		*parallel, *shards, method, *divisible, *simulate, *faults, *faultSeed, stdout)
	if instr.enabled() {
		if err := finishInstrumentation(instr, stdout); err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}

// runScenario executes the selected pipeline under the (possibly nil)
// instrumentation bundle.
func runScenario(instr *instrumentation, load string, seed int64,
	devices, stations, tasks, inputKB, parallel, shards int, method dsmec.LPMethod,
	divisible, simulate, faults bool, faultSeed int64, stdout io.Writer) error {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		// Stream the document through the decoder instead of slurping it:
		// a million-device scenario never exists in memory as one []byte.
		// The fingerprint accumulates through a tee on the same pass.
		var r io.Reader = bufio.NewReaderSize(f, 1<<20)
		var h *obs.StreamHash
		if instr.enabled() {
			h = obs.NewStreamHash()
			r = io.TeeReader(r, h)
			instr.manifest.Annotate("scenario_file", load)
		}
		sc, fp, err := scenarioio.DecodeWithFaults(r)
		if err != nil {
			return &scenarioParseError{Path: load, Err: err}
		}
		if h != nil {
			// Drain past the closing brace (trailing newline) so the
			// digest matches HashBytes over the whole file.
			_, _ = io.Copy(io.Discard, r)
			instr.manifest.SetScenarioHash(h.Sum())
		}
		if sc.Placement != nil {
			if faults {
				return fmt.Errorf("fault injection applies to the simulator replay; the divisible pipeline has none")
			}
			return runDivisibleScenario(sc, method, instr, stdout)
		}
		if !faults {
			fp = nil
		} else if fp.Empty() {
			// No plan embedded in the document: draw one for its topology.
			fp = dsmec.GenerateFaultPlan(dsmec.NewSeed(faultSeed), sc.System, dsmec.DefaultFaultParams())
		}
		return runHolisticScenario(sc, parallel, shards, method, simulate, fp, instr, stdout)
	}

	params := dsmec.WorkloadParams{
		NumDevices:  devices,
		NumStations: stations,
		NumTasks:    tasks,
		MaxInput:    dsmec.ByteSize(inputKB) * dsmec.Kilobyte,
	}
	if instr.enabled() {
		instr.manifest.SetScenarioHash(obs.HashJSON(struct {
			Seed      int64
			Params    dsmec.WorkloadParams
			Divisible bool
		}{seed, params, divisible}))
	}
	src := dsmec.NewSeed(seed)

	gspan := instr.ins().Span.Child("generate")
	var (
		sc  *dsmec.Scenario
		err error
	)
	if divisible {
		sc, err = dsmec.GenerateDivisible(src, params)
	} else {
		sc, err = dsmec.GenerateHolistic(src, params)
	}
	gspan.End()
	if err != nil {
		return err
	}
	if divisible {
		if faults {
			return fmt.Errorf("fault injection applies to the simulator replay; the divisible pipeline has none")
		}
		return runDivisibleScenario(sc, method, instr, stdout)
	}
	var fp *dsmec.FaultPlan
	if faults {
		fp = dsmec.GenerateFaultPlan(dsmec.NewSeed(faultSeed), sc.System, dsmec.DefaultFaultParams())
	}
	return runHolisticScenario(sc, parallel, shards, method, simulate, fp, instr, stdout)
}

func runHolisticScenario(sc *dsmec.Scenario, parallel, shards int, method dsmec.LPMethod,
	simulate bool, fp *dsmec.FaultPlan, instr *instrumentation, stdout io.Writer) error {
	ins := instr.ins()
	fmt.Fprintf(stdout, "scenario: %d devices, %d stations, %d holistic tasks\n\n",
		sc.System.NumDevices(), sc.System.NumStations(), sc.Tasks.Len())

	tb := texttable.New("method", "energy (J)", "mean latency (s)", "unsatisfied", "device/station/cloud/cancel")

	lph, err := dsmec.LPHTA(sc.Model, sc.Tasks, &dsmec.LPHTAOptions{Obs: ins, Parallelism: parallel, LPMethod: method})
	if err != nil {
		return err
	}
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, lph.Assignment); err != nil {
		return fmt.Errorf("LP-HTA produced an infeasible assignment: %w", err)
	}
	if err := addRow(tb, "LP-HTA", sc, lph.Assignment); err != nil {
		return err
	}

	bspan := ins.Span.Child("baselines")
	hgos, err := dsmec.HGOS(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	if err := addRow(tb, "HGOS", sc, hgos); err != nil {
		return err
	}
	offload, err := dsmec.AllOffload(sc.Model, sc.Tasks)
	if err != nil {
		return err
	}
	bspan.End()
	if err := addRow(tb, "AllOffload", sc, offload); err != nil {
		return err
	}
	if err := addRow(tb, "AllToC", sc, dsmec.AllToC(sc.Tasks)); err != nil {
		return err
	}
	if _, err := tb.WriteTo(stdout); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nLP-HTA internals: LP optimum %.1f J over %d simplex iterations; "+
		"%d fractional tasks; Δ = %v; ratio bound ≤ %.3f\n",
		float64(lph.LPObjective), lph.LPIterations, lph.FractionalTasks,
		lph.Delta, lph.RatioBoundEstimate())

	if !simulate {
		return nil
	}
	simRes, err := dsmec.Simulate(sc.Model, sc.Tasks, lph.Assignment,
		dsmec.SimConfig{Obs: ins, Faults: fp, Shards: shards})
	if err != nil {
		return err
	}
	analytic, err := dsmec.Evaluate(sc.Model, sc.Tasks, lph.Assignment)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ndiscrete-event replay of LP-HTA: mean latency %v (analytic %v), "+
		"makespan %v, %d deadline misses under queueing\n",
		simRes.MeanLatency(), analytic.MeanLatency(), simRes.Makespan, simRes.DeadlineViolations)
	if fs := simRes.Faults; fs != nil {
		fmt.Fprintf(stdout, "\nfault injection: %d station outages, %d device departures, %d link degradations\n",
			fs.StationOutages, fs.DeviceDepartures, fs.LinkDegradations)
		fmt.Fprintf(stdout, "recovery: %d attempts (%d failed), %d retries, %d reassignments, %d tasks lost; "+
			"wasted energy %v; misses %d fault-attributed / %d capacity\n",
			fs.Attempts, fs.FailedAttempts, fs.Retries, fs.Reassignments, fs.Lost,
			fs.WastedEnergy, fs.FaultMisses, fs.CapacityMisses)
	}
	return nil
}

func runDivisibleScenario(sc *dsmec.Scenario, method dsmec.LPMethod, instr *instrumentation, stdout io.Writer) error {
	ins := instr.ins()
	fmt.Fprintf(stdout, "scenario: %d devices, %d stations, %d divisible tasks over %d blocks of %v\n\n",
		sc.System.NumDevices(), sc.System.NumStations(), sc.Tasks.Len(),
		sc.Placement.NumBlocks(), sc.Placement.BlockSize())

	hol, err := dsmec.LPHTA(sc.Model, sc.Tasks, &dsmec.LPHTAOptions{Obs: ins, LPMethod: method})
	if err != nil {
		return err
	}
	hm, err := dsmec.Evaluate(sc.Model, sc.Tasks, hol.Assignment)
	if err != nil {
		return err
	}

	tb := texttable.New("method", "energy (J)", "processing time (s)", "involved devices", "new tasks")
	tb.AddRowf("LP-HTA (holistic)", fmt.Sprintf("%.1f", hm.TotalEnergy.Joules()), "-", "-", "-")
	for _, goal := range []dsmec.Goal{dsmec.GoalWorkload, dsmec.GoalNumber} {
		res, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement, dsmec.DTAOptions{Goal: goal, Obs: ins})
		if err != nil {
			return err
		}
		tb.AddRowf(goal.String(),
			fmt.Sprintf("%.1f", res.Metrics.TotalEnergy.Joules()),
			fmt.Sprintf("%.2f", res.Metrics.ProcessingTime.Seconds()),
			res.Metrics.InvolvedDevices,
			res.Metrics.NewTasks)
	}
	_, err = tb.WriteTo(stdout)
	return err
}

func addRow(tb *texttable.Table, name string, sc *dsmec.Scenario, a *dsmec.Assignment) error {
	m, err := dsmec.Evaluate(sc.Model, sc.Tasks, a)
	if err != nil {
		return err
	}
	tb.AddRowf(name,
		fmt.Sprintf("%.1f", m.TotalEnergy.Joules()),
		fmt.Sprintf("%.3f", m.MeanLatency().Seconds()),
		fmt.Sprintf("%.1f%%", 100*m.UnsatisfiedRate()),
		fmt.Sprintf("%d/%d/%d/%d",
			m.CountByLevel[dsmec.OnDevice], m.CountByLevel[dsmec.OnStation],
			m.CountByLevel[dsmec.OnCloud], m.CountByLevel[dsmec.Cancelled]))
	return nil
}

// finishInstrumentation stops the live endpoints, closes the trace,
// finalizes the manifest, writes the requested files, and prints the
// metric summary table.
func finishInstrumentation(instr *instrumentation, stdout io.Writer) error {
	if err := instr.snap.Close(); err != nil {
		return err
	}
	if err := instr.server.Close(); err != nil {
		return err
	}
	instr.root.End()
	instr.manifest.Finish(instr.reg)
	if instr.metricsPath != "" {
		if err := instr.manifest.WriteFile(instr.metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nrun manifest: %s\n", instr.metricsPath)
		if _, err := obs.SummaryTable(instr.manifest.Metrics).WriteTo(stdout); err != nil {
			return err
		}
	}
	if instr.tracePath != "" {
		if err := instr.trace.WriteFile(instr.tracePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ntrace: %s (open in chrome://tracing or ui.perfetto.dev)\n", instr.tracePath)
	}
	return nil
}
