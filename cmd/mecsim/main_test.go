package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec"
	"dsmec/internal/scenarioio"
)

func TestHolisticRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-tasks", "30", "-devices", "10", "-stations", "2", "-sim=false"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"LP-HTA", "HGOS", "AllOffload", "AllToC", "ratio bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "discrete-event replay") {
		t.Error("-sim=false should skip the replay")
	}
}

func TestHolisticRunWithSim(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-tasks", "20", "-devices", "8", "-stations", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "discrete-event replay") {
		t.Error("default run should include the simulator replay")
	}
}

func TestDivisibleRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-divisible", "-tasks", "20", "-devices", "8", "-stations", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"DTA-Workload", "DTA-Number", "LP-HTA (holistic)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestLoadScenario(t *testing.T) {
	// Generate with mecgen's serialization format, then load.
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")

	genOut, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := generateScenarioFile(genOut); err != nil {
		t.Fatal(err)
	}
	if err := genOut.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-load", path, "-sim=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 devices") {
		t.Errorf("loaded scenario not reflected:\n%s", out.String())
	}
}

func TestLoadMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-load", "/definitely/not/here.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}

// generateScenarioFile writes a small scenario in the canonical format.
func generateScenarioFile(w io.Writer) error {
	sc, err := dsmec.GenerateHolistic(dsmec.NewSeed(5), dsmec.WorkloadParams{
		NumDevices: 12, NumStations: 3, NumTasks: 24,
	})
	if err != nil {
		return err
	}
	return scenarioio.Encode(w, sc)
}
