package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmec"
	"dsmec/internal/scenarioio"
)

// TestGoldenWithoutFaults locks the no-fault output byte-for-byte against
// files captured before the fault-injection layer landed: faults disabled
// must leave the engine bit-identical.
func TestGoldenWithoutFaults(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"golden_holistic.txt", []string{"-seed", "3", "-tasks", "40", "-devices", "12", "-stations", "3"}},
		{"golden_divisible.txt", []string{"-divisible", "-seed", "5", "-tasks", "24", "-devices", "10", "-stations", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output drifted from %s:\n%s", tc.golden, out.String())
			}
		})
	}
}

// TestFaultsDeterministicAcrossParallelism pins the acceptance criterion
// that the same (scenario, fault seed) yields identical output whether the
// LP-HTA assignment was computed with one worker or several.
func TestFaultsDeterministicAcrossParallelism(t *testing.T) {
	var runs []string
	for _, parallel := range []string{"1", "1", "4"} {
		var out strings.Builder
		err := run([]string{"-seed", "3", "-tasks", "30", "-devices", "10", "-stations", "2",
			"-faults", "-fault-seed", "2", "-parallel", parallel}, &out)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, out.String())
	}
	if runs[0] != runs[1] {
		t.Error("repeated runs differ")
	}
	if runs[0] != runs[2] {
		t.Error("output differs between -parallel 1 and -parallel 4")
	}
	if !strings.Contains(runs[0], "fault injection:") || !strings.Contains(runs[0], "recovery:") {
		t.Errorf("fault summary missing:\n%s", runs[0])
	}
}

func TestLoadScenarioWithEmbeddedFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	sc, err := dsmec.GenerateHolistic(dsmec.NewSeed(5), dsmec.WorkloadParams{
		NumDevices: 12, NumStations: 3, NumTasks: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := dsmec.GenerateFaultPlan(dsmec.NewSeed(4), sc.System, dsmec.DefaultFaultParams())
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenarioio.EncodeWithFaults(f, sc, fp); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var withFaults strings.Builder
	if err := run([]string{"-load", path, "-faults"}, &withFaults); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withFaults.String(), "fault injection:") {
		t.Errorf("embedded plan not injected:\n%s", withFaults.String())
	}

	// Without -faults the embedded plan is ignored entirely.
	var without strings.Builder
	if err := run([]string{"-load", path}, &without); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "fault injection:") {
		t.Error("plan injected without -faults")
	}
}

func TestDivisibleFaultsRejected(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-divisible", "-tasks", "10", "-devices", "6", "-stations", "2", "-faults"}, &out)
	if err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Errorf("want a divisible-pipeline rejection, got %v", err)
	}
}

// TestMalformedFaultSectionIsParseError checks the exit-2 path: a corrupt
// faults section must surface as a scenarioParseError (which main maps to
// exit code 2 with a structured stderr message), not a generic failure.
func TestMalformedFaultSectionIsParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := generateScenarioFile(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Splice a faults section with an unknown link type into the document.
	corrupted := strings.Replace(string(data), `"version"`,
		`"faults": {"link_degradations": [{"station": 0, "link": "smoke-signal", "at_s": 0, "duration_s": 1, "slowdown": 2}]}, "version"`, 1)
	if corrupted == string(data) {
		t.Fatal("could not splice faults section into document")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	runErr := run([]string{"-load", path, "-faults"}, &out)
	var pe *scenarioParseError
	if !errors.As(runErr, &pe) {
		t.Fatalf("want *scenarioParseError, got %v", runErr)
	}
	if !strings.Contains(pe.Error(), "smoke-signal") {
		t.Errorf("parse error should name the bad link: %v", pe)
	}
}
