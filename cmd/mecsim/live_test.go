package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"dsmec/internal/obs"
)

// TestObsServerLive pins the headline acceptance criterion: while a run is
// in flight with -obs-addr, the exposition endpoints answer with live
// data. The test hook fires synchronously once the listener is up, so the
// GETs happen strictly inside the run.
func TestObsServerLive(t *testing.T) {
	get := func(url string) (int, string, []byte) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", url, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	probed := false
	testHookObsServer = func(base string) {
		probed = true

		code, ctype, body := get(base + "/metrics")
		if code != http.StatusOK {
			t.Errorf("/metrics status = %d", code)
		}
		if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
			t.Errorf("/metrics content type = %q", ctype)
		}
		_ = body

		code, ctype, body = get(base + "/metrics.json")
		if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
			t.Errorf("/metrics.json status/type = %d %q", code, ctype)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Errorf("/metrics.json is not a snapshot: %v", err)
		}

		code, _, body = get(base + "/manifest")
		if code != http.StatusOK {
			t.Errorf("/manifest status = %d", code)
		}
		var man struct {
			Tool string `json:"tool"`
			Seed int64  `json:"seed"`
			Live bool   `json:"live"`
		}
		if err := json.Unmarshal(body, &man); err != nil {
			t.Fatalf("/manifest is not JSON: %v", err)
		}
		if man.Tool != "mecsim" || man.Seed != 13 || !man.Live {
			t.Errorf("live manifest = %+v, want tool=mecsim seed=13 live=true", man)
		}
	}
	defer func() { testHookObsServer = nil }()

	var out strings.Builder
	err := run([]string{"-tasks", "20", "-devices", "8", "-stations", "2",
		"-seed", "13", "-obs-addr", "127.0.0.1:0", "-log-level", "off"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("obs server hook never fired")
	}
}

func TestObsSnapshots(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "run.jsonl")
	var out strings.Builder
	err := run([]string{"-tasks", "25", "-devices", "10", "-stations", "2",
		"-obs-snapshots", spath, "-obs-snapshot-interval", "1ms",
		"-log-level", "off"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadSnapshots(spath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no snapshot records written")
	}
	last := recs[len(recs)-1]
	if !last.Final {
		t.Error("last snapshot record is not marked final")
	}
	if last.Metrics.Counters["lp.solves"] <= 0 {
		t.Errorf("final snapshot lp.solves = %d, want > 0", last.Metrics.Counters["lp.solves"])
	}
	for i, r := range recs[:len(recs)-1] {
		if r.Final {
			t.Errorf("record %d marked final before the end", i)
		}
	}
}

// wallClockMetric reports whether a histogram measures host wall-clock
// time, which legitimately varies run to run and across -parallel values.
// Everything else in the registry is derived from the seeded pipeline or
// simulated time and must be bit-identical at any worker count.
func wallClockMetric(name string) bool {
	return name == "lp.solve_seconds" ||
		name == "lphta.cluster_seconds" ||
		strings.HasPrefix(name, "lphta.stage_seconds.") ||
		strings.HasPrefix(name, "bench.")
}

// TestSnapshotDeterministicAcrossParallelism runs the same seeded scenario
// at -parallel 1, 2, and 8 and requires identical registry snapshots
// modulo wall-clock histograms.
func TestSnapshotDeterministicAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	docs := make(map[int]manifestDoc)
	for _, par := range []int{1, 2, 8} {
		mpath := filepath.Join(dir, fmt.Sprintf("run-p%d.json", par))
		var out strings.Builder
		err := run([]string{"-tasks", "40", "-devices", "12", "-stations", "3",
			"-seed", "11", "-parallel", fmt.Sprint(par), "-metrics", mpath,
			"-log-level", "off"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		docs[par] = readManifest(t, mpath)
	}

	base := docs[1]
	for _, par := range []int{2, 8} {
		got := docs[par]
		if len(got.Metrics.Counters) != len(base.Metrics.Counters) {
			t.Errorf("-parallel %d: counter set size %d != %d", par,
				len(got.Metrics.Counters), len(base.Metrics.Counters))
		}
		for name, v := range base.Metrics.Counters {
			if got.Metrics.Counters[name] != v {
				t.Errorf("-parallel %d: counter %s = %d, want %d", par,
					name, got.Metrics.Counters[name], v)
			}
		}
		for name, v := range base.Metrics.Gauges {
			if got.Metrics.Gauges[name] != v {
				t.Errorf("-parallel %d: gauge %s = %g, want %g", par,
					name, got.Metrics.Gauges[name], v)
			}
		}
		for name, raw := range base.Metrics.Histograms {
			if wallClockMetric(name) {
				continue
			}
			other, ok := got.Metrics.Histograms[name]
			if !ok {
				t.Errorf("-parallel %d: histogram %s missing", par, name)
				continue
			}
			if string(raw) != string(other) {
				t.Errorf("-parallel %d: histogram %s differs:\n%s\nvs\n%s",
					par, name, raw, other)
			}
		}
	}
}
