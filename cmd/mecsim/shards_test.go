package main

import (
	"fmt"
	"strings"
	"testing"
)

// TestShardsDeterministic pins the acceptance criterion of the sharded
// DES: stdout is byte-identical at every -shards × -parallel
// combination. Sharding is a memory-locality layout, never a semantic
// knob.
func TestShardsDeterministic(t *testing.T) {
	base := []string{"-seed", "3", "-tasks", "40", "-devices", "12", "-stations", "3"}
	var ref string
	for _, shards := range []int{1, 2, 8} {
		for _, parallel := range []int{1, 2, 8} {
			args := append(append([]string{}, base...),
				"-shards", fmt.Sprint(shards), "-parallel", fmt.Sprint(parallel))
			var out strings.Builder
			if err := run(args, &out); err != nil {
				t.Fatalf("-shards %d -parallel %d: %v", shards, parallel, err)
			}
			if ref == "" {
				ref = out.String()
				continue
			}
			if out.String() != ref {
				t.Errorf("-shards %d -parallel %d output differs from -shards 1 -parallel 1:\n%s",
					shards, parallel, out.String())
			}
		}
	}
	if !strings.Contains(ref, "discrete-event replay") {
		t.Fatalf("replay summary missing:\n%s", ref)
	}
}

// TestShardsDeterministicWithFaults repeats the grid with fault
// injection active: outages, departures, retries and reassignments must
// resolve identically regardless of how the event heaps are sharded.
func TestShardsDeterministicWithFaults(t *testing.T) {
	base := []string{"-seed", "3", "-tasks", "30", "-devices", "10", "-stations", "2",
		"-faults", "-fault-seed", "2"}
	var ref string
	for _, shards := range []int{1, 2, 8} {
		for _, parallel := range []int{1, 8} {
			args := append(append([]string{}, base...),
				"-shards", fmt.Sprint(shards), "-parallel", fmt.Sprint(parallel))
			var out strings.Builder
			if err := run(args, &out); err != nil {
				t.Fatalf("-shards %d -parallel %d: %v", shards, parallel, err)
			}
			if ref == "" {
				ref = out.String()
				continue
			}
			if out.String() != ref {
				t.Errorf("-shards %d -parallel %d faulty output differs:\n%s",
					shards, parallel, out.String())
			}
		}
	}
	if !strings.Contains(ref, "fault injection:") || !strings.Contains(ref, "recovery:") {
		t.Fatalf("fault summary missing:\n%s", ref)
	}
}
