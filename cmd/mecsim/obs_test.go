package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// manifestDoc decodes just the pieces of the run manifest the tests
// assert on.
type manifestDoc struct {
	Tool         string  `json:"tool"`
	Seed         int64   `json:"seed"`
	ScenarioHash string  `json:"scenario_hash"`
	GoVersion    string  `json:"go_version"`
	WallSeconds  float64 `json:"wall_seconds"`
	Metrics      struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	} `json:"metrics"`
}

func readManifest(t *testing.T, path string) manifestDoc {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	var m manifestDoc
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	return m
}

func TestMetricsManifest(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "run.json")
	var out strings.Builder
	err := run([]string{"-tasks", "30", "-devices", "10", "-stations", "2",
		"-seed", "9", "-metrics", mpath}, &out)
	if err != nil {
		t.Fatal(err)
	}

	m := readManifest(t, mpath)
	if m.Tool != "mecsim" || m.Seed != 9 {
		t.Errorf("tool/seed = %s/%d, want mecsim/9", m.Tool, m.Seed)
	}
	if m.ScenarioHash == "" || m.GoVersion == "" {
		t.Errorf("missing environment stamps: %+v", m)
	}
	// The deep layers must have recorded through the Instruments chain.
	for _, c := range []string{"lp.solves", "lp.pivots", "lphta.runs", "lphta.tasks", "sim.runs", "sim.events"} {
		if m.Metrics.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (all: %v)", c, m.Metrics.Counters[c], m.Metrics.Counters)
		}
	}
	if m.Metrics.Counters["lphta.tasks"] != 30 {
		t.Errorf("lphta.tasks = %d, want 30", m.Metrics.Counters["lphta.tasks"])
	}
	if _, ok := m.Metrics.Histograms["lp.solve_seconds"]; !ok {
		t.Error("missing lp.solve_seconds histogram")
	}

	// The human-readable summary accompanies the file.
	if !strings.Contains(out.String(), "run manifest:") || !strings.Contains(out.String(), "lp.solves") {
		t.Errorf("summary table missing from output:\n%s", out.String())
	}
}

// TestMetricsReproducible runs the same seed twice and requires identical
// solver and planner counters: the instrumentation must not perturb (or
// be perturbed by) the seeded pipeline.
func TestMetricsReproducible(t *testing.T) {
	dir := t.TempDir()
	counters := make([]map[string]int64, 2)
	for i := range counters {
		mpath := filepath.Join(dir, "run"+string(rune('a'+i))+".json")
		var out strings.Builder
		err := run([]string{"-tasks", "25", "-devices", "10", "-stations", "2",
			"-seed", "4", "-sim=false", "-metrics", mpath}, &out)
		if err != nil {
			t.Fatal(err)
		}
		counters[i] = readManifest(t, mpath).Metrics.Counters
	}
	for name, v := range counters[0] {
		if counters[1][name] != v {
			t.Errorf("counter %s differs across identical runs: %d vs %d", name, v, counters[1][name])
		}
	}
}

func TestTraceOutput(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "run.trace.json")
	var out strings.Builder
	err := run([]string{"-tasks", "20", "-devices", "8", "-stations", "2", "-trace", tpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	// The acceptance spans: LP solve, rounding, and simulation, under the
	// tool's root span.
	for _, want := range []string{"mecsim", "lphta", "lp.solve", "lphta.round", "sim.run", "sim.events"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

func TestDivisibleMetrics(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "run.json")
	var out strings.Builder
	err := run([]string{"-divisible", "-tasks", "20", "-devices", "8", "-stations", "2",
		"-metrics", mpath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, mpath)
	if m.Metrics.Counters["dta.runs"] != 2 { // GoalWorkload + GoalNumber
		t.Errorf("dta.runs = %d, want 2", m.Metrics.Counters["dta.runs"])
	}
}

func TestScenarioParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-load", path}, &out)
	if err == nil {
		t.Fatal("malformed scenario should fail")
	}
	var pe *scenarioParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T(%v) is not a *scenarioParseError", err, err)
	}
	if pe.Path != path || pe.Err == nil {
		t.Errorf("parse error fields = %+v", pe)
	}
}

// TestMissingFileIsNotParseError pins the error taxonomy: a missing file
// is an I/O error (exit 1), not a parse error (exit 2).
func TestMissingFileIsNotParseError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-load", "/definitely/not/here.json"}, &out)
	if err == nil {
		t.Fatal("missing file should fail")
	}
	var pe *scenarioParseError
	if errors.As(err, &pe) {
		t.Error("missing file misclassified as a parse error")
	}
}
