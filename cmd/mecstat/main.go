// Command mecstat analyzes run manifests written by the other tools'
// -metrics flag, and the JSON Lines files written by -obs-snapshots.
// With one manifest it prints a run report: environment header, the
// largest counters, every gauge, and histogram percentiles. With two it
// prints a comparison: the top metric deltas and histogram percentile
// shifts, and with -threshold it exits non-zero when a histogram p95 or
// the wall clock regresses past the allowed fraction — the same
// regression-gate role mecbench -check plays, but for two recorded runs
// instead of one run against a budget file.
//
// Usage:
//
//	mecstat run.json                          # single-run report
//	mecstat base.json new.json                # comparison report
//	mecstat -top 10 base.json new.json
//	mecstat -threshold 0.2 base.json new.json # exit 1 on regression
//	mecstat -snapshots run.jsonl              # timeline of a live run
//
// Exit codes: 0 success, 1 runtime failure or gated regression, 2
// malformed manifest/snapshot input.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"dsmec/internal/obs"
	"dsmec/internal/texttable"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "mecstat:", err)
	var pe *statParseError
	if errors.As(err, &pe) {
		os.Exit(2)
	}
	os.Exit(1)
}

// statParseError marks malformed input (exit 2), as opposed to a genuine
// regression or I/O failure (exit 1).
type statParseError struct {
	Path string
	Err  error
}

func (e *statParseError) Error() string {
	return fmt.Sprintf("parsing %s: %v", e.Path, e.Err)
}

func (e *statParseError) Unwrap() error { return e.Err }

// runDoc is the slice of a manifest mecstat reads. Extra fields in the
// document are ignored, so live /manifest captures load too.
type runDoc struct {
	Path         string       `json:"-"`
	Tool         string       `json:"tool"`
	Seed         int64        `json:"seed"`
	ScenarioHash string       `json:"scenario_hash"`
	GoVersion    string       `json:"go_version"`
	WallSeconds  float64      `json:"wall_seconds"`
	CPUSeconds   float64      `json:"cpu_seconds"`
	Metrics      obs.Snapshot `json:"metrics"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecstat", flag.ContinueOnError)
	var (
		top       = fs.Int("top", 15, "number of rows in each ranked section")
		threshold = fs.Float64("threshold", 0, "with two manifests: allowed fractional regression of histogram p95s and wall_seconds before exiting non-zero (0 = report only)")
		snapPath  = fs.String("snapshots", "", "print a timeline from an -obs-snapshots JSON Lines file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *snapPath != "" {
		if len(paths) != 0 {
			return fmt.Errorf("-snapshots does not combine with manifest arguments")
		}
		return reportSnapshots(stdout, *snapPath, *top)
	}
	switch len(paths) {
	case 1:
		doc, err := loadRun(paths[0])
		if err != nil {
			return err
		}
		return reportSingle(stdout, doc, *top)
	case 2:
		base, err := loadRun(paths[0])
		if err != nil {
			return err
		}
		cur, err := loadRun(paths[1])
		if err != nil {
			return err
		}
		return reportCompare(stdout, base, cur, *top, *threshold)
	default:
		return fmt.Errorf("pass one manifest (report), two (comparison), or -snapshots file.jsonl")
	}
}

func loadRun(path string) (*runDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &runDoc{Path: path}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, &statParseError{Path: path, Err: err}
	}
	if doc.Tool == "" && doc.Metrics.Counters == nil && doc.Metrics.Histograms == nil {
		return nil, &statParseError{Path: path, Err: fmt.Errorf("no manifest fields found")}
	}
	return doc, nil
}

func header(w io.Writer, label string, d *runDoc) {
	fmt.Fprintf(w, "%s %s: tool=%s seed=%d hash=%s go=%s wall=%.3fs cpu=%.3fs\n",
		label, d.Path, d.Tool, d.Seed, d.ScenarioHash, d.GoVersion, d.WallSeconds, d.CPUSeconds)
}

func reportSingle(w io.Writer, d *runDoc, top int) error {
	header(w, "run", d)

	type kv struct {
		name string
		v    float64
	}
	counters := make([]kv, 0, len(d.Metrics.Counters))
	for name, v := range d.Metrics.Counters {
		counters = append(counters, kv{name, float64(v)})
	}
	sort.Slice(counters, func(i, j int) bool {
		if counters[i].v != counters[j].v {
			return counters[i].v > counters[j].v
		}
		return counters[i].name < counters[j].name
	})
	fmt.Fprintf(w, "\ncounters (top %d by value):\n", top)
	tb := texttable.New("counter", "value")
	for i, c := range counters {
		if i >= top {
			break
		}
		tb.AddRowf(c.name, fmt.Sprintf("%.0f", c.v))
	}
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}

	gauges := make([]string, 0, len(d.Metrics.Gauges))
	for name := range d.Metrics.Gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)
	if len(gauges) > 0 {
		fmt.Fprintf(w, "\ngauges:\n")
		tb := texttable.New("gauge", "value")
		for _, name := range gauges {
			tb.AddRowf(name, fmt.Sprintf("%g", d.Metrics.Gauges[name]))
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	}

	hists := make([]string, 0, len(d.Metrics.Histograms))
	for name := range d.Metrics.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	if len(hists) > 0 {
		fmt.Fprintf(w, "\nhistograms:\n")
		tb := texttable.New("histogram", "count", "mean", "p50", "p95", "p99")
		for _, name := range hists {
			h := d.Metrics.Histograms[name]
			tb.AddRowf(name, fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.4g", h.Mean()),
				fmt.Sprintf("%.4g", h.Quantile(50)),
				fmt.Sprintf("%.4g", h.Quantile(95)),
				fmt.Sprintf("%.4g", h.Quantile(99)))
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// relChange is (cur-base)/|base|; +Inf when the metric is new (base 0).
func relChange(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / math.Abs(base)
}

func fmtChange(rel float64) string {
	if math.IsInf(rel, 1) {
		return "new"
	}
	if math.IsInf(rel, -1) {
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}

func reportCompare(w io.Writer, base, cur *runDoc, top int, threshold float64) error {
	header(w, "base", base)
	header(w, " new", cur)
	if base.ScenarioHash != "" && cur.ScenarioHash != "" && base.ScenarioHash != cur.ScenarioHash {
		fmt.Fprintf(w, "note: scenario hashes differ; the runs solved different inputs\n")
	}
	fmt.Fprintf(w, "wall %.3fs -> %.3fs (%s), cpu %.3fs -> %.3fs (%s)\n",
		base.WallSeconds, cur.WallSeconds, fmtChange(relChange(base.WallSeconds, cur.WallSeconds)),
		base.CPUSeconds, cur.CPUSeconds, fmtChange(relChange(base.CPUSeconds, cur.CPUSeconds)))

	type delta struct {
		name      string
		base, cur float64
		rel       float64
	}
	rank := func(ds []delta) []delta {
		sort.Slice(ds, func(i, j int) bool {
			ai, aj := math.Abs(ds[i].rel), math.Abs(ds[j].rel)
			if ai != aj {
				return ai > aj
			}
			return ds[i].name < ds[j].name
		})
		if len(ds) > top {
			ds = ds[:top]
		}
		return ds
	}

	var counterDeltas []delta
	for name := range union(base.Metrics.Counters, cur.Metrics.Counters) {
		b, c := float64(base.Metrics.Counters[name]), float64(cur.Metrics.Counters[name])
		if b == c {
			continue
		}
		counterDeltas = append(counterDeltas, delta{name, b, c, relChange(b, c)})
	}
	if len(counterDeltas) > 0 {
		fmt.Fprintf(w, "\ncounter deltas (top %d by relative change):\n", top)
		tb := texttable.New("counter", "base", "new", "change")
		for _, d := range rank(counterDeltas) {
			tb.AddRowf(d.name, fmt.Sprintf("%.0f", d.base), fmt.Sprintf("%.0f", d.cur), fmtChange(d.rel))
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "\ncounters: identical\n")
	}

	var gaugeDeltas []delta
	for name := range unionF(base.Metrics.Gauges, cur.Metrics.Gauges) {
		b, c := base.Metrics.Gauges[name], cur.Metrics.Gauges[name]
		if b == c {
			continue
		}
		gaugeDeltas = append(gaugeDeltas, delta{name, b, c, relChange(b, c)})
	}
	if len(gaugeDeltas) > 0 {
		fmt.Fprintf(w, "\ngauge deltas (top %d by relative change):\n", top)
		tb := texttable.New("gauge", "base", "new", "change")
		for _, d := range rank(gaugeDeltas) {
			tb.AddRowf(d.name, fmt.Sprintf("%g", d.base), fmt.Sprintf("%g", d.cur), fmtChange(d.rel))
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	}

	// Histogram percentile shifts, ranked by the p95 move; the p95 shift is
	// also what -threshold gates on.
	type shift struct {
		name                   string
		p50b, p50c, p95b, p95c float64
		p99b, p99c             float64
		rel                    float64
	}
	var shifts []shift
	var regressions []string
	for name, hb := range base.Metrics.Histograms {
		hc, ok := cur.Metrics.Histograms[name]
		if !ok {
			continue
		}
		s := shift{
			name: name,
			p50b: hb.Quantile(50), p50c: hc.Quantile(50),
			p95b: hb.Quantile(95), p95c: hc.Quantile(95),
			p99b: hb.Quantile(99), p99c: hc.Quantile(99),
		}
		s.rel = relChange(s.p95b, s.p95c)
		if s.p50b != s.p50c || s.p95b != s.p95c || s.p99b != s.p99c {
			shifts = append(shifts, s)
		}
		if threshold > 0 && s.p95b > 0 && s.p95c > s.p95b*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s p95 %+.1f%%", name, 100*s.rel))
		}
	}
	sort.Slice(shifts, func(i, j int) bool {
		ai, aj := math.Abs(shifts[i].rel), math.Abs(shifts[j].rel)
		if ai != aj {
			return ai > aj
		}
		return shifts[i].name < shifts[j].name
	})
	if len(shifts) > top {
		shifts = shifts[:top]
	}
	if len(shifts) > 0 {
		fmt.Fprintf(w, "\nhistogram percentile shifts (top %d by p95 change):\n", top)
		tb := texttable.New("histogram", "p50", "p95", "p99")
		for _, s := range shifts {
			tb.AddRowf(s.name,
				fmt.Sprintf("%.4g -> %.4g", s.p50b, s.p50c),
				fmt.Sprintf("%.4g -> %.4g (%s)", s.p95b, s.p95c, fmtChange(s.rel)),
				fmt.Sprintf("%.4g -> %.4g", s.p99b, s.p99c))
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "\nhistograms: identical percentiles\n")
	}

	if threshold > 0 {
		if base.WallSeconds > 0 && cur.WallSeconds > base.WallSeconds*(1+threshold) {
			regressions = append(regressions,
				fmt.Sprintf("wall_seconds %s", fmtChange(relChange(base.WallSeconds, cur.WallSeconds))))
		}
		sort.Strings(regressions)
		if len(regressions) > 0 {
			return fmt.Errorf("%d regression(s) beyond %.0f%%: %s",
				len(regressions), 100*threshold, strings.Join(regressions, "; "))
		}
		fmt.Fprintf(w, "\nno regressions beyond %.0f%%\n", 100*threshold)
	}
	return nil
}

func reportSnapshots(w io.Writer, path string, top int) error {
	recs, err := obs.ReadSnapshots(path)
	if err != nil {
		if os.IsNotExist(err) {
			return err
		}
		return &statParseError{Path: path, Err: err}
	}
	if len(recs) == 0 {
		return &statParseError{Path: path, Err: fmt.Errorf("no snapshot records")}
	}
	fmt.Fprintf(w, "snapshots %s: %d records over %.3fs\n\n",
		path, len(recs), recs[len(recs)-1].ElapsedSeconds)
	for _, r := range recs {
		mark := " "
		if r.Final {
			mark = "*"
		}
		type kv struct {
			name string
			v    int64
		}
		deltas := make([]kv, 0, len(r.DeltaCounters))
		for name, v := range r.DeltaCounters {
			deltas = append(deltas, kv{name, v})
		}
		sort.Slice(deltas, func(i, j int) bool {
			if deltas[i].v != deltas[j].v {
				return deltas[i].v > deltas[j].v
			}
			return deltas[i].name < deltas[j].name
		})
		if len(deltas) > top {
			deltas = deltas[:top]
		}
		parts := make([]string, 0, len(deltas))
		for _, d := range deltas {
			parts = append(parts, fmt.Sprintf("%s+%d", d.name, d.v))
		}
		line := strings.Join(parts, " ")
		if line == "" {
			line = "(no counter movement)"
		}
		fmt.Fprintf(w, "%s %8.3fs %s\n", mark, r.ElapsedSeconds, line)
	}
	return nil
}

func union(a, b map[string]int64) map[string]struct{} {
	u := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		u[k] = struct{}{}
	}
	for k := range b {
		u[k] = struct{}{}
	}
	return u
}

func unionF(a, b map[string]float64) map[string]struct{} {
	u := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		u[k] = struct{}{}
	}
	for k := range b {
		u[k] = struct{}{}
	}
	return u
}
