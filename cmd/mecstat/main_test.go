package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsmec/internal/obs"
)

func TestSingleRunReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"testdata/base.json"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"tool=mecsim", "seed=11", "hash=8f21c04ab9e01d52",
		"lp.pivots", "sim.utilization.st.cpu", "lp.pivots_per_solve",
		"p50", "p95", "p99",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestCompareIdenticalRuns is the shape `make verify` smokes: comparing a
// manifest against itself must gate clean.
func TestCompareIdenticalRuns(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-threshold", "0.1", "testdata/base.json", "testdata/base.json"}, &out)
	if err != nil {
		t.Fatalf("identical runs flagged: %v\n%s", err, out.String())
	}
	for _, want := range []string{"counters: identical", "histograms: identical percentiles", "no regressions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
}

// TestCompareDetectsRegression pins the acceptance criterion: the
// committed regressed fixture's injected histogram shift (and counter
// growth) must surface in the report, and -threshold must turn it into a
// non-zero exit.
func TestCompareDetectsRegression(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-threshold", "0.2", "testdata/base.json", "testdata/regressed.json"}, &out)
	if err == nil {
		t.Fatalf("regressed run passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "lp.pivots_per_solve") {
		t.Errorf("gate error %q does not name the regressed histogram", err)
	}
	s := out.String()
	if !strings.Contains(s, "lp.pivots") || !strings.Contains(s, "+100.0%") {
		t.Errorf("counter delta for lp.pivots missing:\n%s", s)
	}
	if !strings.Contains(s, "lp.pivots_per_solve") {
		t.Errorf("histogram shift section missing lp.pivots_per_solve:\n%s", s)
	}
}

// TestCompareReportOnlyWithoutThreshold: the same fixtures with the
// default threshold of 0 report the shifts but do not gate.
func TestCompareReportOnlyWithoutThreshold(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"testdata/base.json", "testdata/regressed.json"}, &out); err != nil {
		t.Fatalf("ungated comparison failed: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{bad, empty} {
		var out strings.Builder
		err := run([]string{path}, &out)
		var pe *statParseError
		if err == nil || !errors.As(err, &pe) {
			t.Errorf("%s: err = %v, want *statParseError", path, err)
		}
	}
	// A missing file is an I/O error, not a parse error.
	var out strings.Builder
	err := run([]string{filepath.Join(dir, "nope.json")}, &out)
	var pe *statParseError
	if err == nil || errors.As(err, &pe) {
		t.Errorf("missing file err = %v, want plain I/O error", err)
	}
}

func TestSnapshotTimeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	recs := []obs.SnapshotRecord{
		{At: time.Unix(100, 0), ElapsedSeconds: 0.5,
			DeltaCounters: map[string]int64{"lp.solves": 12, "sim.events": 900}},
		{At: time.Unix(101, 0), ElapsedSeconds: 1.5, Final: true,
			DeltaCounters: map[string]int64{"sim.events": 300}},
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-snapshots", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"2 records over 1.500s", "sim.events+900", "sim.events+300", "*"} {
		if !strings.Contains(s, want) {
			t.Errorf("timeline missing %q:\n%s", want, s)
		}
	}
}
