// Command mecd is the online assignment daemon: it keeps the LP-HTA
// cluster decomposition alive as warm per-station state and serves task
// arrivals, departures, and device churn over a JSON HTTP API. Arrivals
// batch per cluster; a solve touches only the clusters dirtied since the
// previous one, warm-starting each cluster LP from its previous optimal
// basis (dual simplex), so steady-state re-solves cost a handful of pivots
// instead of a full cold solve.
//
// Usage:
//
//	mecd                                  # 20 devices, 4 stations, empty
//	mecd -devices 50 -stations 5 -preload 100
//	mecd -load scenario.json              # fixed topology from a scenario
//	mecd -addr 127.0.0.1:8377 -metrics run.json
//	mecd -selfcheck                       # boot, run one API cycle, exit
//
// The topology (devices, stations, cost model) is fixed at boot — either
// generated from -seed/-devices/-stations or loaded from a mecgen scenario
// document. Device joins and leaves toggle a provisioned device's
// presence; task arrivals and departures mutate only the raising device's
// station shard. See docs/SERVICE.md for the API reference.
//
// Exit codes: 0 success, 1 runtime or selfcheck failure, 2 scenario parse
// failure.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dsmec/internal/costmodel"
	"dsmec/internal/obs"
	"dsmec/internal/rng"
	"dsmec/internal/scenarioio"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	var pe *scenarioParseError
	if errors.As(err, &pe) {
		// Structured, machine-readable parse failure, matching the
		// mecsim/mecstat contract: wrappers must be able to tell "bad
		// input" from "regression".
		_ = json.NewEncoder(os.Stderr).Encode(map[string]string{
			"error":  "scenario_parse",
			"path":   pe.Path,
			"detail": pe.Err.Error(),
		})
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "mecd:", err)
	os.Exit(1)
}

// scenarioParseError marks a malformed -load document.
type scenarioParseError struct {
	Path string
	Err  error
}

func (e *scenarioParseError) Error() string {
	return fmt.Sprintf("parsing scenario %s: %v", e.Path, e.Err)
}

func (e *scenarioParseError) Unwrap() error { return e.Err }

// testHookListening, when set by a test, is called synchronously with the
// server's base URL once the listener is accepting connections.
var testHookListening func(url string)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mecd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8377", "HTTP listen address")
		seed        = fs.Int64("seed", 1, "root random seed for the generated topology")
		devices     = fs.Int("devices", 20, "number of provisioned mobile devices")
		stations    = fs.Int("stations", 4, "number of base stations")
		preload     = fs.Int("preload", 0, "generate this many tasks and enqueue them before serving")
		inputKB     = fs.Int("input", 3000, "maximum generated task input size (kB)")
		load        = fs.String("load", "", "load the topology (and preload the tasks) from a scenario JSON document")
		parallel    = fs.Int("parallel", 0, "dirty-shard solver worker count (0 = one per station); responses are byte-identical for any value")
		metricsPath = fs.String("metrics", "", "write a run manifest (metrics + environment) to this JSON file on shutdown")
		logLevel    = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, or off")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
		selfcheck   = fs.Bool("selfcheck", false, "boot on a random port, drive one arrival/assign/departure cycle through the HTTP API, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	obs.SetGlobalLogger(logger)

	m, ts, err := bootModel(*load, *seed, *devices, *stations, *preload, *inputKB)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	manifest := obs.NewManifest("mecd", args)
	manifest.SetSeed(*seed)
	srv, err := newServer(m, reg, manifest, logger, *parallel)
	if err != nil {
		return err
	}
	if ts != nil {
		if err := srv.preload(ts); err != nil {
			return err
		}
	}

	if *selfcheck {
		return runSelfcheck(srv, m, stdout)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	url := "http://" + l.Addr().String()
	logger.Info("mecd listening", "url", url,
		"devices", m.System().NumDevices(), "stations", m.System().NumStations())
	fmt.Fprintf(stdout, "mecd listening on %s\n", url)
	if testHookListening != nil {
		testHookListening(url)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- http.Serve(l, srv) }()
	select {
	case <-ctx.Done():
		_ = l.Close()
		<-errc // wait for Serve to return before finalizing the manifest
		err = nil
	case err = <-errc:
		if errors.Is(err, net.ErrClosed) {
			err = nil
		}
	}
	if *metricsPath != "" {
		manifest.Finish(reg)
		if werr := manifest.WriteFile(*metricsPath); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// bootModel builds the fixed boot topology and the optional preload task
// set: from a scenario document with -load, generated otherwise.
func bootModel(load string, seed int64, devices, stations, preload, inputKB int) (*costmodel.Model, *task.Set, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc, _, err := scenarioio.DecodeWithFaults(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return nil, nil, &scenarioParseError{Path: load, Err: err}
		}
		if sc.Placement != nil {
			return nil, nil, fmt.Errorf("%s holds a divisible scenario; mecd serves holistic tasks", load)
		}
		return sc.Model, sc.Tasks, nil
	}
	// The generator refuses empty task populations; generate at least one
	// task for the topology draw and preload only what was asked for.
	n := preload
	if n < 1 {
		n = 1
	}
	sc, err := workload.GenerateHolistic(rng.NewSource(seed), workload.Params{
		NumDevices:  devices,
		NumStations: stations,
		NumTasks:    n,
		MaxInput:    units.ByteSize(inputKB) * units.Kilobyte,
	})
	if err != nil {
		return nil, nil, err
	}
	if preload < 1 {
		return sc.Model, nil, nil
	}
	return sc.Model, sc.Tasks, nil
}

// runSelfcheck boots the daemon on a loopback port and drives one full
// arrival → assignments → departure → assignments → metrics cycle through
// the real HTTP stack, verifying every response. It is the `make verify`
// smoke for the service.
func runSelfcheck(srv *server, m *costmodel.Model, stdout io.Writer) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = http.Serve(l, srv) }()
	base := "http://" + l.Addr().String()

	// A task that cannot collide with any preload and is trivially
	// feasible on its home device.
	probe := taskDoc{
		User:      0,
		Index:     1 << 20,
		OpBytes:   100e3,
		Resource:  1,
		DeadlineS: 100,
	}
	body, err := json.Marshal(probe)
	if err != nil {
		return err
	}
	post, err := http.Post(base+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if err := expectStatus(post, http.StatusAccepted); err != nil {
		return fmt.Errorf("selfcheck arrival: %w", err)
	}

	find := func() (bool, error) {
		var doc assignmentsDoc
		if err := getJSON(base+"/v1/assignments", &doc); err != nil {
			return false, err
		}
		for _, a := range doc.Assignments {
			if a.User == probe.User && a.Index == probe.Index {
				return true, nil
			}
		}
		return false, nil
	}
	if found, err := find(); err != nil {
		return fmt.Errorf("selfcheck assignments: %w", err)
	} else if !found {
		return fmt.Errorf("selfcheck: task %d/%d missing from assignments", probe.User, probe.Index)
	}

	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/tasks/%d/%d", base, probe.User, probe.Index), nil)
	if err != nil {
		return err
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	if err := expectStatus(del, http.StatusOK); err != nil {
		return fmt.Errorf("selfcheck departure: %w", err)
	}
	if found, err := find(); err != nil {
		return err
	} else if found {
		return fmt.Errorf("selfcheck: task %d/%d still assigned after departure", probe.User, probe.Index)
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := getJSON(base+"/metrics.json", &snap); err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	for _, c := range []string{"mecd.arrivals", "mecd.departures", "mecd.solves"} {
		if snap.Counters[c] == 0 {
			return fmt.Errorf("selfcheck: counter %s missing from /metrics.json", c)
		}
	}
	fmt.Fprintf(stdout, "mecd selfcheck ok: %d devices, %d stations, arrival/assign/departure cycle verified\n",
		m.System().NumDevices(), m.System().NumStations())
	return nil
}

func expectStatus(resp *http.Response, want int) error {
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, b)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
