package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/obs"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/workload"
)

func testScenario(t *testing.T, seed int64, devices, stations, tasks int) *workload.Scenario {
	t.Helper()
	sc, err := workload.GenerateHolistic(rng.NewSource(seed), workload.Params{
		NumDevices: devices, NumStations: stations, NumTasks: tasks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func testServer(t *testing.T, sc *workload.Scenario, workers int) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	logger, err := obs.NewLogger(io.Discard, "off", "text")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(sc.Model, reg, obs.NewManifest("mecd", nil), logger, workers)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs, reg
}

// postTask streams one task through POST /v1/tasks and asserts acceptance.
func postTask(t *testing.T, base string, tk *task.Task) {
	t.Helper()
	body, err := json.Marshal(docFromTask(tk))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/tasks %v: status %d: %s", tk.ID, resp.StatusCode, b)
	}
}

func doReq(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// getBody fetches url and returns the raw bytes (status must be 200).
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

// assignmentsMatchBatch fetches /v1/assignments and requires placement
// parity with a batch LP-HTA run over the given task set.
func assignmentsMatchBatch(t *testing.T, base string, sc *workload.Scenario, ts *task.Set) {
	t.Helper()
	batch, err := core.LPHTA(sc.Model, ts, &core.LPHTAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var doc assignmentsDoc
	if err := json.Unmarshal(getBody(t, base+"/v1/assignments"), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Assignments) != ts.Len() {
		t.Fatalf("assignments rows = %d, want %d", len(doc.Assignments), ts.Len())
	}
	for _, row := range doc.Assignments {
		id := task.ID{User: row.User, Index: row.Index}
		want := batch.Assignment.Of(id).String()
		if row.Subsystem != want {
			t.Errorf("task %v: daemon placed %s, batch placed %s", id, row.Subsystem, want)
		}
	}
}

// TestStreamedArrivalsMatchBatch is the tentpole e2e: tasks streamed one
// by one through the HTTP API must be assigned exactly as a batch LP-HTA
// run over the same static population.
func TestStreamedArrivalsMatchBatch(t *testing.T) {
	sc := testScenario(t, 5, 20, 4, 80)
	hs, reg := testServer(t, sc, 0)
	for i := 0; i < sc.Tasks.Len(); i++ {
		postTask(t, hs.URL, sc.Tasks.At(i))
	}
	assignmentsMatchBatch(t, hs.URL, sc, sc.Tasks)
	if got := reg.Counter("mecd.arrivals").Value(); got != int64(sc.Tasks.Len()) {
		t.Errorf("mecd.arrivals = %d, want %d", got, sc.Tasks.Len())
	}

	// A second read re-solves nothing: every shard is clean.
	solves := reg.Counter("mecd.solves").Value()
	_ = getBody(t, hs.URL+"/v1/assignments")
	if got := reg.Counter("mecd.solves").Value(); got != solves {
		t.Errorf("clean re-read triggered %d extra solves", got-solves)
	}
}

// TestResponseBytesIndependentOfParallelism pins the byte-identical
// discipline: the /v1/assignments and /v1/solve bodies must not depend on
// the dirty-shard worker count.
func TestResponseBytesIndependentOfParallelism(t *testing.T) {
	sc := testScenario(t, 6, 24, 6, 90)
	var assignments, solve []byte
	for _, workers := range []int{1, 8} {
		hs, _ := testServer(t, sc, workers)
		for i := 0; i < sc.Tasks.Len(); i++ {
			postTask(t, hs.URL, sc.Tasks.At(i))
		}
		got := getBody(t, hs.URL+"/v1/assignments")
		resp, err := http.Post(hs.URL+"/v1/solve", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		sbody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if assignments == nil {
			assignments, solve = got, sbody
			continue
		}
		if !bytes.Equal(got, assignments) {
			t.Errorf("workers=%d: /v1/assignments bytes differ from workers=1", workers)
		}
		if !bytes.Equal(sbody, solve) {
			t.Errorf("workers=%d: /v1/solve bytes differ from workers=1", workers)
		}
	}
}

// TestDeparturesMatchBatch: after removing a slice of tasks over the API,
// the remaining assignment must match a batch run over the survivors, and
// only the touched shards may re-solve.
func TestDeparturesMatchBatch(t *testing.T) {
	sc := testScenario(t, 7, 18, 3, 60)
	hs, reg := testServer(t, sc, 0)
	for i := 0; i < sc.Tasks.Len(); i++ {
		postTask(t, hs.URL, sc.Tasks.At(i))
	}
	_ = getBody(t, hs.URL+"/v1/assignments") // solve round 1: all cold

	// Remove every 7th task through the API; build the surviving set.
	survivors := &task.Set{}
	for i := 0; i < sc.Tasks.Len(); i++ {
		tk := sc.Tasks.At(i)
		if i%7 == 0 {
			resp := doReq(t, http.MethodDelete,
				fmt.Sprintf("%s/v1/tasks/%d/%d", hs.URL, tk.ID.User, tk.ID.Index))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("DELETE task %v: status %d", tk.ID, resp.StatusCode)
			}
			resp.Body.Close()
			continue
		}
		cp := *tk
		if err := survivors.Add(&cp); err != nil {
			t.Fatal(err)
		}
	}
	assignmentsMatchBatch(t, hs.URL, sc, survivors)
	if reg.Counter("mecd.departures").Value() == 0 {
		t.Error("mecd.departures never incremented")
	}

	// Unknown task: 404 with a JSON error body.
	resp := doReq(t, http.MethodDelete, hs.URL+"/v1/tasks/0/999999")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown task: status %d, body %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "error") {
		t.Errorf("DELETE unknown task: body %s lacks error field", b)
	}
}

// TestDeviceLeaveAndRejoin: a leaving device takes its tasks with it and
// blocks new arrivals with 410 until it rejoins.
func TestDeviceLeaveAndRejoin(t *testing.T) {
	sc := testScenario(t, 8, 12, 3, 40)
	hs, reg := testServer(t, sc, 0)
	for i := 0; i < sc.Tasks.Len(); i++ {
		postTask(t, hs.URL, sc.Tasks.At(i))
	}

	// Pick the device raising task 0 and remove it.
	gone := sc.Tasks.At(0).ID.User
	resp := doReq(t, http.MethodDelete, fmt.Sprintf("%s/v1/devices/%d", hs.URL, gone))
	var leave struct {
		Status  string `json:"status"`
		Removed int    `json:"removed_tasks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&leave); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || leave.Status != "left" || leave.Removed == 0 {
		t.Fatalf("device leave: status %d, doc %+v", resp.StatusCode, leave)
	}

	// Its tasks are gone from the assignment; the rest match a batch run
	// over the surviving population.
	survivors := &task.Set{}
	for i := 0; i < sc.Tasks.Len(); i++ {
		tk := sc.Tasks.At(i)
		if tk.ID.User == gone {
			continue
		}
		cp := *tk
		if err := survivors.Add(&cp); err != nil {
			t.Fatal(err)
		}
	}
	assignmentsMatchBatch(t, hs.URL, sc, survivors)

	// New arrivals from the departed device are refused with 410.
	probe := *sc.Tasks.At(0)
	probe.ID.Index = 1 << 20
	body, _ := json.Marshal(docFromTask(&probe))
	post, err := http.Post(hs.URL+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusGone {
		t.Errorf("arrival from departed device: status %d, want %d", post.StatusCode, http.StatusGone)
	}

	// Rejoin and retry: accepted.
	join, err := http.Post(hs.URL+"/v1/devices", "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":%d}`, gone)))
	if err != nil {
		t.Fatal(err)
	}
	join.Body.Close()
	if join.StatusCode != http.StatusOK {
		t.Fatalf("device rejoin: status %d", join.StatusCode)
	}
	postTask(t, hs.URL, &probe)
	if reg.Counter("mecd.device_leaves").Value() != 1 || reg.Counter("mecd.device_joins").Value() != 1 {
		t.Errorf("device churn counters = %d/%d, want 1/1",
			reg.Counter("mecd.device_leaves").Value(), reg.Counter("mecd.device_joins").Value())
	}
}

// TestStateAndHealth covers the read-only endpoints.
func TestStateAndHealth(t *testing.T) {
	sc := testScenario(t, 9, 10, 2, 20)
	hs, _ := testServer(t, sc, 0)
	for i := 0; i < sc.Tasks.Len(); i++ {
		postTask(t, hs.URL, sc.Tasks.At(i))
	}
	if !bytes.Contains(getBody(t, hs.URL+"/healthz"), []byte(`"ok":true`)) {
		t.Error("healthz body lacks ok:true")
	}
	var st stateDoc
	if err := json.Unmarshal(getBody(t, hs.URL+"/v1/state"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tasks != sc.Tasks.Len() || st.Stations != 2 || st.Devices != 10 {
		t.Errorf("state = %+v, want %d tasks over 2 stations, 10 devices", st, sc.Tasks.Len())
	}
	_ = getBody(t, hs.URL+"/v1/assignments")
	var after stateDoc
	if err := json.Unmarshal(getBody(t, hs.URL+"/v1/state"), &after); err != nil {
		t.Fatal(err)
	}
	for _, sh := range after.Shards {
		if sh.Dirty {
			t.Errorf("station %d still dirty after a solve", sh.Station)
		}
	}
}

// TestBadRequests covers the input-validation edges.
func TestBadRequests(t *testing.T) {
	sc := testScenario(t, 10, 8, 2, 4)
	hs, _ := testServer(t, sc, 0)
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"user":0,"index":1,"op_bytes":1000,"resource":1,"deadline_s":1,"bogus":3}`, http.StatusBadRequest},
		{"invalid task", `{"user":0,"index":1,"op_bytes":-5,"resource":1,"deadline_s":1}`, http.StatusBadRequest},
		{"unknown device", `{"user":999,"index":1,"op_bytes":1000,"resource":1,"deadline_s":1}`, http.StatusNotFound},
		{"unknown source", `{"user":0,"index":1,"op_bytes":1000,"external_bytes":500,"external_source":999,"resource":1,"deadline_s":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/tasks", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Duplicate arrival conflicts.
	postTask(t, hs.URL, sc.Tasks.At(0))
	body, _ := json.Marshal(docFromTask(sc.Tasks.At(0)))
	resp, err := http.Post(hs.URL+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate arrival: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
}

// TestRunSelfcheck drives the whole binary path `mecd -selfcheck` —
// generator boot, real listener, arrival/assign/departure cycle, metrics
// probe — and is the same sequence `make verify` runs.
func TestRunSelfcheck(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-selfcheck", "-preload", "30", "-log-level", "off"}, &out); err != nil {
		t.Fatalf("mecd -selfcheck: %v", err)
	}
	if !strings.Contains(out.String(), "selfcheck ok") {
		t.Errorf("selfcheck output %q lacks ok marker", out.String())
	}
}
