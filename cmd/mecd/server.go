package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/obs"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// server is the online assignment service: per-station shards of warm
// cluster state behind HTTP. Arrivals and departures only mutate their
// station's shard and mark it dirty; /v1/solve and /v1/assignments re-solve
// exactly the dirty shards (warm-starting each cluster LP from its previous
// optimal basis) and merge results in station order, so responses are
// byte-identical at any solver parallelism.
type server struct {
	mux     *http.ServeMux
	m       *costmodel.Model
	logger  *obs.Logger
	reg     *obs.Registry
	workers int

	// topo guards the device presence flags; shard mutexes guard
	// everything per-station.
	topo       sync.RWMutex
	deviceGone []bool

	shards []*shard
}

// shard is one station's mutable state.
type shard struct {
	mu    sync.Mutex
	cs    *core.ClusterState
	dirty bool
	res   *core.ClusterResult // last solve; valid when !dirty
}

func newServer(m *costmodel.Model, reg *obs.Registry, manifest *obs.Manifest, logger *obs.Logger, workers int) (*server, error) {
	sys := m.System()
	s := &server{
		m:          m,
		logger:     logger,
		reg:        reg,
		workers:    workers,
		deviceGone: make([]bool, sys.NumDevices()),
		shards:     make([]*shard, sys.NumStations()),
	}
	if s.workers <= 0 {
		s.workers = len(s.shards)
	}
	opts := &core.LPHTAOptions{Obs: obs.Instruments{Metrics: reg, Log: logger}}
	for st := range s.shards {
		cs, err := core.NewClusterState(m, st, opts)
		if err != nil {
			return nil, err
		}
		s.shards[st] = &shard{cs: cs, dirty: true}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("POST /v1/tasks", s.handleTaskArrival)
	mux.HandleFunc("DELETE /v1/tasks/{user}/{index}", s.handleTaskDeparture)
	mux.HandleFunc("POST /v1/devices", s.handleDeviceJoin)
	mux.HandleFunc("DELETE /v1/devices/{id}", s.handleDeviceLeave)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/assignments", s.handleAssignments)
	// Observability surface: /metrics, /metrics.json, /manifest,
	// /debug/pprof, and the index page.
	mux.Handle("/", obs.Handler(reg, manifest))
	s.mux = mux
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// preload streams a task set into the shards before serving, in arena
// order — the same order the batch planner sees, so a subsequent
// /v1/assignments matches batch LP-HTA placement for placement.
func (s *server) preload(ts *task.Set) error {
	sys := s.m.System()
	for i := 0; i < ts.Len(); i++ {
		t := ts.At(i)
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return err
		}
		sh := s.shards[st]
		sh.mu.Lock()
		err = sh.cs.AddTask(*t)
		sh.dirty = true
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// writeJSON renders v with a stable field order (struct-driven) and a
// trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorDoc is every non-2xx body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// stateDoc is the GET /v1/state body.
type stateDoc struct {
	Stations    int             `json:"stations"`
	Devices     int             `json:"devices"`
	DevicesGone int             `json:"devices_gone"`
	Tasks       int             `json:"tasks"`
	Shards      []shardStateDoc `json:"shards"`
}

type shardStateDoc struct {
	Station int  `json:"station"`
	Tasks   int  `json:"tasks"`
	Dirty   bool `json:"dirty"`
	Warm    bool `json:"warm"`
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	doc := stateDoc{Stations: len(s.shards), Devices: len(s.deviceGone)}
	s.topo.RLock()
	for _, gone := range s.deviceGone {
		if gone {
			doc.DevicesGone++
		}
	}
	s.topo.RUnlock()
	for st, sh := range s.shards {
		sh.mu.Lock()
		d := shardStateDoc{Station: st, Tasks: sh.cs.Len(), Dirty: sh.dirty, Warm: sh.cs.Warm()}
		sh.mu.Unlock()
		doc.Tasks += d.Tasks
		doc.Shards = append(doc.Shards, d)
	}
	writeJSON(w, http.StatusOK, doc)
}

// taskDoc mirrors the scenarioio task encoding, so tasks can be lifted
// from a scenario file straight into POST /v1/tasks.
type taskDoc struct {
	User           int     `json:"user"`
	Index          int     `json:"index"`
	OpBytes        int64   `json:"op_bytes"`
	LocalBytes     int64   `json:"local_bytes"`
	ExternalBytes  int64   `json:"external_bytes"`
	ExternalSource *int    `json:"external_source,omitempty"`
	Resource       float64 `json:"resource"`
	DeadlineS      float64 `json:"deadline_s"`
}

func (td *taskDoc) toTask() task.Task {
	t := task.Task{
		ID:             task.ID{User: td.User, Index: td.Index},
		Kind:           task.Holistic,
		OpSize:         units.ByteSize(td.OpBytes),
		LocalSize:      units.ByteSize(td.LocalBytes),
		ExternalSize:   units.ByteSize(td.ExternalBytes),
		ExternalSource: task.NoExternalSource,
		Resource:       td.Resource,
		Deadline:       units.Duration(td.DeadlineS),
	}
	if td.ExternalSource != nil {
		t.ExternalSource = *td.ExternalSource
	}
	return t
}

func docFromTask(t *task.Task) taskDoc {
	td := taskDoc{
		User:          t.ID.User,
		Index:         t.ID.Index,
		OpBytes:       t.OpSize.Bytes(),
		LocalBytes:    t.LocalSize.Bytes(),
		ExternalBytes: t.ExternalSize.Bytes(),
		Resource:      t.Resource,
		DeadlineS:     t.Deadline.Seconds(),
	}
	if t.HasExternal() {
		src := t.ExternalSource
		td.ExternalSource = &src
	}
	return td
}

// stationOf resolves a device's station, distinguishing "unknown device"
// from "departed device". It returns -1 and writes the error response when
// the task cannot be admitted.
func (s *server) stationOf(w http.ResponseWriter, device int) int {
	st, err := s.m.System().StationOf(device)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown device %d", device)
		return -1
	}
	s.topo.RLock()
	gone := s.deviceGone[device]
	s.topo.RUnlock()
	if gone {
		writeError(w, http.StatusGone, "device %d has left", device)
		return -1
	}
	return st
}

// arrivalDoc is the POST /v1/tasks success body.
type arrivalDoc struct {
	Status  string `json:"status"`
	Station int    `json:"station"`
}

func (s *server) handleTaskArrival(w http.ResponseWriter, r *http.Request) {
	var td taskDoc
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&td); err != nil {
		writeError(w, http.StatusBadRequest, "bad task document: %v", err)
		return
	}
	t := td.toTask()
	if err := t.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.stationOf(w, t.ID.User)
	if st < 0 {
		return
	}
	if t.HasExternal() {
		if _, err := s.m.System().StationOf(t.ExternalSource); err != nil {
			writeError(w, http.StatusBadRequest, "unknown external source %d", t.ExternalSource)
			return
		}
	}
	sh := s.shards[st]
	sh.mu.Lock()
	err := sh.cs.AddTask(t)
	if err == nil {
		sh.dirty = true
	}
	sh.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.reg.Counter("mecd.arrivals").Inc()
	writeJSON(w, http.StatusAccepted, arrivalDoc{Status: "accepted", Station: st})
}

func pathInt(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	v, err := strconv.Atoi(r.PathValue(name))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s %q", name, r.PathValue(name))
		return 0, false
	}
	return v, true
}

func (s *server) handleTaskDeparture(w http.ResponseWriter, r *http.Request) {
	user, ok := pathInt(w, r, "user")
	if !ok {
		return
	}
	index, ok := pathInt(w, r, "index")
	if !ok {
		return
	}
	st, err := s.m.System().StationOf(user)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown device %d", user)
		return
	}
	id := task.ID{User: user, Index: index}
	sh := s.shards[st]
	sh.mu.Lock()
	err = sh.cs.RemoveTask(id)
	if err == nil {
		sh.dirty = true
	}
	sh.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.reg.Counter("mecd.departures").Inc()
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"removed"})
}

// deviceDoc is the POST /v1/devices body (re-join of a provisioned
// device). The topology itself is fixed at boot: joins and leaves toggle a
// provisioned device's presence, they do not grow the system.
type deviceDoc struct {
	ID int `json:"id"`
}

func (s *server) handleDeviceJoin(w http.ResponseWriter, r *http.Request) {
	var dd deviceDoc
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dd); err != nil {
		writeError(w, http.StatusBadRequest, "bad device document: %v", err)
		return
	}
	if _, err := s.m.System().StationOf(dd.ID); err != nil {
		writeError(w, http.StatusNotFound, "unknown device %d (the topology is fixed at boot)", dd.ID)
		return
	}
	s.topo.Lock()
	was := s.deviceGone[dd.ID]
	s.deviceGone[dd.ID] = false
	s.topo.Unlock()
	if was {
		s.reg.Counter("mecd.device_joins").Inc()
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		ID     int    `json:"id"`
	}{"present", dd.ID})
}

func (s *server) handleDeviceLeave(w http.ResponseWriter, r *http.Request) {
	id, ok := pathInt(w, r, "id")
	if !ok {
		return
	}
	st, err := s.m.System().StationOf(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown device %d", id)
		return
	}
	s.topo.Lock()
	was := s.deviceGone[id]
	s.deviceGone[id] = true
	s.topo.Unlock()

	// Cancel everything the device raised; its in-cluster tasks cannot
	// run anywhere once the raising device is gone.
	removed := 0
	sh := s.shards[st]
	sh.mu.Lock()
	for _, tid := range sh.cs.TaskIDs() {
		if tid.User != id {
			continue
		}
		if err := sh.cs.RemoveTask(tid); err == nil {
			removed++
		}
	}
	if removed > 0 {
		sh.dirty = true
	}
	sh.mu.Unlock()
	if !was {
		s.reg.Counter("mecd.device_leaves").Inc()
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		ID      int    `json:"id"`
		Removed int    `json:"removed_tasks"`
	}{"left", id, removed})
}

// solveDirty re-solves every dirty shard over a bounded worker pool and
// returns the first error. Shard results land in shard.res under the shard
// mutex; merge order is always station order, so downstream output does
// not depend on the worker count.
func (s *server) solveDirty() error {
	timer := obs.StartTimer()
	var pending []*shard
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.dirty {
			pending = append(pending, sh)
		} else {
			sh.mu.Unlock()
		}
	}
	// All dirty shards are now locked: arrivals wait while we solve.
	workers := s.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	errs := make([]error, len(pending))
	if workers <= 1 {
		for i, sh := range pending {
			errs[i] = sh.solveLocked()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = pending[i].solveLocked()
				}
			}()
		}
		for i := range pending {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, sh := range pending {
		sh.mu.Unlock()
	}
	if len(pending) > 0 {
		s.reg.Counter("mecd.solves").Inc()
		s.reg.Counter("mecd.solved_shards").Add(int64(len(pending)))
		s.reg.Histogram("mecd.solve_seconds", obs.TimeBuckets).Observe(timer.Seconds())
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) solveLocked() error {
	res, err := sh.cs.Solve()
	if err != nil {
		return err
	}
	sh.res = res
	sh.dirty = false
	return nil
}

// solveDoc is the POST /v1/solve body: the merged Theorem 2 quantities
// plus warm-start accounting, accumulated in station order.
type solveDoc struct {
	Tasks           int     `json:"tasks"`
	Placed          int     `json:"placed"`
	Cancelled       int     `json:"cancelled"`
	LPObjectiveJ    float64 `json:"lp_objective_joules"`
	RoundedEnergyJ  float64 `json:"rounded_energy_joules"`
	DeltaJ          float64 `json:"delta_joules"`
	FractionalTasks int     `json:"fractional_tasks"`
	LPIterations    int     `json:"lp_iterations"`
	PreCancelled    int     `json:"pre_cancelled"`
	WarmShards      int     `json:"warm_shards"`
}

func (s *server) merged() solveDoc {
	var doc solveDoc
	for _, sh := range s.shards {
		sh.mu.Lock()
		res := sh.res
		sh.mu.Unlock()
		if res == nil {
			continue
		}
		doc.Tasks += len(res.Placements)
		for _, p := range res.Placements {
			if p.Level == costmodel.SubsystemNone {
				doc.Cancelled++
			} else {
				doc.Placed++
			}
		}
		doc.LPObjectiveJ += res.LPObjective.Joules()
		doc.RoundedEnergyJ += res.RoundedEnergy.Joules()
		doc.DeltaJ += res.Delta.Joules()
		doc.FractionalTasks += res.FractionalTasks
		doc.LPIterations += res.LPIterations
		doc.PreCancelled += res.PreCancelled
		if res.Warm {
			doc.WarmShards++
		}
	}
	return doc
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if err := s.solveDirty(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.merged())
}

// assignmentDoc is one row of GET /v1/assignments.
type assignmentDoc struct {
	User      int    `json:"user"`
	Index     int    `json:"index"`
	Subsystem string `json:"subsystem"`
}

// assignmentsDoc is the GET /v1/assignments body. Assignments are sorted
// by task ID, so the bytes are independent of shard solve order and
// worker count.
type assignmentsDoc struct {
	Assignments []assignmentDoc `json:"assignments"`
	Summary     solveDoc        `json:"summary"`
}

func (s *server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	if err := s.solveDirty(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	doc := assignmentsDoc{Assignments: []assignmentDoc{}, Summary: s.merged()}
	for _, sh := range s.shards {
		sh.mu.Lock()
		res := sh.res
		sh.mu.Unlock()
		if res == nil {
			continue
		}
		for _, p := range res.Placements {
			doc.Assignments = append(doc.Assignments, assignmentDoc{
				User: p.ID.User, Index: p.ID.Index, Subsystem: p.Level.String(),
			})
		}
	}
	sort.Slice(doc.Assignments, func(i, j int) bool {
		a, b := doc.Assignments[i], doc.Assignments[j]
		if a.User != b.User {
			return a.User < b.User
		}
		return a.Index < b.Index
	})
	writeJSON(w, http.StatusOK, doc)
}
