package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scaffold builds a fake repo root with the given files (paths relative
// to the root, content as value).
func scaffold(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestDocCheckPasses(t *testing.T) {
	root := scaffold(t, map[string]string{
		"internal/alpha/doc.go":   "// Package alpha does things.\npackage alpha\n",
		"internal/alpha/alpha.go": "package alpha\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-doc"}, &out); err != nil {
		t.Fatalf("clean repo failed doc check: %v\n%s", err, out.String())
	}
}

func TestDocCheckMissingDocFile(t *testing.T) {
	root := scaffold(t, map[string]string{
		"internal/alpha/alpha.go": "// Package alpha does things.\npackage alpha\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-doc"}, &out); err == nil {
		t.Fatal("missing doc.go should fail")
	}
	if !strings.Contains(out.String(), "missing doc.go") {
		t.Errorf("violation not reported:\n%s", out.String())
	}
}

func TestDocCheckWrongOpening(t *testing.T) {
	root := scaffold(t, map[string]string{
		"internal/alpha/doc.go":   "// alpha does things.\npackage alpha\n",
		"internal/alpha/alpha.go": "package alpha\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-doc"}, &out); err == nil {
		t.Fatal("doc.go without canonical package sentence should fail")
	}
}

func TestDocCheckIgnoresGoFreeDirs(t *testing.T) {
	root := scaffold(t, map[string]string{
		"internal/alpha/doc.go":        "// Package alpha does things.\npackage alpha\n",
		"internal/alpha/alpha.go":      "package alpha\n",
		"internal/alpha/testdata/x.md": "fixtures only\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-doc"}, &out); err != nil {
		t.Fatalf("testdata dir should not need a doc.go: %v\n%s", err, out.String())
	}
}

func TestLinkCheckPasses(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md": strings.Join([]string{
			"[design](DESIGN.md) and [obs](docs/OBSERVABILITY.md#metrics)",
			"[web](https://example.com) and [mail](mailto:x@example.com)",
			"[frag](#section) stays internal",
			"```",
			"[broken-in-fence](nope.md)",
			"```",
			"and `[broken-in-code](missing.md)` spans",
		}, "\n"),
		"DESIGN.md":               "[back](README.md)\n",
		"docs/OBSERVABILITY.md":   "[up](../README.md)\n",
		"internal/alpha/doc.go":   "// Package alpha does things.\npackage alpha\n",
		"internal/alpha/alpha.go": "package alpha\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-links"}, &out); err != nil {
		t.Fatalf("clean links failed: %v\n%s", err, out.String())
	}
}

func TestLinkCheckBrokenLink(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md": "see [gone](docs/GONE.md)\nand [fine](OK.md)\n",
		"OK.md":     "ok\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-links"}, &out); err == nil {
		t.Fatal("broken link should fail")
	}
	if !strings.Contains(out.String(), "README.md:1") || !strings.Contains(out.String(), "docs/GONE.md") {
		t.Errorf("violation not located:\n%s", out.String())
	}
}

func TestLinkCheckMultipleLinksPerLine(t *testing.T) {
	root := scaffold(t, map[string]string{
		"README.md": "[a](A.md) [b](B.md)\n",
		"A.md":      "a\n",
	})
	var out strings.Builder
	if err := run([]string{"-root", root, "-links"}, &out); err == nil {
		t.Fatal("second broken link on the line should fail")
	}
	if !strings.Contains(out.String(), "B.md") {
		t.Errorf("missing violation for second link:\n%s", out.String())
	}
}

func TestNoModeIsAnError(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-root", "."}, &out); err == nil {
		t.Error("no mode selected should fail")
	}
}

// TestRealRepoIsClean runs both checks against the actual repository the
// test binary lives in, so the hygiene gate and the tree cannot drift.
func TestRealRepoIsClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-root", "../..", "-doc", "-links"}, &out); err != nil {
		t.Fatalf("repository not clean: %v\n%s", err, out.String())
	}
}
