// Command repolint runs the repository hygiene checks that gofmt and vet
// do not cover:
//
//	repolint -doc     # every internal/ package has a doc.go package comment
//	repolint -links   # every relative markdown link resolves to a file
//	repolint -doc -links -root /path/to/repo
//
// The checks themselves live in internal/repolint and also run as the
// docs and links checks of cmd/meclint; this binary is the thin original
// entry point kept for scripts that call it directly.
//
// Exit code 0 when clean, 1 with one line per violation otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsmec/internal/repolint"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	var (
		root  = fs.String("root", ".", "repository root to lint")
		doc   = fs.Bool("doc", false, "check that every internal/ package has a doc.go package comment")
		links = fs.Bool("links", false, "check that relative markdown links resolve")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*doc && !*links {
		return fmt.Errorf("nothing to do: pass -doc and/or -links")
	}

	var violations []string
	if *doc {
		v, err := repolint.CheckDocs(*root)
		if err != nil {
			return err
		}
		violations = append(violations, v...)
	}
	if *links {
		v, err := repolint.CheckLinks(*root)
		if err != nil {
			return err
		}
		violations = append(violations, v...)
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, v)
	}
	if n := len(violations); n > 0 {
		return fmt.Errorf("%d violation(s)", n)
	}
	return nil
}
