// Command repolint runs the repository hygiene checks that gofmt and vet
// do not cover:
//
//	repolint -doc     # every internal/ package has a doc.go package comment
//	repolint -links   # every relative markdown link resolves to a file
//	repolint -doc -links -root /path/to/repo
//
// The -doc check enforces the documentation convention that each package
// keeps its package comment in a dedicated doc.go (starting with the
// canonical "// Package <name>" sentence), so the comment has one obvious
// home and survives file-level refactors. The -links check walks every
// *.md file in the repository root and docs/ tree, extracts markdown link
// targets outside code blocks, and fails when a relative target does not
// exist — the cheap way to keep a growing documentation suite from
// silently rotting as files move.
//
// Exit code 0 when clean, 1 with one line per violation otherwise. Both
// checks run from `make verify` and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	var (
		root  = fs.String("root", ".", "repository root to lint")
		doc   = fs.Bool("doc", false, "check that every internal/ package has a doc.go package comment")
		links = fs.Bool("links", false, "check that relative markdown links resolve")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*doc && !*links {
		return fmt.Errorf("nothing to do: pass -doc and/or -links")
	}

	var violations []string
	if *doc {
		v, err := checkDocs(*root)
		if err != nil {
			return err
		}
		violations = append(violations, v...)
	}
	if *links {
		v, err := checkLinks(*root)
		if err != nil {
			return err
		}
		violations = append(violations, v...)
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, v)
	}
	if n := len(violations); n > 0 {
		return fmt.Errorf("%d violation(s)", n)
	}
	return nil
}

// checkDocs requires a doc.go in every directory under internal/ that
// contains Go files, opening with the canonical package comment.
func checkDocs(root string) ([]string, error) {
	var violations []string
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(filepath.Join(path, "doc.go"))
		if os.IsNotExist(err) {
			violations = append(violations, fmt.Sprintf("%s: missing doc.go with the package comment", rel))
			return nil
		}
		if err != nil {
			return err
		}
		if !strings.HasPrefix(string(data), "// Package "+filepath.Base(path)) {
			violations = append(violations,
				fmt.Sprintf("%s/doc.go: must start with %q", rel, "// Package "+filepath.Base(path)))
		}
		return nil
	})
	return violations, err
}

// mdLink matches inline markdown links [text](target); images share the
// same target syntax, so ![alt](target) is covered by the same pattern.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkLinks validates every relative link in the root-level and docs/
// markdown files.
func checkLinks(root string) ([]string, error) {
	var files []string
	rootMD, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		return nil, err
	}
	docsMD, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	files = append(append(files, rootMD...), docsMD...)

	var violations []string
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return nil, err
		}
		for _, l := range extractLinks(string(data)) {
			t := l.target
			if i := strings.IndexByte(t, '#'); i >= 0 {
				t = t[:i]
			}
			if t == "" {
				continue // pure fragment, points into the same document
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(t))
			if _, err := os.Stat(resolved); err != nil {
				violations = append(violations, fmt.Sprintf("%s:%d: broken link %q", rel, l.line, l.target))
			}
		}
	}
	return violations, nil
}

// linkRef is one markdown link target and the line it appears on.
type linkRef struct {
	line   int
	target string
}

// extractLinks returns line-numbered relative link targets, skipping
// fenced code blocks, inline code spans, and absolute URLs.
func extractLinks(content string) []linkRef {
	var out []linkRef
	inFence := false
	for i, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatchIndex(stripInlineCode(line), -1) {
			target := line[m[2]:m[3]]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			out = append(out, linkRef{line: i + 1, target: target})
		}
	}
	return out
}

// stripInlineCode blanks `code spans` so links inside them are ignored
// while byte offsets into the original line stay valid.
func stripInlineCode(line string) string {
	var b strings.Builder
	inCode := false
	for _, r := range line {
		if r == '`' {
			inCode = !inCode
			b.WriteRune('`')
			continue
		}
		if inCode {
			b.WriteRune(' ')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
