// Package dsmec is a from-scratch Go implementation of the task-assignment
// algorithms for data-shared mobile edge computing systems from
//
//	S. Cheng, Z. Chen, J. Li, H. Gao.
//	"Task Assignment Algorithms in Data Shared Mobile Edge Computing
//	Systems", ICDCS 2019.
//
// The package is the stable facade over the implementation: it re-exports
// the system model (devices, base stations, cloud, radio and backhaul
// links), the Section II cost model, the three algorithms of the paper
// (LP-HTA for holistic tasks; DTA-Workload and DTA-Number plus task
// rearrangement for divisible tasks), the evaluation baselines, a
// discrete-event simulator that executes assignments with real queueing,
// the workload generator used by the evaluation, and the experiment
// harness that regenerates every table and figure of Section V.
//
// # Quick start
//
//	src := dsmec.NewSeed(42)
//	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{NumTasks: 100})
//	if err != nil { ... }
//	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
//	if err != nil { ... }
//	metrics, err := dsmec.Evaluate(sc.Model, sc.Tasks, res.Assignment)
//
// See examples/ for complete programs and cmd/mecbench for the
// figure-by-figure reproduction of the paper's evaluation.
package dsmec

import (
	"io"
	"math/rand"
	"net/http"
	"time"

	"dsmec/internal/baseline"
	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/datamap"
	"dsmec/internal/experiment"
	"dsmec/internal/lp"
	"dsmec/internal/mecnet"
	"dsmec/internal/obs"
	"dsmec/internal/rng"
	"dsmec/internal/sim"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// Quantities and identifiers.
type (
	// ByteSize is a data size in bytes.
	ByteSize = units.ByteSize
	// Duration is a length of time in seconds (float64-based; the cost
	// model needs infinities and sub-nanosecond precision).
	Duration = units.Duration
	// Energy is an amount of energy in joules.
	Energy = units.Energy
	// TaskID identifies task T_ij.
	TaskID = task.ID
	// BlockID identifies one data block of the shared universe.
	BlockID = datamap.BlockID
)

// Size and time scales.
const (
	Kilobyte    = units.Kilobyte
	Megabyte    = units.Megabyte
	Second      = units.Second
	Millisecond = units.Millisecond
)

// System model.
type (
	// System is the three-level MEC topology: devices in clusters behind
	// base stations, behind one cloud.
	System = mecnet.System
	// Device is one mobile device.
	Device = mecnet.Device
	// Station is one base station.
	Station = mecnet.Station
	// CostModel evaluates the Section II delay/energy formulas.
	CostModel = costmodel.Model
	// Subsystem identifies where a task runs (device, station, cloud).
	Subsystem = costmodel.Subsystem
	// Cost is a (delay, energy) pair for one placement choice.
	Cost = costmodel.Cost
)

// Subsystem values.
const (
	OnDevice  = costmodel.SubsystemDevice
	OnStation = costmodel.SubsystemStation
	OnCloud   = costmodel.SubsystemCloud
	Cancelled = costmodel.SubsystemNone
)

// Tasks and data.
type (
	// Task is one computation task T_ij.
	Task = task.Task
	// TaskSet is an ordered collection of tasks.
	TaskSet = task.Set
	// BlockSet is a set of data blocks.
	BlockSet = datamap.Set
	// Placement records which device holds which blocks ({D_i}).
	Placement = datamap.Placement
)

// Task kinds.
const (
	Holistic  = task.Holistic
	Divisible = task.Divisible
)

// Algorithms and results.
type (
	// Assignment maps tasks to subsystems.
	Assignment = core.Assignment
	// Metrics summarizes an assignment (energy, latency, unsatisfied
	// rate).
	Metrics = core.Metrics
	// HTAResult is LP-HTA's outcome including the Theorem 2 quantities.
	HTAResult = core.HTAResult
	// LPHTAOptions tunes LP-HTA (rounding rule, repair order).
	LPHTAOptions = core.LPHTAOptions
	// LPMethod selects the simplex implementation behind the LP-HTA
	// relaxations.
	LPMethod = lp.Method
	// DTAOptions selects the divisible-task goal.
	DTAOptions = core.DTAOptions
	// DTAResult is the outcome of the divisible-task pipeline.
	DTAResult = core.DTAResult
	// Goal is the data-division objective.
	Goal = core.Goal
)

// DTA goals.
const (
	GoalWorkload = core.GoalWorkload
	GoalNumber   = core.GoalNumber
)

// LP solve methods (LPHTAOptions.LPMethod).
const (
	// LPMethodAuto resolves to the package default, the revised simplex.
	LPMethodAuto = lp.MethodAuto
	// LPMethodRevised is the LU-factorized revised simplex.
	LPMethodRevised = lp.MethodRevised
	// LPMethodDense is the dense tableau reference implementation.
	LPMethodDense = lp.MethodDense
)

// Workloads and experiments.
type (
	// WorkloadParams configures scenario generation (Section V.A
	// defaults).
	WorkloadParams = workload.Params
	// Scenario is a generated system + cost model + tasks (+ placement).
	Scenario = workload.Scenario
	// Seed derives independent named random streams.
	Seed = rng.Source
	// ExperimentOptions tunes a figure reproduction.
	ExperimentOptions = experiment.Options
	// Figure is a reproduced table or figure.
	Figure = experiment.Figure
	// Experiment pairs an id with its runner.
	Experiment = experiment.Definition
)

// Simulation.
type (
	// SimConfig sizes the discrete-event simulator's shared resources.
	SimConfig = sim.Config
	// SimResult is a simulation run's outcome.
	SimResult = sim.Result
)

// NewSeed returns a seed from which all scenario randomness derives.
func NewSeed(seed int64) *Seed { return rng.NewSource(seed) }

// NewCostModel builds the Section II cost model over a system; nil cycle
// and result models default to the paper's λ = 330 cycles/byte and η = 0.2.
func NewCostModel(sys *System) (*CostModel, error) {
	return costmodel.New(sys, nil, nil)
}

// GenerateHolistic builds a holistic-task scenario with the Section V.A
// parameter defaults.
func GenerateHolistic(src *Seed, params WorkloadParams) (*Scenario, error) {
	return workload.GenerateHolistic(src, params)
}

// GenerateDivisible builds a divisible-task scenario over a shared block
// universe with overlapping device holdings.
func GenerateDivisible(src *Seed, params WorkloadParams) (*Scenario, error) {
	return workload.GenerateDivisible(src, params)
}

// LPHTA runs the Section III holistic task assignment (LP relaxation,
// rounding, repair). A nil options value gives the paper's configuration.
func LPHTA(m *CostModel, ts *TaskSet, opts *LPHTAOptions) (*HTAResult, error) {
	return core.LPHTA(m, ts, opts)
}

// ParseLPMethod converts a CLI flag value ("auto", "revised", or
// "dense") into an LPMethod.
func ParseLPMethod(s string) (LPMethod, error) { return lp.ParseMethod(s) }

// DTA runs the Section IV divisible task assignment: data division per
// opts.Goal, task rearrangement, LP-HTA scheduling, and descriptor/result
// accounting.
func DTA(m *CostModel, ts *TaskSet, placement *Placement, opts DTAOptions) (*DTAResult, error) {
	return core.DTA(m, ts, placement, opts)
}

// Evaluate computes the metrics of an assignment under the analytic cost
// model.
func Evaluate(m *CostModel, ts *TaskSet, a *Assignment) (*Metrics, error) {
	return core.Evaluate(m, ts, a)
}

// CheckFeasible verifies the HTA constraints C1–C5 against an assignment.
func CheckFeasible(m *CostModel, ts *TaskSet, a *Assignment) error {
	return core.CheckFeasible(m, ts, a)
}

// Simulate executes an assignment in the discrete-event simulator,
// returning realized (queueing-aware) latencies.
func Simulate(m *CostModel, ts *TaskSet, a *Assignment, cfg SimConfig) (*SimResult, error) {
	return sim.Run(m, ts, a, cfg)
}

// Baselines of the paper's evaluation.

// AllToC assigns every task to the cloud.
func AllToC(ts *TaskSet) *Assignment { return baseline.AllToC(ts) }

// AllOffload offloads every task to its station (until max_S) or the
// cloud.
func AllOffload(m *CostModel, ts *TaskSet) (*Assignment, error) {
	return baseline.AllOffload(m, ts)
}

// HGOS is the reimplemented heuristic greedy offloading scheme of [12]:
// latency-greedy, capacity-aware, deadline-blind.
func HGOS(m *CostModel, ts *TaskSet) (*Assignment, error) {
	return baseline.HGOS(m, ts)
}

// RandomAssign places every task uniformly at random.
func RandomAssign(r *rand.Rand, ts *TaskSet) *Assignment {
	return baseline.Random(r, ts)
}

// BruteForceHTA computes the exact HTA optimum on small instances.
func BruteForceHTA(m *CostModel, ts *TaskSet) (*Assignment, error) {
	return baseline.BruteForceHTA(m, ts)
}

// Experiments returns every reproducible artifact: the paper's Table I and
// Figs. 2–6 plus the validation and ablation studies.
func Experiments() []Experiment { return experiment.Registry() }

// ExperimentByID looks up one experiment.
func ExperimentByID(id string) (Experiment, bool) { return experiment.ByID(id) }

// Feedback planning (extension beyond the paper).
type (
	// FeedbackOptions tunes the simulator-in-the-loop planner.
	FeedbackOptions = sim.FeedbackOptions
	// FeedbackResult is its outcome.
	FeedbackResult = sim.FeedbackResult
)

// PlanWithFeedback plans with LP-HTA, measures queueing inflation in the
// discrete-event simulator, and replans with tightened deadlines until the
// unsatisfied-task count stops improving.
func PlanWithFeedback(m *CostModel, ts *TaskSet, opts FeedbackOptions) (*FeedbackResult, error) {
	return sim.PlanWithFeedback(m, ts, opts)
}

// Observability: metrics, tracing, and run manifests.
type (
	// Instruments selects where an operation records metrics and trace
	// spans; the zero value is disabled. Options types (LPHTAOptions,
	// DTAOptions, SimConfig, FeedbackOptions) embed one as their Obs
	// field.
	Instruments = obs.Instruments
	// MetricRegistry collects counters, gauges, and histograms.
	MetricRegistry = obs.Registry
	// MetricSnapshot is a point-in-time copy of a registry's values.
	MetricSnapshot = obs.Snapshot
	// Trace records spans in the Chrome trace_event format.
	Trace = obs.Trace
	// Span is one timed, annotatable operation inside a trace.
	Span = obs.Span
	// RunManifest is the machine-readable record of one run.
	RunManifest = obs.Manifest
)

// NewMetricRegistry returns an empty metric registry.
func NewMetricRegistry() *MetricRegistry { return obs.NewRegistry() }

// NewTrace starts a span recorder; export with WriteJSON/WriteFile and
// open the result in chrome://tracing or https://ui.perfetto.dev.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// NewRunManifest starts a run manifest stamped with the environment and
// the wall/CPU clocks; Finish it with a registry before writing.
func NewRunManifest(tool string, args []string) *RunManifest {
	return obs.NewManifest(tool, args)
}

// SetGlobalMetrics installs the process-wide default registry that
// instrumented code without an explicit Instruments value records to
// (nil disables).
func SetGlobalMetrics(reg *MetricRegistry) { obs.SetGlobal(reg) }

// GlobalMetrics returns the process-wide default registry, nil when
// disabled.
func GlobalMetrics() *MetricRegistry { return obs.Global() }

// Live introspection: structured logging, the exposition server, and
// periodic registry snapshots.
type (
	// Logger is a nil-safe slog wrapper; a nil *Logger discards
	// everything, so instrumented code never branches on "logging on?".
	Logger = obs.Logger
	// ObsServer serves /metrics (Prometheus text), /metrics.json,
	// /manifest, and /debug/pprof for a live run.
	ObsServer = obs.Server
	// RegistrySnapshotter appends timestamped registry snapshots to a
	// JSON Lines file while a run progresses.
	RegistrySnapshotter = obs.Snapshotter
	// RegistrySnapshotRecord is one line of that file: cumulative
	// metrics plus the counter deltas since the previous record.
	RegistrySnapshotRecord = obs.SnapshotRecord
)

// NewLogger builds a structured logger writing to w at the given level
// ("debug", "info", "warn", "error", or "off") and format ("text" or
// "json"). Level "off" returns nil, which every log call treats as a
// no-op.
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	return obs.NewLogger(w, level, format)
}

// SetGlobalLogger installs the process-wide default logger that
// instrumented code without an explicit Instruments.Log records to (nil
// disables).
func SetGlobalLogger(l *Logger) { obs.SetGlobalLogger(l) }

// GlobalLogger returns the process-wide default logger, nil when
// disabled.
func GlobalLogger() *Logger { return obs.GlobalLogger() }

// NewObsServer starts the live exposition server on addr (host:port;
// port 0 picks a free one) over a registry and an optional in-flight
// manifest. Close it when the run ends.
func NewObsServer(addr string, reg *MetricRegistry, m *RunManifest) (*ObsServer, error) {
	return obs.NewServer(addr, reg, m)
}

// ObsHandler returns the exposition server's http.Handler without
// binding a listener, for embedding into an existing mux.
func ObsHandler(reg *MetricRegistry, m *RunManifest) http.Handler {
	return obs.Handler(reg, m)
}

// StartRegistrySnapshotter appends a snapshot of reg to path every
// interval until Close, which writes one final record.
func StartRegistrySnapshotter(path string, interval time.Duration, reg *MetricRegistry) (*RegistrySnapshotter, error) {
	return obs.StartSnapshotter(path, interval, reg)
}

// ReadRegistrySnapshots loads every record of a snapshot JSONL file.
func ReadRegistrySnapshots(path string) ([]RegistrySnapshotRecord, error) {
	return obs.ReadSnapshots(path)
}

// WritePrometheus renders a metric snapshot in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheus(w io.Writer, s MetricSnapshot) error {
	return obs.WritePrometheus(w, s)
}

// BatteryReport is the per-device battery drain of an assignment.
type BatteryReport = core.BatteryReport

// Battery computes per-device battery drain using the cost model's energy
// attribution (who pays which joule).
func Battery(m *CostModel, ts *TaskSet, a *Assignment) (*BatteryReport, error) {
	return core.Battery(m, ts, a)
}

// SimulateReleases executes an assignment with per-task release times,
// relaxing the paper's quasi-static assumption; deadlines are checked
// against sojourn time (completion minus release).
func SimulateReleases(m *CostModel, ts *TaskSet, a *Assignment, cfg SimConfig, releases map[TaskID]Duration) (*SimResult, error) {
	return sim.RunReleases(m, ts, a, cfg, releases)
}

// Fault injection and recovery (extension beyond the paper).
type (
	// FaultPlan is a deterministic schedule of station outages, device
	// departures, and backhaul degradation the simulator injects as
	// first-class events (SimConfig.Faults; nil disables).
	FaultPlan = sim.FaultPlan
	// FaultParams tunes GenerateFaultPlan.
	FaultParams = sim.FaultParams
	// RecoveryPolicy tunes retry backoff and reassignment for faulted
	// tasks.
	RecoveryPolicy = sim.RecoveryPolicy
	// FaultStats is the graceful-degradation accounting of a faulted run
	// (SimResult.Faults).
	FaultStats = sim.FaultStats
	// FaultEvent is one entry of a run's fault/recovery log
	// (SimResult.FaultLog).
	FaultEvent = sim.FaultEvent
	// Survivors describes the degraded topology for ReplanOnSurvivors.
	Survivors = core.Survivors
)

// DefaultFaultParams is the CLI's -faults preset.
func DefaultFaultParams() FaultParams { return sim.DefaultFaultParams() }

// GenerateFaultPlan draws a deterministic fault schedule for the topology;
// the same (seed, topology, params) always yields the same plan.
func GenerateFaultPlan(src *Seed, sys *System, params FaultParams) *FaultPlan {
	return sim.GenerateFaultPlan(src, sys, params)
}

// ReplanOnSurvivors re-runs the cost model for one orphaned task against
// the degraded topology and returns the subsystem it should move to
// (Cancelled when nothing survives for it).
func ReplanOnSurvivors(m *CostModel, t *Task, sv Survivors) (Subsystem, error) {
	return core.ReplanOnSurvivors(m, t, sv)
}
