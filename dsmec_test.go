package dsmec_test

import (
	"errors"
	"testing"

	"dsmec"
	"dsmec/internal/core"
)

// TestEndToEndHolistic is the integration path of the README quick start:
// generate, assign, check, evaluate, simulate.
func TestEndToEndHolistic(t *testing.T) {
	src := dsmec.NewSeed(42)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices: 20, NumStations: 4, NumTasks: 80,
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, res.Assignment); err != nil {
		t.Fatal(err)
	}
	metrics, err := dsmec.Evaluate(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.TotalEnergy <= 0 {
		t.Error("energy should be positive")
	}

	// The baselines all cost at least as much energy as LP-HTA here...
	cloud, err := dsmec.Evaluate(sc.Model, sc.Tasks, dsmec.AllToC(sc.Tasks))
	if err != nil {
		t.Fatal(err)
	}
	if cloud.TotalEnergy <= metrics.TotalEnergy {
		t.Error("AllToC should cost more than LP-HTA")
	}

	offload, err := dsmec.AllOffload(sc.Model, sc.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	om, err := dsmec.Evaluate(sc.Model, sc.Tasks, offload)
	if err != nil {
		t.Fatal(err)
	}
	if om.TotalEnergy <= metrics.TotalEnergy {
		t.Error("AllOffload should cost more than LP-HTA")
	}

	hgos, err := dsmec.HGOS(sc.Model, sc.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := dsmec.Evaluate(sc.Model, sc.Tasks, hgos)
	if err != nil {
		t.Fatal(err)
	}
	if hm.UnsatisfiedRate() < metrics.UnsatisfiedRate()-1e-9 {
		t.Error("deadline-blind HGOS should not beat LP-HTA on unsatisfied rate")
	}

	// Simulated execution: energy identical, latency no smaller.
	simRes, err := dsmec.Simulate(sc.Model, sc.Tasks, res.Assignment, dsmec.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(simRes.TotalEnergy - metrics.TotalEnergy)
	if diff > 1e-6 || diff < -1e-6 {
		t.Errorf("simulated energy %v != analytic %v", simRes.TotalEnergy, metrics.TotalEnergy)
	}
	if simRes.MeanLatency() < metrics.MeanLatency() {
		t.Error("queueing cannot reduce mean latency")
	}
}

// TestEndToEndDivisible covers the DTA pipeline through the facade.
func TestEndToEndDivisible(t *testing.T) {
	src := dsmec.NewSeed(7)
	sc, err := dsmec.GenerateDivisible(src, dsmec.WorkloadParams{
		NumDevices: 20, NumStations: 4, NumTasks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	holistic, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := dsmec.Evaluate(sc.Model, sc.Tasks, holistic.Assignment)
	if err != nil {
		t.Fatal(err)
	}

	byWorkload, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement, dsmec.DTAOptions{Goal: dsmec.GoalWorkload})
	if err != nil {
		t.Fatal(err)
	}
	byNumber, err := dsmec.DTA(sc.Model, sc.Tasks, sc.Placement, dsmec.DTAOptions{Goal: dsmec.GoalNumber})
	if err != nil {
		t.Fatal(err)
	}

	if byWorkload.Metrics.TotalEnergy >= hm.TotalEnergy {
		t.Error("DTA-Workload should save energy vs holistic LP-HTA")
	}
	if byNumber.Metrics.InvolvedDevices > byWorkload.Metrics.InvolvedDevices {
		t.Error("DTA-Number should involve no more devices than DTA-Workload")
	}
}

func TestBruteForceFacade(t *testing.T) {
	src := dsmec.NewSeed(3)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices: 2, NumStations: 1, NumTasks: 6,
		DeadlineSlackMin: 1.5, DeadlineSlackMax: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := dsmec.BruteForceHTA(sc.Model, sc.Tasks)
	if errors.Is(err, core.ErrNoFeasible) {
		t.Skip("instance infeasible without cancellation")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := dsmec.CheckFeasible(sc.Model, sc.Tasks, opt); err != nil {
		t.Error(err)
	}
}

func TestRandomAssignFacade(t *testing.T) {
	src := dsmec.NewSeed(4)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices: 5, NumStations: 1, NumTasks: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := dsmec.RandomAssign(src.Stream("random"), sc.Tasks)
	m, err := dsmec.Evaluate(sc.Model, sc.Tasks, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTasks != 20 {
		t.Errorf("NumTasks = %d, want 20", m.NumTasks)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := dsmec.Experiments()
	if len(exps) < 10 {
		t.Fatalf("expected at least the 10 paper artifacts, got %d", len(exps))
	}
	def, ok := dsmec.ExperimentByID("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	fig, err := def.Run(dsmec.ExperimentOptions{Trials: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table1" || len(fig.Rows) != 2 {
		t.Error("table1 figure malformed")
	}
}

func TestCostModelFacade(t *testing.T) {
	src := dsmec.NewSeed(5)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices: 4, NumStations: 2, NumTasks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dsmec.NewCostModel(sc.System)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := m.Eval(sc.Tasks.At(0))
	if err != nil {
		t.Fatal(err)
	}
	e1 := opts.At(dsmec.OnDevice).Energy
	e2 := opts.At(dsmec.OnStation).Energy
	e3 := opts.At(dsmec.OnCloud).Energy
	if !(e1 < e2 && e2 < e3) {
		t.Errorf("expected E1 < E2 < E3, got %v %v %v", e1, e2, e3)
	}
}

func TestExtensionsFacade(t *testing.T) {
	src := dsmec.NewSeed(11)
	sc, err := dsmec.GenerateHolistic(src, dsmec.WorkloadParams{
		NumDevices: 10, NumStations: 2, NumTasks: 40,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Battery attribution accounts for every joule.
	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := dsmec.Evaluate(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	report, err := dsmec.Battery(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(report.Total() - metrics.TotalEnergy)
	if diff > 1e-9 || diff < -1e-9 {
		t.Errorf("battery total %v != metrics %v", report.Total(), metrics.TotalEnergy)
	}

	// Timed releases: spreading arrivals cannot slow anything down.
	releases := make(map[dsmec.TaskID]dsmec.Duration)
	for i, tk := range sc.Tasks.All() {
		releases[tk.ID] = dsmec.Duration(i) * 0.5 * dsmec.Second
	}
	spread, err := dsmec.SimulateReleases(sc.Model, sc.Tasks, res.Assignment, dsmec.SimConfig{}, releases)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dsmec.Simulate(sc.Model, sc.Tasks, res.Assignment, dsmec.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spread.DeadlineViolations > batch.DeadlineViolations {
		t.Errorf("spread arrivals missed more deadlines: %d vs %d",
			spread.DeadlineViolations, batch.DeadlineViolations)
	}

	// Feedback planning never does worse than plain LP-HTA.
	fb, err := dsmec.PlanWithFeedback(sc.Model, sc.Tasks, dsmec.FeedbackOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, best := fb.Rounds[0], fb.Rounds[fb.Best]
	if best.Misses+best.Cancelled > base.Misses+base.Cancelled {
		t.Error("feedback planning did worse than its own baseline")
	}
}
