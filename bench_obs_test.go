package dsmec_test

import (
	"fmt"
	"testing"

	"dsmec"
)

// Observability overhead benchmarks: the same pipeline with
// instrumentation disabled (nil handles, the default) and enabled (a live
// registry). The acceptance bar is <5% slowdown enabled and no measurable
// change disabled relative to the uninstrumented baselines above. All
// observability benchmarks share the BenchmarkObs prefix so `make
// bench-obs` selects them with a single stable filter.
//
//	go test -bench BenchmarkObs -benchtime 2s .

func BenchmarkObsLPHTA(b *testing.B) {
	for _, n := range []int{100, 450} {
		sc := holisticScenario(b, n)
		b.Run(fmt.Sprintf("tasks=%d/disabled", n), func(b *testing.B) {
			opts := &dsmec.LPHTAOptions{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dsmec.LPHTA(sc.Model, sc.Tasks, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tasks=%d/metrics", n), func(b *testing.B) {
			opts := &dsmec.LPHTAOptions{Obs: dsmec.Instruments{Metrics: dsmec.NewMetricRegistry()}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dsmec.LPHTA(sc.Model, sc.Tasks, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tasks=%d/metrics+trace", n), func(b *testing.B) {
			trace := dsmec.NewTrace("bench")
			root := trace.StartSpan("bench")
			defer root.End()
			opts := &dsmec.LPHTAOptions{Obs: dsmec.Instruments{
				Metrics: dsmec.NewMetricRegistry(), Span: root,
			}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dsmec.LPHTA(sc.Model, sc.Tasks, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkObsSimulator(b *testing.B) {
	sc := holisticScenario(b, 450)
	res, err := dsmec.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dsmec.Simulate(sc.Model, sc.Tasks, res.Assignment, dsmec.SimConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		cfg := dsmec.SimConfig{Obs: dsmec.Instruments{Metrics: dsmec.NewMetricRegistry()}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dsmec.Simulate(sc.Model, sc.Tasks, res.Assignment, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
