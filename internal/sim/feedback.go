package sim

import (
	"fmt"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/obs"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// FeedbackOptions tunes PlanWithFeedback.
type FeedbackOptions struct {
	// Rounds is the number of replan iterations after the initial LP-HTA
	// pass. Default 3.
	Rounds int
	// Sim configures the simulator used for the feedback measurements.
	Sim Config
	// LPHTA configures the scheduling stage.
	LPHTA core.LPHTAOptions
	// MaxTightening caps how much a task's planning deadline may shrink
	// relative to its real deadline (default 8: plan as if the deadline
	// were up to 8x tighter).
	MaxTightening float64
	// Incremental replans rounds ≥ 1 through warm per-station cluster
	// states (core.ClusterState) instead of rebuilding every cluster LP
	// from scratch: each round pushes only the deadline changes since the
	// previous round and re-solves only the clusters those changes
	// touched, warm-starting from the previous optimal basis. Requires
	// the revised LP method (the default).
	Incremental bool
	// Obs selects where metrics and trace spans are recorded; the
	// planner and simulator stages inherit it per round.
	Obs obs.Instruments
}

func (o FeedbackOptions) withDefaults() FeedbackOptions {
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.MaxTightening == 0 {
		o.MaxTightening = 8
	}
	return o
}

// RoundStats records one feedback iteration.
type RoundStats struct {
	// Misses is the number of placed tasks finishing after their real
	// deadline in the simulator.
	Misses int
	// Cancelled is the number of tasks the planner gave up on.
	Cancelled int
	// Lost is the number of placed tasks the fault recovery gave up on
	// (always 0 without fault injection).
	Lost int
	// Energy is the analytic total energy of the round's assignment.
	Energy units.Energy
	// MeanLatency is the simulated mean latency.
	MeanLatency units.Duration
}

// FeedbackResult is the outcome of PlanWithFeedback.
type FeedbackResult struct {
	// Assignment is the best assignment found (fewest simulated misses;
	// energy breaks ties).
	Assignment *core.Assignment
	// Best indexes Rounds at the chosen assignment.
	Best int
	// Rounds records every iteration, index 0 being plain LP-HTA.
	Rounds []RoundStats
}

// PlanWithFeedback goes beyond the paper: it closes the loop between the
// closed-form planner and the queueing reality. Plain LP-HTA satisfies
// deadlines against the analytic t_ijl, but under contention the simulated
// completions inflate and many deadlines are missed (see the simcheck
// experiment). Each feedback round measures per-task inflation in the
// simulator and replans with deadlines tightened by that factor, making
// LP-HTA spread load away from contended resources (or cancel tasks it
// cannot protect). The assignment with the fewest unsatisfied tasks
// (simulated misses plus cancellations) wins; energy breaks ties.
func PlanWithFeedback(m *costmodel.Model, ts *task.Set, opts FeedbackOptions) (*FeedbackResult, error) {
	opts = opts.withDefaults()

	span := opts.Obs.Span.Child("feedback")
	defer span.End()
	opts.Obs.Counter("feedback.runs").Inc()
	// Every stage below records under a per-round child span.
	roundSpan := span.Child("feedback.round0")
	if opts.LPHTA.Obs.Metrics == nil {
		opts.LPHTA.Obs.Metrics = opts.Obs.Metrics
	}
	if opts.Sim.Obs.Metrics == nil {
		opts.Sim.Obs.Metrics = opts.Obs.Metrics
	}
	opts.LPHTA.Obs.Span = roundSpan
	opts.Sim.Obs.Span = roundSpan

	res := &FeedbackResult{}
	record := func(a *core.Assignment) (*Result, error) {
		simRes, err := Run(m, ts, a, opts.Sim)
		if err != nil {
			return nil, err
		}
		metrics, err := core.Evaluate(m, ts, a)
		if err != nil {
			return nil, err
		}
		lost := 0
		if simRes.Faults != nil {
			lost = simRes.Faults.Lost
		}
		res.Rounds = append(res.Rounds, RoundStats{
			Misses:      simRes.DeadlineViolations,
			Cancelled:   simRes.Cancelled,
			Lost:        lost,
			Energy:      metrics.TotalEnergy,
			MeanLatency: simRes.MeanLatency(),
		})
		return simRes, nil
	}
	better := func(i, j int) bool { // is round i better than round j?
		a, b := res.Rounds[i], res.Rounds[j]
		// Rank by the paper's unsatisfied notion: deadline misses plus
		// cancellations (plus fault-lost tasks); energy breaks ties.
		if ua, ub := a.Misses+a.Cancelled+a.Lost, b.Misses+b.Cancelled+b.Lost; ua != ub {
			return ua < ub
		}
		return a.Energy < b.Energy
	}

	// Round 0: plain LP-HTA.
	base, err := core.LPHTA(m, ts, &opts.LPHTA)
	if err != nil {
		return nil, fmt.Errorf("sim: feedback round 0: %w", err)
	}
	simRes, err := record(base.Assignment)
	roundSpan.End()
	if err != nil {
		return nil, err
	}
	res.Assignment = base.Assignment
	res.Best = 0
	opts.Obs.Counter("feedback.rounds").Inc()

	// Per-task tightening factors in task-set arena order, refined each
	// round. The rebuilt sets below preserve that order, so simulation
	// outcomes and tightening entries always align by index.
	tighten := make([]float64, ts.Len())
	for i := range tighten {
		tighten[i] = 1
	}

	var fc *feedbackClusters
	if opts.Incremental {
		lpOpts := opts.LPHTA
		lpOpts.Obs.Span = span
		if fc, err = newFeedbackClusters(m, ts, lpOpts); err != nil {
			return nil, fmt.Errorf("sim: feedback incremental setup: %w", err)
		}
	}

	for round := 1; round <= opts.Rounds; round++ {
		roundSpan := span.Child(fmt.Sprintf("feedback.round%d", round))
		opts.LPHTA.Obs.Span = roundSpan
		opts.Sim.Obs.Span = roundSpan
		// Update tightening from the latest simulation: a task that ran
		// f times slower than planned needs an f-times tighter plan.
		for i := range simRes.Outcomes {
			o := &simRes.Outcomes[i]
			if !o.Placed || o.Analytic <= 0 {
				continue
			}
			f := o.Completion.Seconds() / o.Analytic.Seconds()
			if f > tighten[i] {
				tighten[i] = f
			}
			if tighten[i] > opts.MaxTightening {
				tighten[i] = opts.MaxTightening
			}
		}

		var replanned *core.Assignment
		if fc != nil {
			if replanned, err = fc.replan(ts, tighten); err != nil {
				return nil, fmt.Errorf("sim: feedback round %d: %w", round, err)
			}
		} else {
			adjusted := &task.Set{}
			adjusted.Grow(ts.Len())
			for i := 0; i < ts.Len(); i++ {
				copyT := *ts.At(i)
				copyT.Deadline /= units.Duration(tighten[i])
				if err := adjusted.Add(&copyT); err != nil {
					return nil, fmt.Errorf("sim: feedback round %d: %w", round, err)
				}
			}
			batch, err := core.LPHTA(m, adjusted, &opts.LPHTA)
			if err != nil {
				return nil, fmt.Errorf("sim: feedback round %d: %w", round, err)
			}
			replanned = batch.Assignment
		}
		simRes, err = record(replanned)
		roundSpan.End()
		if err != nil {
			return nil, err
		}
		opts.Obs.Counter("feedback.rounds").Inc()
		opts.Obs.Counter("feedback.replans").Inc()
		if better(len(res.Rounds)-1, res.Best) {
			res.Best = len(res.Rounds) - 1
			res.Assignment = replanned
		}
	}
	best := res.Rounds[res.Best]
	opts.Obs.Gauge("feedback.best_round").Set(float64(res.Best))
	opts.Obs.Gauge("feedback.best_unsatisfied").Set(float64(best.Misses + best.Cancelled + best.Lost))
	span.Annotate("best_round", res.Best)
	span.Annotate("rounds", len(res.Rounds))
	return res, nil
}

// feedbackClusters carries one warm ClusterState per station across
// feedback rounds, plus each station's last result, so a round only
// re-solves the clusters whose planning deadlines actually changed.
type feedbackClusters struct {
	states  []*core.ClusterState // indexed by station; nil = no tasks there
	results []*core.ClusterResult
	dirty   []bool
	station []int     // per arena index: the task's station
	applied []float64 // per arena index: tightening currently in the states
}

// newFeedbackClusters streams every task into its station's ClusterState
// with its original deadline. The first replan solves each cluster cold;
// later rounds warm-start.
func newFeedbackClusters(m *costmodel.Model, ts *task.Set, lpOpts core.LPHTAOptions) (*feedbackClusters, error) {
	sys := m.System()
	fc := &feedbackClusters{
		states:  make([]*core.ClusterState, sys.NumStations()),
		results: make([]*core.ClusterResult, sys.NumStations()),
		dirty:   make([]bool, sys.NumStations()),
		station: make([]int, ts.Len()),
		applied: make([]float64, ts.Len()),
	}
	for i := 0; i < ts.Len(); i++ {
		t := ts.At(i)
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return nil, err
		}
		fc.station[i] = st
		fc.applied[i] = 1
		if fc.states[st] == nil {
			cs, err := core.NewClusterState(m, st, &lpOpts)
			if err != nil {
				return nil, err
			}
			fc.states[st] = cs
			fc.dirty[st] = true
		}
		if err := fc.states[st].AddTask(*t); err != nil {
			return nil, err
		}
	}
	return fc, nil
}

// replan pushes the tightening deltas since the previous round into the
// cluster states, re-solves only the dirtied clusters, and assembles the
// full assignment from the per-cluster results.
func (fc *feedbackClusters) replan(ts *task.Set, tighten []float64) (*core.Assignment, error) {
	for i := 0; i < ts.Len(); i++ {
		//meclint:allow(floatcmp) unchanged factors are bit-identical copies, not computed values
		if tighten[i] == fc.applied[i] {
			continue
		}
		t := ts.At(i)
		d := t.Deadline / units.Duration(tighten[i])
		if err := fc.states[fc.station[i]].SetDeadline(t.ID, d); err != nil {
			return nil, err
		}
		fc.applied[i] = tighten[i]
		fc.dirty[fc.station[i]] = true
	}
	a := core.NewAssignment(ts)
	for st, cs := range fc.states {
		if cs == nil {
			continue
		}
		if fc.dirty[st] {
			res, err := cs.Solve()
			if err != nil {
				return nil, err
			}
			fc.results[st] = res
			fc.dirty[st] = false
		}
		for _, p := range fc.results[st].Placements {
			a.Place(p.ID, p.Level)
		}
	}
	return a, nil
}
