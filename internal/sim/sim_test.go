package sim

import (
	"math"
	"testing"

	"dsmec/internal/backhaul"
	"dsmec/internal/compute"
	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/mecnet"
	"dsmec/internal/radio"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

func testModel(t *testing.T) *costmodel.Model {
	t.Helper()
	sys := &mecnet.System{
		Devices: []mecnet.Device{
			{Station: 0, Link: radio.FourG, Proc: compute.DeviceProcessor(1 * units.Gigahertz), ResourceCap: 100},
			{Station: 0, Link: radio.WiFi, Proc: compute.DeviceProcessor(2 * units.Gigahertz), ResourceCap: 100},
			{Station: 1, Link: radio.FourG, Proc: compute.DeviceProcessor(1.5 * units.Gigahertz), ResourceCap: 100},
		},
		Stations: []mecnet.Station{
			{Proc: compute.StationProcessor(), ResourceCap: 1000},
			{Proc: compute.StationProcessor(), ResourceCap: 1000},
		},
		Cloud:       mecnet.Cloud{Proc: compute.CloudProcessor()},
		StationWire: backhaul.DefaultStationToStation(),
		CloudWire:   backhaul.DefaultStationToCloud(),
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := costmodel.New(sys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mkTask(user, index int, local, external units.ByteSize, source int) *task.Task {
	return &task.Task{
		ID: task.ID{User: user, Index: index}, Kind: task.Holistic,
		OpSize:    units.Kilobyte,
		LocalSize: local, ExternalSize: external, ExternalSource: source,
		Resource: 1, Deadline: 100 * units.Second,
	}
}

func TestUncontendedMatchesAnalytic(t *testing.T) {
	// One task at a time: simulated completion must equal the closed-form
	// t_ijl for every subsystem and data configuration.
	m := testModel(t)
	cases := []struct {
		name string
		task *task.Task
		sub  costmodel.Subsystem
	}{
		{"local no-external device", mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource), costmodel.SubsystemDevice},
		{"local no-external station", mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource), costmodel.SubsystemStation},
		{"local no-external cloud", mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource), costmodel.SubsystemCloud},
		{"same-cluster external device", mkTask(0, 0, 800*units.Kilobyte, 300*units.Kilobyte, 1), costmodel.SubsystemDevice},
		{"same-cluster external station", mkTask(0, 0, 800*units.Kilobyte, 300*units.Kilobyte, 1), costmodel.SubsystemStation},
		{"cross-cluster external device", mkTask(0, 0, 800*units.Kilobyte, 300*units.Kilobyte, 2), costmodel.SubsystemDevice},
		{"cross-cluster external station", mkTask(0, 0, 800*units.Kilobyte, 300*units.Kilobyte, 2), costmodel.SubsystemStation},
		{"cross-cluster external cloud", mkTask(0, 0, 800*units.Kilobyte, 300*units.Kilobyte, 2), costmodel.SubsystemCloud},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, err := task.NewSet(tc.task)
			if err != nil {
				t.Fatal(err)
			}
			a := core.NewAssignment(ts)
			a.Place(tc.task.ID, tc.sub)

			res, err := Run(m, ts, a, Config{})
			if err != nil {
				t.Fatal(err)
			}
			o, _ := res.Outcome(tc.task.ID)
			if math.Abs(o.Completion.Seconds()-o.Analytic.Seconds()) > 1e-9 {
				t.Errorf("completion %v != analytic %v", o.Completion, o.Analytic)
			}
			if o.Subsystem != tc.sub {
				t.Errorf("subsystem %v, want %v", o.Subsystem, tc.sub)
			}
			if !o.DeadlineOK {
				t.Error("generous deadline should be met")
			}
		})
	}
}

func TestQueueingDelaysSecondTask(t *testing.T) {
	// Two identical tasks on one device CPU: the second finishes at twice
	// the exec time of the first.
	m := testModel(t)
	t1 := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(0, 1, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	a.Place(t2.ID, costmodel.SubsystemDevice)

	res, err := Run(m, ts, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	exec := 0.33 // 330·1e6 cycles at 1 GHz
	o1, _ := res.Outcome(t1.ID)
	o2, _ := res.Outcome(t2.ID)
	first := o1.Completion.Seconds()
	second := o2.Completion.Seconds()
	if math.Abs(first-exec) > 1e-9 {
		t.Errorf("first completion %g, want %g", first, exec)
	}
	if math.Abs(second-2*exec) > 1e-9 {
		t.Errorf("second completion %g, want %g (queued)", second, 2*exec)
	}
	if math.Abs(res.Makespan.Seconds()-2*exec) > 1e-9 {
		t.Errorf("makespan %v, want %gs", res.Makespan, 2*exec)
	}
}

func TestStationCoresAllowParallelism(t *testing.T) {
	// Two station tasks with StationCores=2 compute in parallel; their
	// uploads share nothing (different devices), so both match analytic.
	// Sizes are tuned so the uploads finish within one exec time of each
	// other: 1000 kB at 5.85 Mbps (1.368 s) vs 2200 kB at 12.88 Mbps
	// (1.366 s), with the larger task computing for 0.18 s.
	m := testModel(t)
	t1 := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(1, 0, 2200*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemStation)
	a.Place(t2.ID, costmodel.SubsystemStation)

	res, err := Run(m, ts, a, Config{StationCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []task.ID{t1.ID, t2.ID} {
		o, _ := res.Outcome(id)
		if math.Abs(o.Completion.Seconds()-o.Analytic.Seconds()) > 1e-9 {
			t.Errorf("task %v completion %v != analytic %v (should run in parallel)",
				id, o.Completion, o.Analytic)
		}
	}

	// With a single core the slower path must wait.
	res1, err := Run(m, ts, a, Config{StationCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	delayed := 0
	for _, id := range []task.ID{t1.ID, t2.ID} {
		if o, _ := res1.Outcome(id); o.Completion > o.Analytic+1e-12 {
			delayed++
		}
	}
	if delayed == 0 {
		t.Error("single-core station should delay at least one task")
	}
}

func TestEnergyMatchesAnalyticModel(t *testing.T) {
	sc, err := workload.GenerateHolistic(rng.NewSource(8), workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Run(sc.Model, sc.Tasks, res.Assignment, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.TotalEnergy.Joules()-metrics.TotalEnergy.Joules()) > 1e-6 {
		t.Errorf("sim energy %v != analytic %v", simRes.TotalEnergy, metrics.TotalEnergy)
	}
}

func TestSimulatedLatencyDominatesAnalytic(t *testing.T) {
	// FIFO queueing can only delay: every simulated completion is >= its
	// analytic time.
	sc, err := workload.GenerateHolistic(rng.NewSource(9), workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	hta, err := core.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc.Model, sc.Tasks, hta.Assignment, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Placed && o.Completion < o.Analytic-1e-9 {
			t.Errorf("task %v simulated %v earlier than analytic %v", o.ID, o.Completion, o.Analytic)
		}
	}
	if res.Makespan <= 0 || res.MeanLatency() <= 0 {
		t.Error("makespan and mean latency should be positive")
	}
}

func TestCancelledTasksSkipped(t *testing.T) {
	m := testModel(t)
	t1 := mkTask(0, 0, 100*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(0, 1, 100*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	a.Cancel(t2.ID)

	res, err := Run(m, ts, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", res.Cancelled)
	}
	if _, ok := res.Outcome(t2.ID); ok {
		t.Error("cancelled task should have no placed outcome")
	}
}

func TestRunErrors(t *testing.T) {
	m := testModel(t)
	t1 := mkTask(0, 0, 100*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, ts, core.NewAssignment(ts), Config{}); err == nil {
		t.Error("missing task should fail")
	}
	bad := core.NewAssignment(ts)
	bad.Place(t1.ID, costmodel.Subsystem(9))
	if _, err := Run(m, ts, bad, Config{}); err == nil {
		t.Error("invalid subsystem should fail")
	}
}

func TestDeadlineViolationsUnderContention(t *testing.T) {
	// Tight deadlines met analytically but missed under queueing.
	m := testModel(t)
	exec := units.Duration(0.33)
	t1 := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(0, 1, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t1.Deadline = exec + 10*units.Millisecond
	t2.Deadline = exec + 10*units.Millisecond
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	a.Place(t2.ID, costmodel.SubsystemDevice)

	res, err := Run(m, ts, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineViolations != 1 {
		t.Errorf("DeadlineViolations = %d, want 1 (the queued task)", res.DeadlineViolations)
	}
}

func TestMeanLatencyEmpty(t *testing.T) {
	r := &Result{}
	if r.MeanLatency() != 0 {
		t.Error("empty result mean latency should be 0")
	}
}

func TestRunReleasesStaggersLoad(t *testing.T) {
	// Two identical tasks on the same device CPU: released together the
	// second queues; released after the first finishes, both match the
	// analytic time.
	m := testModel(t)
	t1 := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(0, 1, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	a.Place(t2.ID, costmodel.SubsystemDevice)

	res, err := RunReleases(m, ts, a, Config{}, map[task.ID]units.Duration{
		t2.ID: 0.5 * units.Second, // after t1's 0.33 s execution
	})
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := res.Outcome(t1.ID)
	o2, _ := res.Outcome(t2.ID)
	if math.Abs(o1.Sojourn.Seconds()-0.33) > 1e-9 {
		t.Errorf("t1 sojourn = %v, want 0.33s", o1.Sojourn)
	}
	if math.Abs(o2.Sojourn.Seconds()-0.33) > 1e-9 {
		t.Errorf("t2 sojourn = %v, want 0.33s (released after t1 finished)", o2.Sojourn)
	}
	if o2.Release != 0.5*units.Second {
		t.Errorf("t2 release = %v, want 0.5s", o2.Release)
	}
	if math.Abs(o2.Completion.Seconds()-0.83) > 1e-9 {
		t.Errorf("t2 completion = %v, want 0.83s absolute", o2.Completion)
	}
	if math.Abs(res.Makespan.Seconds()-0.83) > 1e-9 {
		t.Errorf("makespan = %v, want 0.83s", res.Makespan)
	}
}

func TestRunReleasesOverlapStillQueues(t *testing.T) {
	m := testModel(t)
	t1 := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	t2 := mkTask(0, 1, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	a.Place(t2.ID, costmodel.SubsystemDevice)

	// Released mid-execution of t1: waits 0.23 s, sojourn 0.56 s.
	res, err := RunReleases(m, ts, a, Config{}, map[task.ID]units.Duration{
		t2.ID: 0.1 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := res.Outcome(t2.ID)
	if math.Abs(o2.Sojourn.Seconds()-0.56) > 1e-9 {
		t.Errorf("t2 sojourn = %v, want 0.56s", o2.Sojourn)
	}
}

func TestRunReleasesInvalid(t *testing.T) {
	m := testModel(t)
	t1 := mkTask(0, 0, 100*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(t1)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(t1.ID, costmodel.SubsystemDevice)
	if _, err := RunReleases(m, ts, a, Config{}, map[task.ID]units.Duration{
		t1.ID: -1,
	}); err == nil {
		t.Error("negative release should fail")
	}
	if _, err := RunReleases(m, ts, a, Config{}, map[task.ID]units.Duration{
		t1.ID: units.Forever,
	}); err == nil {
		t.Error("infinite release should fail")
	}
}

func TestSpreadingArrivalsReducesMisses(t *testing.T) {
	// The quasi-static worst case (everything at once) versus the same
	// workload spread over a window: spreading must not increase misses.
	sc, err := workload.GenerateHolistic(rng.NewSource(55), workload.Params{
		NumDevices: 15, NumStations: 3, NumTasks: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Run(sc.Model, sc.Tasks, res.Assignment, Config{})
	if err != nil {
		t.Fatal(err)
	}

	releases := make(map[task.ID]units.Duration, sc.Tasks.Len())
	r := rng.NewSource(55).Stream("arrivals")
	for _, tk := range sc.Tasks.All() {
		releases[tk.ID] = units.Duration(r.Float64() * 60) // one minute window
	}
	spread, err := RunReleases(sc.Model, sc.Tasks, res.Assignment, Config{}, releases)
	if err != nil {
		t.Fatal(err)
	}
	if spread.DeadlineViolations > batch.DeadlineViolations {
		t.Errorf("spreading arrivals increased misses: %d vs %d",
			spread.DeadlineViolations, batch.DeadlineViolations)
	}
	if spread.MeanLatency() > batch.MeanLatency() {
		t.Errorf("spreading arrivals increased mean sojourn: %v vs %v",
			spread.MeanLatency(), batch.MeanLatency())
	}
}
