package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/mecnet"
	"dsmec/internal/obs"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Link identifies one of a station's two backhaul ports.
type Link int

// The two backhaul links of a station.
const (
	LinkWire Link = iota + 1 // station↔station wire
	LinkWAN                  // station↔cloud WAN uplink
)

// String names the link.
func (l Link) String() string {
	switch l {
	case LinkWire:
		return "wire"
	case LinkWAN:
		return "wan"
	default:
		return fmt.Sprintf("Link(%d)", int(l))
	}
}

// StationOutage takes a station (its CPU and both backhaul ports) down at
// At for Repair; stages in service or queued there fail, and arrivals fail
// until the repair completes.
type StationOutage struct {
	Station int
	At      units.Duration
	Repair  units.Duration
}

// DeviceDeparture removes a device (churn) at At, permanently: its radio
// and CPU never come back, tasks homed on it are lost, and tasks reading
// its data cannot be reassembled.
type DeviceDeparture struct {
	Device int
	At     units.Duration
}

// LinkDegradation multiplies the service time of transfers *starting*
// within [At, At+Duration) on one backhaul port by Slowdown (≥ 1).
// Degraded transfers that exceed the plan's TransferTimeout fail.
type LinkDegradation struct {
	Station  int
	Link     Link
	At       units.Duration
	Duration units.Duration
	Slowdown float64
}

// RecoveryPolicy tunes what happens after an attempt fails. The zero
// value takes the defaults: 3 retries with 500 ms base backoff capped at
// 8 s, then one reassignment via the cost model on the degraded topology.
type RecoveryPolicy struct {
	// MaxRetries is how many times a failed attempt is retried on the
	// same subsystem before the task is reassigned or lost. Default 3.
	MaxRetries int
	// BackoffBase is the first retry delay; attempt k waits
	// min(BackoffBase·2^(k-1), BackoffCap). Defaults 500 ms and 8 s.
	BackoffBase units.Duration
	BackoffCap  units.Duration
	// NoReassign disables the replan-on-survivors step: tasks whose
	// retries are exhausted are lost instead of reassigned.
	NoReassign bool
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = units.Duration(0.5)
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = 8 * units.Second
	}
	return p
}

// backoff returns the delay before retry number k (1-based), capped
// exponential.
func (p RecoveryPolicy) backoff(k int) units.Duration {
	d := p.BackoffBase
	for i := 1; i < k; i++ {
		d *= 2
		if d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// FaultPlan is a deterministic schedule of infrastructure faults the
// discrete-event engine consumes as first-class events, plus the recovery
// policy applied to the tasks the faults orphan. A nil plan disables
// fault injection entirely (the engine's output is bit-identical to a
// fault-free build); the same plan over the same scenario reproduces the
// exact same event log on every run.
type FaultPlan struct {
	StationOutages   []StationOutage
	DeviceDepartures []DeviceDeparture
	LinkDegradations []LinkDegradation
	// TransferTimeout fails any backhaul transfer whose (possibly
	// degraded) service time exceeds it. Zero disables timeouts.
	TransferTimeout units.Duration
	Recovery        RecoveryPolicy
}

// Empty reports whether the plan schedules no faults at all.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.StationOutages) == 0 && len(p.DeviceDepartures) == 0 &&
		len(p.LinkDegradations) == 0 && p.TransferTimeout == 0)
}

// Validate checks the plan against a topology.
func (p *FaultPlan) Validate(sys *mecnet.System) error {
	if p == nil {
		return nil
	}
	for _, o := range p.StationOutages {
		if o.Station < 0 || o.Station >= sys.NumStations() {
			return fmt.Errorf("sim: fault plan: station %d out of range", o.Station)
		}
		if o.At < 0 || o.Repair < 0 || !o.At.IsFinite() || !o.Repair.IsFinite() {
			return fmt.Errorf("sim: fault plan: invalid outage window at %v for %v", o.At, o.Repair)
		}
	}
	for _, d := range p.DeviceDepartures {
		if d.Device < 0 || d.Device >= sys.NumDevices() {
			return fmt.Errorf("sim: fault plan: device %d out of range", d.Device)
		}
		if d.At < 0 || !d.At.IsFinite() {
			return fmt.Errorf("sim: fault plan: invalid departure time %v", d.At)
		}
	}
	for _, g := range p.LinkDegradations {
		if g.Station < 0 || g.Station >= sys.NumStations() {
			return fmt.Errorf("sim: fault plan: station %d out of range", g.Station)
		}
		if g.Link != LinkWire && g.Link != LinkWAN {
			return fmt.Errorf("sim: fault plan: unknown link %d", int(g.Link))
		}
		if g.Slowdown < 1 {
			return fmt.Errorf("sim: fault plan: slowdown %g < 1", g.Slowdown)
		}
		if g.At < 0 || g.Duration < 0 || !g.At.IsFinite() || !g.Duration.IsFinite() {
			return fmt.Errorf("sim: fault plan: invalid degradation window at %v for %v", g.At, g.Duration)
		}
	}
	if p.TransferTimeout < 0 || !p.TransferTimeout.IsFinite() {
		return fmt.Errorf("sim: fault plan: invalid transfer timeout %v", p.TransferTimeout)
	}
	return nil
}

// FaultParams tunes GenerateFaultPlan. Rates are expected event counts
// over the horizon (per station, per device, or per backhaul link); zero
// rates generate no faults of that kind.
type FaultParams struct {
	// Horizon is the window faults are drawn in. Default 4 s.
	Horizon units.Duration
	// OutageRate is the expected number of outages per station.
	OutageRate float64
	// MeanRepair is the mean outage repair time (exponential). Default 1 s.
	MeanRepair units.Duration
	// ChurnRate is the probability (0..1) that a device departs.
	ChurnRate float64
	// DegradeRate is the expected number of degradation windows per
	// backhaul link (each station has two: wire and WAN).
	DegradeRate float64
	// MeanDegrade is the mean degradation window length (exponential).
	// Default 2 s.
	MeanDegrade units.Duration
	// Slowdown multiplies degraded transfer times. Default 4.
	Slowdown float64
	// TransferTimeout fails transfers exceeding it; zero disables.
	TransferTimeout units.Duration
	// Recovery is copied into the plan.
	Recovery RecoveryPolicy

	// MassOutageFrac takes that fraction of stations (rounded up, chosen
	// by seeded shuffle) down simultaneously at MassOutageAt for
	// MassOutageRepair — a correlated regional failure rather than the
	// independent Poisson outages of OutageRate. Zero disables.
	MassOutageFrac   float64
	MassOutageAt     units.Duration
	MassOutageRepair units.Duration // default: MeanRepair
}

func (p FaultParams) withDefaults() FaultParams {
	if p.Horizon == 0 {
		p.Horizon = 4 * units.Second
	}
	if p.MeanRepair == 0 {
		p.MeanRepair = 1 * units.Second
	}
	if p.MeanDegrade == 0 {
		p.MeanDegrade = 2 * units.Second
	}
	if p.Slowdown == 0 {
		p.Slowdown = 4
	}
	return p
}

// DefaultFaultParams is the CLI's -faults preset: one expected outage and
// one degradation window per station, 5% device churn, 4× slowdown, 2 s
// transfer timeouts. The default horizon (4 s) and repair scale (1 s mean)
// match the quasi-static runs the evaluation replays, whose makespans are
// a few seconds.
func DefaultFaultParams() FaultParams {
	return FaultParams{
		OutageRate:      1,
		ChurnRate:       0.05,
		DegradeRate:     1,
		TransferTimeout: 2 * units.Second,
	}
}

// GenerateFaultPlan draws a deterministic fault schedule for the topology
// from the source's named streams: the same (seed, topology, params)
// triple always produces the same plan.
func GenerateFaultPlan(src *rng.Source, sys *mecnet.System, params FaultParams) *FaultPlan {
	params = params.withDefaults()
	plan := &FaultPlan{
		TransferTimeout: params.TransferTimeout,
		Recovery:        params.Recovery,
	}
	horizon := params.Horizon.Seconds()

	r := src.Stream("faults.outages")
	for s := 0; s < sys.NumStations(); s++ {
		for i, n := 0, poisson(r, params.OutageRate); i < n; i++ {
			plan.StationOutages = append(plan.StationOutages, StationOutage{
				Station: s,
				At:      units.Duration(r.Float64() * horizon),
				Repair:  units.Duration(r.ExpFloat64() * params.MeanRepair.Seconds()),
			})
		}
	}
	r = src.Stream("faults.churn")
	for d := 0; d < sys.NumDevices(); d++ {
		if r.Float64() < params.ChurnRate {
			plan.DeviceDepartures = append(plan.DeviceDepartures, DeviceDeparture{
				Device: d,
				At:     units.Duration(r.Float64() * horizon),
			})
		}
	}
	r = src.Stream("faults.degrade")
	for s := 0; s < sys.NumStations(); s++ {
		for _, link := range []Link{LinkWire, LinkWAN} {
			for i, n := 0, poisson(r, params.DegradeRate); i < n; i++ {
				plan.LinkDegradations = append(plan.LinkDegradations, LinkDegradation{
					Station:  s,
					Link:     link,
					At:       units.Duration(r.Float64() * horizon),
					Duration: units.Duration(r.ExpFloat64() * params.MeanDegrade.Seconds()),
					Slowdown: params.Slowdown,
				})
			}
		}
	}
	if params.MassOutageFrac > 0 {
		r = src.Stream("faults.mass")
		k := int(math.Ceil(params.MassOutageFrac * float64(sys.NumStations())))
		if k > sys.NumStations() {
			k = sys.NumStations()
		}
		repair := params.MassOutageRepair
		if repair == 0 {
			repair = params.MeanRepair
		}
		victims := r.Perm(sys.NumStations())[:k]
		sort.Ints(victims)
		for _, s := range victims {
			plan.StationOutages = append(plan.StationOutages, StationOutage{
				Station: s,
				At:      params.MassOutageAt,
				Repair:  repair,
			})
		}
	}
	return plan
}

// poisson draws a Poisson-distributed count (Knuth's method; the means
// used here are single digits, so the loop is short).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
		if k > 10000 { // unreachable for sane rates; bounds the loop
			return k
		}
	}
}

// FaultEvent is one entry of the run's fault/recovery log. The log is a
// pure function of (scenario, assignment, fault plan): replaying the same
// inputs yields the same sequence, which the determinism tests enforce.
type FaultEvent struct {
	At     units.Duration
	Kind   string // station.down/up, device.leave, link.degrade/restore, attempt.fail, task.retry, task.reassign, task.lost
	Detail string
}

// String renders the entry as one log line.
func (e FaultEvent) String() string {
	return fmt.Sprintf("%.6fs %s %s", e.At.Seconds(), e.Kind, e.Detail)
}

// FaultStats is the graceful-degradation accounting of one run.
type FaultStats struct {
	StationOutages   int
	DeviceDepartures int
	LinkDegradations int

	Attempts       int // plan releases, including first attempts
	FailedAttempts int
	Retries        int
	Reassignments  int
	// Lost counts placed tasks the recovery policy gave up on; they are
	// excluded from Outcomes and count as unsatisfied.
	Lost int
	// WastedEnergy is the analytic energy of failed attempts that had
	// started at least one stage — energy the system spent on work that
	// was thrown away.
	WastedEnergy units.Energy
	// FaultMisses counts deadline misses of tasks that suffered at least
	// one failed attempt; CapacityMisses counts misses of untouched
	// tasks (pure queueing). FaultMisses + CapacityMisses equals the
	// run's DeadlineViolations.
	FaultMisses    int
	CapacityMisses int
}

// degWindow is one active degradation interval on a resource.
type degWindow struct {
	from, to units.Duration
	slowdown float64
}

// faultRunner owns all fault state of one engine run: the topology
// transition events, the degraded-state flags recovery consults, the
// per-resource degradation windows, and the event log. Resources are
// identified by their engine arena index throughout (the arena is fully
// built before the runner is wired, so the parallel slices never resize).
type faultRunner struct {
	plan        *FaultPlan
	policy      RecoveryPolicy
	replanner   *core.Replanner
	stationDown []bool
	deviceGone  []bool
	names       []string      // per resource index: label for log lines
	backhaul    []bool        // per resource index: transfer timeouts apply
	deg         [][]degWindow // per resource index: degradation windows
	log         []FaultEvent
	stats       FaultStats
	logger      *obs.Logger // mirrors the event log to slog; nil disables
}

// newFaultRunner wires the plan into the engine: classifies resources,
// installs degradation windows, and schedules every topology transition
// as an engine event.
func newFaultRunner(eng *engine, plan *FaultPlan, sys *mecnet.System, m *costmodel.Model, res planResources) *faultRunner {
	fr := &faultRunner{
		plan:        plan,
		policy:      plan.Recovery.withDefaults(),
		replanner:   core.NewReplanner(m),
		stationDown: make([]bool, sys.NumStations()),
		deviceGone:  make([]bool, sys.NumDevices()),
		names:       make([]string, len(eng.resources)),
		backhaul:    make([]bool, len(eng.resources)),
		deg:         make([][]degWindow, len(eng.resources)),
		logger:      eng.ins.Logger(),
	}
	for i := range res.devUp {
		fr.names[res.devUp[i]] = fmt.Sprintf("dev.up[%d]", i)
		fr.names[res.devDown[i]] = fmt.Sprintf("dev.down[%d]", i)
		fr.names[res.devCPU[i]] = fmt.Sprintf("dev.cpu[%d]", i)
	}
	for s := range res.stWire {
		fr.names[res.stWire[s]] = fmt.Sprintf("st.wire[%d]", s)
		fr.backhaul[res.stWire[s]] = true
		fr.names[res.stWAN[s]] = fmt.Sprintf("st.wan[%d]", s)
		fr.backhaul[res.stWAN[s]] = true
		fr.names[res.stCPU[s]] = fmt.Sprintf("st.cpu[%d]", s)
	}
	fr.names[res.cloudCPU] = "cloud.cpu"
	eng.flt = fr

	// Overlapping outages of one station merge into one down window, so
	// a repair in the middle of a longer outage cannot resurrect it.
	for s, iv := range mergeOutages(plan.StationOutages, sys.NumStations()) {
		station := s
		group := [3]int32{res.stWire[station], res.stWAN[station], res.stCPU[station]}
		for _, w := range iv {
			up := w.to
			eng.scheduleAction(w.from, func(at units.Duration) {
				fr.stats.StationOutages++
				fr.stationDown[station] = true
				fr.replanner.MarkStation(station)
				fr.record(at, "station.down", fmt.Sprintf("station=%d until=%.6fs", station, up.Seconds()))
				for _, ri := range group {
					eng.outage(ri, at, fmt.Sprintf("station %d outage", station))
				}
			})
			eng.scheduleAction(up, func(at units.Duration) {
				fr.stationDown[station] = false
				fr.record(at, "station.up", fmt.Sprintf("station=%d", station))
				for _, ri := range group {
					eng.repair(ri)
				}
			})
		}
	}

	for _, d := range plan.DeviceDepartures {
		dep := d
		group := [3]int32{res.devUp[dep.Device], res.devDown[dep.Device], res.devCPU[dep.Device]}
		eng.scheduleAction(dep.At, func(at units.Duration) {
			if fr.deviceGone[dep.Device] {
				return // duplicate departure entry
			}
			fr.stats.DeviceDepartures++
			fr.deviceGone[dep.Device] = true
			fr.replanner.MarkDevice(dep.Device)
			fr.record(at, "device.leave", fmt.Sprintf("device=%d", dep.Device))
			for _, ri := range group {
				eng.outage(ri, at, fmt.Sprintf("device %d departed", dep.Device))
			}
		})
	}

	for _, g := range plan.LinkDegradations {
		deg := g
		ri := res.stWire[deg.Station]
		if deg.Link == LinkWAN {
			ri = res.stWAN[deg.Station]
		}
		to := deg.At + deg.Duration
		fr.deg[ri] = append(fr.deg[ri], degWindow{from: deg.At, to: to, slowdown: deg.Slowdown})
		eng.scheduleAction(deg.At, func(at units.Duration) {
			fr.stats.LinkDegradations++
			fr.record(at, "link.degrade", fmt.Sprintf("station=%d link=%s x%g until=%.6fs",
				deg.Station, deg.Link, deg.Slowdown, to.Seconds()))
		})
		eng.scheduleAction(to, func(at units.Duration) {
			fr.record(at, "link.restore", fmt.Sprintf("station=%d link=%s", deg.Station, deg.Link))
		})
	}
	return fr
}

// interval is a half-open [from, to) down window.
type interval struct{ from, to units.Duration }

// mergeOutages merges overlapping outage windows per station and returns
// them sorted, keyed by station.
func mergeOutages(outages []StationOutage, numStations int) map[int][]interval {
	byStation := make(map[int][]interval)
	for _, o := range outages {
		byStation[o.Station] = append(byStation[o.Station], interval{from: o.At, to: o.At + o.Repair})
	}
	for s := 0; s < numStations; s++ {
		iv := byStation[s]
		if len(iv) == 0 {
			continue
		}
		sort.Slice(iv, func(i, j int) bool { return iv[i].from < iv[j].from })
		merged := iv[:1]
		for _, w := range iv[1:] {
			last := &merged[len(merged)-1]
			if w.from <= last.to {
				if w.to > last.to {
					last.to = w.to
				}
				continue
			}
			merged = append(merged, w)
		}
		byStation[s] = merged
	}
	return byStation
}

// record appends one event to the run log and mirrors it to the
// structured logger, so fault injections and every recovery-ladder
// decision (attempt.fail → task.retry → task.reassign → task.lost) are
// observable live, not only in the post-run event log.
func (fr *faultRunner) record(at units.Duration, kind, detail string) {
	fr.log = append(fr.log, FaultEvent{At: at, Kind: kind, Detail: detail})
	if fr.logger.Enabled(obs.LevelDebug) {
		fr.logger.Debug("sim fault event",
			"at_seconds", at.Seconds(),
			"kind", kind,
			"detail", detail)
	}
}

// serviceTime applies the degradation windows covering the stage's start.
func (fr *faultRunner) serviceTime(ri int32, service, now units.Duration) units.Duration {
	factor := 1.0
	for _, w := range fr.deg[ri] {
		if now >= w.from && now < w.to && w.slowdown > factor {
			factor = w.slowdown
		}
	}
	if factor == 1 {
		return service
	}
	return units.Duration(service.Seconds() * factor)
}

// transferTimeout returns the plan's timeout for backhaul resources, zero
// elsewhere.
func (fr *faultRunner) transferTimeout(ri int32) units.Duration {
	if fr.backhaul[ri] {
		return fr.plan.TransferTimeout
	}
	return 0
}

// downReason labels an arrival-on-downed-resource failure.
func (fr *faultRunner) downReason(ri int32) string {
	return fr.names[ri] + " down"
}

// timeoutReason labels a transfer-timeout failure.
func (fr *faultRunner) timeoutReason(ri int32) string {
	return "transfer timeout on " + fr.names[ri]
}

// survivors snapshots the degraded topology for replan-on-survivors.
func (fr *faultRunner) survivorView() (deviceUp func(int) bool, stationUp func(int) bool) {
	return func(i int) bool { return !fr.deviceGone[i] },
		func(s int) bool { return !fr.stationDown[s] }
}

// attempt drives one task's execution under fault injection: it launches
// plan attempts and, when one fails, walks the recovery ladder — retry the
// same placement with capped exponential backoff, then one reassignment to
// the subsystem the cost model picks on the degraded topology (with a
// fresh retry budget), then give the task up as lost.
type attempt struct {
	eng      *engine
	fr       *faultRunner
	m        *costmodel.Model
	res      *Result
	pools    planResources
	energyOf []units.Energy // dense per-task, shared by all attempts

	t          *task.Task
	tIdx       int32 // dense task-set index
	opts       costmodel.Options
	release    units.Duration
	placement  costmodel.Subsystem
	retries    int
	reassigned bool
	faulted    bool
}

// launch builds a plan for the current placement and releases it at the
// given time. Each launch refreshes the task's recorded analytic energy so
// the final accounting charges the placement that actually completed.
func (a *attempt) launch(at units.Duration) error {
	pi, err := buildPlan(a.eng, a.m, a.t, a.tIdx, a.placement, a.pools)
	if err != nil {
		return err
	}
	a.fr.stats.Attempts++
	a.energyOf[a.tIdx] = a.opts.At(a.placement).Energy
	placement := a.placement
	analytic := a.opts.At(placement).Time
	p := &a.eng.plans[pi]
	p.onDone = func(finish units.Duration) {
		o := &a.res.Outcomes[a.tIdx]
		o.Placed = true
		o.Subsystem = placement
		o.Release = a.release
		o.Completion = finish
		o.Sojourn = finish - a.release
		o.Analytic = analytic
		o.DeadlineOK = o.Sojourn <= a.t.Deadline
		o.Faulted = a.faulted
	}
	p.onFail = func(failAt units.Duration, reason string) { a.fail(pi, failAt, reason) }
	a.eng.releaseAt(pi, at)
	return nil
}

// fail is the recovery policy: called (once per attempt) when a fault
// voids the running plan. It launches replacement plans, growing the plan
// arena, so the failed plan is addressed by index only.
func (a *attempt) fail(pi int32, at units.Duration, reason string) {
	fr := a.fr
	a.faulted = true
	fr.stats.FailedAttempts++
	if a.eng.plans[pi].anyStarted {
		// The attempt drew real power before dying; charge its full
		// analytic energy as waste.
		fr.stats.WastedEnergy += a.opts.At(a.placement).Energy
	}
	fr.record(at, "attempt.fail", fmt.Sprintf("task=%v subsystem=%v reason=%q", a.t.ID, a.placement, reason))

	if a.retries < fr.policy.MaxRetries {
		a.retries++
		fr.stats.Retries++
		next := at + fr.policy.backoff(a.retries)
		fr.record(at, "task.retry", fmt.Sprintf("task=%v retry=%d at=%.6fs", a.t.ID, a.retries, next.Seconds()))
		if a.launch(next) == nil {
			return
		}
	} else if !fr.policy.NoReassign && !a.reassigned {
		deviceUp, stationUp := fr.survivorView()
		// The replanner serves tasks in never-hit clusters from its cached
		// fault-free answer and computes the exact degraded plan otherwise.
		l, err := fr.replanner.Replan(a.t, core.Survivors{
			DeviceUp: deviceUp, StationUp: stationUp, CloudUp: true,
		})
		if err == nil && l != costmodel.SubsystemNone {
			// Reassigning to the same subsystem is allowed on purpose: the
			// cost model saying it is the best *surviving* choice means the
			// failures were transient (a repaired outage, a degradation
			// window), and the fresh retry budget gives it another shot.
			a.reassigned = true
			from := a.placement
			a.placement = l
			a.retries = 0
			fr.stats.Reassignments++
			fr.record(at, "task.reassign", fmt.Sprintf("task=%v from=%v to=%v", a.t.ID, from, l))
			if a.launch(at) == nil {
				return
			}
		}
	}
	fr.stats.Lost++
	fr.record(at, "task.lost", fmt.Sprintf("task=%v subsystem=%v", a.t.ID, a.placement))
}

// recordMetrics publishes the fault/recovery counters.
func (fr *faultRunner) recordMetrics(ins obs.Instruments) {
	ins.Counter("sim.faults.station_outages").Add(int64(fr.stats.StationOutages))
	ins.Counter("sim.faults.device_departures").Add(int64(fr.stats.DeviceDepartures))
	ins.Counter("sim.faults.link_degradations").Add(int64(fr.stats.LinkDegradations))
	ins.Counter("sim.attempts").Add(int64(fr.stats.Attempts))
	ins.Counter("sim.attempts_failed").Add(int64(fr.stats.FailedAttempts))
	ins.Counter("sim.retries").Add(int64(fr.stats.Retries))
	ins.Counter("sim.reassignments").Add(int64(fr.stats.Reassignments))
	ins.Counter("sim.replans.cached").Add(int64(fr.replanner.Cached))
	ins.Counter("sim.replans.exact").Add(int64(fr.replanner.Exact))
	ins.Counter("sim.tasks_lost").Add(int64(fr.stats.Lost))
	ins.Counter("sim.deadline_misses.fault").Add(int64(fr.stats.FaultMisses))
	ins.Counter("sim.deadline_misses.capacity").Add(int64(fr.stats.CapacityMisses))
	ins.Gauge("sim.wasted_energy_joules").Add(fr.stats.WastedEnergy.Joules())
}
