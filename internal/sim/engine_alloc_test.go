package sim

import (
	"testing"

	"dsmec/internal/units"
)

// hotLoopEngine builds a minimal steady-state workload: one single-server
// resource and a two-stage chain, with observability disabled (zero
// Instruments, so no wait bins, no sampler, no fault runner). reset rewinds
// the plan's stages so the same release/run cycle can repeat without
// rebuilding (release itself resets the pending count).
func hotLoopEngine() (e *engine, pi int32, reset func()) {
	e = &engine{}
	r := e.newResource(1, "dev.cpu")
	pi = e.newPlan(noIndex)
	a := e.addStage(pi, r, units.Duration(3))
	b := e.addStageAfter(pi, r, units.Duration(5), a)
	reset = func() {
		e.stages[a].waitingOn = 0
		e.stages[b].waitingOn = 1
	}
	return e, pi, reset
}

// TestDisabledObsZeroAllocHotPath pins the observability satellite's bar:
// with nil logger and nil registry the engine's release/enqueue/start/
// finish/dispatch cycle performs no allocations in steady state. The first
// cycle is run outside the measurement to let the event heap reach
// capacity, mirroring a long run where the heap was sized by early events.
func TestDisabledObsZeroAllocHotPath(t *testing.T) {
	e, pi, reset := hotLoopEngine()
	e.release(pi)
	e.run()

	allocs := testing.AllocsPerRun(1000, func() {
		reset()
		e.release(pi)
		e.run()
	})
	if allocs != 0 {
		t.Errorf("disabled-obs engine hot loop allocates %.1f per cycle, want 0", allocs)
	}
}

// BenchmarkObsDisabledEngineHotLoop reports the disabled-observability
// engine cycle for `make bench-obs` / `make bench-smoke`; the CI perf gate
// watches its allocs/op and B/op, which must stay at zero.
func BenchmarkObsDisabledEngineHotLoop(b *testing.B) {
	e, pi, reset := hotLoopEngine()
	e.release(pi)
	e.run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reset()
		e.release(pi)
		e.run()
	}
}
