package sim

import (
	"testing"

	"dsmec/internal/obs"
	"dsmec/internal/units"
)

// TestEngineResourceAccounting runs a fully hand-computable two-resource
// scenario and asserts the engine's accounting exactly.
//
// Two plans, both released at t=0, each doing 10s on r1 (1 server) then
// 5s on r2 (1 server):
//
//	r1: A runs 0–10, B queues 10s and runs 10–20
//	r2: A runs 10–15, B runs 20–25 (no contention)
//
// So r1 accumulates 20s busy and 10s of queue wait with peak queue depth
// 1; r2 accumulates 10s busy and no wait; A completes at 15, B at 25.
func TestEngineResourceAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	eng := &engine{ins: obs.Instruments{Metrics: reg}}
	r1 := eng.newResource(1, "r1")
	r2 := eng.newResource(1, "r2")

	var completions []units.Duration
	for i := 0; i < 2; i++ {
		p := &plan{}
		first := p.stage(r1, 10*units.Second)
		p.stageAfter(r2, 5*units.Second, first)
		p.onDone = func(finish units.Duration) {
			completions = append(completions, finish)
		}
		eng.releaseAt(p, 0)
	}
	eng.run()

	if len(completions) != 2 {
		t.Fatalf("got %d completions, want 2", len(completions))
	}
	if completions[0] != 15*units.Second || completions[1] != 25*units.Second {
		t.Errorf("completions = %v, want [15s 25s]", completions)
	}

	// r1: both stages start there, the second after waiting out the first.
	if got := r1.busyTime; got != 20*units.Second {
		t.Errorf("r1 busy = %v, want 20s", got)
	}
	if got := r1.queueWait; got != 10*units.Second {
		t.Errorf("r1 queue wait = %v, want 10s", got)
	}
	if r1.started != 2 {
		t.Errorf("r1 started = %d, want 2", r1.started)
	}
	if r1.peakQueue != 1 {
		t.Errorf("r1 peak queue = %d, want 1", r1.peakQueue)
	}

	// r2: stages arrive 10s apart, each 5s long — never contended.
	if got := r2.busyTime; got != 10*units.Second {
		t.Errorf("r2 busy = %v, want 10s", got)
	}
	if got := r2.queueWait; got != 0 {
		t.Errorf("r2 queue wait = %v, want 0", got)
	}
	if r2.started != 2 {
		t.Errorf("r2 started = %d, want 2", r2.started)
	}
	if r2.peakQueue != 0 {
		t.Errorf("r2 peak queue = %d, want 0", r2.peakQueue)
	}

	// Four stage completions, no timed releases (t=0 is immediate).
	if eng.dispatched != 4 {
		t.Errorf("dispatched = %d, want 4", eng.dispatched)
	}

	// The exported metrics must agree with the internal accounting.
	eng.recordMetrics()
	s := reg.Snapshot()
	if got := s.Counters["sim.events"]; got != 4 {
		t.Errorf("sim.events = %d, want 4", got)
	}
	if got := s.Counters["sim.starts.r1"]; got != 2 {
		t.Errorf("sim.starts.r1 = %d, want 2", got)
	}
	if got := s.Gauges["sim.busy_seconds.r1"]; got != 20 {
		t.Errorf("sim.busy_seconds.r1 = %g, want 20", got)
	}
	if got := s.Gauges["sim.queue_wait_seconds_total.r1"]; got != 10 {
		t.Errorf("sim.queue_wait_seconds_total.r1 = %g, want 10", got)
	}
	if got := s.Gauges["sim.queue_peak.r1"]; got != 1 {
		t.Errorf("sim.queue_peak.r1 = %g, want 1", got)
	}
	if got := s.Gauges["sim.busy_seconds.r2"]; got != 10 {
		t.Errorf("sim.busy_seconds.r2 = %g, want 10", got)
	}
	if got := s.Gauges["sim.queue_wait_seconds_total.r2"]; got != 0 {
		t.Errorf("sim.queue_wait_seconds_total.r2 = %g, want 0", got)
	}
	// Per-class wait histogram: r1 saw waits {0s, 10s}, r2 saw {0s, 0s}.
	h1 := s.Histograms["sim.queue_wait_seconds.r1"]
	if h1.Count != 2 || h1.Sum != 10 {
		t.Errorf("r1 wait histogram count/sum = %d/%g, want 2/10", h1.Count, h1.Sum)
	}
	h2 := s.Histograms["sim.queue_wait_seconds.r2"]
	if h2.Count != 2 || h2.Sum != 0 {
		t.Errorf("r2 wait histogram count/sum = %d/%g, want 2/0", h2.Count, h2.Sum)
	}
}

// TestEngineTimedRelease checks that a plan released in the future holds
// until its release event fires and its wait accounting starts at the
// release, not at the build.
func TestEngineTimedRelease(t *testing.T) {
	eng := &engine{}
	r := eng.newResource(1, "r")

	var done units.Duration
	p := &plan{}
	p.stage(r, 3*units.Second)
	p.onDone = func(finish units.Duration) { done = finish }
	eng.releaseAt(p, 7*units.Second)
	eng.run()

	if done != 10*units.Second {
		t.Errorf("completion = %v, want 10s", done)
	}
	if r.queueWait != 0 {
		t.Errorf("queue wait = %v, want 0 (stage started at release)", r.queueWait)
	}
	if r.busyTime != 3*units.Second {
		t.Errorf("busy = %v, want 3s", r.busyTime)
	}
	// One release event plus one completion event.
	if eng.dispatched != 2 {
		t.Errorf("dispatched = %d, want 2", eng.dispatched)
	}
}

// TestEngineDisabledMetrics confirms the engine runs identically with no
// registry: the accounting fields still fill in, nothing panics.
func TestEngineDisabledMetrics(t *testing.T) {
	eng := &engine{}
	r := eng.newResource(2, "r")
	for i := 0; i < 3; i++ {
		p := &plan{}
		p.stage(r, units.Second)
		eng.release(p)
	}
	eng.run()
	if r.started != 3 || r.busyTime != 3*units.Second {
		t.Errorf("started/busy = %d/%v, want 3/3s", r.started, r.busyTime)
	}
	if r.peakQueue != 1 {
		t.Errorf("peak queue = %d, want 1 (third stage queued behind two servers)", r.peakQueue)
	}
	eng.recordMetrics() // nil registry: must be a no-op
}
