package sim

import (
	"testing"

	"dsmec/internal/obs"
	"dsmec/internal/units"
)

// TestEngineResourceAccounting runs a fully hand-computable two-resource
// scenario and asserts the engine's accounting exactly.
//
// Two plans, both released at t=0, each doing 10s on r1 (1 server) then
// 5s on r2 (1 server):
//
//	r1: A runs 0–10, B queues 10s and runs 10–20
//	r2: A runs 10–15, B runs 20–25 (no contention)
//
// So r1 accumulates 20s busy and 10s of queue wait with peak queue depth
// 1; r2 accumulates 10s busy and no wait; A completes at 15, B at 25.
func TestEngineResourceAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	eng := &engine{ins: obs.Instruments{Metrics: reg}}
	r1 := eng.newResource(1, "r1")
	r2 := eng.newResource(1, "r2")

	var completions []units.Duration
	for i := 0; i < 2; i++ {
		pi := eng.newPlan(noIndex)
		first := eng.addStage(pi, r1, 10*units.Second)
		eng.addStageAfter(pi, r2, 5*units.Second, first)
		eng.plans[pi].onDone = func(finish units.Duration) {
			completions = append(completions, finish)
		}
		eng.releaseAt(pi, 0)
	}
	eng.run()

	if len(completions) != 2 {
		t.Fatalf("got %d completions, want 2", len(completions))
	}
	if completions[0] != 15*units.Second || completions[1] != 25*units.Second {
		t.Errorf("completions = %v, want [15s 25s]", completions)
	}

	// r1: both stages start there, the second after waiting out the first.
	res1 := &eng.resources[r1]
	if got := res1.busyTime; got != 20*units.Second {
		t.Errorf("r1 busy = %v, want 20s", got)
	}
	if got := res1.queueWait; got != 10*units.Second {
		t.Errorf("r1 queue wait = %v, want 10s", got)
	}
	if res1.started != 2 {
		t.Errorf("r1 started = %d, want 2", res1.started)
	}
	if res1.peakQueue != 1 {
		t.Errorf("r1 peak queue = %d, want 1", res1.peakQueue)
	}

	// r2: stages arrive 10s apart, each 5s long — never contended.
	res2 := &eng.resources[r2]
	if got := res2.busyTime; got != 10*units.Second {
		t.Errorf("r2 busy = %v, want 10s", got)
	}
	if got := res2.queueWait; got != 0 {
		t.Errorf("r2 queue wait = %v, want 0", got)
	}
	if res2.started != 2 {
		t.Errorf("r2 started = %d, want 2", res2.started)
	}
	if res2.peakQueue != 0 {
		t.Errorf("r2 peak queue = %d, want 0", res2.peakQueue)
	}

	// Four stage completions, no timed releases (t=0 is immediate).
	if eng.dispatched != 4 {
		t.Errorf("dispatched = %d, want 4", eng.dispatched)
	}

	// The exported metrics must agree with the internal accounting.
	eng.recordMetrics()
	s := reg.Snapshot()
	if got := s.Counters["sim.events"]; got != 4 {
		t.Errorf("sim.events = %d, want 4", got)
	}
	if got := s.Counters["sim.starts.r1"]; got != 2 {
		t.Errorf("sim.starts.r1 = %d, want 2", got)
	}
	if got := s.Gauges["sim.busy_seconds.r1"]; got != 20 {
		t.Errorf("sim.busy_seconds.r1 = %g, want 20", got)
	}
	if got := s.Gauges["sim.queue_wait_seconds_total.r1"]; got != 10 {
		t.Errorf("sim.queue_wait_seconds_total.r1 = %g, want 10", got)
	}
	if got := s.Gauges["sim.queue_peak.r1"]; got != 1 {
		t.Errorf("sim.queue_peak.r1 = %g, want 1", got)
	}
	if got := s.Gauges["sim.busy_seconds.r2"]; got != 10 {
		t.Errorf("sim.busy_seconds.r2 = %g, want 10", got)
	}
	if got := s.Gauges["sim.queue_wait_seconds_total.r2"]; got != 0 {
		t.Errorf("sim.queue_wait_seconds_total.r2 = %g, want 0", got)
	}
	// Per-class wait histogram: r1 saw waits {0s, 10s}, r2 saw {0s, 0s}.
	h1 := s.Histograms["sim.queue_wait_seconds.r1"]
	if h1.Count != 2 || h1.Sum != 10 {
		t.Errorf("r1 wait histogram count/sum = %d/%g, want 2/10", h1.Count, h1.Sum)
	}
	h2 := s.Histograms["sim.queue_wait_seconds.r2"]
	if h2.Count != 2 || h2.Sum != 0 {
		t.Errorf("r2 wait histogram count/sum = %d/%g, want 2/0", h2.Count, h2.Sum)
	}
	// One shard by default; its dispatch count covers every event.
	if got := s.Gauges["sim.shards"]; got != 1 {
		t.Errorf("sim.shards = %g, want 1", got)
	}
	se := s.Histograms["sim.shard.events"]
	if se.Count != 1 || se.Sum != 4 {
		t.Errorf("sim.shard.events count/sum = %d/%g, want 1/4", se.Count, se.Sum)
	}
}

// TestEngineTimedRelease checks that a plan released in the future holds
// until its release event fires and its wait accounting starts at the
// release, not at the build.
func TestEngineTimedRelease(t *testing.T) {
	eng := &engine{}
	r := eng.newResource(1, "r")

	var done units.Duration
	pi := eng.newPlan(noIndex)
	eng.addStage(pi, r, 3*units.Second)
	eng.plans[pi].onDone = func(finish units.Duration) { done = finish }
	eng.releaseAt(pi, 7*units.Second)
	eng.run()

	res := &eng.resources[r]
	if done != 10*units.Second {
		t.Errorf("completion = %v, want 10s", done)
	}
	if res.queueWait != 0 {
		t.Errorf("queue wait = %v, want 0 (stage started at release)", res.queueWait)
	}
	if res.busyTime != 3*units.Second {
		t.Errorf("busy = %v, want 3s", res.busyTime)
	}
	// One release event plus one completion event.
	if eng.dispatched != 2 {
		t.Errorf("dispatched = %d, want 2", eng.dispatched)
	}
}

// TestEngineShardedDeterminism runs the same three-plan workload on 1, 2,
// and 4 shards with resources spread across them and checks the completion
// order and accounting are identical: global (time, seq) dispatch makes the
// shard count invisible.
func TestEngineShardedDeterminism(t *testing.T) {
	type runOut struct {
		completions []units.Duration
		order       []int32
		dispatched  int64
	}
	run := func(shards int) runOut {
		eng := &engine{}
		eng.setShards(shards)
		nres := 3
		rs := make([]int32, nres)
		for i := range rs {
			rs[i] = eng.newResourceShard(1, "r", int32(i%shards))
		}
		var out runOut
		for i := 0; i < 3; i++ {
			pi := eng.newPlan(int32(i))
			a := eng.addStage(pi, rs[i%nres], 2*units.Second)
			eng.addStageAfter(pi, rs[(i+1)%nres], units.Second, a)
			eng.releaseAt(pi, units.Duration(i))
		}
		eng.done = func(pi int32, finish units.Duration) {
			out.completions = append(out.completions, finish)
			out.order = append(out.order, eng.plans[pi].task)
		}
		eng.run()
		out.dispatched = eng.dispatched
		return out
	}

	want := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if len(got.completions) != len(want.completions) {
			t.Fatalf("shards=%d: %d completions, want %d", shards, len(got.completions), len(want.completions))
		}
		for i := range want.completions {
			if got.completions[i] != want.completions[i] || got.order[i] != want.order[i] {
				t.Errorf("shards=%d: completion %d = task %d at %v, want task %d at %v",
					shards, i, got.order[i], got.completions[i], want.order[i], want.completions[i])
			}
		}
		if got.dispatched != want.dispatched {
			t.Errorf("shards=%d: dispatched = %d, want %d", shards, got.dispatched, want.dispatched)
		}
	}
}

// TestEngineDisabledMetrics confirms the engine runs identically with no
// registry: the accounting fields still fill in, nothing panics.
func TestEngineDisabledMetrics(t *testing.T) {
	eng := &engine{}
	r := eng.newResource(2, "r")
	for i := 0; i < 3; i++ {
		pi := eng.newPlan(noIndex)
		eng.addStage(pi, r, units.Second)
		eng.release(pi)
	}
	eng.run()
	res := &eng.resources[r]
	if res.started != 3 || res.busyTime != 3*units.Second {
		t.Errorf("started/busy = %d/%v, want 3/3s", res.started, res.busyTime)
	}
	if res.peakQueue != 1 {
		t.Errorf("peak queue = %d, want 1 (third stage queued behind two servers)", res.peakQueue)
	}
	eng.recordMetrics() // nil registry: must be a no-op
}
