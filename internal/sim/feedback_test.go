package sim

import (
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/lp"
	"dsmec/internal/rng"
	"dsmec/internal/workload"
)

func TestPlanWithFeedbackReducesMisses(t *testing.T) {
	// A contended scenario where plain LP-HTA misses many deadlines under
	// queueing; feedback replanning must not be worse, and usually helps.
	sc, err := workload.GenerateHolistic(rng.NewSource(31), workload.Params{
		NumDevices: 20, NumStations: 4, NumTasks: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("expected 4 rounds (1 base + 3 feedback), got %d", len(res.Rounds))
	}
	base := res.Rounds[0]
	best := res.Rounds[res.Best]
	if best.Misses+best.Cancelled > base.Misses+base.Cancelled {
		t.Errorf("feedback made things worse: %d unsatisfied vs base %d",
			best.Misses+best.Cancelled, base.Misses+base.Cancelled)
	}
	t.Logf("base: %d misses, %d cancelled, %v; best (round %d): %d misses, %d cancelled, %v",
		base.Misses, base.Cancelled, base.Energy, res.Best, best.Misses, best.Cancelled, best.Energy)

	// The returned assignment must genuinely reproduce the best round's
	// numbers.
	simRes, err := Run(sc.Model, sc.Tasks, res.Assignment, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.DeadlineViolations != best.Misses {
		t.Errorf("returned assignment has %d misses, best round recorded %d",
			simRes.DeadlineViolations, best.Misses)
	}
}

func TestPlanWithFeedbackUncontended(t *testing.T) {
	// With almost no contention the base plan already wins; feedback must
	// return it unchanged.
	sc, err := workload.GenerateHolistic(rng.NewSource(32), workload.Params{
		NumDevices: 30, NumStations: 5, NumTasks: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	b0, bb := res.Rounds[0], res.Rounds[res.Best]
	if bb.Misses+bb.Cancelled > b0.Misses+b0.Cancelled {
		t.Error("best round cannot be worse than the base round")
	}
}

func TestPlanWithFeedbackDeterministic(t *testing.T) {
	run := func() *FeedbackResult {
		sc, err := workload.GenerateHolistic(rng.NewSource(33), workload.Params{
			NumDevices: 10, NumStations: 2, NumTasks: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best != b.Best || len(a.Rounds) != len(b.Rounds) {
		t.Fatal("feedback nondeterministic")
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, a.Rounds[i], b.Rounds[i])
		}
	}
}

func TestPlanWithFeedbackRespectsConstraints(t *testing.T) {
	sc, err := workload.GenerateHolistic(rng.NewSource(34), workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen assignment still satisfies C2-C5 (C1 holds against the
	// *tightened* deadlines, hence also against the real ones for placed
	// tasks planned in round 0; later rounds plan against tighter ones, so
	// real-deadline feasibility still holds).
	if err := core.CheckFeasible(sc.Model, sc.Tasks, res.Assignment); err != nil {
		t.Error(err)
	}
}

func TestPlanWithFeedbackIncrementalMatchesBatch(t *testing.T) {
	// The warm incremental replan path must reproduce the batch replan
	// path round for round: same assignments, same stats, same winner.
	for _, seed := range []int64{31, 34, 35} {
		sc, err := workload.GenerateHolistic(rng.NewSource(seed), workload.Params{
			NumDevices: 16, NumStations: 3, NumTasks: 90,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := PlanWithFeedback(sc.Model, sc.Tasks, FeedbackOptions{Rounds: 3, Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(warm.Rounds) != len(batch.Rounds) {
			t.Fatalf("seed %d: %d rounds vs batch %d", seed, len(warm.Rounds), len(batch.Rounds))
		}
		for r := range batch.Rounds {
			if warm.Rounds[r] != batch.Rounds[r] {
				t.Errorf("seed %d round %d: stats %+v, batch %+v", seed, r, warm.Rounds[r], batch.Rounds[r])
			}
		}
		if warm.Best != batch.Best {
			t.Errorf("seed %d: best round %d, batch %d", seed, warm.Best, batch.Best)
		}
		if !warm.Assignment.Equal(batch.Assignment) {
			t.Errorf("seed %d: incremental assignment differs from batch", seed)
		}
	}
}

func TestPlanWithFeedbackIncrementalRejectsDense(t *testing.T) {
	sc, err := workload.GenerateHolistic(rng.NewSource(36), workload.Params{
		NumDevices: 4, NumStations: 1, NumTasks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := FeedbackOptions{Rounds: 1, Incremental: true}
	opts.LPHTA.LPMethod = lp.MethodDense
	if _, err := PlanWithFeedback(sc.Model, sc.Tasks, opts); err == nil {
		t.Error("incremental feedback with the dense LP method should fail")
	}
}
