package sim

import (
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/rng"
	"dsmec/internal/workload"
)

// BenchmarkEngine measures one full discrete-event replay of an LP-HTA
// assignment at the paper's largest holistic sweep point.
func BenchmarkEngine(b *testing.B) {
	sc, err := workload.GenerateHolistic(rng.NewSource(1), workload.Params{NumTasks: 450})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm, err := Run(sc.Model, sc.Tasks, res.Assignment, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(sm.Outcomes) == 0 {
			b.Fatal("no tasks simulated")
		}
	}
}
