package sim

import (
	"reflect"
	"strings"
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// genScenarioAssignment builds a seeded workload and its LP-HTA assignment
// with the given cluster parallelism.
func genScenarioAssignment(t *testing.T, parallelism int) (*workload.Scenario, *core.Assignment) {
	t.Helper()
	sc, err := workload.GenerateHolistic(rng.NewSource(11), workload.Params{
		NumDevices: 12, NumStations: 3, NumTasks: 36,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LPHTA(sc.Model, sc.Tasks, &core.LPHTAOptions{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return sc, res.Assignment
}

func TestFaultsDisabledIsIdentical(t *testing.T) {
	// An *empty* fault plan exercises the fault-injection code paths
	// (attempt lifecycle, fault runner) but schedules nothing; its results
	// must be bit-identical to a nil plan, which takes the original paths.
	sc, a := genScenarioAssignment(t, 1)
	plain, err := Run(sc.Model, sc.Tasks, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := Run(sc.Model, sc.Tasks, a, Config{Faults: &FaultPlan{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outcomes, empty.Outcomes) {
		t.Error("outcomes differ between nil and empty fault plans")
	}
	if plain.TotalEnergy != empty.TotalEnergy {
		t.Errorf("energy %v != %v", plain.TotalEnergy, empty.TotalEnergy)
	}
	if plain.TotalLatency != empty.TotalLatency || plain.Makespan != empty.Makespan {
		t.Error("latency accounting differs between nil and empty fault plans")
	}
	if plain.DeadlineViolations != empty.DeadlineViolations {
		t.Error("deadline accounting differs between nil and empty fault plans")
	}
	if empty.Faults == nil || len(empty.FaultLog) != 0 {
		t.Error("empty plan should report zero fault events but non-nil stats")
	}
	if plain.Faults != nil || plain.FaultLog != nil {
		t.Error("nil plan should not report fault stats")
	}
}

func TestFaultLogDeterministicAcrossParallelism(t *testing.T) {
	// The same (scenario, fault seed) must reproduce the exact same event
	// log and outcomes, including when the assignment was computed with a
	// different LP-HTA worker count.
	type run struct {
		log      []FaultEvent
		outcomes []TaskOutcome
		stats    FaultStats
	}
	var runs []run
	for _, parallelism := range []int{1, 1, 4} {
		sc, a := genScenarioAssignment(t, parallelism)
		plan := GenerateFaultPlan(rng.NewSource(7), sc.System, DefaultFaultParams())
		res, err := Run(sc.Model, sc.Tasks, a, Config{Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{log: res.FaultLog, outcomes: res.Outcomes, stats: *res.Faults})
	}
	if len(runs[0].log) == 0 {
		t.Fatal("fault plan injected no events; the determinism check is vacuous")
	}
	for i, r := range runs[1:] {
		if !reflect.DeepEqual(runs[0].log, r.log) {
			t.Errorf("run %d: fault log differs", i+1)
		}
		if !reflect.DeepEqual(runs[0].outcomes, r.outcomes) {
			t.Errorf("run %d: outcomes differ", i+1)
		}
		if runs[0].stats != r.stats {
			t.Errorf("run %d: stats %+v != %+v", i+1, r.stats, runs[0].stats)
		}
	}
}

func TestFaultLogDeterministicAcrossShards(t *testing.T) {
	// The event-heap shard count is a layout decision: the same fault
	// plan must produce the same log, outcomes and stats whether events
	// sit in one heap or eight.
	type run struct {
		log      []FaultEvent
		outcomes []TaskOutcome
		stats    FaultStats
	}
	var runs []run
	for _, shards := range []int{1, 2, 8} {
		sc, a := genScenarioAssignment(t, 1)
		plan := GenerateFaultPlan(rng.NewSource(7), sc.System, DefaultFaultParams())
		res, err := Run(sc.Model, sc.Tasks, a, Config{Faults: plan, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{log: res.FaultLog, outcomes: res.Outcomes, stats: *res.Faults})
	}
	if len(runs[0].log) == 0 {
		t.Fatal("fault plan injected no events; the determinism check is vacuous")
	}
	for i, r := range runs[1:] {
		if !reflect.DeepEqual(runs[0].log, r.log) {
			t.Errorf("shard run %d: fault log differs", i+1)
		}
		if !reflect.DeepEqual(runs[0].outcomes, r.outcomes) {
			t.Errorf("shard run %d: outcomes differ", i+1)
		}
		if runs[0].stats != r.stats {
			t.Errorf("shard run %d: stats %+v != %+v", i+1, r.stats, runs[0].stats)
		}
	}
}

func TestGenerateFaultPlanDeterministic(t *testing.T) {
	sc, _ := genScenarioAssignment(t, 1)
	p1 := GenerateFaultPlan(rng.NewSource(3), sc.System, DefaultFaultParams())
	p2 := GenerateFaultPlan(rng.NewSource(3), sc.System, DefaultFaultParams())
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same seed should generate identical plans")
	}
	if err := p1.Validate(sc.System); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	p3 := GenerateFaultPlan(rng.NewSource(4), sc.System, DefaultFaultParams())
	if reflect.DeepEqual(p1, p3) {
		t.Error("different seeds should generate different plans")
	}
}

func TestStationOutageReassignsToDevice(t *testing.T) {
	// The station is down for the entire run: after the retry budget is
	// spent the task must be reassigned to its own device and complete.
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemStation)
	plan := &FaultPlan{StationOutages: []StationOutage{{Station: 0, At: 0, Repair: 10000 * units.Second}}}

	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := res.Outcome(tk.ID)
	if !ok {
		t.Fatalf("task lost instead of reassigned; stats %+v", res.Faults)
	}
	if o.Subsystem != costmodel.SubsystemDevice {
		t.Errorf("reassigned to %v, want device", o.Subsystem)
	}
	if !o.Faulted {
		t.Error("outcome should be marked faulted")
	}
	if res.Faults.Reassignments != 1 {
		t.Errorf("reassignments = %d, want 1", res.Faults.Reassignments)
	}
	if res.Faults.Retries == 0 || res.Faults.Lost != 0 {
		t.Errorf("stats %+v: want retries > 0 and no losses", res.Faults)
	}
}

func TestStationOutageNoReassignLosesTask(t *testing.T) {
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemStation)
	plan := &FaultPlan{
		StationOutages: []StationOutage{{Station: 0, At: 0, Repair: 10000 * units.Second}},
		Recovery:       RecoveryPolicy{NoReassign: true},
	}

	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 0 || res.Faults.Lost != 1 {
		t.Errorf("want the task lost, got %d placed outcomes and stats %+v", res.Placed, res.Faults)
	}
	found := false
	for _, e := range res.FaultLog {
		if e.Kind == "task.lost" {
			found = true
		}
	}
	if !found {
		t.Error("fault log missing task.lost entry")
	}
}

func TestDeviceDepartureLosesItsTasks(t *testing.T) {
	// The home device churns away: nobody can receive the result, so the
	// task is unrecoverable regardless of placement.
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemStation)
	plan := &FaultPlan{DeviceDepartures: []DeviceDeparture{{Device: 0, At: 0}}}

	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 0 || res.Faults.Lost != 1 {
		t.Errorf("want the task lost, got %d placed outcomes and stats %+v", res.Placed, res.Faults)
	}
	if res.Faults.Reassignments != 0 {
		t.Error("a task without a home device must not be reassigned")
	}
	if res.Faults.WastedEnergy <= 0 {
		t.Error("the aborted first attempt should count as wasted energy")
	}
}

func TestRetryAfterRepairSucceeds(t *testing.T) {
	// The outage ends between the first attempt and the first retry, so
	// the retry completes on the original placement.
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemStation)
	// The upload reaches the station CPU at exactly the upload time U;
	// keep the station down until just after that, so attempt 1 fails and
	// retry 1 (released at fail + 0.5 s backoff) finds it repaired.
	dev, err := m.System().Device(0)
	if err != nil {
		t.Fatal(err)
	}
	u := dev.Link.UploadTime(tk.LocalSize)
	plan := &FaultPlan{StationOutages: []StationOutage{{Station: 0, At: 0, Repair: u + 300*units.Millisecond}}}

	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := res.Outcome(tk.ID)
	if !ok {
		t.Fatalf("task not completed; stats %+v, log %v", res.Faults, res.FaultLog)
	}
	if o.Subsystem != costmodel.SubsystemStation {
		t.Errorf("completed on %v, want the original station placement", o.Subsystem)
	}
	if !o.Faulted {
		t.Error("outcome should be marked faulted")
	}
	if res.Faults.Retries != 1 || res.Faults.Reassignments != 0 || res.Faults.Lost != 0 {
		t.Errorf("stats %+v: want exactly one retry and no reassignment", res.Faults)
	}
}

func TestLinkDegradationSlowsTransfer(t *testing.T) {
	// A degraded WAN multiplies the cloud transfer's service time; the
	// completion inflates but nothing fails.
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemCloud)
	plan := &FaultPlan{LinkDegradations: []LinkDegradation{
		{Station: 0, Link: LinkWAN, At: 0, Duration: 10000 * units.Second, Slowdown: 3},
	}}

	base, err := Run(m, ts, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.Outcome(tk.ID)
	o, _ := res.Outcome(tk.ID)
	if o.Completion <= b.Completion {
		t.Errorf("degraded completion %v should exceed clean %v", o.Completion, b.Completion)
	}
	if o.Faulted || res.Faults.FailedAttempts != 0 {
		t.Error("degradation without timeout must not fail the attempt")
	}
	if res.Faults.LinkDegradations != 1 {
		t.Errorf("degradations = %d, want 1", res.Faults.LinkDegradations)
	}
}

func TestTransferTimeoutFailsAttempt(t *testing.T) {
	// A timeout far below the WAN transfer time makes the cloud placement
	// unusable; recovery must move the task off the cloud or lose it.
	m := testModel(t)
	tk := mkTask(0, 0, 1000*units.Kilobyte, 0, task.NoExternalSource)
	ts, err := task.NewSet(tk)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment(ts)
	a.Place(tk.ID, costmodel.SubsystemCloud)
	plan := &FaultPlan{TransferTimeout: units.Millisecond}

	res, err := Run(m, ts, a, Config{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.FailedAttempts == 0 {
		t.Fatal("timeout should have failed at least one attempt")
	}
	timedOut := false
	for _, e := range res.FaultLog {
		if strings.Contains(e.Detail, "transfer timeout") {
			timedOut = true
		}
	}
	if !timedOut {
		t.Errorf("fault log has no transfer timeout entry: %v", res.FaultLog)
	}
	if o, ok := res.Outcome(tk.ID); ok {
		if o.Subsystem == costmodel.SubsystemCloud {
			t.Error("a recovered task cannot have completed on the timed-out cloud path")
		}
	} else if res.Faults.Lost != 1 {
		t.Errorf("task neither completed nor counted lost: %+v", res.Faults)
	}
}

func TestRecoveryPolicyBackoff(t *testing.T) {
	p := RecoveryPolicy{}.withDefaults()
	want := []units.Duration{
		units.Duration(0.5), units.Duration(1), units.Duration(2),
		units.Duration(4), units.Duration(8), units.Duration(8), units.Duration(8),
	}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestMergeOutages(t *testing.T) {
	merged := mergeOutages([]StationOutage{
		{Station: 0, At: 5, Repair: 3}, // [5,8)
		{Station: 0, At: 1, Repair: 2}, // [1,3)
		{Station: 0, At: 7, Repair: 4}, // [7,11) overlaps [5,8) -> [5,11)
		{Station: 1, At: 2, Repair: 1}, // other station untouched
	}, 2)
	want := map[int][]interval{
		0: {{from: 1, to: 3}, {from: 5, to: 11}},
		1: {{from: 2, to: 3}},
	}
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("merged = %v, want %v", merged, want)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	m := testModel(t)
	sys := m.System()
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"station out of range", FaultPlan{StationOutages: []StationOutage{{Station: 9, At: 1, Repair: 1}}}},
		{"negative outage time", FaultPlan{StationOutages: []StationOutage{{Station: 0, At: -1, Repair: 1}}}},
		{"device out of range", FaultPlan{DeviceDepartures: []DeviceDeparture{{Device: -1, At: 0}}}},
		{"unknown link", FaultPlan{LinkDegradations: []LinkDegradation{{Station: 0, Link: 9, At: 0, Duration: 1, Slowdown: 2}}}},
		{"slowdown below one", FaultPlan{LinkDegradations: []LinkDegradation{{Station: 0, Link: LinkWire, At: 0, Duration: 1, Slowdown: 0.5}}}},
		{"negative timeout", FaultPlan{TransferTimeout: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(sys); err == nil {
				t.Error("want a validation error")
			}
		})
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(sys); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
}

func TestGenerateFaultPlanMassOutage(t *testing.T) {
	sc, _ := genScenarioAssignment(t, 1)
	numStations := sc.System.NumStations()
	params := FaultParams{
		MassOutageFrac:   0.5,
		MassOutageAt:     units.Duration(0.2),
		MassOutageRepair: units.Duration(1.5),
	}
	plan := GenerateFaultPlan(rng.NewSource(3), sc.System, params)
	want := (numStations + 1) / 2 // ceil(0.5 * S)
	if len(plan.StationOutages) != want {
		t.Fatalf("mass outage took down %d stations, want %d of %d",
			len(plan.StationOutages), want, numStations)
	}
	seen := map[int]bool{}
	for _, o := range plan.StationOutages {
		if o.At != params.MassOutageAt || o.Repair != params.MassOutageRepair {
			t.Errorf("outage %+v not synchronized at %v for %v", o, params.MassOutageAt, params.MassOutageRepair)
		}
		if seen[o.Station] {
			t.Errorf("station %d taken down twice", o.Station)
		}
		seen[o.Station] = true
	}
	if err := plan.Validate(sc.System); err != nil {
		t.Errorf("mass outage plan invalid: %v", err)
	}
	// Determinism: same seed, same victims.
	again := GenerateFaultPlan(rng.NewSource(3), sc.System, params)
	if !reflect.DeepEqual(plan, again) {
		t.Error("same seed should generate identical mass-outage plans")
	}
	// The zero value changes nothing: plans without the knob are
	// byte-identical to pre-mass-outage builds (the committed goldens
	// pin this end to end).
	base := GenerateFaultPlan(rng.NewSource(3), sc.System, DefaultFaultParams())
	if len(base.StationOutages) != len(GenerateFaultPlan(rng.NewSource(3), sc.System, DefaultFaultParams()).StationOutages) {
		t.Error("default plan generation became nondeterministic")
	}
	// MassOutageRepair defaults to MeanRepair when zero.
	p2 := GenerateFaultPlan(rng.NewSource(3), sc.System, FaultParams{MassOutageFrac: 1})
	if len(p2.StationOutages) != numStations {
		t.Fatalf("frac 1 took down %d of %d stations", len(p2.StationOutages), numStations)
	}
	for _, o := range p2.StationOutages {
		if o.Repair != units.Second { // withDefaults: MeanRepair = 1 s
			t.Errorf("repair %v, want the 1 s MeanRepair default", o.Repair)
		}
	}
}
