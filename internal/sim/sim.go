package sim

import (
	"fmt"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/mecnet"
	"dsmec/internal/obs"
	"dsmec/internal/stats"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Config sizes the shared resources. Zero values take the defaults.
type Config struct {
	// StationCores is the number of tasks a base station's small-scale
	// cloud can compute simultaneously. Default 4.
	StationCores int
	// CloudCores is the cloud's parallelism. Default 64.
	CloudCores int
	// Shards is the number of station shards the event queue is split
	// into. Stations are distributed round-robin across shards and their
	// devices follow; dispatch merges shard heads deterministically on
	// (time, seq), so every output byte is identical at any shard count.
	// Zero picks min(8, stations); 1 keeps a single heap.
	Shards int
	// Obs selects where metrics and trace spans are recorded. The zero
	// value records metrics to the process-wide obs registry (if any)
	// and disables tracing.
	Obs obs.Instruments
	// Faults optionally schedules infrastructure faults for the run and
	// enables the retry/reassign recovery machinery. Nil (the default)
	// disables fault injection entirely: the engine takes the exact same
	// code paths and produces bit-identical output to a fault-free build.
	Faults *FaultPlan
}

func (c Config) withDefaults() Config {
	if c.StationCores == 0 {
		c.StationCores = 4
	}
	if c.CloudCores == 0 {
		c.CloudCores = 64
	}
	return c
}

// shardCount resolves the shard count for a topology.
func (c Config) shardCount(numStations int) int {
	n := c.Shards
	if n == 0 {
		n = 8
		if numStations < n {
			n = numStations
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// TaskOutcome is one task's simulated execution record.
type TaskOutcome struct {
	// ID is the task's identity; Placed reports whether the task actually
	// ran (false for cancelled and fault-lost tasks, whose remaining
	// fields are zero).
	ID     task.ID
	Placed bool

	Subsystem costmodel.Subsystem
	// Release is when the task entered the system (0 in the quasi-static
	// setting); Completion is the absolute time its result reached the
	// user; Sojourn = Completion - Release is the user-perceived latency.
	Release    units.Duration
	Completion units.Duration
	Sojourn    units.Duration
	Analytic   units.Duration // the closed-form t_ijl for comparison
	DeadlineOK bool           // Sojourn <= deadline
	// Faulted marks tasks that lost at least one attempt to a fault
	// before completing; their deadline misses are attributed to faults
	// rather than capacity. Always false without fault injection.
	Faulted bool
}

// Result summarizes a simulation run.
type Result struct {
	// Outcomes holds one record per task in the set's arena order (dense,
	// not a map); entries with Placed == false were cancelled or lost.
	Outcomes []TaskOutcome
	// Placed counts tasks that completed in the simulator.
	Placed int
	// TotalEnergy matches the analytic model: queueing shifts time, not
	// energy.
	TotalEnergy units.Energy
	// Makespan is the completion time of the last task.
	Makespan units.Duration
	// TotalLatency sums sojourn times (= completions in the quasi-static
	// setting); MeanLatency averages over placed tasks.
	TotalLatency units.Duration
	// DeadlineViolations counts placed tasks finishing after their
	// deadline (under queueing, more tasks miss deadlines than the
	// analytic model predicts).
	DeadlineViolations int
	// Cancelled counts tasks the assignment did not place.
	Cancelled int
	// Faults carries the fault/recovery accounting and FaultLog the
	// ordered fault event log; both are nil without fault injection.
	Faults   *FaultStats
	FaultLog []FaultEvent

	ts *task.Set // for Outcome lookups
}

// Outcome returns the placed outcome of a task by ID.
func (r *Result) Outcome(id task.ID) (TaskOutcome, bool) {
	if r.ts == nil {
		return TaskOutcome{}, false
	}
	i, ok := r.ts.IndexOf(id)
	if !ok || !r.Outcomes[i].Placed {
		return TaskOutcome{}, false
	}
	return r.Outcomes[i], true
}

// MeanLatency returns the average simulated latency over placed tasks.
func (r *Result) MeanLatency() units.Duration {
	if r.Placed == 0 {
		return 0
	}
	return r.TotalLatency / units.Duration(r.Placed)
}

// Run simulates the execution of assignment a over the task set, with
// every task released at time zero (the paper's quasi-static setting).
func Run(m *costmodel.Model, ts *task.Set, a *core.Assignment, cfg Config) (*Result, error) {
	return RunReleases(m, ts, a, cfg, nil)
}

// RunReleases simulates the execution with per-task release times,
// relaxing the quasi-static assumption: a task's plan enters the system at
// releases[id] (zero when absent), and its deadline is checked against the
// sojourn time Completion - Release.
func RunReleases(m *costmodel.Model, ts *task.Set, a *core.Assignment, cfg Config, releases map[task.ID]units.Duration) (*Result, error) {
	cfg = cfg.withDefaults()
	sys := m.System()

	span := cfg.Obs.Span.Child("sim.run")
	defer span.End()
	span.Annotate("tasks", ts.Len())
	cfg.Obs.Counter("sim.runs").Inc()

	buildSpan := span.Child("sim.build")
	eng := &engine{ins: cfg.Obs}
	eng.setShards(cfg.shardCount(sys.NumStations()))
	nshards := int32(len(eng.shards))
	res := &Result{Outcomes: make([]TaskOutcome, ts.Len()), ts: ts}

	// Size the arenas exactly before anything is appended: the plan and
	// stage counts follow from the assignment alone, and the resource
	// count from the topology, so the builder never pays append-doubling.
	nplans, nstages := countStages(sys, ts, a)
	eng.reserve(nplans, nstages, 3*sys.NumDevices()+3*sys.NumStations()+1)

	// Build resources. A station's shard is station % shards; its devices
	// and the cloud pool follow their cluster (the cloud, shared by every
	// cluster, lands on shard 0).
	shardOfStation := func(st int) int32 { return int32(st) % nshards }
	devUp := make([]int32, sys.NumDevices())
	devDown := make([]int32, sys.NumDevices())
	devCPU := make([]int32, sys.NumDevices())
	for i := range devUp {
		sh := shardOfStation(sys.Devices[i].Station)
		devUp[i] = eng.newResourceShard(1, "dev.up", sh)
		devDown[i] = eng.newResourceShard(1, "dev.down", sh)
		devCPU[i] = eng.newResourceShard(1, "dev.cpu", sh)
	}
	stWire := make([]int32, sys.NumStations())
	stWAN := make([]int32, sys.NumStations())
	stCPU := make([]int32, sys.NumStations())
	for s := range stWire {
		sh := shardOfStation(s)
		stWire[s] = eng.newResourceShard(1, "st.wire", sh)
		stWAN[s] = eng.newResourceShard(1, "st.wan", sh)
		stCPU[s] = eng.newResourceShard(cfg.StationCores, "st.cpu", sh)
	}
	cloudCPU := eng.newResourceShard(cfg.CloudCores, "cloud.cpu", 0)
	pools := planResources{
		devUp: devUp, devDown: devDown, devCPU: devCPU,
		stWire: stWire, stWAN: stWAN, stCPU: stCPU, cloudCPU: cloudCPU,
	}

	var fr *faultRunner
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(sys); err != nil {
			return nil, err
		}
		fr = newFaultRunner(eng, cfg.Faults, sys, m, pools)
	}

	// Under fault injection, energyOf holds each task's analytic energy
	// for its (final) placement and the final task-order pass sums it, so
	// floating-point accumulation is deterministic whether or not tasks
	// were reassigned. Without faults, placements never move and energy
	// accumulates inline in the same task order (identical sums).
	var energyOf []units.Energy
	if fr != nil {
		energyOf = make([]units.Energy, ts.Len())
	}

	// One engine-level completion hook serves every fault-free plan: the
	// plan carries its dense task index, so no per-task closure is built.
	eng.done = func(pi int32, finish units.Duration) {
		ti := eng.plans[pi].task
		o := &res.Outcomes[ti]
		o.Placed = true
		o.Completion = finish
		o.Sojourn = finish - o.Release
		o.DeadlineOK = o.Sojourn <= ts.At(int(ti)).Deadline
	}

	for i := 0; i < ts.Len(); i++ {
		t := ts.At(i)
		res.Outcomes[i].ID = t.ID
		l, ok := a.LevelFor(ts, i)
		if !ok {
			return nil, fmt.Errorf("sim: task %v missing from assignment", t.ID)
		}
		switch l {
		case costmodel.SubsystemNone:
			res.Cancelled++
			continue
		case costmodel.SubsystemDevice, costmodel.SubsystemStation, costmodel.SubsystemCloud:
		default:
			return nil, fmt.Errorf("sim: task %v has invalid subsystem %d", t.ID, int(l))
		}
		opts, err := m.Eval(t)
		if err != nil {
			return nil, err
		}
		release := releases[t.ID]
		if release < 0 || !release.IsFinite() {
			return nil, fmt.Errorf("sim: task %v has invalid release %v", t.ID, release)
		}

		if fr != nil {
			att := &attempt{
				eng: eng, fr: fr, m: m, res: res, pools: pools, energyOf: energyOf,
				t: t, tIdx: int32(i), opts: opts, release: release, placement: l,
			}
			if err := att.launch(release); err != nil {
				return nil, err
			}
			continue
		}

		res.TotalEnergy += opts.At(l).Energy
		pi, err := buildPlan(eng, m, t, int32(i), l, pools)
		if err != nil {
			return nil, err
		}
		o := &res.Outcomes[i]
		o.Subsystem = l
		o.Release = release
		o.Analytic = opts.At(l).Time
		eng.releaseAt(pi, release)
	}
	buildSpan.End()

	runSpan := span.Child("sim.events")
	eng.run()
	runSpan.Annotate("events", eng.dispatched)
	runSpan.End()

	// Accumulate in task order so floating-point sums are deterministic
	// run to run. Sojourns bin into local counts and merge into the
	// registry once, off the per-task path.
	var sojourns stats.HistogramCounts
	if cfg.Obs.Registry() != nil {
		sojourns = stats.HistogramCounts{
			Bounds: obs.TimeBuckets,
			Counts: make([]int64, len(obs.TimeBuckets)+1),
		}
	}
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if !o.Placed {
			continue
		}
		res.Placed++
		if fr != nil {
			res.TotalEnergy += energyOf[i]
		}
		res.TotalLatency += o.Sojourn
		if sojourns.Counts != nil {
			sojourns.Counts[stats.Bucketize(o.Sojourn.Seconds(), sojourns.Bounds)]++
			sojourns.Count++
			sojourns.Sum += o.Sojourn.Seconds()
		}
		if o.Completion > res.Makespan {
			res.Makespan = o.Completion
		}
		if !o.DeadlineOK {
			res.DeadlineViolations++
			if fr != nil {
				if o.Faulted {
					fr.stats.FaultMisses++
				} else {
					fr.stats.CapacityMisses++
				}
			}
		}
	}
	lost := 0
	if fr != nil {
		lost = fr.stats.Lost
		// Energy burnt on attempts that a fault voided is still energy the
		// system drew from batteries and stations.
		res.TotalEnergy += fr.stats.WastedEnergy
		res.Faults = &fr.stats
		res.FaultLog = fr.log
	}
	if want := ts.Len() - res.Cancelled - lost; res.Placed != want {
		return nil, fmt.Errorf("sim: %d outcomes for %d placed tasks", res.Placed, want)
	}
	eng.recordMetrics()
	if fr != nil {
		fr.recordMetrics(cfg.Obs)
	}
	if sojourns.Count > 0 {
		_ = cfg.Obs.Histogram("sim.sojourn_seconds", obs.TimeBuckets).Merge(sojourns)
	}
	cfg.Obs.Counter("sim.tasks_placed").Add(int64(res.Placed))
	cfg.Obs.Counter("sim.tasks_cancelled").Add(int64(res.Cancelled))
	cfg.Obs.Counter("sim.deadline_misses").Add(int64(res.DeadlineViolations))
	span.Annotate("makespan_seconds", res.Makespan.Seconds())
	span.Annotate("deadline_misses", res.DeadlineViolations)
	if log := cfg.Obs.Logger(); log.Enabled(obs.LevelDebug) {
		log.Debug("sim run done",
			"tasks", ts.Len(),
			"placed", res.Placed,
			"cancelled", res.Cancelled,
			"lost", lost,
			"events", eng.dispatched,
			"shards", len(eng.shards),
			"makespan_seconds", res.Makespan.Seconds(),
			"deadline_misses", res.DeadlineViolations)
	}
	return res, nil
}

// planResources groups the resource pools (engine arena indices) for plan
// construction.
type planResources struct {
	devUp, devDown, devCPU []int32
	stWire, stWAN, stCPU   []int32
	cloudCPU               int32
}

// countStages mirrors buildPlan's branching to compute the exact plan
// and stage totals for an assignment before any plan is built. Tasks the
// build loop will reject (missing from the assignment, invalid placement,
// out-of-range device references) count zero here and fail there; the
// reservation is then merely an underestimate, never wrong output.
func countStages(sys *mecnet.System, ts *task.Set, a *core.Assignment) (nplans, nstages int) {
	for i := 0; i < ts.Len(); i++ {
		t := ts.At(i)
		l, ok := a.LevelFor(ts, i)
		if !ok {
			continue
		}
		if t.ID.User < 0 || t.ID.User >= len(sys.Devices) {
			continue
		}
		station := sys.Devices[t.ID.User].Station
		ext := t.HasExternal()
		cross := false
		if ext {
			if t.ExternalSource < 0 || t.ExternalSource >= len(sys.Devices) {
				continue
			}
			cross = sys.Devices[t.ExternalSource].Station != station
		}
		n := 0
		switch l {
		case costmodel.SubsystemDevice:
			n = 1 // device CPU
			if ext {
				n += 2 // source upload + home download
				if cross {
					n++ // inter-station wire hop
				}
			}
		case costmodel.SubsystemStation:
			n = 3 // local upload, station exec, download
			if ext {
				n++ // source upload
				if cross {
					n++ // inter-station wire hop
				}
			}
		case costmodel.SubsystemCloud:
			n = 4 // local upload, WAN crossing, cloud exec, download
			if ext {
				n++ // source upload
			}
		default:
			continue
		}
		nplans++
		nstages += n
	}
	return nplans, nstages
}

// buildPlan translates the Section II transfer/compute structure of
// placement l into a stage DAG in the engine's arena, bound to the dense
// task index ti, and returns the plan's arena index.
func buildPlan(e *engine, m *costmodel.Model, t *task.Task, ti int32, l costmodel.Subsystem, r planResources) (int32, error) {
	sys := m.System()
	dev, err := sys.Device(t.ID.User)
	if err != nil {
		return noIndex, fmt.Errorf("sim: %w", err)
	}
	home := t.ID.User
	station := dev.Station

	var src int
	sameCluster := true
	if t.HasExternal() {
		s, err := sys.Device(t.ExternalSource)
		if err != nil {
			return noIndex, fmt.Errorf("sim: %w", err)
		}
		src = t.ExternalSource
		sameCluster = s.Station == station
	}

	input := t.InputSize()
	cycles := m.Cycles(input)
	result := m.ResultSize(input)
	pi := e.newPlan(ti)

	switch l {
	case costmodel.SubsystemDevice:
		prev := noIndex
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			prev = e.addStage(pi, r.devUp[src], srcDev.Link.UploadTime(beta))
			if !sameCluster {
				prev = e.addStageAfter(pi, r.stWire[srcDev.Station], sys.StationWire.TransferTime(beta), prev)
			}
			prev = e.addStageAfter(pi, r.devDown[home], dev.Link.DownloadTime(beta), prev)
		}
		e.addStageAfter(pi, r.devCPU[home], dev.Proc.ExecTime(cycles), prev)

	case costmodel.SubsystemStation:
		ext := noIndex
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			ext = e.addStage(pi, r.devUp[src], srcDev.Link.UploadTime(beta))
			if !sameCluster {
				ext = e.addStageAfter(pi, r.stWire[srcDev.Station], sys.StationWire.TransferTime(beta), ext)
			}
		}
		local := e.addStage(pi, r.devUp[home], dev.Link.UploadTime(t.LocalSize))
		exec := e.addStageJoin(pi, r.stCPU[station], sys.Stations[station].Proc.ExecTime(cycles), ext, local)
		e.addStageAfter(pi, r.devDown[home], dev.Link.DownloadTime(result), exec)

	case costmodel.SubsystemCloud:
		ext := noIndex
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			ext = e.addStage(pi, r.devUp[src], srcDev.Link.UploadTime(beta))
		}
		local := e.addStage(pi, r.devUp[home], dev.Link.UploadTime(t.LocalSize))
		// Mirror the analytic t_B,C(α+β+η): one WAN crossing charged for
		// the full round-trip volume.
		wan := e.addStageJoin(pi, r.stWAN[station], sys.CloudWire.TransferTime(input+result), ext, local)
		exec := e.addStageAfter(pi, r.cloudCPU, sys.Cloud.Proc.ExecTime(cycles), wan)
		e.addStageAfter(pi, r.devDown[home], dev.Link.DownloadTime(result), exec)

	default:
		return noIndex, fmt.Errorf("sim: task %v has invalid subsystem %d", t.ID, int(l))
	}
	return pi, nil
}
