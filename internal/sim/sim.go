package sim

import (
	"fmt"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/obs"
	"dsmec/internal/stats"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Config sizes the shared resources. Zero values take the defaults.
type Config struct {
	// StationCores is the number of tasks a base station's small-scale
	// cloud can compute simultaneously. Default 4.
	StationCores int
	// CloudCores is the cloud's parallelism. Default 64.
	CloudCores int
	// Obs selects where metrics and trace spans are recorded. The zero
	// value records metrics to the process-wide obs registry (if any)
	// and disables tracing.
	Obs obs.Instruments
	// Faults optionally schedules infrastructure faults for the run and
	// enables the retry/reassign recovery machinery. Nil (the default)
	// disables fault injection entirely: the engine takes the exact same
	// code paths and produces bit-identical output to a fault-free build.
	Faults *FaultPlan
}

func (c Config) withDefaults() Config {
	if c.StationCores == 0 {
		c.StationCores = 4
	}
	if c.CloudCores == 0 {
		c.CloudCores = 64
	}
	return c
}

// TaskOutcome is one task's simulated execution record.
type TaskOutcome struct {
	Subsystem costmodel.Subsystem
	// Release is when the task entered the system (0 in the quasi-static
	// setting); Completion is the absolute time its result reached the
	// user; Sojourn = Completion - Release is the user-perceived latency.
	Release    units.Duration
	Completion units.Duration
	Sojourn    units.Duration
	Analytic   units.Duration // the closed-form t_ijl for comparison
	DeadlineOK bool           // Sojourn <= deadline
	// Faulted marks tasks that lost at least one attempt to a fault
	// before completing; their deadline misses are attributed to faults
	// rather than capacity. Always false without fault injection.
	Faulted bool
}

// Result summarizes a simulation run.
type Result struct {
	Outcomes map[task.ID]TaskOutcome
	// TotalEnergy matches the analytic model: queueing shifts time, not
	// energy.
	TotalEnergy units.Energy
	// Makespan is the completion time of the last task.
	Makespan units.Duration
	// TotalLatency sums sojourn times (= completions in the quasi-static
	// setting); MeanLatency averages over placed tasks.
	TotalLatency units.Duration
	// DeadlineViolations counts placed tasks finishing after their
	// deadline (under queueing, more tasks miss deadlines than the
	// analytic model predicts).
	DeadlineViolations int
	// Cancelled counts tasks the assignment did not place.
	Cancelled int
	// Faults carries the fault/recovery accounting and FaultLog the
	// ordered fault event log; both are nil without fault injection.
	Faults   *FaultStats
	FaultLog []FaultEvent
}

// MeanLatency returns the average simulated latency over placed tasks.
func (r *Result) MeanLatency() units.Duration {
	placed := len(r.Outcomes)
	if placed == 0 {
		return 0
	}
	return r.TotalLatency / units.Duration(placed)
}

// Run simulates the execution of assignment a over the task set, with
// every task released at time zero (the paper's quasi-static setting).
func Run(m *costmodel.Model, ts *task.Set, a *core.Assignment, cfg Config) (*Result, error) {
	return RunReleases(m, ts, a, cfg, nil)
}

// RunReleases simulates the execution with per-task release times,
// relaxing the quasi-static assumption: a task's plan enters the system at
// releases[id] (zero when absent), and its deadline is checked against the
// sojourn time Completion - Release.
func RunReleases(m *costmodel.Model, ts *task.Set, a *core.Assignment, cfg Config, releases map[task.ID]units.Duration) (*Result, error) {
	cfg = cfg.withDefaults()
	sys := m.System()

	span := cfg.Obs.Span.Child("sim.run")
	defer span.End()
	span.Annotate("tasks", ts.Len())
	cfg.Obs.Counter("sim.runs").Inc()

	buildSpan := span.Child("sim.build")
	eng := &engine{ins: cfg.Obs}
	res := &Result{Outcomes: make(map[task.ID]TaskOutcome, ts.Len())}

	// Build resources.
	devUp := make([]*resource, sys.NumDevices())
	devDown := make([]*resource, sys.NumDevices())
	devCPU := make([]*resource, sys.NumDevices())
	for i := range devUp {
		devUp[i] = eng.newResource(1, "dev.up")
		devDown[i] = eng.newResource(1, "dev.down")
		devCPU[i] = eng.newResource(1, "dev.cpu")
	}
	stWire := make([]*resource, sys.NumStations())
	stWAN := make([]*resource, sys.NumStations())
	stCPU := make([]*resource, sys.NumStations())
	for s := range stWire {
		stWire[s] = eng.newResource(1, "st.wire")
		stWAN[s] = eng.newResource(1, "st.wan")
		stCPU[s] = eng.newResource(cfg.StationCores, "st.cpu")
	}
	cloudCPU := eng.newResource(cfg.CloudCores, "cloud.cpu")
	pools := planResources{
		devUp: devUp, devDown: devDown, devCPU: devCPU,
		stWire: stWire, stWAN: stWAN, stCPU: stCPU, cloudCPU: cloudCPU,
	}

	var fr *faultRunner
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(sys); err != nil {
			return nil, err
		}
		fr = newFaultRunner(eng, cfg.Faults, sys, pools)
	}

	// Under fault injection, energyOf holds each task's analytic energy
	// for its (final) placement and the final task-order pass sums it, so
	// floating-point accumulation is deterministic whether or not tasks
	// were reassigned. Without faults, placements never move and energy
	// accumulates inline in the same task order (identical sums, no map).
	var energyOf map[task.ID]units.Energy
	if fr != nil {
		energyOf = make(map[task.ID]units.Energy, ts.Len())
	}
	for _, t := range ts.All() {
		l, ok := a.Placement[t.ID]
		if !ok {
			return nil, fmt.Errorf("sim: task %v missing from assignment", t.ID)
		}
		switch l {
		case costmodel.SubsystemNone:
			res.Cancelled++
			continue
		case costmodel.SubsystemDevice, costmodel.SubsystemStation, costmodel.SubsystemCloud:
		default:
			return nil, fmt.Errorf("sim: task %v has invalid subsystem %d", t.ID, int(l))
		}
		opts, err := m.Eval(t)
		if err != nil {
			return nil, err
		}
		id := t.ID
		release := releases[id]
		if release < 0 || !release.IsFinite() {
			return nil, fmt.Errorf("sim: task %v has invalid release %v", id, release)
		}

		if fr != nil {
			att := &attempt{
				eng: eng, fr: fr, m: m, res: res, pools: pools, energyOf: energyOf,
				t: t, opts: opts, release: release, placement: l,
			}
			if err := att.launch(release); err != nil {
				return nil, err
			}
			continue
		}

		res.TotalEnergy += opts.At(l).Energy
		plan, err := buildPlan(m, t, l, pools)
		if err != nil {
			return nil, err
		}
		analytic := opts.At(l).Time
		deadline := t.Deadline
		subsystem := l
		plan.onDone = func(finish units.Duration) {
			sojourn := finish - release
			res.Outcomes[id] = TaskOutcome{
				Subsystem:  subsystem,
				Release:    release,
				Completion: finish,
				Sojourn:    sojourn,
				Analytic:   analytic,
				DeadlineOK: sojourn <= deadline,
			}
		}
		eng.releaseAt(plan, release)
	}
	buildSpan.End()

	runSpan := span.Child("sim.events")
	eng.run()
	runSpan.Annotate("events", eng.dispatched)
	runSpan.End()

	// Accumulate in task order so floating-point sums are deterministic
	// run to run (map iteration order is not). Sojourns bin into local
	// counts and merge into the registry once, off the per-task path.
	var sojourns stats.HistogramCounts
	if cfg.Obs.Registry() != nil {
		sojourns = stats.HistogramCounts{
			Bounds: obs.TimeBuckets,
			Counts: make([]int64, len(obs.TimeBuckets)+1),
		}
	}
	for _, t := range ts.All() {
		o, ok := res.Outcomes[t.ID]
		if !ok {
			continue
		}
		if fr != nil {
			res.TotalEnergy += energyOf[t.ID]
		}
		res.TotalLatency += o.Sojourn
		if sojourns.Counts != nil {
			sojourns.Counts[stats.Bucketize(o.Sojourn.Seconds(), sojourns.Bounds)]++
			sojourns.Count++
			sojourns.Sum += o.Sojourn.Seconds()
		}
		if o.Completion > res.Makespan {
			res.Makespan = o.Completion
		}
		if !o.DeadlineOK {
			res.DeadlineViolations++
			if fr != nil {
				if o.Faulted {
					fr.stats.FaultMisses++
				} else {
					fr.stats.CapacityMisses++
				}
			}
		}
	}
	lost := 0
	if fr != nil {
		lost = fr.stats.Lost
		// Energy burnt on attempts that a fault voided is still energy the
		// system drew from batteries and stations.
		res.TotalEnergy += fr.stats.WastedEnergy
		res.Faults = &fr.stats
		res.FaultLog = fr.log
	}
	if want := ts.Len() - res.Cancelled - lost; len(res.Outcomes) != want {
		return nil, fmt.Errorf("sim: %d outcomes for %d placed tasks", len(res.Outcomes), want)
	}
	eng.recordMetrics()
	if fr != nil {
		fr.recordMetrics(cfg.Obs)
	}
	if sojourns.Count > 0 {
		_ = cfg.Obs.Histogram("sim.sojourn_seconds", obs.TimeBuckets).Merge(sojourns)
	}
	cfg.Obs.Counter("sim.tasks_placed").Add(int64(len(res.Outcomes)))
	cfg.Obs.Counter("sim.tasks_cancelled").Add(int64(res.Cancelled))
	cfg.Obs.Counter("sim.deadline_misses").Add(int64(res.DeadlineViolations))
	span.Annotate("makespan_seconds", res.Makespan.Seconds())
	span.Annotate("deadline_misses", res.DeadlineViolations)
	if log := cfg.Obs.Logger(); log.Enabled(obs.LevelDebug) {
		log.Debug("sim run done",
			"tasks", ts.Len(),
			"placed", len(res.Outcomes),
			"cancelled", res.Cancelled,
			"lost", lost,
			"events", eng.dispatched,
			"makespan_seconds", res.Makespan.Seconds(),
			"deadline_misses", res.DeadlineViolations)
	}
	return res, nil
}

// planResources groups the resource pools for plan construction.
type planResources struct {
	devUp, devDown, devCPU []*resource
	stWire, stWAN, stCPU   []*resource
	cloudCPU               *resource
}

// buildPlan translates the Section II transfer/compute structure of
// placement l into a stage DAG.
func buildPlan(m *costmodel.Model, t *task.Task, l costmodel.Subsystem, r planResources) (*plan, error) {
	sys := m.System()
	dev, err := sys.Device(t.ID.User)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	home := t.ID.User
	station := dev.Station

	var src int
	sameCluster := true
	if t.HasExternal() {
		s, err := sys.Device(t.ExternalSource)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		src = t.ExternalSource
		sameCluster = s.Station == station
	}

	input := t.InputSize()
	cycles := m.Cycles(input)
	result := m.ResultSize(input)
	p := &plan{}

	switch l {
	case costmodel.SubsystemDevice:
		var prev *stage
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			prev = p.stage(r.devUp[src], srcDev.Link.UploadTime(beta))
			if !sameCluster {
				prev = p.stageAfter(r.stWire[srcDev.Station], sys.StationWire.TransferTime(beta), prev)
			}
			prev = p.stageAfter(r.devDown[home], dev.Link.DownloadTime(beta), prev)
		}
		p.stageAfter(r.devCPU[home], dev.Proc.ExecTime(cycles), prev)

	case costmodel.SubsystemStation:
		join := make([]*stage, 0, 2)
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			ext := p.stage(r.devUp[src], srcDev.Link.UploadTime(beta))
			if !sameCluster {
				ext = p.stageAfter(r.stWire[srcDev.Station], sys.StationWire.TransferTime(beta), ext)
			}
			join = append(join, ext)
		}
		join = append(join, p.stage(r.devUp[home], dev.Link.UploadTime(t.LocalSize)))
		exec := p.stageAfterAll(r.stCPU[station], sys.Stations[station].Proc.ExecTime(cycles), join)
		p.stageAfter(r.devDown[home], dev.Link.DownloadTime(result), exec)

	case costmodel.SubsystemCloud:
		join := make([]*stage, 0, 2)
		if t.HasExternal() {
			beta := t.ExternalSize
			srcDev := &sys.Devices[src]
			join = append(join, p.stage(r.devUp[src], srcDev.Link.UploadTime(beta)))
		}
		join = append(join, p.stage(r.devUp[home], dev.Link.UploadTime(t.LocalSize)))
		// Mirror the analytic t_B,C(α+β+η): one WAN crossing charged for
		// the full round-trip volume.
		wan := p.stageAfterAll(r.stWAN[station], sys.CloudWire.TransferTime(input+result), join)
		exec := p.stageAfter(r.cloudCPU, sys.Cloud.Proc.ExecTime(cycles), wan)
		p.stageAfter(r.devDown[home], dev.Link.DownloadTime(result), exec)

	default:
		return nil, fmt.Errorf("sim: task %v has invalid subsystem %d", t.ID, int(l))
	}
	return p, nil
}
