package sim

import (
	"container/heap"

	"dsmec/internal/units"
)

// stage is one unit of work on one resource. A stage becomes eligible when
// all its dependencies finish; it then queues on its resource and occupies
// one server for its service time.
type stage struct {
	res       *resource
	service   units.Duration
	next      []*stage // stages depending on this one
	waitingOn int      // unmet dependency count
	plan      *plan
}

// plan is the stage DAG of a single task. The plan completes when its last
// stage finishes (pending tracks unfinished stages; the DAG is connected
// through the final stage, so the maximum finish time is the completion).
type plan struct {
	stages  []*stage
	pending int
	finish  units.Duration
	onDone  func(finish units.Duration)
}

// stage appends a root stage (no dependencies).
func (p *plan) stage(res *resource, service units.Duration) *stage {
	s := &stage{res: res, service: service, plan: p}
	p.stages = append(p.stages, s)
	return s
}

// stageAfter appends a stage depending on prev (prev may be nil, making
// the stage a root).
func (p *plan) stageAfter(res *resource, service units.Duration, prev *stage) *stage {
	if prev == nil {
		return p.stage(res, service)
	}
	return p.stageAfterAll(res, service, []*stage{prev})
}

// stageAfterAll appends a stage depending on every stage in deps.
func (p *plan) stageAfterAll(res *resource, service units.Duration, deps []*stage) *stage {
	s := &stage{res: res, service: service, waitingOn: len(deps), plan: p}
	for _, d := range deps {
		d.next = append(d.next, s)
	}
	p.stages = append(p.stages, s)
	return s
}

// resource is a k-server FIFO queue.
type resource struct {
	eng     *engine
	servers int
	busy    int
	queue   []*stage
}

// enqueue adds an eligible stage; it starts immediately if a server is
// free.
func (r *resource) enqueue(s *stage, now units.Duration) {
	if r.busy < r.servers {
		r.start(s, now)
		return
	}
	r.queue = append(r.queue, s)
}

func (r *resource) start(s *stage, now units.Duration) {
	r.busy++
	r.eng.schedule(now+s.service, s)
}

// finish releases the server and starts the next queued stage.
func (r *resource) finish(now units.Duration) {
	r.busy--
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.start(next, now)
	}
}

// event is either a scheduled stage completion (stage != nil) or a timed
// plan release (plan != nil).
type event struct {
	at    units.Duration
	seq   int // FIFO tie-break for identical times
	stage *stage
	plan  *plan
}

// eventHeap orders events by time, then insertion order.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// engine drives the event loop.
type engine struct {
	now    units.Duration
	events eventHeap
	seq    int
}

// newResource registers a k-server resource with the engine.
func (e *engine) newResource(servers int) *resource {
	return &resource{eng: e, servers: servers}
}

// schedule arms a completion event.
func (e *engine) schedule(at units.Duration, s *stage) {
	heap.Push(&e.events, event{at: at, seq: e.seq, stage: s})
	e.seq++
}

// release submits a plan immediately: all root stages become eligible.
func (e *engine) release(p *plan) {
	p.pending = len(p.stages)
	for _, s := range p.stages {
		if s.waitingOn == 0 {
			s.res.enqueue(s, e.now)
		}
	}
	if p.pending == 0 && p.onDone != nil {
		p.onDone(e.now) // degenerate empty plan
	}
}

// releaseAt submits a plan at the given simulated time (immediately when
// the time is not in the future).
func (e *engine) releaseAt(p *plan, at units.Duration) {
	if at <= e.now {
		e.release(p)
		return
	}
	heap.Push(&e.events, event{at: at, seq: e.seq, plan: p})
	e.seq++
}

// run processes events until none remain.
func (e *engine) run() {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.plan != nil {
			e.release(ev.plan)
			continue
		}
		s := ev.stage
		s.res.finish(e.now)

		p := s.plan
		p.pending--
		if e.now > p.finish {
			p.finish = e.now
		}
		if p.pending == 0 && p.onDone != nil {
			p.onDone(p.finish)
		}
		for _, nxt := range s.next {
			nxt.waitingOn--
			if nxt.waitingOn == 0 {
				nxt.res.enqueue(nxt, e.now)
			}
		}
	}
}
