package sim

import (
	"fmt"
	"sort"

	"dsmec/internal/obs"
	"dsmec/internal/stats"
	"dsmec/internal/units"
)

// noIndex marks an absent arena reference (no dependency, no task, ...).
const noIndex = int32(-1)

// stage is one unit of work on one resource. A stage becomes eligible when
// all its dependencies finish; it then queues on its resource and occupies
// one server for its service time.
//
// Stages live in the engine's flat arena and reference their resource,
// plan and successors by int32 arena indices instead of pointers: a
// million-task run keeps its per-stage bookkeeping in a handful of
// contiguous allocations, and arena growth never invalidates a reference.
type stage struct {
	res       int32 // resource arena index
	plan      int32 // plan arena index
	next      [2]int32
	nnext     int8 // used entries of next (plan DAGs fan out at most 2)
	waitingOn int8 // unmet dependency count
	// Fault-injection bookkeeping; untouched (zero) when the engine has
	// no fault runner.
	aborted  bool // killed by an outage; skip its completion
	timedOut bool // completion event is a transfer timeout

	service    units.Duration
	enqueuedAt units.Duration // when the stage became eligible
	finishAt   units.Duration // scheduled completion of the in-service stage
}

// plan is the stage DAG of a single task. Its stages are the contiguous
// arena run [first, first+n) — plans are always built one at a time, so a
// plan's stages are never interleaved with another's. The plan completes
// when its last stage finishes (pending tracks unfinished stages; the DAG
// is connected through the final stage, so the maximum finish time is the
// completion).
type plan struct {
	first   int32
	n       int32
	pending int32
	// task is the dense task-set index the plan executes; noIndex for
	// plans not bound to a task (engine tests). When onDone is nil the
	// engine-level done hook receives the completion, so the fault-free
	// path needs no per-task closure at all.
	task   int32
	finish units.Duration
	onDone func(finish units.Duration)

	// Fault-injection state; zero when fault injection is disabled.
	failed     bool // a stage failed; the whole attempt is void
	anyStarted bool // at least one stage occupied a server
	onFail     func(at units.Duration, reason string)
}

// newPlan appends an empty plan bound to the given task index (noIndex
// for none) and returns its arena index.
func (e *engine) newPlan(taskIdx int32) int32 {
	pi := int32(len(e.plans))
	e.plans = append(e.plans, plan{first: int32(len(e.stages)), task: taskIdx})
	return pi
}

// addStage appends a root stage (no dependencies) to plan pi.
func (e *engine) addStage(pi, res int32, service units.Duration) int32 {
	return e.addStageJoin(pi, res, service, noIndex, noIndex)
}

// addStageAfter appends a stage depending on prev (noIndex makes the
// stage a root).
func (e *engine) addStageAfter(pi, res int32, service units.Duration, prev int32) int32 {
	return e.addStageJoin(pi, res, service, prev, noIndex)
}

// addStageJoin appends a stage depending on up to two stages (noIndex
// entries are skipped). The builder requires pi to be the most recently
// created plan, keeping every plan's stages contiguous in the arena.
func (e *engine) addStageJoin(pi, res int32, service units.Duration, d1, d2 int32) int32 {
	si := int32(len(e.stages))
	deps := int8(0)
	for _, d := range [2]int32{d1, d2} {
		if d == noIndex {
			continue
		}
		dep := &e.stages[d]
		if dep.nnext == int8(len(dep.next)) {
			panic(fmt.Sprintf("sim: stage %d exceeds fan-out %d", d, len(dep.next)))
		}
		dep.next[dep.nnext] = si
		dep.nnext++
		deps++
	}
	e.stages = append(e.stages, stage{res: res, plan: pi, service: service, waitingOn: deps})
	e.plans[pi].n++
	return si
}

// resource is a k-server FIFO queue. Besides serving stages it keeps the
// accounting the observability layer exports: total busy time (the
// integral of occupied servers over time), total and per-start queueing
// wait, start count, and the peak queue depth. Resources live in the
// engine's arena, are all created before the run starts, and carry the
// shard their events are heaped on.
type resource struct {
	class   string // metric label, e.g. "dev.up", "st.cpu"
	shard   int32
	servers int32
	busy    int32
	queue   []int32 // stage arena indices

	busyTime  units.Duration // Σ service time of started stages
	queueWait units.Duration // Σ (start - enqueue) over started stages
	started   int64
	peakQueue int

	// Fault-injection state; only maintained when the engine has a fault
	// runner, so the fault-free path is untouched.
	down    bool    // outage in progress: new arrivals fail
	running []int32 // stages currently occupying servers
	// waits bins per-start queue waits, shared by every resource of the
	// same class. The engine is single-threaded, so plain counts here
	// cost ~nothing per start; recordMetrics merges them into the
	// registry once per run. Nil when metrics are disabled.
	waits *waitBins
}

// waitBins is one class's local queue-wait histogram (obs.TimeBuckets
// binning plus overflow).
type waitBins struct {
	counts []int64
	sum    float64
	n      int64
}

// desSampler accumulates engine-wide queue-depth and busy-server samples
// taken on event boundaries (each distinct simulated timestamp). Like
// waitBins it is plain local state on the single-threaded event loop,
// merged into the registry once per run; nil when metrics are disabled,
// which keeps the disabled hot path free of any sampling work.
type desSampler struct {
	queued      int // stages queued across all resources right now
	busyServers int // servers occupied across all resources right now

	queueBins []int64 // obs.CountBuckets binning plus overflow
	busyBins  []int64
	queueSum  float64
	busySum   float64
	n         int64
}

func newDESSampler() *desSampler {
	return &desSampler{
		queueBins: make([]int64, len(obs.CountBuckets)+1),
		busyBins:  make([]int64, len(obs.CountBuckets)+1),
	}
}

// sample records the current depth and occupancy.
func (d *desSampler) sample() {
	d.queueBins[stats.Bucketize(float64(d.queued), obs.CountBuckets)]++
	d.busyBins[stats.Bucketize(float64(d.busyServers), obs.CountBuckets)]++
	d.queueSum += float64(d.queued)
	d.busySum += float64(d.busyServers)
	d.n++
}

func (w *waitBins) observe(wait units.Duration) {
	// Uncontended starts wait exactly zero; skip the bucket search for
	// them — they land in the first bucket.
	idx := 0
	if wait > 0 {
		idx = stats.Bucketize(wait.Seconds(), obs.TimeBuckets)
	}
	w.counts[idx]++
	w.sum += wait.Seconds()
	w.n++
}

// enqueue adds an eligible stage; it starts immediately if a server is
// free. Under fault injection, arriving at a downed resource voids the
// attempt, and stages of already-failed attempts are dropped.
func (e *engine) enqueue(ri, si int32) {
	r := &e.resources[ri]
	if e.flt != nil {
		pi := e.stages[si].plan
		if e.plans[pi].failed {
			return
		}
		if r.down {
			e.failPlan(pi, e.now, e.flt.downReason(ri))
			return
		}
	}
	s := &e.stages[si]
	s.enqueuedAt = e.now
	if r.busy < r.servers {
		e.start(ri, si)
		return
	}
	r.queue = append(r.queue, si)
	if len(r.queue) > r.peakQueue {
		r.peakQueue = len(r.queue)
	}
	if e.smp != nil {
		e.smp.queued++
	}
}

func (e *engine) start(ri, si int32) {
	r := &e.resources[ri]
	s := &e.stages[si]
	now := e.now
	svc := s.service
	if flt := e.flt; flt != nil {
		svc = flt.serviceTime(ri, svc, now)
		e.plans[s.plan].anyStarted = true
		r.running = append(r.running, si)
		if timeout := flt.transferTimeout(ri); timeout > 0 && svc > timeout {
			// The transfer stalls: it holds the server until the timeout
			// fires, then the attempt fails.
			s.timedOut = true
			svc = timeout
		}
		s.finishAt = now + svc
	}
	r.busy++
	r.started++
	r.busyTime += svc
	wait := now - s.enqueuedAt
	r.queueWait += wait
	if r.waits != nil {
		r.waits.observe(wait)
	}
	if e.smp != nil {
		e.smp.busyServers++
	}
	e.push(r.shard, event{at: now + svc, seq: e.seq, kind: evStage, idx: si})
	e.seq++
}

// finishRes releases a server on the resource and starts the next queued
// stage (skipping stages whose attempt already failed, under fault
// injection).
func (e *engine) finishRes(ri int32) {
	r := &e.resources[ri]
	r.busy--
	if e.smp != nil {
		e.smp.busyServers--
	}
	for len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if e.smp != nil {
			e.smp.queued--
		}
		if e.flt != nil && e.plans[e.stages[next].plan].failed {
			continue
		}
		e.start(ri, next)
		return
	}
}

// dropRunning forgets a stage that finished or aborted; only called when
// fault injection is active.
func (r *resource) dropRunning(si int32) {
	for i, st := range r.running {
		if st == si {
			r.running = append(r.running[:i], r.running[i+1:]...)
			return
		}
	}
}

// outage takes the resource down: every stage in service or queued fails
// its attempt, and new arrivals fail until repair. The resource arena is
// stable during the run, so r stays valid across the recovery callbacks
// the plan failures trigger (which may grow the stage and plan arenas —
// stages are therefore re-fetched by index, never held).
func (e *engine) outage(ri int32, now units.Duration, reason string) {
	r := &e.resources[ri]
	r.down = true
	if e.smp != nil {
		e.smp.busyServers -= int(r.busy)
		e.smp.queued -= len(r.queue)
	}
	for i := 0; i < len(r.running); i++ {
		si := r.running[i]
		s := &e.stages[si]
		s.aborted = true
		// The work performed after `now` never happens; give the busy
		// accounting back.
		if s.finishAt > now {
			r.busyTime -= s.finishAt - now
		}
		pi := s.plan
		e.failPlan(pi, now, reason)
	}
	r.running = r.running[:0]
	r.busy = 0
	for i := 0; i < len(r.queue); i++ {
		e.failPlan(e.stages[r.queue[i]].plan, now, reason)
	}
	r.queue = r.queue[:0]
}

// repair brings the resource back; the outage drained its queue.
func (e *engine) repair(ri int32) { e.resources[ri].down = false }

// failPlan voids an attempt exactly once: remaining stages are skipped as
// they surface, and the recovery policy decides what happens next. The
// recovery callback may build new plans, growing the arenas; callers must
// not hold stage/plan pointers across this call.
func (e *engine) failPlan(pi int32, at units.Duration, reason string) {
	p := &e.plans[pi]
	if p.failed {
		return
	}
	p.failed = true
	if cb := p.onFail; cb != nil {
		cb(at, reason)
	}
}

// Event kinds: a stage completion, a timed plan release, or a
// fault-injection action.
const (
	evStage = uint8(iota)
	evPlan
	evAction
)

// event is one scheduled occurrence. It carries no pointers: the payload
// is an arena index resolved by kind, so a 10M-task run's event heaps are
// flat arrays the collector never scans.
type event struct {
	at   units.Duration
	seq  int64 // global FIFO tie-break for identical times
	kind uint8
	idx  int32
}

// eventHeap orders events by time, then insertion order. The sift
// operations are hand-rolled rather than delegated to container/heap:
// heap.Push boxes every event into an interface, which allocates on each
// schedule and would keep the disabled-observability hot path from being
// allocation-free in steady state.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	// Sift down.
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	*h = s
	return top
}

// shardState is one station shard's event heap plus its telemetry.
type shardState struct {
	events     eventHeap
	dispatched int64
	peak       int
}

// engine drives the event loop. The event queue is sharded: every
// resource belongs to a shard (stations are distributed round-robin and
// drag their devices along), and each shard keeps its own heap. Dispatch
// always pops the globally smallest (time, seq) event across shard heads,
// so the processing order — and therefore every output byte — is
// identical to a single-heap run at any shard count; sharding buys
// smaller heaps (cheaper sifts, better locality), not reordering.
type engine struct {
	now        units.Duration
	seq        int64
	dispatched int64
	shards     []shardState
	stages     []stage
	plans      []plan
	actions    []func(at units.Duration)
	resources  []resource
	waits      map[string]*waitBins // per class; nil when disabled
	smp        *desSampler          // event-boundary sampling; nil when disabled
	ins        obs.Instruments
	flt        *faultRunner // nil: fault injection disabled, path untouched
	// done receives completions of plans with no onDone closure; the
	// fault-free simulator installs one engine-level hook instead of a
	// closure per task.
	done func(pi int32, finish units.Duration)
}

// ensureShards lazily initializes the shard array (zero-value engines get
// a single shard).
func (e *engine) ensureShards() {
	if len(e.shards) == 0 {
		e.shards = make([]shardState, 1)
	}
}

// setShards sizes the shard array; must run before any event is pushed.
func (e *engine) setShards(n int) {
	if n < 1 {
		n = 1
	}
	e.shards = make([]shardState, n)
}

// reserve sizes the plan, stage, and resource arenas for a run whose
// counts are known up front. Exact capacities keep the builder free of
// append-doubling — at scale the repeated grow-and-copy of the stage
// arena dominates the run's allocations. Arenas still grow normally past
// the reservation (fault recovery builds replacement plans mid-run).
func (e *engine) reserve(nplans, nstages, nresources int) {
	if n := len(e.plans) + nplans; cap(e.plans) < n {
		plans := make([]plan, len(e.plans), n)
		copy(plans, e.plans)
		e.plans = plans
	}
	if n := len(e.stages) + nstages; cap(e.stages) < n {
		stages := make([]stage, len(e.stages), n)
		copy(stages, e.stages)
		e.stages = stages
	}
	if n := len(e.resources) + nresources; cap(e.resources) < n {
		resources := make([]resource, len(e.resources), n)
		copy(resources, e.resources)
		e.resources = resources
	}
}

// push adds an event to one shard's heap.
func (e *engine) push(shard int32, ev event) {
	h := &e.shards[shard]
	h.events.push(ev)
	if len(h.events) > h.peak {
		h.peak = len(h.events)
	}
}

// newResource registers a k-server resource with the engine under a
// metric class label, on shard 0.
func (e *engine) newResource(servers int, class string) int32 {
	return e.newResourceShard(servers, class, 0)
}

// newResourceShard registers a k-server resource on the given shard. All
// resources must be created before the run starts; the arena never grows
// mid-run, so *resource pointers taken during dispatch stay valid.
func (e *engine) newResourceShard(servers int, class string, shard int32) int32 {
	e.ensureShards()
	r := resource{servers: int32(servers), class: class, shard: shard}
	if e.ins.Registry() != nil {
		wb := e.waits[class]
		if wb == nil {
			wb = &waitBins{counts: make([]int64, len(obs.TimeBuckets)+1)}
			if e.waits == nil {
				e.waits = make(map[string]*waitBins)
			}
			e.waits[class] = wb
		}
		r.waits = wb
		if e.smp == nil {
			e.smp = newDESSampler()
		}
	}
	e.resources = append(e.resources, r)
	return int32(len(e.resources) - 1)
}

// scheduleAction arms a fault-injection action (outage, repair, churn,
// degradation window edge) as a first-class event on shard 0.
func (e *engine) scheduleAction(at units.Duration, act func(at units.Duration)) {
	e.ensureShards()
	e.actions = append(e.actions, act)
	e.push(0, event{at: at, seq: e.seq, kind: evAction, idx: int32(len(e.actions) - 1)})
	e.seq++
}

// release submits a plan immediately: all root stages become eligible.
func (e *engine) release(pi int32) {
	p := &e.plans[pi]
	p.pending = p.n
	first, n := p.first, p.n
	for si := first; si < first+n; si++ {
		s := &e.stages[si]
		if s.waitingOn == 0 {
			e.enqueue(s.res, si)
		}
	}
	if n == 0 {
		// Degenerate empty plan.
		e.planDone(pi, e.now)
	}
}

// planDone routes a completion to the plan's closure or the engine hook.
func (e *engine) planDone(pi int32, finish units.Duration) {
	if cb := e.plans[pi].onDone; cb != nil {
		cb(finish)
		return
	}
	if e.done != nil {
		e.done(pi, finish)
	}
}

// releaseAt submits a plan at the given simulated time (immediately when
// the time is not in the future). The release event lands on the shard of
// the plan's first stage, keeping a cluster's releases near its
// completions.
func (e *engine) releaseAt(pi int32, at units.Duration) {
	if at <= e.now {
		e.release(pi)
		return
	}
	e.ensureShards()
	p := &e.plans[pi]
	shard := int32(0)
	if p.n > 0 {
		shard = e.resources[e.stages[p.first].res].shard
	}
	e.push(shard, event{at: at, seq: e.seq, kind: evPlan, idx: pi})
	e.seq++
}

// nextShard returns the shard holding the globally smallest (time, seq)
// event, or -1 when every heap is drained. seq is globally unique, so
// the total order is independent of the shard count.
func (e *engine) nextShard() int {
	best := -1
	for k := range e.shards {
		h := e.shards[k].events
		if len(h) == 0 {
			continue
		}
		if best < 0 {
			best = k
			continue
		}
		b := e.shards[best].events[0]
		if h[0].at < b.at || (h[0].at == b.at && h[0].seq < b.seq) {
			best = k
		}
	}
	return best
}

// run processes events until every shard heap drains. Callbacks fired
// during dispatch (recovery ladders) may grow the stage/plan arenas, so
// the loop reads everything it needs from a stage into locals before any
// callback and re-fetches by index afterwards.
func (e *engine) run() {
	for {
		k := e.nextShard()
		if k < 0 {
			return
		}
		ev := e.shards[k].events.pop()
		e.shards[k].dispatched++
		if e.smp != nil && ev.at != e.now {
			// Event boundary: simulated time is about to advance, so the
			// current depth/occupancy held for a nonzero interval.
			e.smp.sample()
		}
		e.now = ev.at
		e.dispatched++
		switch ev.kind {
		case evAction:
			e.actions[ev.idx](e.now)
			continue
		case evPlan:
			e.release(ev.idx)
			continue
		}
		si := ev.idx
		s := &e.stages[si]
		ri := s.res
		pi := s.plan
		timedOut := s.timedOut
		nnext := s.nnext
		next := s.next
		if e.flt != nil {
			// An outage already reclaimed the server and voided the
			// attempt; the stale completion is a no-op.
			if s.aborted {
				continue
			}
			e.resources[ri].dropRunning(si)
			e.finishRes(ri)
			if timedOut {
				e.failPlan(pi, e.now, e.flt.timeoutReason(ri))
				continue
			}
			if e.plans[pi].failed {
				// A sibling stage failed while this one was in service;
				// its work completes but leads nowhere.
				continue
			}
		} else {
			e.finishRes(ri)
		}

		p := &e.plans[pi]
		p.pending--
		if e.now > p.finish {
			p.finish = e.now
		}
		if p.pending == 0 {
			e.planDone(pi, p.finish)
		}
		for j := int8(0); j < nnext; j++ {
			ni := next[j]
			n := &e.stages[ni]
			n.waitingOn--
			if n.waitingOn == 0 {
				e.enqueue(n.res, ni)
			}
		}
	}
}

// recordMetrics publishes the run's engine-level accounting: events
// dispatched, per-shard dispatch counts and heap peaks, and per-class
// start counts, busy time, queueing wait, and peak queue depth, plus a
// per-resource busy-time distribution.
func (e *engine) recordMetrics() {
	reg := e.ins.Registry()
	if reg == nil {
		return
	}
	reg.Counter("sim.events").Add(e.dispatched)
	reg.Gauge("sim.shards").Set(float64(len(e.shards)))
	shardEvents := reg.Histogram("sim.shard.events", obs.CountBuckets)
	shardPeak := reg.Histogram("sim.shard.heap_peak", obs.CountBuckets)
	for k := range e.shards {
		shardEvents.Observe(float64(e.shards[k].dispatched))
		shardPeak.Observe(float64(e.shards[k].peak))
	}

	type agg struct {
		started   int64
		busy      units.Duration
		wait      units.Duration
		peakQueue int
		servers   int
	}
	byClass := make(map[string]*agg)
	busyHist := reg.Histogram("sim.busy_seconds_per_resource", obs.TimeBuckets)
	for i := range e.resources {
		r := &e.resources[i]
		a := byClass[r.class]
		if a == nil {
			a = &agg{}
			byClass[r.class] = a
		}
		a.started += r.started
		a.busy += r.busyTime
		a.wait += r.queueWait
		a.servers += int(r.servers)
		if r.peakQueue > a.peakQueue {
			a.peakQueue = r.peakQueue
		}
		if r.started > 0 {
			busyHist.Observe(r.busyTime.Seconds())
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		a := byClass[c]
		reg.Counter("sim.starts." + c).Add(a.started)
		reg.Gauge("sim.busy_seconds." + c).Add(a.busy.Seconds())
		reg.Gauge("sim.queue_wait_seconds_total." + c).Add(a.wait.Seconds())
		reg.Gauge("sim.queue_peak." + c).SetMax(float64(a.peakQueue))
		// Utilization over the run horizon (the last event time): busy
		// server-seconds over available server-seconds. SetMax keeps the
		// most loaded run when many runs share a registry.
		if a.servers > 0 && e.now > 0 {
			util := a.busy.Seconds() / (float64(a.servers) * e.now.Seconds())
			reg.Gauge("sim.utilization." + c).SetMax(util)
		}
		if wb := e.waits[c]; wb != nil {
			_ = reg.Histogram("sim.queue_wait_seconds."+c, obs.TimeBuckets).Merge(stats.HistogramCounts{
				Bounds: obs.TimeBuckets,
				Counts: wb.counts,
				Count:  wb.n,
				Sum:    wb.sum,
			})
		}
	}
	if e.smp != nil && e.smp.n > 0 {
		_ = reg.Histogram("sim.queue_depth", obs.CountBuckets).Merge(stats.HistogramCounts{
			Bounds: obs.CountBuckets,
			Counts: e.smp.queueBins,
			Count:  e.smp.n,
			Sum:    e.smp.queueSum,
		})
		_ = reg.Histogram("sim.busy_servers", obs.CountBuckets).Merge(stats.HistogramCounts{
			Bounds: obs.CountBuckets,
			Counts: e.smp.busyBins,
			Count:  e.smp.n,
			Sum:    e.smp.busySum,
		})
	}
}
