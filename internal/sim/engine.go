package sim

import (
	"sort"

	"dsmec/internal/obs"
	"dsmec/internal/stats"
	"dsmec/internal/units"
)

// stage is one unit of work on one resource. A stage becomes eligible when
// all its dependencies finish; it then queues on its resource and occupies
// one server for its service time.
type stage struct {
	res        *resource
	service    units.Duration
	next       []*stage // stages depending on this one
	waitingOn  int      // unmet dependency count
	plan       *plan
	enqueuedAt units.Duration // when the stage became eligible

	// Fault-injection bookkeeping; untouched (zero) when the engine has
	// no fault runner.
	finishAt units.Duration // scheduled completion of the in-service stage
	aborted  bool           // killed by an outage; skip its completion
	timedOut bool           // completion event is a transfer timeout
}

// plan is the stage DAG of a single task. The plan completes when its last
// stage finishes (pending tracks unfinished stages; the DAG is connected
// through the final stage, so the maximum finish time is the completion).
type plan struct {
	stages  []*stage
	pending int
	finish  units.Duration
	onDone  func(finish units.Duration)

	// Fault-injection state; zero when fault injection is disabled.
	failed     bool // a stage failed; the whole attempt is void
	anyStarted bool // at least one stage occupied a server
	onFail     func(at units.Duration, reason string)
}

// fail voids the attempt exactly once: remaining stages are skipped as
// they surface, and the recovery policy decides what happens next.
func (p *plan) fail(at units.Duration, reason string) {
	if p.failed {
		return
	}
	p.failed = true
	if p.onFail != nil {
		p.onFail(at, reason)
	}
}

// stage appends a root stage (no dependencies).
func (p *plan) stage(res *resource, service units.Duration) *stage {
	s := &stage{res: res, service: service, plan: p}
	p.stages = append(p.stages, s)
	return s
}

// stageAfter appends a stage depending on prev (prev may be nil, making
// the stage a root).
func (p *plan) stageAfter(res *resource, service units.Duration, prev *stage) *stage {
	if prev == nil {
		return p.stage(res, service)
	}
	return p.stageAfterAll(res, service, []*stage{prev})
}

// stageAfterAll appends a stage depending on every stage in deps.
func (p *plan) stageAfterAll(res *resource, service units.Duration, deps []*stage) *stage {
	s := &stage{res: res, service: service, waitingOn: len(deps), plan: p}
	for _, d := range deps {
		d.next = append(d.next, s)
	}
	p.stages = append(p.stages, s)
	return s
}

// resource is a k-server FIFO queue. Besides serving stages it keeps the
// accounting the observability layer exports: total busy time (the
// integral of occupied servers over time), total and per-start queueing
// wait, start count, and the peak queue depth.
type resource struct {
	eng     *engine
	class   string // metric label, e.g. "dev.up", "st.cpu"
	servers int
	busy    int
	queue   []*stage

	busyTime  units.Duration // Σ service time of started stages
	queueWait units.Duration // Σ (start - enqueue) over started stages
	started   int64
	peakQueue int

	// Fault-injection state; only maintained when the engine has a fault
	// runner, so the fault-free path is untouched.
	down    bool     // outage in progress: new arrivals fail
	running []*stage // stages currently occupying servers
	// waits bins per-start queue waits, shared by every resource of the
	// same class. The engine is single-threaded, so plain counts here
	// cost ~nothing per start; recordMetrics merges them into the
	// registry once per run. Nil when metrics are disabled.
	waits *waitBins
}

// waitBins is one class's local queue-wait histogram (obs.TimeBuckets
// binning plus overflow).
type waitBins struct {
	counts []int64
	sum    float64
	n      int64
}

// desSampler accumulates engine-wide queue-depth and busy-server samples
// taken on event boundaries (each distinct simulated timestamp). Like
// waitBins it is plain local state on the single-threaded event loop,
// merged into the registry once per run; nil when metrics are disabled,
// which keeps the disabled hot path free of any sampling work.
type desSampler struct {
	queued      int // stages queued across all resources right now
	busyServers int // servers occupied across all resources right now

	queueBins []int64 // obs.CountBuckets binning plus overflow
	busyBins  []int64
	queueSum  float64
	busySum   float64
	n         int64
}

func newDESSampler() *desSampler {
	return &desSampler{
		queueBins: make([]int64, len(obs.CountBuckets)+1),
		busyBins:  make([]int64, len(obs.CountBuckets)+1),
	}
}

// sample records the current depth and occupancy.
func (d *desSampler) sample() {
	d.queueBins[stats.Bucketize(float64(d.queued), obs.CountBuckets)]++
	d.busyBins[stats.Bucketize(float64(d.busyServers), obs.CountBuckets)]++
	d.queueSum += float64(d.queued)
	d.busySum += float64(d.busyServers)
	d.n++
}

func (w *waitBins) observe(wait units.Duration) {
	// Uncontended starts wait exactly zero; skip the bucket search for
	// them — they land in the first bucket.
	idx := 0
	if wait > 0 {
		idx = stats.Bucketize(wait.Seconds(), obs.TimeBuckets)
	}
	w.counts[idx]++
	w.sum += wait.Seconds()
	w.n++
}

// enqueue adds an eligible stage; it starts immediately if a server is
// free. Under fault injection, arriving at a downed resource voids the
// attempt, and stages of already-failed attempts are dropped.
func (r *resource) enqueue(s *stage, now units.Duration) {
	if flt := r.eng.flt; flt != nil {
		if s.plan.failed {
			return
		}
		if r.down {
			s.plan.fail(now, flt.downReason(r))
			return
		}
	}
	s.enqueuedAt = now
	if r.busy < r.servers {
		r.start(s, now)
		return
	}
	r.queue = append(r.queue, s)
	if len(r.queue) > r.peakQueue {
		r.peakQueue = len(r.queue)
	}
	if smp := r.eng.smp; smp != nil {
		smp.queued++
	}
}

func (r *resource) start(s *stage, now units.Duration) {
	svc := s.service
	if flt := r.eng.flt; flt != nil {
		svc = flt.serviceTime(r, s, now)
		s.plan.anyStarted = true
		r.running = append(r.running, s)
		if timeout := flt.transferTimeout(r); timeout > 0 && svc > timeout {
			// The transfer stalls: it holds the server until the timeout
			// fires, then the attempt fails.
			s.timedOut = true
			svc = timeout
		}
		s.finishAt = now + svc
	}
	r.busy++
	r.started++
	r.busyTime += svc
	wait := now - s.enqueuedAt
	r.queueWait += wait
	if r.waits != nil {
		r.waits.observe(wait)
	}
	if smp := r.eng.smp; smp != nil {
		smp.busyServers++
	}
	r.eng.schedule(now+svc, s)
}

// finish releases the server and starts the next queued stage (skipping
// stages whose attempt already failed, under fault injection).
func (r *resource) finish(now units.Duration) {
	r.busy--
	smp := r.eng.smp
	if smp != nil {
		smp.busyServers--
	}
	for len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if smp != nil {
			smp.queued--
		}
		if r.eng.flt != nil && next.plan.failed {
			continue
		}
		r.start(next, now)
		return
	}
}

// dropRunning forgets a stage that finished or aborted; only called when
// fault injection is active.
func (r *resource) dropRunning(s *stage) {
	for i, st := range r.running {
		if st == s {
			r.running = append(r.running[:i], r.running[i+1:]...)
			return
		}
	}
}

// outage takes the resource down: every stage in service or queued fails
// its attempt, and new arrivals fail until repair.
func (r *resource) outage(now units.Duration, reason string) {
	r.down = true
	if smp := r.eng.smp; smp != nil {
		smp.busyServers -= r.busy
		smp.queued -= len(r.queue)
	}
	for _, s := range r.running {
		s.aborted = true
		// The work performed after `now` never happens; give the busy
		// accounting back.
		if s.finishAt > now {
			r.busyTime -= s.finishAt - now
		}
		s.plan.fail(now, reason)
	}
	r.running = r.running[:0]
	r.busy = 0
	for _, s := range r.queue {
		s.plan.fail(now, reason)
	}
	r.queue = r.queue[:0]
}

// repair brings the resource back; the outage drained its queue.
func (r *resource) repair() { r.down = false }

// event is a scheduled stage completion (stage != nil), a timed plan
// release (plan != nil), or a fault-injection action (act != nil).
type event struct {
	at    units.Duration
	seq   int // FIFO tie-break for identical times
	stage *stage
	plan  *plan
	act   func(at units.Duration)
}

// eventHeap orders events by time, then insertion order. The sift
// operations are hand-rolled rather than delegated to container/heap:
// heap.Push boxes every event into an interface, which allocates on each
// schedule and would keep the disabled-observability hot path from being
// allocation-free in steady state.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop pointers so finished stages can be collected
	s = s[:n]
	// Sift down.
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	*h = s
	return top
}

// engine drives the event loop.
type engine struct {
	now        units.Duration
	events     eventHeap
	seq        int
	dispatched int64
	resources  []*resource
	waits      map[string]*waitBins // per class; nil when disabled
	smp        *desSampler          // event-boundary sampling; nil when disabled
	ins        obs.Instruments
	flt        *faultRunner // nil: fault injection disabled, path untouched
}

// newResource registers a k-server resource with the engine under a
// metric class label.
func (e *engine) newResource(servers int, class string) *resource {
	r := &resource{eng: e, servers: servers, class: class}
	if e.ins.Registry() != nil {
		wb := e.waits[class]
		if wb == nil {
			wb = &waitBins{counts: make([]int64, len(obs.TimeBuckets)+1)}
			if e.waits == nil {
				e.waits = make(map[string]*waitBins)
			}
			e.waits[class] = wb
		}
		r.waits = wb
		if e.smp == nil {
			e.smp = newDESSampler()
		}
	}
	e.resources = append(e.resources, r)
	return r
}

// schedule arms a completion event.
func (e *engine) schedule(at units.Duration, s *stage) {
	e.events.push(event{at: at, seq: e.seq, stage: s})
	e.seq++
}

// scheduleAction arms a fault-injection action (outage, repair, churn,
// degradation window edge) as a first-class event.
func (e *engine) scheduleAction(at units.Duration, act func(at units.Duration)) {
	e.events.push(event{at: at, seq: e.seq, act: act})
	e.seq++
}

// release submits a plan immediately: all root stages become eligible.
func (e *engine) release(p *plan) {
	p.pending = len(p.stages)
	for _, s := range p.stages {
		if s.waitingOn == 0 {
			s.res.enqueue(s, e.now)
		}
	}
	if p.pending == 0 && p.onDone != nil {
		p.onDone(e.now) // degenerate empty plan
	}
}

// releaseAt submits a plan at the given simulated time (immediately when
// the time is not in the future).
func (e *engine) releaseAt(p *plan, at units.Duration) {
	if at <= e.now {
		e.release(p)
		return
	}
	e.events.push(event{at: at, seq: e.seq, plan: p})
	e.seq++
}

// run processes events until none remain.
func (e *engine) run() {
	for e.events.Len() > 0 {
		ev := e.events.pop()
		if e.smp != nil && ev.at != e.now {
			// Event boundary: simulated time is about to advance, so the
			// current depth/occupancy held for a nonzero interval.
			e.smp.sample()
		}
		e.now = ev.at
		e.dispatched++
		if ev.act != nil {
			ev.act(e.now)
			continue
		}
		if ev.plan != nil {
			e.release(ev.plan)
			continue
		}
		s := ev.stage
		if e.flt != nil {
			// An outage already reclaimed the server and voided the
			// attempt; the stale completion is a no-op.
			if s.aborted {
				continue
			}
			s.res.dropRunning(s)
			s.res.finish(e.now)
			if s.timedOut {
				s.plan.fail(e.now, e.flt.timeoutReason(s.res))
				continue
			}
			if s.plan.failed {
				// A sibling stage failed while this one was in service;
				// its work completes but leads nowhere.
				continue
			}
		} else {
			s.res.finish(e.now)
		}

		p := s.plan
		p.pending--
		if e.now > p.finish {
			p.finish = e.now
		}
		if p.pending == 0 && p.onDone != nil {
			p.onDone(p.finish)
		}
		for _, nxt := range s.next {
			nxt.waitingOn--
			if nxt.waitingOn == 0 {
				nxt.res.enqueue(nxt, e.now)
			}
		}
	}
}

// recordMetrics publishes the run's engine-level accounting: events
// dispatched, and per-class start counts, busy time, queueing wait, and
// peak queue depth, plus a per-resource busy-time distribution.
func (e *engine) recordMetrics() {
	reg := e.ins.Registry()
	if reg == nil {
		return
	}
	reg.Counter("sim.events").Add(e.dispatched)

	type agg struct {
		started   int64
		busy      units.Duration
		wait      units.Duration
		peakQueue int
		servers   int
	}
	byClass := make(map[string]*agg)
	busyHist := reg.Histogram("sim.busy_seconds_per_resource", obs.TimeBuckets)
	for _, r := range e.resources {
		a := byClass[r.class]
		if a == nil {
			a = &agg{}
			byClass[r.class] = a
		}
		a.started += r.started
		a.busy += r.busyTime
		a.wait += r.queueWait
		a.servers += r.servers
		if r.peakQueue > a.peakQueue {
			a.peakQueue = r.peakQueue
		}
		if r.started > 0 {
			busyHist.Observe(r.busyTime.Seconds())
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		a := byClass[c]
		reg.Counter("sim.starts." + c).Add(a.started)
		reg.Gauge("sim.busy_seconds." + c).Add(a.busy.Seconds())
		reg.Gauge("sim.queue_wait_seconds_total." + c).Add(a.wait.Seconds())
		reg.Gauge("sim.queue_peak." + c).SetMax(float64(a.peakQueue))
		// Utilization over the run horizon (the last event time): busy
		// server-seconds over available server-seconds. SetMax keeps the
		// most loaded run when many runs share a registry.
		if a.servers > 0 && e.now > 0 {
			util := a.busy.Seconds() / (float64(a.servers) * e.now.Seconds())
			reg.Gauge("sim.utilization." + c).SetMax(util)
		}
		if wb := e.waits[c]; wb != nil {
			_ = reg.Histogram("sim.queue_wait_seconds."+c, obs.TimeBuckets).Merge(stats.HistogramCounts{
				Bounds: obs.TimeBuckets,
				Counts: wb.counts,
				Count:  wb.n,
				Sum:    wb.sum,
			})
		}
	}
	if e.smp != nil && e.smp.n > 0 {
		_ = reg.Histogram("sim.queue_depth", obs.CountBuckets).Merge(stats.HistogramCounts{
			Bounds: obs.CountBuckets,
			Counts: e.smp.queueBins,
			Count:  e.smp.n,
			Sum:    e.smp.queueSum,
		})
		_ = reg.Histogram("sim.busy_servers", obs.CountBuckets).Merge(stats.HistogramCounts{
			Bounds: obs.CountBuckets,
			Counts: e.smp.busyBins,
			Count:  e.smp.n,
			Sum:    e.smp.busySum,
		})
	}
}
