// Package sim is a discrete-event simulator that *executes* a task
// assignment instead of only evaluating the paper's closed-form cost
// model. Every shared resource — device radios, device CPUs, station
// backhaul ports, station CPUs, the WAN uplinks and the cloud — is a FIFO
// queue, so the simulated completion times include the queueing delays the
// analytic model ignores.
//
// When the system is uncontended (one task at a time per resource), the
// simulated latency of each task equals its analytic t_ijl exactly, which
// the tests use to validate both models against each other. Under load the
// simulated latencies dominate the analytic ones.
package sim
