package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dsmec/internal/lint"
)

// wantRe captures each quoted or backquoted expectation after "want".
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<name> relative to the test's working
// directory, applies the analyzers through the full driver (including
// suppression handling), and diffs findings against // want comments.
func Run(t *testing.T, name string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := lint.NewLoader().Load(dir, name)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	known := []string{"allow"}
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	diags, err := lint.RunPackage(pkg, analyzers, known)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if w := match(wants, d); w == nil {
			t.Errorf("%s: unexpected finding: [%s] %s", posString(d.Pos), d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// collectWants parses every "// want" comment into expectations
// anchored at the comment's line.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment text (e.g. an
				// //meclint:allow annotation asserting its own "unused"
				// finding), so search rather than prefix-match.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				text := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				matches := wantRe.FindAllString(text, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no pattern", pos.Filename, pos.Line)
				}
				for _, raw := range matches {
					var pat string
					if strings.HasPrefix(raw, "`") {
						pat = strings.Trim(raw, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(raw)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants, nil
}

// match finds the first unmet expectation on the finding's line whose
// regexp matches the message, marking it met.
func match(wants []*expectation, d lint.Diagnostic) *expectation {
	for _, w := range wants {
		if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return w
		}
	}
	return nil
}
