// Package linttest runs lint analyzers over testdata packages and
// checks their findings against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only. A test package lives in testdata/src/<name>/ and marks
// each line where a finding is expected with a trailing comment:
//
//	out = append(out, k) // want `map iteration`
//
// The backquoted (or double-quoted) string is a regular expression the
// finding's message must match; several expectations on one line each
// match one finding. Findings with no expectation, and expectations
// with no finding, fail the test. The driver's //meclint:allow
// suppression pipeline runs too, so testdata can assert both that a
// suppressed finding disappears and that an unused allow is reported
// (check name "allow").
package linttest
