package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages from source. One Loader shares
// a FileSet and a source importer across every package it loads, so the
// standard library is type-checked at most once per process. Imports
// resolve through the stdlib source importer, which handles both GOROOT
// and module-local paths; no network or precompiled export data is
// needed.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a ready loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses the non-test Go files in dir and type-checks them as
// importPath. Test files are excluded on purpose: the invariants meclint
// enforces protect production outputs, and tests legitimately read the
// wall clock or range over maps when asserting.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and GOOS/GOARCH
		// file suffixes) for the current platform, so mutually
		// exclusive files do not collide in one type-check.
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadTree walks root for Go packages and loads each one. Directories
// named testdata or vendor, hidden directories, and directories without
// non-test Go files are skipped. Import paths are modulePath joined
// with the directory's path relative to root (modulePath itself for the
// root directory).
func (l *Loader) LoadTree(root, modulePath string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}
