// Package lint is a small static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, built on the standard library only so
// the repository carries no external dependencies. It provides the
// Analyzer/Pass/Diagnostic vocabulary, a package loader that parses and
// type-checks Go packages from source, a driver that applies analyzers
// to packages with //meclint:allow suppression handling, and (in the
// checks subpackage) the repo-specific analyzers run by cmd/meclint.
//
// The API deliberately mirrors go/analysis — Analyzer has Name, Doc and
// Run(*Pass); Pass carries the FileSet, syntax, types and a Report
// callback — so the suite can migrate to the upstream framework
// mechanically if the dependency is ever vendored.
package lint
