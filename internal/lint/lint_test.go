package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg lays out a single-file package under a temp dir and returns
// its directory.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// ident is a toy analyzer that flags every identifier named "flagme".
var ident = &Analyzer{
	Name: "ident",
	Doc:  "flags identifiers named flagme",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(id.Pos(), "identifier flagme")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunPackageReportsAndSorts(t *testing.T) {
	dir := writePkg(t, `package p

var flagme = 1

func f() int { return flagme }
`)
	pkg, err := NewLoader().Load(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{ident}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 5 {
		t.Errorf("findings out of order: %v", diags)
	}
	if diags[0].Check != "ident" {
		t.Errorf("check = %q, want ident", diags[0].Check)
	}
	if !strings.Contains(diags[0].String(), ":3:") || !strings.Contains(diags[0].String(), "[ident]") {
		t.Errorf("String() = %q lacks position or check tag", diags[0].String())
	}
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	dir := writePkg(t, `package p

var flagme = 1 //meclint:allow(ident) trailing suppression

//meclint:allow(ident) suppression on the line above
var other = flagme
`)
	pkg, err := NewLoader().Load(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{ident}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("suppressed findings leaked: %v", diags)
	}
}

func TestUnusedSuppressionIsReported(t *testing.T) {
	dir := writePkg(t, `package p

//meclint:allow(ident) nothing on the next line violates
var clean = 1
`)
	pkg, err := NewLoader().Load(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{ident}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "allow" || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want one unused-suppression finding, got %v", diags)
	}
}

func TestMalformedSuppressions(t *testing.T) {
	dir := writePkg(t, `package p

//meclint:allow(ident)
var missingReason = 1

//meclint:allow(nosuch) reason given
var unknownCheck = 1

//meclint:deny(ident) wrong verb
var malformed = 1
`)
	pkg, err := NewLoader().Load(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{ident}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if d.Check != "allow" {
			t.Errorf("unexpected check %q in %v", d.Check, d)
		}
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"needs a reason", "unknown check", "malformed"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q finding in:\n%s", want, joined)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d findings, want 3: %v", len(diags), diags)
	}
}

func TestLoadTreeAndModulePath(t *testing.T) {
	root := t.TempDir()
	mustWrite := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("go.mod", "module example.com/m\n\ngo 1.24\n")
	mustWrite("a.go", "package m\n")
	mustWrite("sub/b.go", "package sub\n")
	mustWrite("sub/b_test.go", "package sub\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n")
	mustWrite("testdata/skip.go", "package skipme\n\nfunc broken() {")
	mustWrite(".hidden/skip.go", "package skipme\n\nfunc broken() {")

	mod, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod != "example.com/m" {
		t.Fatalf("ModulePath = %q", mod)
	}
	pkgs, err := NewLoader().LoadTree(root, mod)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	want := []string{"example.com/m", "example.com/m/sub"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("LoadTree paths = %v, want %v", paths, want)
	}
}

func TestLoadExcludesTestFiles(t *testing.T) {
	dir := writePkg(t, "package p\n\nvar x = 1\n")
	if err := os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package p\n\nvar flagme = 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().Load(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{ident}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("test-file identifier was analyzed: %v", diags)
	}
}
