package checks

import (
	"strings"

	"dsmec/internal/lint"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Determinism(), Nilsafe(), Floatcmp(), Exitcode()}
}

// Applies scopes an analyzer to the package trees whose invariants it
// guards (import paths are module-rooted, e.g. dsmec/internal/lp):
//
//   - determinism: every internal/ package except internal/obs — obs
//     owns the wall clock by design (manifests, snapshots, spans are
//     documented wall-clock surfaces) and its outputs never feed the
//     deterministic result path — plus cmd/mecd, whose responses promise
//     to be byte-identical at any solver parallelism and so must route
//     every wall-clock read through obs like the solver packages do;
//   - nilsafe: everywhere — the check triggers only on types that
//     declare a nil-receiver contract in their doc comment;
//   - floatcmp: the numeric core, internal/lp and internal/core;
//   - exitcode: the cmd/ binaries.
func Applies(check, importPath string) bool {
	_, rest, found := strings.Cut(importPath, "/")
	if !found {
		rest = ""
	}
	switch check {
	case "determinism":
		return rest == "cmd/mecd" ||
			(strings.HasPrefix(rest, "internal/") && rest != "internal/obs" &&
				!strings.HasPrefix(rest, "internal/obs/"))
	case "nilsafe":
		return true
	case "floatcmp":
		return rest == "internal/lp" || rest == "internal/core"
	case "exitcode":
		return strings.HasPrefix(rest, "cmd/")
	default:
		return false
	}
}
