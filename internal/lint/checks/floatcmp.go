package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"dsmec/internal/lint"
)

// FloatcmpHelpers names the approved tolerance helpers: functions whose
// entire purpose is comparing floats, inside which exact ==/!= is the
// implementation rather than a bug. Comparisons anywhere else between
// two non-constant float expressions are flagged.
var FloatcmpHelpers = map[string]bool{
	"approxEqual":  true,
	"almostEqual":  true,
	"withinTol":    true,
	"floatsEqual":  true,
	"isIntegral":   true,
	"closeEnough":  true,
	"relativeDiff": true,
}

// Floatcmp returns the analyzer guarding numeric comparisons in the
// solver packages. Exact equality between two computed floats is almost
// never what an LP pivot rule or an energy accounting check means:
// rounding makes the result depend on evaluation order, optimization
// level, and summation order — precisely the kind of hidden
// nondeterminism the byte-identical goldens exist to catch. Comparing
// against a constant (x == 0, status sentinel values) is exact by
// construction and stays legal, as do comparisons inside the approved
// tolerance helpers in FloatcmpHelpers.
func Floatcmp() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "floatcmp",
		Doc:  "flags ==/!= between two non-constant floating-point expressions outside approved tolerance helpers",
		Run:  runFloatcmp,
	}
}

func runFloatcmp(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if FloatcmpHelpers[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
					return true
				}
				if isConstant(pass, be.X) || isConstant(pass, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos,
					"exact %s between two computed floats; compare with a tolerance helper or document why exactness holds",
					be.Op)
				return true
			})
		}
	}
	return nil
}

func isFloat(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstant(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
