package checks

import (
	"testing"

	"dsmec/internal/lint/linttest"
)

// Each analyzer runs over a testdata package that seeds synthetic
// violations of every rule (asserted by want comments) next to clean
// idioms that must not be flagged.

func TestDeterminism(t *testing.T) { linttest.Run(t, "determinism", Determinism()) }

func TestNilsafe(t *testing.T) { linttest.Run(t, "nilsafe", Nilsafe()) }

func TestFloatcmp(t *testing.T) { linttest.Run(t, "floatcmp", Floatcmp()) }

func TestExitcode(t *testing.T) { linttest.Run(t, "exitcode", Exitcode()) }

func TestApplies(t *testing.T) {
	cases := []struct {
		check, importPath string
		want              bool
	}{
		{"determinism", "dsmec/internal/lp", true},
		{"determinism", "dsmec/internal/sim", true},
		{"determinism", "dsmec/internal/scenarioio", true},
		{"determinism", "dsmec/internal/obs", false},
		{"determinism", "dsmec/cmd/mecsim", false},
		{"determinism", "dsmec/cmd/mecd", true},
		{"determinism", "dsmec", false},
		{"nilsafe", "dsmec/internal/obs", true},
		{"nilsafe", "dsmec/internal/lp", true},
		{"floatcmp", "dsmec/internal/lp", true},
		{"floatcmp", "dsmec/internal/core", true},
		{"floatcmp", "dsmec/internal/stats", false},
		{"floatcmp", "dsmec/cmd/mecsim", false},
		{"exitcode", "dsmec/cmd/mecsim", true},
		{"exitcode", "dsmec/cmd/meclint", true},
		{"exitcode", "dsmec/internal/lp", false},
		{"nosuch", "dsmec/internal/lp", false},
	}
	for _, tc := range cases {
		if got := Applies(tc.check, tc.importPath); got != tc.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", tc.check, tc.importPath, got, tc.want)
		}
	}
}

func TestAllNamesUniqueAndScoped(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		// Every analyzer must apply somewhere, or it could never fire.
		applied := false
		for _, path := range []string{"dsmec", "dsmec/internal/lp", "dsmec/internal/obs", "dsmec/cmd/mecsim"} {
			if Applies(a.Name, path) {
				applied = true
			}
		}
		if !applied {
			t.Errorf("analyzer %q applies to no package", a.Name)
		}
	}
}
