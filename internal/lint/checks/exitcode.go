package checks

import (
	"go/ast"
	"go/types"

	"dsmec/internal/lint"
)

// Exitcode returns the analyzer guarding the CLI exit-code contract:
// every binary documents 0 = clean, 1 = violation/failure, 2 = bad
// input, and the mapping lives in exactly one place — the top level of
// main (or its run helper). An os.Exit or log.Fatal buried in a helper
// or a closure bypasses that mapping (and skips deferred cleanup), so
// both are flagged anywhere else in cmd packages, including inside
// function literals declared in main itself.
func Exitcode() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "exitcode",
		Doc:  "cmd packages may call os.Exit (or log.Fatal*) only at the top level of main or run",
		Run:  runExitcode,
	}
}

func runExitcode(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			topLevel := fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "run")
			checkExitCalls(pass, fd.Body, topLevel)
		}
	}
	return nil
}

// checkExitCalls walks body flagging exit calls; allowed is whether the
// current lexical context is the top level of main/run. Entering a
// function literal clears it.
func checkExitCalls(pass *lint.Pass, body *ast.BlockStmt, allowed bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkExitCalls(pass, n.Body, false)
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			exits := (fn.Pkg().Path() == "os" && fn.Name() == "Exit") ||
				(fn.Pkg().Path() == "log" && (fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"))
			if exits && !allowed {
				pass.Reportf(n.Pos(),
					"%s.%s outside main/run top-level error mapping; return an error and let main map it to the documented exit code",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}
