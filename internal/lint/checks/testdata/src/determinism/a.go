// Package determinism is analyzer testdata: positive cases carry want
// comments, everything else must stay clean.
package determinism

import (
	"math/rand"
	"sort"
	"strings"
	"time"
	tt "time"
)

func wallClock() float64 {
	start := time.Now() // want `time.Now reads the wall clock`
	_ = start
	aliased := tt.Now()                      // want `time.Now reads the wall clock`
	elapsed := time.Since(aliased).Seconds() // want `time.Since reads the wall clock`
	f := time.Now                            // want `time.Now reads the wall clock`
	_ = f
	return elapsed
}

func durationMathIsFine(d time.Duration) time.Duration {
	return d * 2 / time.Millisecond * time.Millisecond
}

func globalRand() int {
	n := rand.Intn(10)                 // want `global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand source`
	return n
}

func seededRandIsFine(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func suppressedWallClock() tt.Time {
	//meclint:allow(determinism) boot banner timestamp, never reaches an output file
	return time.Now()
}

//meclint:allow(determinism) stale annotation kept for the unused-suppression case // want `unused //meclint:allow\(determinism\) suppression`

func mapAppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is random`
		keys = append(keys, k)
	}
	return keys
}

func mapAppendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapKeyedWriteIsFine(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func mapIntAccumulationIsFine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapFloatAccumulation(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `map iteration order is random`
		sum += v
	}
	return sum
}

func mapLastWriterWins(m map[string]int) string {
	last := ""
	for k := range m { // want `map iteration order is random`
		last = k
	}
	return last
}

func mapReturnsArbitraryKey(m map[string]int) string {
	for k := range m { // want `map iteration order is random`
		return k
	}
	return ""
}

func mapReturnInvariantIsFine(m map[string]bool) bool {
	for _, bad := range m {
		if bad {
			return true
		}
	}
	return false
}

func mapChannelSend(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order is random`
		ch <- k
	}
}

func mapBuilderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order is random`
		b.WriteString(k)
	}
	return b.String()
}

func sliceRangeIsFine(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v*2)
	}
	return out
}
