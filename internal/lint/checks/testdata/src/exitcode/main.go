// Command exitcode is analyzer testdata for the exit-code-contract
// check.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		os.Exit(3) // want `os.Exit outside main/run top-level error mapping`
	}()
}

func run() error {
	if len(os.Args) > 9 {
		os.Exit(2)
	}
	return process()
}

func process() error {
	if len(os.Args) > 8 {
		os.Exit(1) // want `os.Exit outside main/run top-level error mapping`
	}
	if len(os.Args) > 7 {
		log.Fatalf("boom") // want `log.Fatalf outside main/run top-level error mapping`
	}
	//meclint:allow(exitcode) testdata exercising the suppression path
	os.Exit(4)
	return nil
}
