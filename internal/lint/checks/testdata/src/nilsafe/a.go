// Package nilsafe is analyzer testdata for the nil-receiver-guard
// contract check.
package nilsafe

// Probe is a test metric. A nil *Probe is a valid disabled probe; all
// methods are no-ops on a nil receiver.
type Probe struct {
	n int
}

// Add is guarded: clean.
func (p *Probe) Add(d int) {
	if p == nil {
		return
	}
	p.n += d
}

// Inc delegates to the guarded Add: clean.
func (p *Probe) Inc() { p.Add(1) }

// Value is guarded with the operands swapped: clean.
func (p *Probe) Value() int {
	if nil == p {
		return 0
	}
	return p.n
}

// Reset forgets the guard and dereferences a nil receiver.
func (p *Probe) Reset() { // want `must begin with a nil-receiver guard`
	p.n = 0
}

// Peek delegates via a return statement: clean.
func (p *Probe) Peek() int { return p.Value() }

// helper is unexported, outside the contract: clean.
func (p *Probe) helper() int {
	return p.n * 2
}

// Snapshot declares a local before the guard, which the contract
// forbids — the guard must come first so the no-op path stays free.
func (p *Probe) Snapshot() []int { // want `must begin with a nil-receiver guard`
	out := make([]int, 0, 1)
	if p == nil {
		return out
	}
	return append(out, p.n)
}

// Plain has no nil contract in its doc comment, so its methods are
// not checked.
type Plain struct {
	n int
}

// Bump needs no guard: Plain declares no contract.
func (p *Plain) Bump() { p.n++ }

// ByValue is a value-receiver method on a contract type: clean, a value
// receiver cannot be nil.
func (p Probe) ByValue() int { return p.n }
