// Package floatcmp is analyzer testdata for the exact-float-comparison
// check.
package floatcmp

import "math"

const tolerance = 1e-9

func computed(a, b float64) bool {
	return a*2 == b+1 // want `exact == between two computed floats`
}

func notEqual(a, b float64) bool {
	return a != b // want `exact != between two computed floats`
}

func zeroSentinelIsFine(a float64) bool {
	return a == 0
}

func namedConstantIsFine(a float64) bool {
	return a == tolerance
}

func intCompareIsFine(a, b int) bool {
	return a == b
}

func orderedCompareIsFine(a, b float64) bool {
	return a < b || a >= b
}

// approxEqual is an approved tolerance helper: exact comparison inside
// it is the implementation.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tolerance*math.Max(math.Abs(a), math.Abs(b))
}

func viaHelperIsFine(a, b float64) bool {
	return approxEqual(a, b)
}

func suppressed(a, b float64) bool {
	//meclint:allow(floatcmp) both sides are exact IEEE copies of the same table entry
	return a == b
}
