package checks

import (
	"go/ast"
	"go/token"
	"regexp"

	"dsmec/internal/lint"
)

// Nilsafe returns the analyzer guarding the disabled-observability
// contract: a nil metric/trace/log handle must be a free no-op, so
// instrumented hot paths cost nothing when observability is off. The
// contract is declared in a type's doc comment ("a nil *T is a valid
// ...", "no-ops on a nil receiver"); once declared, every exported
// pointer-receiver method on that type must either
//
//   - begin with a nil-receiver guard (if t == nil { ... }) as its
//     first statement, or
//   - consist of a single statement delegating to another method on the
//     same receiver, which inherits the callee's guard (e.g. Inc
//     calling c.Add).
//
// Anything else risks a nil dereference on exactly the path the
// contract promises is safe, and the panic only shows up in disabled
// runs — the configuration the test suite exercises least.
func Nilsafe() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "nilsafe",
		Doc:  "exported pointer-receiver methods on nil-contract types must begin with a nil-receiver guard",
		Run:  runNilsafe,
	}
}

// nilContractRe matches the doc-comment phrasings that declare the nil
// contract on a type.
var nilContractRe = regexp.MustCompile(`(?i)(nil \*?[A-Za-z_][A-Za-z0-9_]* is|no-ops? on a nil receiver|nil receiver is)`)

func runNilsafe(pass *lint.Pass) error {
	contract := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && nilContractRe.MatchString(doc.Text()) {
					contract[ts.Name.Name] = true
				}
			}
		}
	}
	if len(contract) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, typeName, ptr := receiverOf(fd)
			if !ptr || !contract[typeName] {
				continue
			}
			if guardedFirst(fd.Body, recvName) || delegates(fd.Body, recvName) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method (*%s).%s must begin with a nil-receiver guard (the type documents a nil-receiver contract)",
				typeName, fd.Name.Name)
		}
	}
	return nil
}

// receiverOf extracts the receiver name, base type name, and whether
// the receiver is a pointer.
func receiverOf(fd *ast.FuncDecl) (recvName, typeName string, ptr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		typeName = t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	return recvName, typeName, ptr
}

// guardedFirst reports whether the body's first statement is
// `if <recv> == nil { ... }` (or nil == recv).
func guardedFirst(body *ast.BlockStmt, recvName string) bool {
	if recvName == "" || len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recvName
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(cond.X) && isNil(cond.Y)) || (isNil(cond.X) && isRecv(cond.Y))
}

// delegates reports whether the body is a single statement whose only
// action is calling a method on the receiver, inheriting its guard.
func delegates(body *ast.BlockStmt, recvName string) bool {
	if recvName == "" || len(body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch stmt := body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = stmt.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(stmt.Results) == 1 {
			call, _ = stmt.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := rootIdent(sel.X)
	return root != nil && root.Name == recvName
}
