// Package checks holds the repo-specific analyzers run by cmd/meclint:
//
//   - determinism: no wall-clock reads, global math/rand, or
//     order-dependent map iteration in the deterministic packages, the
//     invariant behind byte-identical output at any -parallel/-shards
//     value;
//   - nilsafe: exported pointer-receiver methods on nil-contract
//     observability types must begin with a nil-receiver guard, the
//     contract that makes disabled observability free;
//   - floatcmp: no exact ==/!= between non-constant floating-point
//     expressions in the numeric packages;
//   - exitcode: cmd binaries call os.Exit only from main/run top-level
//     error mapping, keeping the documented 0/1/2 exit-code contract.
//
// Each analyzer is covered by an analysistest-style suite over
// testdata/src packages; Applies scopes analyzers to the package trees
// whose invariants they guard. See docs/LINTING.md for the catalog.
package checks
