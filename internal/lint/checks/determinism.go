package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"dsmec/internal/lint"
)

// Determinism returns the analyzer guarding the byte-identical-output
// invariant: the same scenario and seed must produce the same bytes at
// any -parallel or -shards value. Three things silently break it and
// are flagged in deterministic packages:
//
//   - wall-clock reads (time.Now, time.Since, time.Until, time.Sleep):
//     wall time differs run to run, so any value derived from it that
//     reaches an output desynchronizes the goldens. Timing that feeds
//     observability must route through internal/obs (obs.StartTimer),
//     which owns the wall clock and is exempt by design.
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): the
//     process-wide source is shared across goroutines, so draw order —
//     and therefore every value — depends on scheduling. Constructors
//     (rand.New, rand.NewSource, ...) are fine: seeded private sources
//     are the required pattern (internal/rng).
//   - map iteration whose body writes to state outside the loop in an
//     order-dependent way (appending to a slice, overwriting a scalar,
//     float accumulation, writing output, returning a range variable)
//     with no subsequent sort in the same block: Go randomizes map
//     order per run. Keyed writes (m2[k] = v) and commutative integer
//     accumulation are order-independent and pass; sorting the
//     collected slice afterwards also passes.
func Determinism() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "determinism",
		Doc:  "flags wall-clock reads, global math/rand, and order-dependent map iteration in deterministic packages",
		Run:  runDeterminism,
	}
}

// wallClockFuncs are the time package functions that read the wall
// clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
}

// randConstructors are the math/rand package-level functions that build
// private sources instead of drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterministicSelector(pass, n)
			case *ast.RangeStmt:
				// Handled via the enclosing block below so the
				// following statements are visible for sort detection.
			case *ast.BlockStmt:
				checkMapRangesInBlock(pass, n)
			case *ast.CaseClause:
				checkMapRangesInStmts(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkDeterministicSelector flags selector uses resolving to a
// wall-clock read or a global math/rand draw, whatever the import is
// named locally.
func checkDeterministicSelector(pass *lint.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in a deterministic package; route timing through internal/obs (obs.StartTimer)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"global math/rand source (%s.%s) in a deterministic package; draw from a seeded *rand.Rand (internal/rng)",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRangesInBlock examines every map-range statement in the block
// with its following statements in view, so a sort after the loop can
// license order-dependent collection.
func checkMapRangesInBlock(pass *lint.Pass, block *ast.BlockStmt) {
	checkMapRangesInStmts(pass, block.List)
}

func checkMapRangesInStmts(pass *lint.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		why := orderDependentWrite(pass, rng)
		if why == "" {
			continue
		}
		if sortFollows(pass, stmts[i+1:]) {
			continue
		}
		pass.Reportf(rng.For,
			"map iteration order is random and the body %s with no subsequent sort; iterate sorted keys or sort the result",
			why)
	}
}

// orderDependentWrite reports how the loop body leaks iteration order
// into surrounding state, or "" when every write it can see is
// order-independent. The analysis is heuristic and errs toward
// flagging; false positives carry a //meclint:allow(determinism) with
// the reason the order cannot be observed.
func orderDependentWrite(pass *lint.Pass, rng *ast.RangeStmt) string {
	body := rng.Body
	inBody := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
	}
	// isRangeVar reports whether obj is the loop's key or value binding.
	isRangeVar := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		return obj.Pos() >= rng.Pos() && obj.Pos() < body.Pos()
	}
	outerObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || inBody(obj) || isRangeVar(obj) {
			return nil
		}
		return obj
	}
	isInteger := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}

	var why string
	found := func(reason string) { why = reason }

	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				switch lhs := lhs.(type) {
				case *ast.Ident:
					obj := outerObj(lhs)
					if obj == nil {
						continue
					}
					// Commutative integer accumulation (+=, *=, |=, &=,
					// ^=) is order-independent; everything else on an
					// outer variable is not (float sums reassociate,
					// plain = keeps the last key visited, appends keep
					// iteration order).
					switch n.Tok {
					case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
						if isInteger(obj.Type()) {
							continue
						}
						found("accumulates a non-integer outside the loop (float addition is order-dependent)")
					default:
						found("writes to " + lhs.Name + " declared outside the loop")
					}
				case *ast.IndexExpr:
					// Keyed writes m2[k] = v are order-independent when
					// keys are distinct; slice/array index writes keyed
					// by the range variables are too. Leave both alone.
				case *ast.SelectorExpr:
					if root := rootIdent(lhs); root != nil {
						if obj := outerObj(root); obj != nil {
							found("writes field " + lhs.Sel.Name + " of " + root.Name + " declared outside the loop")
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				if obj := outerObj(id); obj != nil && !isInteger(obj.Type()) {
					found("increments a non-integer outside the loop")
				}
			}
		case *ast.SendStmt:
			found("sends on a channel (delivery order follows map order)")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				dep := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && isRangeVar(pass.TypesInfo.Uses[id]) {
						dep = true
						return false
					}
					return true
				})
				if dep {
					found("returns a value derived from the range variables (an arbitrary map element)")
					break
				}
			}
		case *ast.CallExpr:
			// Writing to an outer builder/writer records map order into
			// the output stream.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if root := rootIdent(sel.X); root != nil {
					if obj := outerObj(root); obj != nil && isWriterLike(obj.Type()) {
						found("writes output through " + root.Name + " in iteration order")
					}
				}
			}
		}
		return true
	})
	return why
}

// rootIdent walks selector/index chains down to their base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWriterLike reports whether t is a byte-stream builder whose write
// order is observable: strings.Builder, bytes.Buffer, or anything with
// a Write([]byte) (int, error) method.
func isWriterLike(t types.Type) bool {
	for _, name := range []string{"strings.Builder", "bytes.Buffer"} {
		if types.TypeString(t, nil) == name || types.TypeString(t, nil) == "*"+name {
			return true
		}
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "Write" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// sortFollows reports whether any later statement in the same block
// sorts something, which licenses order-dependent collection above it.
func sortFollows(pass *lint.Pass, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
