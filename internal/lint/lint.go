package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf; it
// returns an error only for internal failures (a broken invariant in
// the analyzer itself), never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String renders the conventional file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// SortDiagnostics orders findings by file, line, column, then check
// name, so driver output is stable.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// RunPackage applies every analyzer to pkg and resolves suppressions:
// findings covered by a //meclint:allow comment are dropped, unused or
// malformed allow comments become findings themselves (check name
// "allow"), so suppressions cannot rot. known lists every valid check
// name for allow-comment validation; when nil, the analyzer names are
// used.
func RunPackage(pkg *Package, analyzers []*Analyzer, known []string) ([]Diagnostic, error) {
	if known == nil {
		for _, a := range analyzers {
			known = append(known, a.Name)
		}
	}
	allows, diags := collectAllows(pkg.Fset, pkg.Files, known)

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ImportPath: pkg.ImportPath,
		}
		var found []Diagnostic
		pass.report = func(d Diagnostic) { found = append(found, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range found {
			if !suppress(allows, d) {
				diags = append(diags, d)
			}
		}
	}
	diags = append(diags, unusedAllows(allows, ran)...)
	SortDiagnostics(diags)
	return diags, nil
}
