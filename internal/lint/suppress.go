package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// Findings are suppressed with an annotation comment:
//
//	//meclint:allow(<check>) <reason>
//
// either trailing the offending line or on its own line immediately
// above it. The reason is mandatory — an annotation must say why the
// rule does not apply — and an annotation that suppresses nothing is
// itself a finding, so stale allows fail the build instead of rotting.

// allowRe matches one allow annotation line inside a comment.
var allowRe = regexp.MustCompile(`^//meclint:allow\(([^)]*)\)\s*(.*)$`)

// allow is one parsed //meclint:allow annotation.
type allow struct {
	check  string
	reason string
	file   string
	line   int
	pos    token.Position
	used   bool
}

// collectAllows parses every allow annotation in the files. Malformed
// annotations (unknown check name, missing reason) are returned as
// diagnostics under the "allow" check immediately; well-formed ones are
// returned for matching.
func collectAllows(fset *token.FileSet, files []*ast.File, known []string) ([]*allow, []Diagnostic) {
	valid := make(map[string]bool, len(known))
	for _, n := range known {
		valid[n] = true
	}
	var allows []*allow
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//meclint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					diags = append(diags, Diagnostic{
						Check: "allow", Pos: pos,
						Message: "malformed meclint annotation; want //meclint:allow(<check>) <reason>",
					})
					continue
				}
				check, reason := m[1], strings.TrimSpace(m[2])
				if !valid[check] {
					diags = append(diags, Diagnostic{
						Check: "allow", Pos: pos,
						Message: "unknown check " + strconv.Quote(check) + " in //meclint:allow",
					})
					continue
				}
				if reason == "" {
					diags = append(diags, Diagnostic{
						Check: "allow", Pos: pos,
						Message: "//meclint:allow(" + check + ") needs a reason",
					})
					continue
				}
				allows = append(allows, &allow{
					check: check, reason: reason,
					file: pos.Filename, line: pos.Line, pos: pos,
				})
			}
		}
	}
	return allows, diags
}

// suppress reports whether d is covered by an annotation: same file and
// check, on the diagnostic's line (trailing comment) or the line above.
// Matching annotations are marked used.
func suppress(allows []*allow, d Diagnostic) bool {
	hit := false
	for _, a := range allows {
		if a.check != d.Check || a.file != d.Pos.Filename {
			continue
		}
		if a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			a.used = true
			hit = true
		}
	}
	return hit
}

// unusedAllows converts every unmatched annotation into a finding.
// Only annotations for checks in ran are judged: when a driver runs a
// subset of the suite, allows for the checks that did not run cannot be
// proven stale.
func unusedAllows(allows []*allow, ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range allows {
		if a.used || !ran[a.check] {
			continue
		}
		diags = append(diags, Diagnostic{
			Check: "allow", Pos: a.pos,
			Message: "unused //meclint:allow(" + a.check + ") suppression (nothing to suppress here; delete it)",
		})
	}
	return diags
}
