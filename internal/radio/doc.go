// Package radio models the radio access network between mobile devices and
// their base stations.
//
// The paper derives upload and download rates from Shannon capacity,
//
//	r^(U) = W^(U) log2(1 + g^(U) P^(T) / ϖ0)
//	r^(D) = W^(D) log2(1 + g^(D) P^(S) / ϖ0)
//
// and then, for the evaluation, fixes concrete rates and powers per access
// technology (Table I: 4G and Wi-Fi). This package supports both: Shannon
// derives a Link from channel parameters, and the FourG/WiFi profiles
// reproduce Table I exactly.
//
// Energy accounting follows [9]: sending X bytes costs P^(T)·X/r^(U) joules
// on the sender's radio; receiving X bytes costs P^(R)·X/r^(D) on the
// receiver's radio.
package radio
