package radio

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dsmec/internal/units"
)

// Tech identifies the access technology a device uses to reach its base
// station.
type Tech int

// Supported access technologies. Table I of the paper defines 4G and Wi-Fi;
// TechCustom marks links built from explicit channel parameters.
const (
	Tech4G Tech = iota + 1
	TechWiFi
	TechCustom
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case Tech4G:
		return "4G"
	case TechWiFi:
		return "Wi-Fi"
	case TechCustom:
		return "custom"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Link is a device's radio connection: its achievable rates and the power
// its radio draws while transmitting and receiving.
type Link struct {
	Tech     Tech
	Upload   units.BitRate // r_i^(U)
	Download units.BitRate // r_i^(D)
	TxPower  units.Power   // P_i^(T), drawn while uploading
	RxPower  units.Power   // P_i^(R), drawn while downloading
}

// Table I of the paper, verbatim.
var (
	// FourG is the 4G/LTE row of Table I.
	FourG = Link{
		Tech:     Tech4G,
		Upload:   5.85 * units.MbitPerSecond,
		Download: 13.76 * units.MbitPerSecond,
		TxPower:  7.32 * units.Watt,
		RxPower:  1.6 * units.Watt,
	}
	// WiFi is the Wi-Fi row of Table I.
	WiFi = Link{
		Tech:     TechWiFi,
		Upload:   12.88 * units.MbitPerSecond,
		Download: 54.97 * units.MbitPerSecond,
		TxPower:  15.7 * units.Watt,
		RxPower:  2.7 * units.Watt,
	}
)

// Validate reports whether the link's parameters are physically meaningful.
func (l Link) Validate() error {
	switch {
	case l.Upload <= 0:
		return fmt.Errorf("radio: upload rate %v must be positive", l.Upload)
	case l.Download <= 0:
		return fmt.Errorf("radio: download rate %v must be positive", l.Download)
	case l.TxPower <= 0:
		return fmt.Errorf("radio: tx power %v must be positive", l.TxPower)
	case l.RxPower <= 0:
		return fmt.Errorf("radio: rx power %v must be positive", l.RxPower)
	default:
		return nil
	}
}

// UploadTime returns the time to push size bytes up to the base station.
func (l Link) UploadTime(size units.ByteSize) units.Duration {
	return size.TransferTime(l.Upload)
}

// DownloadTime returns the time to pull size bytes down from the base
// station.
func (l Link) DownloadTime(size units.ByteSize) units.Duration {
	return size.TransferTime(l.Download)
}

// UploadEnergy returns e_i^(T)(X): the radio energy spent transmitting size
// bytes to the base station.
func (l Link) UploadEnergy(size units.ByteSize) units.Energy {
	return l.TxPower.EnergyOver(l.UploadTime(size))
}

// DownloadEnergy returns e_i^(R)(X): the radio energy spent receiving size
// bytes from the base station.
func (l Link) DownloadEnergy(size units.ByteSize) units.Energy {
	return l.RxPower.EnergyOver(l.DownloadTime(size))
}

// Channel carries the physical-layer parameters of one direction of a
// radio link, from which Shannon derives the achievable rate.
type Channel struct {
	Bandwidth units.BitRate // W: channel bandwidth in Hz expressed as max symbol rate (1 Hz ~ 1 bit/s per unit SNR-log)
	Gain      float64       // g: channel power gain (dimensionless, 0 < g <= 1)
	Power     units.Power   // P: transmitter power into this channel
	Noise     units.Power   // ϖ0: white-noise power
}

// Rate returns the Shannon capacity W·log2(1 + gP/ϖ0) of the channel.
func (c Channel) Rate() (units.BitRate, error) {
	switch {
	case c.Bandwidth <= 0:
		return 0, fmt.Errorf("radio: bandwidth %v must be positive", c.Bandwidth)
	case c.Gain <= 0 || c.Gain > 1:
		return 0, fmt.Errorf("radio: gain %g must be in (0, 1]", c.Gain)
	case c.Power <= 0:
		return 0, fmt.Errorf("radio: power %v must be positive", c.Power)
	case c.Noise <= 0:
		return 0, fmt.Errorf("radio: noise power %v must be positive", c.Noise)
	}
	snr := c.Gain * float64(c.Power) / float64(c.Noise)
	return units.BitRate(float64(c.Bandwidth) * math.Log2(1+snr)), nil
}

// Shannon builds a Link from uplink and downlink channel descriptions and
// the device's radio powers. It returns an error if either channel is
// degenerate.
func Shannon(up, down Channel, txPower, rxPower units.Power) (Link, error) {
	upRate, err := up.Rate()
	if err != nil {
		return Link{}, fmt.Errorf("uplink: %w", err)
	}
	downRate, err := down.Rate()
	if err != nil {
		return Link{}, fmt.Errorf("downlink: %w", err)
	}
	l := Link{
		Tech:     TechCustom,
		Upload:   upRate,
		Download: downRate,
		TxPower:  txPower,
		RxPower:  rxPower,
	}
	if err := l.Validate(); err != nil {
		return Link{}, err
	}
	return l, nil
}

// ErrNoProfiles is returned by Picker constructors given an empty
// profile set.
var ErrNoProfiles = errors.New("radio: no link profiles to pick from")

// Picker assigns access links to devices. The paper's evaluation connects
// each device "by 4G or WiFi randomly"; TableIPicker reproduces that.
type Picker struct {
	profiles []Link
}

// NewPicker returns a Picker choosing uniformly among the given profiles.
func NewPicker(profiles ...Link) (*Picker, error) {
	if len(profiles) == 0 {
		return nil, ErrNoProfiles
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("profile %d: %w", i, err)
		}
	}
	cp := make([]Link, len(profiles))
	copy(cp, profiles)
	return &Picker{profiles: cp}, nil
}

// TableIPicker returns the paper's device-connectivity model: each device
// connects via 4G or Wi-Fi with equal probability.
func TableIPicker() *Picker {
	p, err := NewPicker(FourG, WiFi)
	if err != nil {
		// Both built-in profiles validate; reaching here is a programming
		// error in this package, not a runtime condition.
		panic(err)
	}
	return p
}

// Pick draws one link profile using r.
func (p *Picker) Pick(r *rand.Rand) Link {
	return p.profiles[r.Intn(len(p.profiles))]
}

// Profiles returns a copy of the profile set.
func (p *Picker) Profiles() []Link {
	cp := make([]Link, len(p.profiles))
	copy(cp, p.profiles)
	return cp
}
