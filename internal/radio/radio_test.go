package radio

import (
	"math"
	"testing"
	"testing/quick"

	"dsmec/internal/rng"
	"dsmec/internal/units"
)

func TestTableIProfiles(t *testing.T) {
	// Table I, verbatim.
	tests := []struct {
		name             string
		link             Link
		up, down         float64 // Mbps
		txPower, rxPower float64 // W
	}{
		{"4G", FourG, 5.85, 13.76, 7.32, 1.6},
		{"Wi-Fi", WiFi, 12.88, 54.97, 15.7, 2.7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.link.Upload.Mbps(); math.Abs(got-tt.up) > 1e-9 {
				t.Errorf("upload = %g Mbps, want %g", got, tt.up)
			}
			if got := tt.link.Download.Mbps(); math.Abs(got-tt.down) > 1e-9 {
				t.Errorf("download = %g Mbps, want %g", got, tt.down)
			}
			if got := float64(tt.link.TxPower); got != tt.txPower {
				t.Errorf("tx power = %g W, want %g", got, tt.txPower)
			}
			if got := float64(tt.link.RxPower); got != tt.rxPower {
				t.Errorf("rx power = %g W, want %g", got, tt.rxPower)
			}
			if err := tt.link.Validate(); err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestTechString(t *testing.T) {
	tests := []struct {
		tech Tech
		want string
	}{
		{Tech4G, "4G"},
		{TechWiFi, "Wi-Fi"},
		{TechCustom, "custom"},
		{Tech(99), "Tech(99)"},
	}
	for _, tt := range tests {
		if got := tt.tech.String(); got != tt.want {
			t.Errorf("Tech(%d).String() = %q, want %q", int(tt.tech), got, tt.want)
		}
	}
}

func TestLinkValidate(t *testing.T) {
	base := FourG
	tests := []struct {
		name   string
		mutate func(*Link)
	}{
		{"zero upload", func(l *Link) { l.Upload = 0 }},
		{"negative download", func(l *Link) { l.Download = -1 }},
		{"zero tx power", func(l *Link) { l.TxPower = 0 }},
		{"negative rx power", func(l *Link) { l.RxPower = -2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := base
			tt.mutate(&l)
			if err := l.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestUploadEnergy(t *testing.T) {
	// 4G upload of 3000 kB: 24e6 bits / 5.85e6 bps = 4.1026 s at 7.32 W
	// = 30.03 J.
	size := 3000 * units.Kilobyte
	e := FourG.UploadEnergy(size)
	want := 7.32 * 24e6 / 5.85e6
	if math.Abs(e.Joules()-want) > 1e-6 {
		t.Errorf("UploadEnergy = %v, want %.3fJ", e, want)
	}
}

func TestDownloadEnergy(t *testing.T) {
	// Wi-Fi download of 1 MB: 8e6/54.97e6 s at 2.7 W.
	size := units.Megabyte
	e := WiFi.DownloadEnergy(size)
	want := 2.7 * 8e6 / 54.97e6
	if math.Abs(e.Joules()-want) > 1e-9 {
		t.Errorf("DownloadEnergy = %v, want %.4fJ", e, want)
	}
}

func TestTransferTimesMonotone(t *testing.T) {
	// Property: upload time and energy grow monotonically with size.
	f := func(a, b uint16) bool {
		small, big := units.ByteSize(a), units.ByteSize(b)
		if small > big {
			small, big = big, small
		}
		return FourG.UploadTime(small) <= FourG.UploadTime(big) &&
			FourG.UploadEnergy(small) <= FourG.UploadEnergy(big) &&
			WiFi.DownloadTime(small) <= WiFi.DownloadTime(big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelRate(t *testing.T) {
	// SNR = 3 gives log2(4) = 2 bits per bandwidth unit.
	c := Channel{
		Bandwidth: 10 * units.MbitPerSecond,
		Gain:      1,
		Power:     3 * units.Watt,
		Noise:     1 * units.Watt,
	}
	r, err := c.Rate()
	if err != nil {
		t.Fatalf("Rate() error: %v", err)
	}
	if math.Abs(r.Mbps()-20) > 1e-9 {
		t.Errorf("Rate = %v, want 20Mbps", r)
	}
}

func TestChannelRateErrors(t *testing.T) {
	valid := Channel{Bandwidth: 1e6, Gain: 0.5, Power: 1, Noise: 0.01}
	tests := []struct {
		name   string
		mutate func(*Channel)
	}{
		{"zero bandwidth", func(c *Channel) { c.Bandwidth = 0 }},
		{"zero gain", func(c *Channel) { c.Gain = 0 }},
		{"gain above one", func(c *Channel) { c.Gain = 1.5 }},
		{"zero power", func(c *Channel) { c.Power = 0 }},
		{"zero noise", func(c *Channel) { c.Noise = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if _, err := c.Rate(); err == nil {
				t.Error("Rate() = nil error, want error")
			}
		})
	}
	if _, err := valid.Rate(); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
}

func TestShannon(t *testing.T) {
	up := Channel{Bandwidth: 5 * units.MbitPerSecond, Gain: 1, Power: 1, Noise: 1}
	down := Channel{Bandwidth: 10 * units.MbitPerSecond, Gain: 1, Power: 3, Noise: 1}
	l, err := Shannon(up, down, 7*units.Watt, 2*units.Watt)
	if err != nil {
		t.Fatalf("Shannon() error: %v", err)
	}
	if l.Tech != TechCustom {
		t.Errorf("Tech = %v, want custom", l.Tech)
	}
	if math.Abs(l.Upload.Mbps()-5) > 1e-9 { // log2(2) = 1
		t.Errorf("upload = %v, want 5Mbps", l.Upload)
	}
	if math.Abs(l.Download.Mbps()-20) > 1e-9 { // log2(4) = 2
		t.Errorf("download = %v, want 20Mbps", l.Download)
	}

	if _, err := Shannon(Channel{}, down, 1, 1); err == nil {
		t.Error("Shannon with bad uplink should fail")
	}
	if _, err := Shannon(up, Channel{}, 1, 1); err == nil {
		t.Error("Shannon with bad downlink should fail")
	}
	if _, err := Shannon(up, down, 0, 1); err == nil {
		t.Error("Shannon with zero tx power should fail")
	}
}

func TestShannonHigherSNRFaster(t *testing.T) {
	f := func(p1, p2 uint8) bool {
		lo, hi := float64(p1)+1, float64(p2)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		mk := func(p float64) units.BitRate {
			r, err := Channel{Bandwidth: 1e6, Gain: 1, Power: units.Power(p), Noise: 1}.Rate()
			if err != nil {
				t.Fatalf("rate: %v", err)
			}
			return r
		}
		return mk(lo) <= mk(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPicker(t *testing.T) {
	if _, err := NewPicker(); err == nil {
		t.Error("NewPicker() with no profiles should fail")
	}
	if _, err := NewPicker(Link{}); err == nil {
		t.Error("NewPicker with invalid profile should fail")
	}

	p := TableIPicker()
	r := rng.NewSource(11).Stream("picker")
	counts := map[Tech]int{}
	for i := 0; i < 2000; i++ {
		counts[p.Pick(r).Tech]++
	}
	if counts[Tech4G] == 0 || counts[TechWiFi] == 0 {
		t.Errorf("both technologies should appear, got %v", counts)
	}
	// Roughly uniform: each should be within [800, 1200] of 2000 draws.
	for tech, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("%v drawn %d times of 2000, want ~1000", tech, c)
		}
	}
}

func TestPickerProfilesCopy(t *testing.T) {
	p, err := NewPicker(FourG)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Profiles()
	got[0].Upload = 1 // must not alias internal state
	if p.Profiles()[0].Upload != FourG.Upload {
		t.Error("Profiles() must return a copy")
	}
}
