package experiment

import (
	"strings"
	"testing"

	"dsmec/internal/workload"
)

// quickOpts runs experiments at their sweep endpoints with one trial —
// enough to validate structure and the headline orderings.
var quickOpts = Options{Seed: 1, Trials: 1, Quick: true}

func runQuick(t *testing.T, id string) *Figure {
	t.Helper()
	def, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	f, err := def.Run(quickOpts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if f.ID != id {
		t.Errorf("figure ID = %q, want %q", f.ID, id)
	}
	if len(f.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, r := range f.Rows {
		if len(r.Values) != len(f.Columns) {
			t.Fatalf("%s row %d has %d values for %d columns", id, i, len(r.Values), len(f.Columns))
		}
	}
	return f
}

// col returns the index of a named column.
func col(t *testing.T, f *Figure, name string) int {
	t.Helper()
	for i, c := range f.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("%s: column %q not found in %v", f.ID, name, f.Columns)
	return -1
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be present.
	want := []string{
		"table1", "fig2a", "fig2b", "fig3", "fig4a", "fig4b",
		"fig5a", "fig5b", "fig6a", "fig6b",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("paper artifact %q missing from registry", id)
		}
	}
	if _, ok := ByID("no-such-experiment"); ok {
		t.Error("ByID should miss unknown ids")
	}
	seen := map[string]bool{}
	for _, d := range Registry() {
		if seen[d.ID] {
			t.Errorf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
		if d.Title == "" || d.Run == nil {
			t.Errorf("experiment %q lacks title or runner", d.ID)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	f := runQuick(t, "table1")
	if len(f.Rows) != 2 {
		t.Fatalf("Table I should have 2 rows, got %d", len(f.Rows))
	}
	fourG := f.Rows[0]
	if fourG.X != "4G" || fourG.Values[0] != 13.76 || fourG.Values[1] != 5.85 ||
		fourG.Values[2] != 7.32 || fourG.Values[3] != 1.6 {
		t.Errorf("4G row = %v, disagrees with Table I", fourG)
	}
	wifi := f.Rows[1]
	if wifi.X != "Wi-Fi" || wifi.Values[0] != 54.97 || wifi.Values[1] != 12.88 ||
		wifi.Values[2] != 15.7 || wifi.Values[3] != 2.7 {
		t.Errorf("Wi-Fi row = %v, disagrees with Table I", wifi)
	}
}

func TestFig2aOrdering(t *testing.T) {
	f := runQuick(t, "fig2a")
	lp, hgos := col(t, f, MethodLPHTA), col(t, f, MethodHGOS)
	alltoc, alloff := col(t, f, MethodAllToC), col(t, f, MethodAllOffload)
	for _, r := range f.Rows {
		if !(r.Values[lp] <= r.Values[hgos]) {
			t.Errorf("tasks=%s: LP-HTA %.0fJ should not exceed HGOS %.0fJ", r.X, r.Values[lp], r.Values[hgos])
		}
		if !(r.Values[hgos] < r.Values[alloff] && r.Values[alloff] < r.Values[alltoc]) {
			t.Errorf("tasks=%s: expected HGOS < AllOffload < AllToC, got %.0f / %.0f / %.0f",
				r.X, r.Values[hgos], r.Values[alloff], r.Values[alltoc])
		}
	}
	// LP-HTA energy grows with the task count.
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	if first.Values[lp] >= last.Values[lp] {
		t.Error("LP-HTA energy should grow with the task count")
	}
}

func TestFig2bOrdering(t *testing.T) {
	f := runQuick(t, "fig2b")
	lp, alltoc := col(t, f, MethodLPHTA), col(t, f, MethodAllToC)
	for _, r := range f.Rows {
		if !(r.Values[lp] < r.Values[alltoc]) {
			t.Errorf("input=%s: LP-HTA should beat AllToC", r.X)
		}
	}
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	if first.Values[lp] >= last.Values[lp] {
		t.Error("LP-HTA energy should grow with the input size")
	}
}

func TestFig3Ordering(t *testing.T) {
	f := runQuick(t, "fig3")
	lp, hgos, alloff := col(t, f, MethodLPHTA), col(t, f, MethodHGOS), col(t, f, MethodAllOffload)
	for _, r := range f.Rows {
		if !(r.Values[lp] <= r.Values[hgos]+1e-9) {
			t.Errorf("tasks=%s: LP-HTA unsat %.1f%% should not exceed HGOS %.1f%%",
				r.X, r.Values[lp], r.Values[hgos])
		}
		if !(r.Values[hgos] < r.Values[alloff]) {
			t.Errorf("tasks=%s: HGOS unsat should be below AllOffload", r.X)
		}
	}
	// The LP-HTA vs HGOS gap must open up under load.
	last := f.Rows[len(f.Rows)-1]
	if !(last.Values[lp] < last.Values[hgos]) {
		t.Error("under load, LP-HTA must have strictly fewer unsatisfied tasks than HGOS")
	}
}

func TestFig4Orderings(t *testing.T) {
	for _, id := range []string{"fig4a", "fig4b"} {
		f := runQuick(t, id)
		lp := col(t, f, MethodLPHTA)
		alltoc, alloff := col(t, f, MethodAllToC), col(t, f, MethodAllOffload)
		for _, r := range f.Rows {
			if !(r.Values[lp] < r.Values[alloff] && r.Values[alloff] < r.Values[alltoc]) {
				t.Errorf("%s x=%s: expected LP-HTA < AllOffload < AllToC latency, got %.2f / %.2f / %.2f",
					id, r.X, r.Values[lp], r.Values[alloff], r.Values[alltoc])
			}
		}
	}
}

func TestFig5Orderings(t *testing.T) {
	a := runQuick(t, "fig5a")
	lp := col(t, a, MethodLPHTA)
	dw, dn := col(t, a, MethodDTAWorkload), col(t, a, MethodDTANumber)
	for _, r := range a.Rows {
		if !(r.Values[dw] < r.Values[lp] && r.Values[dn] < r.Values[lp]) {
			t.Errorf("fig5a tasks=%s: both DTA variants should beat holistic LP-HTA", r.X)
		}
	}

	b := runQuick(t, "fig5b")
	dwb := col(t, b, MethodDTAWorkload)
	// Energy shrinks as the result size shrinks (rows ordered 0.4X ...
	// const).
	if !(b.Rows[len(b.Rows)-1].Values[dwb] < b.Rows[0].Values[dwb]) {
		t.Error("fig5b: DTA-Workload energy should shrink with the result size")
	}
}

func TestFig6Orderings(t *testing.T) {
	a := runQuick(t, "fig6a")
	dw, dn := col(t, a, MethodDTAWorkload), col(t, a, MethodDTANumber)
	for _, r := range a.Rows {
		if !(r.Values[dw] < r.Values[dn]) {
			t.Errorf("fig6a input=%s: DTA-Workload processing time should beat DTA-Number", r.X)
		}
	}

	b := runQuick(t, "fig6b")
	dwb, dnb := col(t, b, MethodDTAWorkload), col(t, b, MethodDTANumber)
	for _, r := range b.Rows {
		if !(r.Values[dnb] < r.Values[dwb]) {
			t.Errorf("fig6b tasks=%s: DTA-Number should involve fewer devices", r.X)
		}
	}
}

func TestSimCheck(t *testing.T) {
	f := runQuick(t, "simcheck")
	inflation := col(t, f, "inflation x")
	for _, r := range f.Rows {
		if r.Values[inflation] < 1 {
			t.Errorf("tasks=%s: simulated latency cannot be below analytic (inflation %.2f)",
				r.X, r.Values[inflation])
		}
	}
}

func TestRatioStudy(t *testing.T) {
	f := runQuick(t, "ratio")
	meanRatio, bound := col(t, f, "mean ratio"), col(t, f, "mean theorem-2 bound")
	feasible := col(t, f, "feasible instances")
	for _, r := range f.Rows {
		if r.Values[feasible] == 0 {
			continue
		}
		if r.Values[meanRatio] < 1-1e-9 {
			t.Errorf("tasks=%s: mean ratio %.4f below 1 (cannot beat the optimum)", r.X, r.Values[meanRatio])
		}
		if r.Values[meanRatio] > r.Values[bound]+1e-9 {
			t.Errorf("tasks=%s: mean ratio %.4f exceeds the Theorem 2 bound %.4f",
				r.X, r.Values[meanRatio], r.Values[bound])
		}
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation-rounding", "ablation-repair", "ablation-lpt"} {
		f := runQuick(t, id)
		for _, r := range f.Rows {
			for i, v := range r.Values {
				if v < 0 {
					t.Errorf("%s x=%s col %d: negative value %g", id, r.X, i, v)
				}
			}
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := runQuick(t, "table1")
	var sb strings.Builder
	if _, err := f.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "4G") {
		t.Errorf("rendered figure missing content:\n%s", out)
	}

	var csv strings.Builder
	if err := f.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "NetWork,") {
		t.Errorf("CSV header wrong: %q", csv.String())
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	run := func() *Figure {
		f, err := Fig2a(Options{Seed: 7, Trials: 1, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := run(), run()
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("row %d col %d differs between identical runs", i, j)
			}
		}
	}
}

func TestRunHolisticPointUnknownMethod(t *testing.T) {
	_, err := runHolisticPoint(quickOpts.withDefaults(),
		// small instance for speed
		workloadParamsSmall(), []string{"Mystery"})
	if err == nil {
		t.Error("unknown method should fail")
	}
}

// workloadParamsSmall keeps error-path tests fast.
func workloadParamsSmall() workload.Params {
	return workload.Params{NumDevices: 4, NumStations: 1, NumTasks: 4}
}

func TestFeedbackExperiment(t *testing.T) {
	f := runQuick(t, "feedback")
	uB, uF := col(t, f, "LP-HTA unsat"), col(t, f, "feedback unsat")
	for _, r := range f.Rows {
		if r.Values[uF] > r.Values[uB] {
			t.Errorf("tasks=%s: feedback unsat %.1f exceeds plain LP-HTA %.1f",
				r.X, r.Values[uF], r.Values[uB])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Fig2a(Options{Seed: 3, Trials: 3, Quick: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig2a(Options{Seed: 3, Trials: 3, Quick: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Rows {
		for j := range seq.Rows[i].Values {
			if seq.Rows[i].Values[j] != par.Rows[i].Values[j] {
				t.Fatalf("row %d col %d: sequential %g != parallel %g",
					i, j, seq.Rows[i].Values[j], par.Rows[i].Values[j])
			}
		}
	}

	seqD, err := Fig5a(Options{Seed: 3, Trials: 2, Quick: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parD, err := Fig5a(Options{Seed: 3, Trials: 2, Quick: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqD.Rows {
		for j := range seqD.Rows[i].Values {
			if seqD.Rows[i].Values[j] != parD.Rows[i].Values[j] {
				t.Fatalf("fig5a row %d col %d differs between modes", i, j)
			}
		}
	}
}

func TestBatteryExperiment(t *testing.T) {
	f := runQuick(t, "battery")
	dW, dN := col(t, f, "W drained"), col(t, f, "N drained")
	for _, r := range f.Rows {
		if r.Values[dN] > r.Values[dW] {
			t.Errorf("tasks=%s: DTA-Number drains %g devices, DTA-Workload %g; want fewer or equal",
				r.X, r.Values[dN], r.Values[dW])
		}
	}
}

func TestDivisionRatioExperiment(t *testing.T) {
	f := runQuick(t, "division-ratio")
	pm, lm := col(t, f, "paper mean"), col(t, f, "LPT mean")
	inst := col(t, f, "instances")
	for _, r := range f.Rows {
		if r.Values[inst] == 0 {
			continue
		}
		if r.Values[pm] < 1-1e-9 || r.Values[lm] < 1-1e-9 {
			t.Errorf("blocks=%s: ratio below 1 is impossible (paper %.3f, LPT %.3f)",
				r.X, r.Values[pm], r.Values[lm])
		}
		if r.Values[lm] > r.Values[pm]+1e-9 {
			t.Errorf("blocks=%s: LPT mean ratio %.3f should not exceed the paper greedy's %.3f",
				r.X, r.Values[lm], r.Values[pm])
		}
	}
}

func TestArrivalsExperiment(t *testing.T) {
	f := runQuick(t, "arrivals")
	misses := col(t, f, "misses (%)")
	if len(f.Rows) < 2 {
		t.Fatal("arrivals needs at least batch and spread rows")
	}
	batch, spread := f.Rows[0], f.Rows[len(f.Rows)-1]
	if spread.Values[misses] > batch.Values[misses] {
		t.Errorf("spreading arrivals increased misses: %.1f%% vs %.1f%%",
			spread.Values[misses], batch.Values[misses])
	}
}
