package experiment

import (
	"fmt"

	"dsmec/internal/core"
	"dsmec/internal/rng"
	"dsmec/internal/sim"
	"dsmec/internal/stats"
	"dsmec/internal/workload"
)

// robustnessRates is the swept fault intensity: the expected number of
// outages per station over the horizon (device churn and link degradation
// scale with it).
func robustnessRates(quick bool) []float64 {
	if quick {
		return []float64{0, 2}
	}
	return []float64{0, 0.5, 1, 2, 4}
}

// Robustness goes beyond the paper: it measures how LP-HTA assignments
// degrade when the infrastructure fails underneath them — seeded station
// outages, device churn, and backhaul degradation injected into the
// discrete-event simulator — and how much the retry/reassign recovery
// policies claw back. Goodput is the fraction of all tasks that complete
// within their deadline; wasted energy is what failed attempts burnt.
func Robustness(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "robustness", Title: "LP-HTA under fault injection with retry/reassign recovery",
		XLabel: "outage rate", YLabel: "goodput, misses, energy",
		Columns: []string{
			"goodput (%)", "miss rate (%)", "energy (J)", "wasted (J)",
			"lost", "retries", "reassigns",
		},
		Notes: []string{
			"outage rate = expected outages per station over the fault horizon;",
			"device churn (5% x rate) and link degradation windows (1 x rate per link) scale with it",
		},
	}
	const numTasks = 60
	rates := robustnessRates(opts.Quick)
	rows, err := collectIndexed(len(rates), opts.workers(), func(pi int) (Row, error) {
		rate := rates[pi]
		type trialStats struct {
			goodput, missRate, energy, wasted float64
			lost, retries, reassigns          float64
		}
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (trialStats, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("robustness-%d-%d", numTasks, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: numTasks})
			if err != nil {
				return trialStats{}, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return trialStats{}, err
			}
			params := sim.DefaultFaultParams()
			params.OutageRate = rate
			params.ChurnRate = 0.05 * rate
			params.DegradeRate = rate
			faultSrc := rng.NewSource(opts.FaultSeed).Derive(fmt.Sprintf("robustness-%g-%d", rate, trial))
			plan := sim.GenerateFaultPlan(faultSrc, sc.System, params)
			sm, err := sim.Run(sc.Model, sc.Tasks, res.Assignment, sim.Config{Faults: plan})
			if err != nil {
				return trialStats{}, err
			}
			ts := trialStats{energy: sm.TotalEnergy.Joules()}
			good := 0
			for _, o := range sm.Outcomes {
				if o.DeadlineOK {
					good++
				}
			}
			ts.goodput = 100 * float64(good) / float64(numTasks)
			if placed := len(sm.Outcomes); placed > 0 {
				ts.missRate = 100 * float64(sm.DeadlineViolations) / float64(placed)
			}
			if fs := sm.Faults; fs != nil {
				ts.wasted = fs.WastedEnergy.Joules()
				ts.lost = float64(fs.Lost)
				ts.retries = float64(fs.Retries)
				ts.reassigns = float64(fs.Reassignments)
			}
			return ts, nil
		})
		if err != nil {
			return Row{}, err
		}
		var goodput, missRate, energy, wasted, lost, retries, reassigns stats.Series
		for _, tr := range trials {
			goodput.Add(tr.goodput)
			missRate.Add(tr.missRate)
			energy.Add(tr.energy)
			wasted.Add(tr.wasted)
			lost.Add(tr.lost)
			retries.Add(tr.retries)
			reassigns.Add(tr.reassigns)
		}
		return Row{X: fmt.Sprintf("%g", rate), Values: []float64{
			goodput.Mean(), missRate.Mean(), energy.Mean(), wasted.Mean(),
			lost.Mean(), retries.Mean(), reassigns.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}
