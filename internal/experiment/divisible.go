package experiment

import (
	"fmt"

	"dsmec/internal/compute"
	"dsmec/internal/core"
	"dsmec/internal/rng"
	"dsmec/internal/stats"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// DTA method names as in the paper's figures.
const (
	MethodDTAWorkload = "DTA-Workload"
	MethodDTANumber   = "DTA-Number"
)

// divisiblePoint holds averaged DTA metrics for one sweep point.
type divisiblePoint struct {
	energy   map[string]*stats.Series // method -> joules
	procTime map[string]*stats.Series // method -> seconds
	involved map[string]*stats.Series // method -> device count
}

// divisibleTrial is one trial's measurements.
type divisibleTrial struct {
	htaEnergy float64
	dta       map[string]core.DTAMetrics
}

// runDivisiblePoint generates Trials divisible scenarios and runs LP-HTA
// (holistic treatment) plus both DTA goals on each. Trials run over the
// options' worker pool.
func runDivisiblePoint(opts Options, params workload.Params) (*divisiblePoint, error) {
	results := make([]divisibleTrial, opts.Trials)
	err := forEachIndexed(opts.Trials, opts.workers(), func(trial int) error {
		src := rng.NewSource(opts.Seed).
			Derive(fmt.Sprintf("divisible-%d-%d-%v", params.NumTasks, trial, params.MaxInput))
		sc, err := workload.GenerateDivisible(src, params)
		if err != nil {
			return err
		}

		// Holistic LP-HTA treats the same divisible tasks as indivisible:
		// raw data moves.
		hta, err := core.LPHTA(sc.Model, sc.Tasks, nil)
		if err != nil {
			return err
		}
		htaMetrics, err := core.Evaluate(sc.Model, sc.Tasks, hta.Assignment)
		if err != nil {
			return err
		}
		tr := divisibleTrial{
			htaEnergy: htaMetrics.TotalEnergy.Joules(),
			dta:       make(map[string]core.DTAMetrics, 2),
		}
		for _, goal := range []core.Goal{core.GoalWorkload, core.GoalNumber} {
			res, err := core.DTA(sc.Model, sc.Tasks, sc.Placement, core.DTAOptions{Goal: goal})
			if err != nil {
				return err
			}
			tr.dta[goal.String()] = res.Metrics
		}
		results[trial] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}

	p := &divisiblePoint{
		energy:   map[string]*stats.Series{},
		procTime: map[string]*stats.Series{},
		involved: map[string]*stats.Series{},
	}
	series := func(m map[string]*stats.Series, key string) *stats.Series {
		if m[key] == nil {
			m[key] = &stats.Series{}
		}
		return m[key]
	}
	for _, tr := range results {
		series(p.energy, MethodLPHTA).Add(tr.htaEnergy)
		for _, goal := range []core.Goal{core.GoalWorkload, core.GoalNumber} {
			name := goal.String()
			m := tr.dta[name]
			series(p.energy, name).Add(m.TotalEnergy.Joules())
			series(p.procTime, name).Add(m.ProcessingTime.Seconds())
			series(p.involved, name).Add(float64(m.InvolvedDevices))
		}
	}
	return p, nil
}

// Fig5a reproduces Fig. 5(a): total energy of LP-HTA, DTA-Workload and
// DTA-Number while the task count grows (3000 kB inputs, η = 0.2).
func Fig5a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodDTAWorkload, MethodDTANumber}
	f := &Figure{
		ID: "fig5a", Title: "energy of LP-HTA vs DTA variants, growing task count",
		XLabel: "tasks", YLabel: "total energy (J)", Columns: methods,
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(i int) (Row, error) {
		n := counts[i]
		point, err := runDivisiblePoint(opts, workload.Params{NumTasks: n})
		if err != nil {
			return Row{}, err
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			point.energy[MethodLPHTA].Mean(),
			point.energy[MethodDTAWorkload].Mean(),
			point.energy[MethodDTANumber].Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig5b reproduces Fig. 5(b): total energy for result sizes 0.4X, 0.2X,
// 0.1X, 0.05X and a constant (100 tasks, 3000 kB inputs).
func Fig5b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodDTAWorkload, MethodDTANumber}
	f := &Figure{
		ID: "fig5b", Title: "energy of LP-HTA vs DTA variants, shrinking result size",
		XLabel: "result size", YLabel: "total energy (J)", Columns: methods,
	}
	resultModels := []struct {
		label string
		model compute.ResultModel
	}{
		{"0.4X", compute.ProportionalResult{Ratio: 0.4}},
		{"0.2X", compute.ProportionalResult{Ratio: 0.2}},
		{"0.1X", compute.ProportionalResult{Ratio: 0.1}},
		{"0.05X", compute.ProportionalResult{Ratio: 0.05}},
		{"const", compute.ConstantResult{Size: 8 * units.Kilobyte}},
	}
	if opts.Quick {
		resultModels = []struct {
			label string
			model compute.ResultModel
		}{resultModels[0], resultModels[len(resultModels)-1]}
	}
	rows, err := collectIndexed(len(resultModels), opts.workers(), func(i int) (Row, error) {
		rm := resultModels[i]
		point, err := runDivisiblePoint(opts, workload.Params{
			NumTasks:    100,
			ResultModel: rm.model,
		})
		if err != nil {
			return Row{}, err
		}
		return Row{X: rm.label, Values: []float64{
			point.energy[MethodLPHTA].Mean(),
			point.energy[MethodDTAWorkload].Mean(),
			point.energy[MethodDTANumber].Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig6a reproduces Fig. 6(a): DTA processing time while the maximum input
// size grows from 1200 kB to 2000 kB (200 tasks).
func Fig6a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "fig6a", Title: "processing time of DTA-Workload vs DTA-Number",
		XLabel: "max input (kB)", YLabel: "processing time (s)",
		Columns: []string{MethodDTAWorkload, MethodDTANumber},
	}
	sizes := []units.ByteSize{
		1200 * units.Kilobyte, 1400 * units.Kilobyte, 1600 * units.Kilobyte,
		1800 * units.Kilobyte, 2000 * units.Kilobyte,
	}
	if opts.Quick {
		sizes = []units.ByteSize{sizes[0], sizes[len(sizes)-1]}
	}
	rows, err := collectIndexed(len(sizes), opts.workers(), func(i int) (Row, error) {
		size := sizes[i]
		point, err := runDivisiblePoint(opts, workload.Params{NumTasks: 200, MaxInput: size})
		if err != nil {
			return Row{}, err
		}
		return Row{X: fmt.Sprintf("%.0f", size.Kilobytes()), Values: []float64{
			point.procTime[MethodDTAWorkload].Mean(),
			point.procTime[MethodDTANumber].Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig6b reproduces Fig. 6(b): the number of involved devices while the
// task count grows from 100 to 900 (2000 kB inputs).
func Fig6b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "fig6b", Title: "involved devices of DTA-Workload vs DTA-Number",
		XLabel: "tasks", YLabel: "involved mobile devices",
		Columns: []string{MethodDTAWorkload, MethodDTANumber},
	}
	counts := []int{100, 300, 500, 700, 900}
	if opts.Quick {
		counts = []int{100, 900}
	}
	rows, err := collectIndexed(len(counts), opts.workers(), func(i int) (Row, error) {
		n := counts[i]
		point, err := runDivisiblePoint(opts, workload.Params{
			NumTasks: n, MaxInput: 2000 * units.Kilobyte,
		})
		if err != nil {
			return Row{}, err
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			point.involved[MethodDTAWorkload].Mean(),
			point.involved[MethodDTANumber].Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}
