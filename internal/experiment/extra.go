package experiment

import (
	"errors"
	"fmt"

	"dsmec/internal/baseline"
	"dsmec/internal/core"
	"dsmec/internal/cover"
	"dsmec/internal/datamap"
	"dsmec/internal/lp"
	"dsmec/internal/rng"
	"dsmec/internal/sim"
	"dsmec/internal/stats"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// SimCheck goes beyond the paper: it replays LP-HTA assignments in the
// discrete-event simulator and reports how much queueing inflates the
// analytic latencies, plus the deadline violations the closed-form model
// cannot see.
func SimCheck(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "simcheck", Title: "analytic cost model vs discrete-event simulation (LP-HTA)",
		XLabel: "tasks", YLabel: "latency (s) and violations",
		Columns: []string{"analytic mean", "simulated mean", "inflation x", "sim deadline misses (%)"},
		Notes: []string{
			"energy matches the analytic model exactly by construction; queueing shifts time only",
		},
	}
	type simTrial struct {
		analytic, simulated, misses float64
		placed                      bool
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (simTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("simcheck-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return simTrial{}, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return simTrial{}, err
			}
			m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return simTrial{}, err
			}
			sm, err := sim.Run(sc.Model, sc.Tasks, res.Assignment, sim.Config{})
			if err != nil {
				return simTrial{}, err
			}
			tr := simTrial{
				analytic:  m.MeanLatency().Seconds(),
				simulated: sm.MeanLatency().Seconds(),
			}
			placed := sc.Tasks.Len() - sm.Cancelled
			if placed > 0 {
				tr.placed = true
				tr.misses = 100 * float64(sm.DeadlineViolations) / float64(placed)
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var analytic, simulated, misses stats.Series
		for _, tr := range trials {
			analytic.Add(tr.analytic)
			simulated.Add(tr.simulated)
			if tr.placed {
				misses.Add(tr.misses)
			}
		}
		inflation := 0.0
		if analytic.Mean() > 0 {
			inflation = simulated.Mean() / analytic.Mean()
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			analytic.Mean(), simulated.Mean(), inflation, misses.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// RatioStudy goes beyond the paper: it measures LP-HTA's empirical
// approximation ratio against the exact HTA optimum (computed by
// LP-based branch-and-bound, far beyond brute-force reach) and compares
// it with the Theorem 2 bound 3 + Δ/E_LP^OPT.
func RatioStudy(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ratio", Title: "LP-HTA empirical ratio vs exact ILP optimum",
		XLabel: "tasks", YLabel: "energy ratio",
		Columns: []string{"mean ratio", "max ratio", "mean theorem-2 bound", "feasible instances"},
	}
	counts := []int{8, 16, 32, 48}
	if opts.Quick {
		counts = []int{8, 32}
	}
	type ratioTrial struct {
		ok           bool
		ratio, bound float64
	}
	trials := opts.Trials * 4 // small instances are cheap; average harder
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		results, err := collectIndexed(trials, opts.workers(), func(trial int) (ratioTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ratio-%d-%d", n, trial))
			// Deadlines span [2, 8]x the best achievable time so that
			// capacity-forced offloads stay deadline-feasible and full
			// placements exist even under contention.
			sc, err := workload.GenerateHolistic(src, workload.Params{
				NumDevices: 8, NumStations: 2, NumTasks: n,
				DeviceCap: 8, StationCap: 24,
				DeadlineSlackMin: 2, DeadlineSlackMax: 8,
			})
			if err != nil {
				return ratioTrial{}, err
			}
			opt, err := baseline.ILPOptimalHTA(sc.Model, sc.Tasks, 20000)
			if errors.Is(err, core.ErrNoFeasible) || errors.Is(err, lp.ErrNodeLimit) {
				return ratioTrial{}, nil // over-constrained or too hard to prove optimal
			}
			if err != nil {
				return ratioTrial{}, err
			}
			optM, err := core.Evaluate(sc.Model, sc.Tasks, opt)
			if err != nil {
				return ratioTrial{}, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return ratioTrial{}, err
			}
			lpM, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return ratioTrial{}, err
			}
			if lpM.Cancelled > 0 || optM.TotalEnergy <= 0 {
				return ratioTrial{}, nil // ratio undefined when LP-HTA cancels
			}
			return ratioTrial{
				ok:    true,
				ratio: float64(lpM.TotalEnergy) / float64(optM.TotalEnergy),
				bound: res.RatioBoundEstimate(),
			}, nil
		})
		if err != nil {
			return Row{}, err
		}
		var ratios, bounds stats.Series
		feasible := 0
		for _, tr := range results {
			if !tr.ok {
				continue
			}
			feasible++
			ratios.Add(tr.ratio)
			bounds.Add(tr.bound)
		}
		if feasible == 0 {
			return Row{X: fmt.Sprintf("%d", n), Values: []float64{0, 0, 0, 0}}, nil
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			ratios.Mean(), ratios.Max(), bounds.Mean(), float64(feasible),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// AblationRounding compares the paper's largest-fraction rounding with
// randomized rounding on energy and cancellations.
func AblationRounding(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-rounding", Title: "LP-HTA rounding rule ablation",
		XLabel: "tasks", YLabel: "total energy (J) / cancelled",
		Columns: []string{"largest-fraction (J)", "randomized (J)", "largest cancels", "randomized cancels"},
	}
	type roundTrial struct {
		eL, eR, cL, cR float64
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (roundTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ablr-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return roundTrial{}, err
			}
			var tr roundTrial
			for _, randomized := range []bool{false, true} {
				o := &core.LPHTAOptions{}
				if randomized {
					o.Rounding = core.RoundRandomized
					o.Rand = src.Stream("rounding")
				}
				res, err := core.LPHTA(sc.Model, sc.Tasks, o)
				if err != nil {
					return roundTrial{}, err
				}
				m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
				if err != nil {
					return roundTrial{}, err
				}
				if randomized {
					tr.eR = m.TotalEnergy.Joules()
					tr.cR = float64(m.Cancelled)
				} else {
					tr.eL = m.TotalEnergy.Joules()
					tr.cL = float64(m.Cancelled)
				}
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var eL, eR, cL, cR stats.Series
		for _, tr := range trials {
			eL.Add(tr.eL)
			eR.Add(tr.eR)
			cL.Add(tr.cL)
			cR.Add(tr.cR)
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			eL.Mean(), eR.Mean(), cL.Mean(), cR.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// AblationRepair compares the paper's largest-resource-first repair
// migration with smallest-first under deliberately tight caps.
func AblationRepair(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-repair", Title: "LP-HTA repair order ablation (tight caps)",
		XLabel: "tasks", YLabel: "total energy (J) / cancelled",
		Columns: []string{"largest-first (J)", "smallest-first (J)", "largest cancels", "smallest cancels"},
	}
	type repairTrial struct {
		eL, eS, cL, cS float64
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (repairTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ablm-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{
				NumTasks: n, DeviceCap: 4, StationCap: 25,
			})
			if err != nil {
				return repairTrial{}, err
			}
			var tr repairTrial
			for _, order := range []core.RepairOrder{core.RepairLargestFirst, core.RepairSmallestFirst} {
				res, err := core.LPHTA(sc.Model, sc.Tasks, &core.LPHTAOptions{Repair: order})
				if err != nil {
					return repairTrial{}, err
				}
				m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
				if err != nil {
					return repairTrial{}, err
				}
				if order == core.RepairLargestFirst {
					tr.eL = m.TotalEnergy.Joules()
					tr.cL = float64(m.Cancelled)
				} else {
					tr.eS = m.TotalEnergy.Joules()
					tr.cS = float64(m.Cancelled)
				}
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var eL, eS, cL, cS stats.Series
		for _, tr := range trials {
			eL.Add(tr.eL)
			eS.Add(tr.eS)
			cL.Add(tr.cL)
			cS.Add(tr.cS)
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			eL.Mean(), eS.Mean(), cL.Mean(), cS.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// AblationLPT compares the paper's smallest-remaining-set division greedy
// with the LPT block-by-block variant on max slice load and processing
// time, against the exact P3 optimum from branch-and-bound.
func AblationLPT(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-lpt", Title: "data division greedy ablation",
		XLabel: "tasks", YLabel: "max load (blocks) / processing time (s)",
		Columns: []string{"paper max load", "LPT max load", "paper proc (s)", "LPT proc (s)"},
	}
	type lptTrial struct {
		loadP, loadL, timeP, timeL float64
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (lptTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("abll-%d-%d", n, trial))
			sc, err := workload.GenerateDivisible(src, workload.Params{NumTasks: n})
			if err != nil {
				return lptTrial{}, err
			}
			var tr lptTrial
			for _, goal := range []core.Goal{core.GoalWorkload, core.GoalWorkloadLPT} {
				res, err := core.DTA(sc.Model, sc.Tasks, sc.Placement, core.DTAOptions{Goal: goal})
				if err != nil {
					return lptTrial{}, err
				}
				if goal == core.GoalWorkload {
					tr.loadP = float64(res.Coverage.MaxLoad)
					tr.timeP = res.Metrics.ProcessingTime.Seconds()
				} else {
					tr.loadL = float64(res.Coverage.MaxLoad)
					tr.timeL = res.Metrics.ProcessingTime.Seconds()
				}
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var loadP, loadL, timeP, timeL stats.Series
		for _, tr := range trials {
			loadP.Add(tr.loadP)
			loadL.Add(tr.loadL)
			timeP.Add(tr.timeP)
			timeL.Add(tr.timeL)
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			loadP.Mean(), loadL.Mean(), timeP.Mean(), timeL.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// DivisionRatio goes beyond the paper: on small instances where the P3
// optimum is provable by branch-and-bound, it measures the empirical
// approximation ratio of the paper's smallest-remaining-set greedy and of
// the LPT variant. The paper claims a 1/(1−e⁻¹) ≈ 1.58 bound for its
// greedy (Corollary 2); the measured worst case exceeds it, while LPT
// stays near-optimal — see EXPERIMENTS.md.
func DivisionRatio(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "division-ratio", Title: "data-division greedy vs exact P3 optimum (small instances)",
		XLabel: "blocks", YLabel: "max-load ratio to optimal",
		Columns: []string{"paper mean", "paper worst", "LPT mean", "LPT worst", "instances"},
	}
	sizes := []int{24, 48, 96}
	if opts.Quick {
		sizes = []int{24, 96}
	}
	type divTrial struct {
		ok     bool
		rp, rl float64
	}
	trials := opts.Trials * 4
	rows, err := collectIndexed(len(sizes), opts.workers(), func(pi int) (Row, error) {
		blocks := sizes[pi]
		results, err := collectIndexed(trials, opts.workers(), func(trial int) (divTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("divratio-%d-%d", blocks, trial))
			universe, usable, err := randomDivision(src, 8, blocks, blocks/3)
			if err != nil {
				return divTrial{}, err
			}
			opt, err := cover.OptimalMaxLoadILP(universe, usable, 20000)
			if errors.Is(err, lp.ErrNodeLimit) {
				return divTrial{}, nil
			}
			if err != nil {
				return divTrial{}, err
			}
			if opt == 0 {
				return divTrial{}, nil
			}
			paper, err := cover.BalancedPartition(universe, usable)
			if err != nil {
				return divTrial{}, err
			}
			lpt, err := cover.BalancedPartitionLPT(universe, usable)
			if err != nil {
				return divTrial{}, err
			}
			return divTrial{
				ok: true,
				rp: float64(paper.MaxLoad) / float64(opt),
				rl: float64(lpt.MaxLoad) / float64(opt),
			}, nil
		})
		if err != nil {
			return Row{}, err
		}
		var rp, rl stats.Series
		instances := 0
		for _, tr := range results {
			if !tr.ok {
				continue
			}
			instances++
			rp.Add(tr.rp)
			rl.Add(tr.rl)
		}
		return Row{X: fmt.Sprintf("%d", blocks), Values: []float64{
			rp.Mean(), rp.Max(), rl.Mean(), rl.Max(), float64(instances),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// randomDivision builds a random coverable P3 instance: every block is
// held by 1–3 of the devices.
func randomDivision(src *rng.Source, devices, blocks, perDev int) (*datamap.Set, []*datamap.Set, error) {
	r := src.Stream("division")
	universe := datamap.NewSet()
	for b := 0; b < blocks; b++ {
		universe.Add(datamap.BlockID(b))
	}
	usable := make([]*datamap.Set, devices)
	for i := range usable {
		usable[i] = datamap.NewSet()
		for j := 0; j < perDev; j++ {
			usable[i].Add(datamap.BlockID(r.Intn(blocks)))
		}
	}
	for b := 0; b < blocks; b++ {
		usable[r.Intn(devices)].Add(datamap.BlockID(b))
	}
	return universe, usable, nil
}

// Feedback goes beyond the paper: it runs the simulator-in-the-loop
// planner (sim.PlanWithFeedback) against plain LP-HTA and reports how many
// tasks each leaves unsatisfied under queueing, and at what energy.
func Feedback(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "feedback", Title: "simulator-in-the-loop replanning vs plain LP-HTA",
		XLabel: "tasks", YLabel: "unsatisfied tasks under queueing / energy (J)",
		Columns: []string{"LP-HTA unsat", "feedback unsat", "LP-HTA (J)", "feedback (J)"},
		Notes: []string{
			"unsat = simulated deadline misses + cancellations; feedback replans with deadlines tightened by measured queueing inflation",
		},
	}
	type fbTrial struct {
		uB, uF, eB, eF float64
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (fbTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("fb-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return fbTrial{}, err
			}
			res, err := sim.PlanWithFeedback(sc.Model, sc.Tasks, sim.FeedbackOptions{Rounds: 3})
			if err != nil {
				return fbTrial{}, err
			}
			base := res.Rounds[0]
			best := res.Rounds[res.Best]
			return fbTrial{
				uB: float64(base.Misses + base.Cancelled),
				uF: float64(best.Misses + best.Cancelled),
				eB: base.Energy.Joules(),
				eF: best.Energy.Joules(),
			}, nil
		})
		if err != nil {
			return Row{}, err
		}
		var uB, uF, eB, eF stats.Series
		for _, tr := range trials {
			uB.Add(tr.uB)
			uF.Add(tr.uF)
			eB.Add(tr.eB)
			eF.Add(tr.eF)
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			uB.Mean(), uF.Mean(), eB.Mean(), eF.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// BatteryStudy goes beyond the paper: it uses the cost model's per-device
// energy attribution to quantify Fig. 6(b)'s motivation — DTA-Number
// "saves the energy of the majority of mobile devices" — by reporting how
// many devices drain battery at all and how hard the busiest one works.
func BatteryStudy(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "battery", Title: "per-device battery drain, DTA-Workload vs DTA-Number",
		XLabel: "tasks", YLabel: "devices drained / max drain (J)",
		Columns: []string{"W drained", "N drained", "W max (J)", "N max (J)", "W spared", "N spared"},
		Notes: []string{
			"drained = devices spending any battery; spared = devices spending none (of 50)",
		},
	}
	type batTrial struct {
		dW, dN, mW, mN, sW, sN float64
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(pi int) (Row, error) {
		n := counts[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (batTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("bat-%d-%d", n, trial))
			sc, err := workload.GenerateDivisible(src, workload.Params{NumTasks: n})
			if err != nil {
				return batTrial{}, err
			}
			var tr batTrial
			for _, goal := range []core.Goal{core.GoalWorkload, core.GoalNumber} {
				res, err := core.DTA(sc.Model, sc.Tasks, sc.Placement, core.DTAOptions{Goal: goal})
				if err != nil {
					return batTrial{}, err
				}
				drained := float64(res.Battery.Drained())
				spared := float64(len(res.Battery.ByDevice)) - drained
				if goal == core.GoalWorkload {
					tr.dW, tr.mW, tr.sW = drained, res.Battery.Max().Joules(), spared
				} else {
					tr.dN, tr.mN, tr.sN = drained, res.Battery.Max().Joules(), spared
				}
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var dW, dN, mW, mN, sW, sN stats.Series
		for _, tr := range trials {
			dW.Add(tr.dW)
			dN.Add(tr.dN)
			mW.Add(tr.mW)
			mN.Add(tr.mN)
			sW.Add(tr.sW)
			sN.Add(tr.sN)
		}
		return Row{X: fmt.Sprintf("%d", n), Values: []float64{
			dW.Mean(), dN.Mean(), mW.Mean(), mN.Mean(), sW.Mean(), sN.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Arrivals goes beyond the paper's quasi-static assumption: the same
// LP-HTA assignment is executed in the simulator with tasks released all
// at once (the paper's setting) versus spread uniformly over growing
// arrival windows, showing how much of the queueing pain of simcheck is an
// artifact of batch arrivals.
func Arrivals(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "arrivals", Title: "batch vs spread arrivals (LP-HTA, 200 tasks)",
		XLabel: "arrival window (s)", YLabel: "sim misses (%) / mean sojourn (s)",
		Columns: []string{"misses (%)", "mean sojourn (s)", "analytic mean (s)"},
	}
	windows := []float64{0, 15, 30, 60, 120}
	if opts.Quick {
		windows = []float64{0, 120}
	}
	type arrTrial struct {
		misses, sojourn, analytic float64
		placed                    bool
	}
	rows, err := collectIndexed(len(windows), opts.workers(), func(pi int) (Row, error) {
		w := windows[pi]
		trials, err := collectIndexed(opts.Trials, opts.workers(), func(trial int) (arrTrial, error) {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("arr-%d-%g", trial, w))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: 200})
			if err != nil {
				return arrTrial{}, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return arrTrial{}, err
			}
			m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return arrTrial{}, err
			}
			releases := make(map[task.ID]units.Duration, sc.Tasks.Len())
			if w > 0 {
				r := src.Stream("releases")
				for _, tk := range sc.Tasks.All() {
					releases[tk.ID] = units.Duration(r.Float64() * w)
				}
			}
			simRes, err := sim.RunReleases(sc.Model, sc.Tasks, res.Assignment, sim.Config{}, releases)
			if err != nil {
				return arrTrial{}, err
			}
			tr := arrTrial{
				sojourn:  simRes.MeanLatency().Seconds(),
				analytic: m.MeanLatency().Seconds(),
			}
			placed := sc.Tasks.Len() - simRes.Cancelled
			if placed > 0 {
				tr.placed = true
				tr.misses = 100 * float64(simRes.DeadlineViolations) / float64(placed)
			}
			return tr, nil
		})
		if err != nil {
			return Row{}, err
		}
		var misses, sojourn, analytic stats.Series
		for _, tr := range trials {
			if tr.placed {
				misses.Add(tr.misses)
			}
			sojourn.Add(tr.sojourn)
			analytic.Add(tr.analytic)
		}
		return Row{X: fmt.Sprintf("%.0f", w), Values: []float64{
			misses.Mean(), sojourn.Mean(), analytic.Mean(),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}
