package experiment

import (
	"errors"
	"fmt"

	"dsmec/internal/baseline"
	"dsmec/internal/core"
	"dsmec/internal/cover"
	"dsmec/internal/datamap"
	"dsmec/internal/lp"
	"dsmec/internal/rng"
	"dsmec/internal/sim"
	"dsmec/internal/stats"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// SimCheck goes beyond the paper: it replays LP-HTA assignments in the
// discrete-event simulator and reports how much queueing inflates the
// analytic latencies, plus the deadline violations the closed-form model
// cannot see.
func SimCheck(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "simcheck", Title: "analytic cost model vs discrete-event simulation (LP-HTA)",
		XLabel: "tasks", YLabel: "latency (s) and violations",
		Columns: []string{"analytic mean", "simulated mean", "inflation x", "sim deadline misses (%)"},
		Notes: []string{
			"energy matches the analytic model exactly by construction; queueing shifts time only",
		},
	}
	for _, n := range taskCounts(opts.Quick) {
		var analytic, simulated, misses stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("simcheck-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return nil, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return nil, err
			}
			m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return nil, err
			}
			sm, err := sim.Run(sc.Model, sc.Tasks, res.Assignment, sim.Config{})
			if err != nil {
				return nil, err
			}
			analytic.Add(m.MeanLatency().Seconds())
			simulated.Add(sm.MeanLatency().Seconds())
			placed := sc.Tasks.Len() - sm.Cancelled
			if placed > 0 {
				misses.Add(100 * float64(sm.DeadlineViolations) / float64(placed))
			}
		}
		inflation := 0.0
		if analytic.Mean() > 0 {
			inflation = simulated.Mean() / analytic.Mean()
		}
		f.AddRow(fmt.Sprintf("%d", n),
			analytic.Mean(), simulated.Mean(), inflation, misses.Mean())
	}
	return f, nil
}

// RatioStudy goes beyond the paper: it measures LP-HTA's empirical
// approximation ratio against the exact HTA optimum (computed by
// LP-based branch-and-bound, far beyond brute-force reach) and compares
// it with the Theorem 2 bound 3 + Δ/E_LP^OPT.
func RatioStudy(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ratio", Title: "LP-HTA empirical ratio vs exact ILP optimum",
		XLabel: "tasks", YLabel: "energy ratio",
		Columns: []string{"mean ratio", "max ratio", "mean theorem-2 bound", "feasible instances"},
	}
	counts := []int{8, 16, 32, 48}
	if opts.Quick {
		counts = []int{8, 32}
	}
	trials := opts.Trials * 4 // small instances are cheap; average harder
	for _, n := range counts {
		var ratios, bounds stats.Series
		feasible := 0
		for trial := 0; trial < trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ratio-%d-%d", n, trial))
			// Deadlines span [2, 8]x the best achievable time so that
			// capacity-forced offloads stay deadline-feasible and full
			// placements exist even under contention.
			sc, err := workload.GenerateHolistic(src, workload.Params{
				NumDevices: 8, NumStations: 2, NumTasks: n,
				DeviceCap: 8, StationCap: 24,
				DeadlineSlackMin: 2, DeadlineSlackMax: 8,
			})
			if err != nil {
				return nil, err
			}
			opt, err := baseline.ILPOptimalHTA(sc.Model, sc.Tasks, 20000)
			if errors.Is(err, core.ErrNoFeasible) || errors.Is(err, lp.ErrNodeLimit) {
				continue // over-constrained or too hard to prove optimal
			}
			if err != nil {
				return nil, err
			}
			optM, err := core.Evaluate(sc.Model, sc.Tasks, opt)
			if err != nil {
				return nil, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return nil, err
			}
			lpM, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return nil, err
			}
			if lpM.Cancelled > 0 || optM.TotalEnergy <= 0 {
				continue // ratio undefined when LP-HTA cancels
			}
			feasible++
			ratios.Add(float64(lpM.TotalEnergy) / float64(optM.TotalEnergy))
			bounds.Add(res.RatioBoundEstimate())
		}
		if feasible == 0 {
			f.AddRow(fmt.Sprintf("%d", n), 0, 0, 0, 0)
			continue
		}
		f.AddRow(fmt.Sprintf("%d", n),
			ratios.Mean(), ratios.Max(), bounds.Mean(), float64(feasible))
	}
	return f, nil
}

// AblationRounding compares the paper's largest-fraction rounding with
// randomized rounding on energy and cancellations.
func AblationRounding(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-rounding", Title: "LP-HTA rounding rule ablation",
		XLabel: "tasks", YLabel: "total energy (J) / cancelled",
		Columns: []string{"largest-fraction (J)", "randomized (J)", "largest cancels", "randomized cancels"},
	}
	for _, n := range taskCounts(opts.Quick) {
		var eL, eR, cL, cR stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ablr-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return nil, err
			}
			for _, randomized := range []bool{false, true} {
				o := &core.LPHTAOptions{}
				if randomized {
					o.Rounding = core.RoundRandomized
					o.Rand = src.Stream("rounding")
				}
				res, err := core.LPHTA(sc.Model, sc.Tasks, o)
				if err != nil {
					return nil, err
				}
				m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
				if err != nil {
					return nil, err
				}
				if randomized {
					eR.Add(m.TotalEnergy.Joules())
					cR.Add(float64(m.Cancelled))
				} else {
					eL.Add(m.TotalEnergy.Joules())
					cL.Add(float64(m.Cancelled))
				}
			}
		}
		f.AddRow(fmt.Sprintf("%d", n), eL.Mean(), eR.Mean(), cL.Mean(), cR.Mean())
	}
	return f, nil
}

// AblationRepair compares the paper's largest-resource-first repair
// migration with smallest-first under deliberately tight caps.
func AblationRepair(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-repair", Title: "LP-HTA repair order ablation (tight caps)",
		XLabel: "tasks", YLabel: "total energy (J) / cancelled",
		Columns: []string{"largest-first (J)", "smallest-first (J)", "largest cancels", "smallest cancels"},
	}
	for _, n := range taskCounts(opts.Quick) {
		var eL, eS, cL, cS stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("ablm-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{
				NumTasks: n, DeviceCap: 4, StationCap: 25,
			})
			if err != nil {
				return nil, err
			}
			for _, order := range []core.RepairOrder{core.RepairLargestFirst, core.RepairSmallestFirst} {
				res, err := core.LPHTA(sc.Model, sc.Tasks, &core.LPHTAOptions{Repair: order})
				if err != nil {
					return nil, err
				}
				m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
				if err != nil {
					return nil, err
				}
				if order == core.RepairLargestFirst {
					eL.Add(m.TotalEnergy.Joules())
					cL.Add(float64(m.Cancelled))
				} else {
					eS.Add(m.TotalEnergy.Joules())
					cS.Add(float64(m.Cancelled))
				}
			}
		}
		f.AddRow(fmt.Sprintf("%d", n), eL.Mean(), eS.Mean(), cL.Mean(), cS.Mean())
	}
	return f, nil
}

// AblationLPT compares the paper's smallest-remaining-set division greedy
// with the LPT block-by-block variant on max slice load and processing
// time, against the exact P3 optimum from branch-and-bound.
func AblationLPT(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "ablation-lpt", Title: "data division greedy ablation",
		XLabel: "tasks", YLabel: "max load (blocks) / processing time (s)",
		Columns: []string{"paper max load", "LPT max load", "paper proc (s)", "LPT proc (s)"},
	}
	for _, n := range taskCounts(opts.Quick) {
		var loadP, loadL, timeP, timeL stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("abll-%d-%d", n, trial))
			sc, err := workload.GenerateDivisible(src, workload.Params{NumTasks: n})
			if err != nil {
				return nil, err
			}
			for _, goal := range []core.Goal{core.GoalWorkload, core.GoalWorkloadLPT} {
				res, err := core.DTA(sc.Model, sc.Tasks, sc.Placement, core.DTAOptions{Goal: goal})
				if err != nil {
					return nil, err
				}
				if goal == core.GoalWorkload {
					loadP.Add(float64(res.Coverage.MaxLoad))
					timeP.Add(res.Metrics.ProcessingTime.Seconds())
				} else {
					loadL.Add(float64(res.Coverage.MaxLoad))
					timeL.Add(res.Metrics.ProcessingTime.Seconds())
				}
			}
		}
		f.AddRow(fmt.Sprintf("%d", n), loadP.Mean(), loadL.Mean(), timeP.Mean(), timeL.Mean())
	}
	return f, nil
}

// DivisionRatio goes beyond the paper: on small instances where the P3
// optimum is provable by branch-and-bound, it measures the empirical
// approximation ratio of the paper's smallest-remaining-set greedy and of
// the LPT variant. The paper claims a 1/(1−e⁻¹) ≈ 1.58 bound for its
// greedy (Corollary 2); the measured worst case exceeds it, while LPT
// stays near-optimal — see EXPERIMENTS.md.
func DivisionRatio(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "division-ratio", Title: "data-division greedy vs exact P3 optimum (small instances)",
		XLabel: "blocks", YLabel: "max-load ratio to optimal",
		Columns: []string{"paper mean", "paper worst", "LPT mean", "LPT worst", "instances"},
	}
	sizes := []int{24, 48, 96}
	if opts.Quick {
		sizes = []int{24, 96}
	}
	trials := opts.Trials * 4
	for _, blocks := range sizes {
		var rp, rl stats.Series
		instances := 0
		for trial := 0; trial < trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("divratio-%d-%d", blocks, trial))
			universe, usable, err := randomDivision(src, 8, blocks, blocks/3)
			if err != nil {
				return nil, err
			}
			opt, err := cover.OptimalMaxLoadILP(universe, usable, 20000)
			if errors.Is(err, lp.ErrNodeLimit) {
				continue
			}
			if err != nil {
				return nil, err
			}
			if opt == 0 {
				continue
			}
			paper, err := cover.BalancedPartition(universe, usable)
			if err != nil {
				return nil, err
			}
			lpt, err := cover.BalancedPartitionLPT(universe, usable)
			if err != nil {
				return nil, err
			}
			rp.Add(float64(paper.MaxLoad) / float64(opt))
			rl.Add(float64(lpt.MaxLoad) / float64(opt))
			instances++
		}
		f.AddRow(fmt.Sprintf("%d", blocks),
			rp.Mean(), rp.Max(), rl.Mean(), rl.Max(), float64(instances))
	}
	return f, nil
}

// randomDivision builds a random coverable P3 instance: every block is
// held by 1–3 of the devices.
func randomDivision(src *rng.Source, devices, blocks, perDev int) (*datamap.Set, []*datamap.Set, error) {
	r := src.Stream("division")
	universe := datamap.NewSet()
	for b := 0; b < blocks; b++ {
		universe.Add(datamap.BlockID(b))
	}
	usable := make([]*datamap.Set, devices)
	for i := range usable {
		usable[i] = datamap.NewSet()
		for j := 0; j < perDev; j++ {
			usable[i].Add(datamap.BlockID(r.Intn(blocks)))
		}
	}
	for b := 0; b < blocks; b++ {
		usable[r.Intn(devices)].Add(datamap.BlockID(b))
	}
	return universe, usable, nil
}

// Feedback goes beyond the paper: it runs the simulator-in-the-loop
// planner (sim.PlanWithFeedback) against plain LP-HTA and reports how many
// tasks each leaves unsatisfied under queueing, and at what energy.
func Feedback(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "feedback", Title: "simulator-in-the-loop replanning vs plain LP-HTA",
		XLabel: "tasks", YLabel: "unsatisfied tasks under queueing / energy (J)",
		Columns: []string{"LP-HTA unsat", "feedback unsat", "LP-HTA (J)", "feedback (J)"},
		Notes: []string{
			"unsat = simulated deadline misses + cancellations; feedback replans with deadlines tightened by measured queueing inflation",
		},
	}
	for _, n := range taskCounts(opts.Quick) {
		var uB, uF, eB, eF stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("fb-%d-%d", n, trial))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: n})
			if err != nil {
				return nil, err
			}
			res, err := sim.PlanWithFeedback(sc.Model, sc.Tasks, sim.FeedbackOptions{Rounds: 3})
			if err != nil {
				return nil, err
			}
			base := res.Rounds[0]
			best := res.Rounds[res.Best]
			uB.Add(float64(base.Misses + base.Cancelled))
			uF.Add(float64(best.Misses + best.Cancelled))
			eB.Add(base.Energy.Joules())
			eF.Add(best.Energy.Joules())
		}
		f.AddRow(fmt.Sprintf("%d", n), uB.Mean(), uF.Mean(), eB.Mean(), eF.Mean())
	}
	return f, nil
}

// BatteryStudy goes beyond the paper: it uses the cost model's per-device
// energy attribution to quantify Fig. 6(b)'s motivation — DTA-Number
// "saves the energy of the majority of mobile devices" — by reporting how
// many devices drain battery at all and how hard the busiest one works.
func BatteryStudy(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "battery", Title: "per-device battery drain, DTA-Workload vs DTA-Number",
		XLabel: "tasks", YLabel: "devices drained / max drain (J)",
		Columns: []string{"W drained", "N drained", "W max (J)", "N max (J)", "W spared", "N spared"},
		Notes: []string{
			"drained = devices spending any battery; spared = devices spending none (of 50)",
		},
	}
	for _, n := range taskCounts(opts.Quick) {
		var dW, dN, mW, mN, sW, sN stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("bat-%d-%d", n, trial))
			sc, err := workload.GenerateDivisible(src, workload.Params{NumTasks: n})
			if err != nil {
				return nil, err
			}
			for _, goal := range []core.Goal{core.GoalWorkload, core.GoalNumber} {
				res, err := core.DTA(sc.Model, sc.Tasks, sc.Placement, core.DTAOptions{Goal: goal})
				if err != nil {
					return nil, err
				}
				drained := float64(res.Battery.Drained())
				spared := float64(len(res.Battery.ByDevice)) - drained
				if goal == core.GoalWorkload {
					dW.Add(drained)
					mW.Add(res.Battery.Max().Joules())
					sW.Add(spared)
				} else {
					dN.Add(drained)
					mN.Add(res.Battery.Max().Joules())
					sN.Add(spared)
				}
			}
		}
		f.AddRow(fmt.Sprintf("%d", n),
			dW.Mean(), dN.Mean(), mW.Mean(), mN.Mean(), sW.Mean(), sN.Mean())
	}
	return f, nil
}

// Arrivals goes beyond the paper's quasi-static assumption: the same
// LP-HTA assignment is executed in the simulator with tasks released all
// at once (the paper's setting) versus spread uniformly over growing
// arrival windows, showing how much of the queueing pain of simcheck is an
// artifact of batch arrivals.
func Arrivals(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	f := &Figure{
		ID: "arrivals", Title: "batch vs spread arrivals (LP-HTA, 200 tasks)",
		XLabel: "arrival window (s)", YLabel: "sim misses (%) / mean sojourn (s)",
		Columns: []string{"misses (%)", "mean sojourn (s)", "analytic mean (s)"},
	}
	windows := []float64{0, 15, 30, 60, 120}
	if opts.Quick {
		windows = []float64{0, 120}
	}
	for _, w := range windows {
		var misses, sojourn, analytic stats.Series
		for trial := 0; trial < opts.Trials; trial++ {
			src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("arr-%d-%g", trial, w))
			sc, err := workload.GenerateHolistic(src, workload.Params{NumTasks: 200})
			if err != nil {
				return nil, err
			}
			res, err := core.LPHTA(sc.Model, sc.Tasks, nil)
			if err != nil {
				return nil, err
			}
			m, err := core.Evaluate(sc.Model, sc.Tasks, res.Assignment)
			if err != nil {
				return nil, err
			}
			releases := make(map[task.ID]units.Duration, sc.Tasks.Len())
			if w > 0 {
				r := src.Stream("releases")
				for _, tk := range sc.Tasks.All() {
					releases[tk.ID] = units.Duration(r.Float64() * w)
				}
			}
			simRes, err := sim.RunReleases(sc.Model, sc.Tasks, res.Assignment, sim.Config{}, releases)
			if err != nil {
				return nil, err
			}
			placed := sc.Tasks.Len() - simRes.Cancelled
			if placed > 0 {
				misses.Add(100 * float64(simRes.DeadlineViolations) / float64(placed))
			}
			sojourn.Add(simRes.MeanLatency().Seconds())
			analytic.Add(m.MeanLatency().Seconds())
		}
		f.AddRow(fmt.Sprintf("%.0f", w), misses.Mean(), sojourn.Mean(), analytic.Mean())
	}
	return f, nil
}
