package experiment

import (
	"fmt"

	"dsmec/internal/baseline"
	"dsmec/internal/core"
	"dsmec/internal/radio"
	"dsmec/internal/rng"
	"dsmec/internal/stats"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// Method names as they appear in the paper's legends.
const (
	MethodLPHTA      = "LP-HTA"
	MethodHGOS       = "HGOS"
	MethodAllToC     = "AllToC"
	MethodAllOffload = "AllOffload"
)

// holisticPoint holds averaged metrics for one (method, sweep-point) pair.
type holisticPoint struct {
	energy  stats.Series // joules
	latency stats.Series // seconds, mean per task
	unsat   stats.Series // fraction in [0,1]
}

// trialMetrics is one trial's per-method (energy, latency, unsat) tuple.
type trialMetrics struct {
	energy, latency, unsat float64
}

// runHolisticPoint generates Trials seeded scenarios for the given
// parameters and evaluates every method on each. Trials run over the
// options' worker pool; aggregation stays in trial order either way.
func runHolisticPoint(opts Options, params workload.Params, methods []string) (map[string]*holisticPoint, error) {
	results := make([]map[string]trialMetrics, opts.Trials)
	err := forEachIndexed(opts.Trials, opts.workers(), func(trial int) error {
		src := rng.NewSource(opts.Seed).Derive(fmt.Sprintf("holistic-%d-%d", params.NumTasks, trial)).
			Derive(params.MaxInput.String())
		sc, err := workload.GenerateHolistic(src, params)
		if err != nil {
			return err
		}
		row := make(map[string]trialMetrics, len(methods))
		for _, method := range methods {
			var (
				a   *core.Assignment
				err error
			)
			switch method {
			case MethodLPHTA:
				var res *core.HTAResult
				res, err = core.LPHTA(sc.Model, sc.Tasks, nil)
				if err == nil {
					a = res.Assignment
				}
			case MethodHGOS:
				a, err = baseline.HGOS(sc.Model, sc.Tasks)
			case MethodAllToC:
				a = baseline.AllToC(sc.Tasks)
			case MethodAllOffload:
				a, err = baseline.AllOffload(sc.Model, sc.Tasks)
			default:
				return fmt.Errorf("experiment: unknown method %q", method)
			}
			if err != nil {
				return fmt.Errorf("experiment: %s: %w", method, err)
			}
			m, err := core.Evaluate(sc.Model, sc.Tasks, a)
			if err != nil {
				return fmt.Errorf("experiment: %s: %w", method, err)
			}
			row[method] = trialMetrics{
				energy:  m.TotalEnergy.Joules(),
				latency: m.MeanLatency().Seconds(),
				unsat:   m.UnsatisfiedRate(),
			}
		}
		results[trial] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]*holisticPoint, len(methods))
	for _, m := range methods {
		out[m] = &holisticPoint{}
	}
	for _, row := range results {
		for _, method := range methods {
			tm := row[method]
			p := out[method]
			p.energy.Add(tm.energy)
			p.latency.Add(tm.latency)
			p.unsat.Add(tm.unsat)
		}
	}
	return out, nil
}

// taskCounts is the Figs. 2(a)/3/4(a) sweep: 100 to 450 tasks.
func taskCounts(quick bool) []int {
	if quick {
		return []int{100, 450}
	}
	return []int{100, 150, 200, 250, 300, 350, 400, 450}
}

// inputSizes is the Figs. 2(b)/4(b) sweep: 1000 to 5000 kB.
func inputSizes(quick bool) []units.ByteSize {
	if quick {
		return []units.ByteSize{1000 * units.Kilobyte, 5000 * units.Kilobyte}
	}
	return []units.ByteSize{
		1000 * units.Kilobyte, 2000 * units.Kilobyte, 3000 * units.Kilobyte,
		4000 * units.Kilobyte, 5000 * units.Kilobyte,
	}
}

// Table1 echoes the wireless-network parameters of Table I as used by the
// generator, demonstrating that the simulation is driven by the published
// constants.
func Table1(opts Options) (*Figure, error) {
	f := &Figure{
		ID:      "table1",
		Title:   "parameters of wireless networks",
		XLabel:  "NetWork",
		YLabel:  "Table I constants",
		Columns: []string{"Download (Mbps)", "Upload (Mbps)", "P^T (W)", "P^R (W)"},
	}
	for _, link := range []radio.Link{radio.FourG, radio.WiFi} {
		f.AddRow(link.Tech.String(),
			link.Download.Mbps(), link.Upload.Mbps(),
			float64(link.TxPower), float64(link.RxPower))
	}
	return f, nil
}

// Fig2a reproduces Fig. 2(a): total energy while the task count grows from
// 100 to 450 with 3000 kB maximum input.
func Fig2a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodHGOS, MethodAllToC, MethodAllOffload}
	f := &Figure{
		ID: "fig2a", Title: "energy cost vs number of tasks",
		XLabel: "tasks", YLabel: "total energy (J)", Columns: methods,
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(i int) (Row, error) {
		n := counts[i]
		point, err := runHolisticPoint(opts, workload.Params{NumTasks: n}, methods)
		if err != nil {
			return Row{}, err
		}
		vals := make([]float64, len(methods))
		for k, m := range methods {
			vals[k] = point[m].energy.Mean()
		}
		return Row{X: fmt.Sprintf("%d", n), Values: vals}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig2b reproduces Fig. 2(b): total energy while the maximum input size
// grows from 1000 kB to 5000 kB with 100 tasks.
func Fig2b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodHGOS, MethodAllToC, MethodAllOffload}
	f := &Figure{
		ID: "fig2b", Title: "energy cost vs input data size",
		XLabel: "max input (kB)", YLabel: "total energy (J)", Columns: methods,
	}
	sizes := inputSizes(opts.Quick)
	rows, err := collectIndexed(len(sizes), opts.workers(), func(i int) (Row, error) {
		size := sizes[i]
		point, err := runHolisticPoint(opts, workload.Params{NumTasks: 100, MaxInput: size}, methods)
		if err != nil {
			return Row{}, err
		}
		vals := make([]float64, len(methods))
		for k, m := range methods {
			vals[k] = point[m].energy.Mean()
		}
		return Row{X: fmt.Sprintf("%.0f", size.Kilobytes()), Values: vals}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig3 reproduces Fig. 3: the unsatisfied-task rate while the task count
// grows. AllToC is omitted exactly as in the paper ("the unsatisfied task
// rate of AllToC is quite high").
func Fig3(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodHGOS, MethodAllOffload}
	f := &Figure{
		ID: "fig3", Title: "unsatisfied task rate vs number of tasks",
		XLabel: "tasks", YLabel: "unsatisfied rate (%)", Columns: methods,
		Notes: []string{"AllToC omitted as in the paper: its rate is far higher than every other method"},
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(i int) (Row, error) {
		n := counts[i]
		point, err := runHolisticPoint(opts, workload.Params{NumTasks: n}, methods)
		if err != nil {
			return Row{}, err
		}
		vals := make([]float64, len(methods))
		for k, m := range methods {
			vals[k] = 100 * point[m].unsat.Mean()
		}
		return Row{X: fmt.Sprintf("%d", n), Values: vals}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig4a reproduces Fig. 4(a): average task latency while the task count
// grows, 3000 kB maximum input.
func Fig4a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodHGOS, MethodAllToC, MethodAllOffload}
	f := &Figure{
		ID: "fig4a", Title: "average latency vs number of tasks",
		XLabel: "tasks", YLabel: "average latency (s)", Columns: methods,
	}
	counts := taskCounts(opts.Quick)
	rows, err := collectIndexed(len(counts), opts.workers(), func(i int) (Row, error) {
		n := counts[i]
		point, err := runHolisticPoint(opts, workload.Params{NumTasks: n}, methods)
		if err != nil {
			return Row{}, err
		}
		vals := make([]float64, len(methods))
		for k, m := range methods {
			vals[k] = point[m].latency.Mean()
		}
		return Row{X: fmt.Sprintf("%d", n), Values: vals}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

// Fig4b reproduces Fig. 4(b): average task latency while the maximum input
// size grows, 100 tasks.
func Fig4b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	methods := []string{MethodLPHTA, MethodHGOS, MethodAllToC, MethodAllOffload}
	f := &Figure{
		ID: "fig4b", Title: "average latency vs input data size",
		XLabel: "max input (kB)", YLabel: "average latency (s)", Columns: methods,
	}
	sizes := inputSizes(opts.Quick)
	rows, err := collectIndexed(len(sizes), opts.workers(), func(i int) (Row, error) {
		size := sizes[i]
		point, err := runHolisticPoint(opts, workload.Params{NumTasks: 100, MaxInput: size}, methods)
		if err != nil {
			return Row{}, err
		}
		vals := make([]float64, len(methods))
		for k, m := range methods {
			vals[k] = point[m].latency.Mean()
		}
		return Row{X: fmt.Sprintf("%.0f", size.Kilobytes()), Values: vals}, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}
