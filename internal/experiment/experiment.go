package experiment

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"dsmec/internal/texttable"
)

// Options tunes an experiment run.
type Options struct {
	// Seed roots all randomness; identical seeds reproduce identical
	// figures. Default 1.
	Seed int64
	// Trials is the number of seeded repetitions averaged per point.
	// Default 3.
	Trials int
	// Quick shrinks sweeps to their endpoints, for smoke tests and
	// testing.B benchmarks.
	Quick bool
	// Parallelism bounds how many sweep points (and trials within each
	// point) run concurrently. Zero means GOMAXPROCS; 1 runs everything
	// sequentially. Results are always aggregated in index order, so
	// figures are byte-identical regardless of the worker count.
	Parallelism int
	// FaultSeed roots the fault-plan randomness of fault-injecting
	// experiments (robustness), independently of Seed so the same
	// workload can be stressed with different fault draws. Default 1.
	FaultSeed int64
}

// workers resolves Parallelism to a concrete worker count.
func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// forEachIndexed runs fn for indices 0..n-1 over a bounded pool of
// workers; workers <= 1 runs inline. Every index runs even after a
// failure, and the joined error lists failures in index order.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		var errs []error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errors.Join(errs...)
}

// collectIndexed runs fn for indices 0..n-1 over a bounded pool and
// returns the results in index order, so downstream aggregation (and its
// floating-point accumulation sequence) is independent of scheduling.
func collectIndexed[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := forEachIndexed(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = 1
	}
	return o
}

// Row is one x-axis point of a figure.
type Row struct {
	X      string
	Values []float64
}

// Figure is a reproduced table or figure: labeled columns over swept rows.
type Figure struct {
	ID      string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
	Notes   []string
}

// AddRow appends a data point.
func (f *Figure) AddRow(x string, values ...float64) {
	f.Rows = append(f.Rows, Row{X: x, Values: values})
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() *texttable.Table {
	headers := append([]string{f.XLabel}, f.Columns...)
	tb := texttable.New(headers...)
	for _, r := range f.Rows {
		cells := make([]string, 0, len(r.Values)+1)
		cells = append(cells, r.X)
		for _, v := range r.Values {
			cells = append(cells, strconv.FormatFloat(v, 'g', 6, 64))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// WriteTo renders a titled block: header, table, notes.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "== %s: %s ==\n(y: %s)\n", f.ID, f.Title, f.YLabel)
	total += int64(n)
	if err != nil {
		return total, err
	}
	tn, err := f.Table().WriteTo(w)
	total += tn
	if err != nil {
		return total, err
	}
	for _, note := range f.Notes {
		n, err = fmt.Fprintf(w, "note: %s\n", note)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CSV writes the figure data as CSV.
func (f *Figure) CSV(w io.Writer) error {
	return f.Table().CSV(w)
}

// Runner produces one figure.
type Runner func(Options) (*Figure, error)

// Definition pairs an experiment ID with its runner.
type Definition struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists every reproducible artifact: the paper's Table I and
// Figs. 2–6, plus the extensions (simulator validation and ablations).
func Registry() []Definition {
	return []Definition{
		{"table1", "Table I: parameters of wireless networks", Table1},
		{"fig2a", "Fig. 2(a): energy vs number of tasks", Fig2a},
		{"fig2b", "Fig. 2(b): energy vs input data size", Fig2b},
		{"fig3", "Fig. 3: unsatisfied task rate vs number of tasks", Fig3},
		{"fig4a", "Fig. 4(a): average latency vs number of tasks", Fig4a},
		{"fig4b", "Fig. 4(b): average latency vs input data size", Fig4b},
		{"fig5a", "Fig. 5(a): DTA energy vs number of tasks", Fig5a},
		{"fig5b", "Fig. 5(b): DTA energy vs result size", Fig5b},
		{"fig6a", "Fig. 6(a): DTA processing time vs input size", Fig6a},
		{"fig6b", "Fig. 6(b): DTA involved devices vs number of tasks", Fig6b},
		{"simcheck", "Extension: analytic model vs discrete-event simulation", SimCheck},
		{"feedback", "Extension: simulator-in-the-loop replanning", Feedback},
		{"battery", "Extension: per-device battery drain under DTA", BatteryStudy},
		{"arrivals", "Extension: batch vs spread task arrivals", Arrivals},
		{"ratio", "Extension: LP-HTA empirical ratio vs exact optimum", RatioStudy},
		{"ablation-rounding", "Ablation: largest-fraction vs randomized rounding", AblationRounding},
		{"ablation-repair", "Ablation: repair migration order", AblationRepair},
		{"ablation-lpt", "Ablation: paper greedy vs LPT data division", AblationLPT},
		{"division-ratio", "Extension: division greedies vs exact P3 optimum", DivisionRatio},
		{"robustness", "Extension: goodput/energy under injected faults and recovery", Robustness},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Definition, bool) {
	for _, d := range Registry() {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}
