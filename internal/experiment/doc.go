// Package experiment defines one runnable definition per table and figure
// of the paper's evaluation (Section V), plus validation and ablation
// studies beyond the paper. Each experiment sweeps the published parameter
// range, averages a few seeded trials, and emits the same rows/series the
// paper plots.
package experiment
