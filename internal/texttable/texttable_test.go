package texttable

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "20000")
	got := tb.String()
	want := strings.Join([]string{
		"name   value",
		"-----  -----",
		"alpha  1",
		"b      20000",
		"",
	}, "\n")
	if got != want {
		t.Errorf("rendered table:\n%q\nwant:\n%q", got, want)
	}
}

func TestShortAndLongRows(t *testing.T) {
	tb := New("a", "b")
	tb.AddRow("1")           // short row pads
	tb.AddRow("1", "2", "3") // long row extends
	got := tb.String()
	if !strings.Contains(got, "3") {
		t.Error("long row cell missing")
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("x", "y")
	tb.AddRowf(42, 3.5)
	if !strings.Contains(tb.String(), "42") || !strings.Contains(tb.String(), "3.5") {
		t.Error("formatted cells missing")
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", tb.NumRows())
	}
}

func TestNoTrailingSpaces(t *testing.T) {
	tb := New("col", "other")
	tb.AddRow("x", "y")
	for _, line := range strings.Split(tb.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("line %q has trailing spaces", line)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("name", "note")
	tb.AddRow("a", `plain`)
	tb.AddRow("b", `has,comma`)
	tb.AddRow("c", `has"quote`)
	tb.AddRow("short") // padded to header width
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,note\na,plain\nb,\"has,comma\"\nc,\"has\"\"quote\"\nshort,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := New("grüße", "x")
	tb.AddRow("ä", "1")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The separator must match the rune count of the header, not its byte
	// length.
	if len([]rune(strings.Fields(lines[1])[0])) != 5 {
		t.Errorf("separator width mismatch: %q", lines[1])
	}
}
