// Package texttable renders aligned plain-text tables, the output format
// of the benchmark harness (one table per reproduced figure).
package texttable
