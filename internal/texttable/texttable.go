package texttable

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	h := make([]string, len(headers))
	copy(h, headers)
	return &Table{headers: h}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows extend the table width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// widths computes the column widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, 0)
			}
			if n := len([]rune(c)); n > w[i] {
				w[i] = n
			}
		}
	}
	grow(t.headers)
	for _, r := range t.rows {
		grow(r)
	}
	return w
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := t.widths()
	var total int64

	writeLine := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width-len([]rune(cell))))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		total += int64(n)
		return err
	}

	if err := writeLine(t.headers); err != nil {
		return total, err
	}
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := writeLine(sep); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := writeLine(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder never errors.
	_, _ = t.WriteTo(&b)
	return b.String()
}

// CSV writes the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		row := r
		if len(row) < len(t.headers) {
			row = append(append([]string{}, r...), make([]string, len(t.headers)-len(r))...)
		}
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
