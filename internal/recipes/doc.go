// Package recipes names the workload shapes the corpus and CLIs speak:
// each Recipe pairs generator parameters (flash crowds, diurnal waves,
// data-locality skew) with an optional fault-plan profile (mass station
// outages, churn storms). It sits above both the scenario generator
// (internal/workload) and the fault machinery (internal/sim) so that
// neither has to know about the other.
package recipes
