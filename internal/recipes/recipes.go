package recipes

import (
	"sort"

	"dsmec/internal/sim"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

// Recipe is a named workload shape the generator knows how to produce:
// base scenario parameters (sizes left zero so callers can pick the
// scale) plus an optional fault-plan profile. Recipes are the vocabulary
// of the workload-checks corpus — a case names a recipe and a seed
// instead of committing a multi-megabyte scenario document — and are
// exposed on the CLI as `mecgen -recipe <name>`.
type Recipe struct {
	Name        string
	Description string
	// Params carries the load shape. Population sizes (NumDevices,
	// NumStations, NumTasks, MaxInput) are left zero here; callers
	// override them per machine class, and the usual defaults apply
	// otherwise.
	Params workload.Params
	// Faults, when non-nil, profiles the fault plan generated alongside
	// the scenario (from its own fault seed).
	Faults *sim.FaultParams
}

// catalog is the recipe set, keyed by name. The shapes deliberately
// stress regimes the paper's even-spread generator cannot express:
// correctness of the decomposed assignment must hold across load
// regimes, not one.
var catalog = map[string]Recipe{
	"steady-state": {
		Description: "the paper's Section V.A baseline: even task spread, no faults",
	},
	"flash-crowd": {
		Description: "70% of all tasks concentrated on the hottest 10% of devices",
		Params:      workload.Params{HotTaskFrac: 0.7, HotDeviceFrac: 0.1},
	},
	"diurnal-wave": {
		Description: "per-station load tilted by a sinusoidal wave (amplitude 0.8), like time zones",
		Params:      workload.Params{StationWave: 0.8},
	},
	"data-locality-skew": {
		Description: "external reads concentrated on the hottest 10% of devices, with heavier external traffic",
		Params:      workload.Params{HotSourceFrac: 0.1, ExternalMaxRatio: 1.2},
	},
	"mass-station-outage": {
		Description: "half of all stations fail simultaneously mid-run and repair together",
		Faults: &sim.FaultParams{
			MassOutageFrac:   0.5,
			MassOutageAt:     200 * units.Millisecond,
			MassOutageRepair: 1500 * units.Millisecond,
			TransferTimeout:  2 * units.Second,
		},
	},
	"device-churn-storm": {
		Description: "30% of devices churn out permanently during the run",
		Faults: &sim.FaultParams{
			ChurnRate:       0.3,
			TransferTimeout: 2 * units.Second,
		},
	},
}

// All lists the catalog sorted by name.
func All() []Recipe {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Recipe, 0, len(names))
	for _, name := range names {
		r := catalog[name]
		r.Name = name
		out = append(out, r)
	}
	return out
}

// ByName looks one recipe up.
func ByName(name string) (Recipe, bool) {
	r, ok := catalog[name]
	if !ok {
		return Recipe{}, false
	}
	r.Name = name
	return r, true
}
