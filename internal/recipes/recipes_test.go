package recipes

import (
	"testing"

	"dsmec/internal/rng"
	"dsmec/internal/sim"
	"dsmec/internal/workload"
)

func TestRecipeCatalog(t *testing.T) {
	rs := All()
	if len(rs) < 6 {
		t.Fatalf("catalog has %d recipes, want >= 6", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Name >= rs[i].Name {
			t.Fatalf("catalog not sorted: %q before %q", rs[i-1].Name, rs[i].Name)
		}
	}
	for _, want := range []string{
		"steady-state", "flash-crowd", "diurnal-wave",
		"data-locality-skew", "mass-station-outage", "device-churn-storm",
	} {
		r, ok := ByName(want)
		if !ok {
			t.Errorf("missing recipe %q", want)
			continue
		}
		if r.Name != want || r.Description == "" {
			t.Errorf("recipe %q: name %q, description %q", want, r.Name, r.Description)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown recipe resolved")
	}
}

// TestEveryRecipeGenerates proves each recipe produces a valid scenario
// deterministically: the same (recipe, seed) yields equal task sets.
func TestEveryRecipeGenerates(t *testing.T) {
	for _, r := range All() {
		p := r.Params
		p.NumDevices, p.NumStations, p.NumTasks = 20, 4, 60
		gen := func() *workload.Scenario {
			sc, err := workload.GenerateHolistic(rng.NewSource(7), p)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			return sc
		}
		a, b := gen(), gen()
		if a.Tasks.Len() != 60 {
			t.Errorf("%s: generated %d tasks, want 60", r.Name, a.Tasks.Len())
		}
		for i := 0; i < a.Tasks.Len(); i++ {
			ta, tb := a.Tasks.At(i), b.Tasks.At(i)
			if ta.ID != tb.ID || ta.LocalSize != tb.LocalSize || ta.Deadline != tb.Deadline {
				t.Fatalf("%s: task %d differs between identical seeds", r.Name, i)
			}
		}
	}
}

// TestRecipeFaultPlansGenerate proves each fault-bearing recipe yields a
// valid plan against a small system.
func TestRecipeFaultPlansGenerate(t *testing.T) {
	sc, err := workload.GenerateHolistic(rng.NewSource(7), workload.Params{
		NumDevices: 20, NumStations: 4, NumTasks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	for _, r := range All() {
		if r.Faults == nil {
			continue
		}
		faulted++
		plan := sim.GenerateFaultPlan(rng.NewSource(9), sc.System, *r.Faults)
		if err := plan.Validate(sc.System); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if len(plan.StationOutages)+len(plan.DeviceDepartures)+len(plan.LinkDegradations) == 0 {
			t.Errorf("%s: fault profile produced an empty plan", r.Name)
		}
	}
	if faulted < 2 {
		t.Errorf("only %d fault-bearing recipes; want >= 2", faulted)
	}
}
