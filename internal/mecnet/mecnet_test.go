package mecnet

import (
	"testing"

	"dsmec/internal/backhaul"
	"dsmec/internal/compute"
	"dsmec/internal/radio"
	"dsmec/internal/rng"
	"dsmec/internal/units"
)

func smallSystem(t *testing.T) *System {
	t.Helper()
	sys := &System{
		Devices: []Device{
			{Station: 0, Link: radio.FourG, Proc: compute.DeviceProcessor(1 * units.Gigahertz), ResourceCap: 10},
			{Station: 0, Link: radio.WiFi, Proc: compute.DeviceProcessor(2 * units.Gigahertz), ResourceCap: 10},
			{Station: 1, Link: radio.FourG, Proc: compute.DeviceProcessor(1.5 * units.Gigahertz), ResourceCap: 10},
		},
		Stations: []Station{
			{Proc: compute.StationProcessor(), ResourceCap: 100},
			{Proc: compute.StationProcessor(), ResourceCap: 100},
		},
		Cloud:       Cloud{Proc: compute.CloudProcessor()},
		StationWire: backhaul.DefaultStationToStation(),
		CloudWire:   backhaul.DefaultStationToCloud(),
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	return sys
}

func TestValidateRejectsBadSystems(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*System)
	}{
		{"no devices", func(s *System) { s.Devices = nil }},
		{"no stations", func(s *System) { s.Stations = nil }},
		{"bad cloud", func(s *System) { s.Cloud.Proc.Frequency = 0 }},
		{"bad station wire", func(s *System) { s.StationWire.Latency = -1 }},
		{"bad cloud wire", func(s *System) { s.CloudWire.Bandwidth = -1 }},
		{"bad station proc", func(s *System) { s.Stations[0].Proc.Frequency = 0 }},
		{"negative station cap", func(s *System) { s.Stations[0].ResourceCap = -1 }},
		{"device station out of range", func(s *System) { s.Devices[0].Station = 7 }},
		{"device station negative", func(s *System) { s.Devices[0].Station = -1 }},
		{"bad device link", func(s *System) { s.Devices[0].Link.Upload = 0 }},
		{"bad device proc", func(s *System) { s.Devices[0].Proc.Frequency = 0 }},
		{"negative device cap", func(s *System) { s.Devices[0].ResourceCap = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sys := smallSystem(t)
			tt.mutate(sys)
			if err := sys.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	sys := smallSystem(t)
	if sys.NumDevices() != 3 || sys.NumStations() != 2 {
		t.Error("counts wrong")
	}
	d, err := sys.Device(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Link.Tech != radio.TechWiFi {
		t.Error("Device(1) should be the WiFi device")
	}
	if _, err := sys.Device(3); err == nil {
		t.Error("Device(3) should fail")
	}
	if _, err := sys.Device(-1); err == nil {
		t.Error("Device(-1) should fail")
	}
	st, err := sys.StationOf(2)
	if err != nil || st != 1 {
		t.Errorf("StationOf(2) = %d,%v want 1,nil", st, err)
	}
}

func TestSameCluster(t *testing.T) {
	sys := smallSystem(t)
	same, err := sys.SameCluster(0, 1)
	if err != nil || !same {
		t.Errorf("SameCluster(0,1) = %v,%v want true", same, err)
	}
	same, err = sys.SameCluster(0, 2)
	if err != nil || same {
		t.Errorf("SameCluster(0,2) = %v,%v want false", same, err)
	}
	same, err = sys.SameCluster(2, 2)
	if err != nil || !same {
		t.Errorf("SameCluster(2,2) = %v,%v want true", same, err)
	}
	if _, err := sys.SameCluster(0, 9); err == nil {
		t.Error("SameCluster with bad device should fail")
	}
	if _, err := sys.SameCluster(9, 0); err == nil {
		t.Error("SameCluster with bad device should fail")
	}
}

func TestCluster(t *testing.T) {
	sys := smallSystem(t)
	c0, err := sys.Cluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c0) != 2 || c0[0] != 0 || c0[1] != 1 {
		t.Errorf("Cluster(0) = %v, want [0 1]", c0)
	}
	c1, err := sys.Cluster(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 1 || c1[0] != 2 {
		t.Errorf("Cluster(1) = %v, want [2]", c1)
	}
	if _, err := sys.Cluster(5); err == nil {
		t.Error("Cluster(5) should fail")
	}
	unvalidated := &System{}
	if _, err := unvalidated.Cluster(0); err == nil {
		t.Error("Cluster on unvalidated system should fail")
	}
}

func TestGenerate(t *testing.T) {
	r := rng.NewSource(5).Stream("net")
	sys, err := Generate(r, GenerateParams{
		NumDevices:         50,
		NumStations:        5,
		DeviceResourceCap:  20,
		StationResourceCap: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumDevices() != 50 || sys.NumStations() != 5 {
		t.Error("generated counts wrong")
	}
	// Round-robin attachment: each cluster has exactly 10 devices.
	for s := 0; s < 5; s++ {
		c, err := sys.Cluster(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(c) != 10 {
			t.Errorf("cluster %d has %d devices, want 10", s, len(c))
		}
	}
	// Defaults from the paper.
	if sys.Stations[0].Proc.Frequency != compute.StationFrequency {
		t.Error("station frequency should default to 4GHz")
	}
	if sys.Cloud.Proc.Frequency != compute.CloudFrequency {
		t.Error("cloud frequency should default to 2.4GHz")
	}
	if sys.StationWire.Latency != backhaul.StationToStationLatency {
		t.Error("station wire should default to the 15ms backhaul")
	}
	// Device frequencies within [1,2] GHz; links drawn from Table I.
	saw4G, sawWiFi := false, false
	for i, d := range sys.Devices {
		f := d.Proc.Frequency
		if f < compute.MinDeviceFrequency || f > compute.MaxDeviceFrequency {
			t.Errorf("device %d frequency %v outside [1,2]GHz", i, f)
		}
		switch d.Link.Tech {
		case radio.Tech4G:
			saw4G = true
		case radio.TechWiFi:
			sawWiFi = true
		}
		if d.ResourceCap != 20 {
			t.Errorf("device %d cap = %g, want 20", i, d.ResourceCap)
		}
	}
	if !saw4G || !sawWiFi {
		t.Error("both access technologies should appear among 50 devices")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	gen := func() *System {
		r := rng.NewSource(9).Stream("net")
		sys, err := Generate(r, GenerateParams{NumDevices: 10, NumStations: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := gen(), gen()
	for i := range a.Devices {
		if a.Devices[i] != b.Devices[i] {
			t.Fatalf("device %d differs between identical seeds", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rng.NewSource(1).Stream("net")
	tests := []struct {
		name   string
		params GenerateParams
	}{
		{"zero devices", GenerateParams{NumDevices: 0, NumStations: 1}},
		{"zero stations", GenerateParams{NumDevices: 5, NumStations: 0}},
		{"more stations than devices", GenerateParams{NumDevices: 2, NumStations: 5}},
		{"inverted freq range", GenerateParams{
			NumDevices: 5, NumStations: 1,
			DeviceFreqMin: 3 * units.Gigahertz, DeviceFreqMax: 2 * units.Gigahertz,
		}},
		{"negative cap", GenerateParams{NumDevices: 5, NumStations: 1, DeviceResourceCap: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(r, tt.params); err == nil {
				t.Error("Generate() = nil error, want error")
			}
		})
	}
}

func TestGenerateOverrides(t *testing.T) {
	r := rng.NewSource(2).Stream("net")
	wire := backhaul.Wire{Latency: 5 * units.Millisecond, Bandwidth: units.GbitPerSecond}
	sys, err := Generate(r, GenerateParams{
		NumDevices:  4,
		NumStations: 2,
		StationFreq: 8 * units.Gigahertz,
		CloudFreq:   3 * units.Gigahertz,
		StationWire: &wire,
		CloudWire:   &wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stations[0].Proc.Frequency != 8*units.Gigahertz {
		t.Error("StationFreq override ignored")
	}
	if sys.Cloud.Proc.Frequency != 3*units.Gigahertz {
		t.Error("CloudFreq override ignored")
	}
	if sys.StationWire != wire || sys.CloudWire != wire {
		t.Error("wire overrides ignored")
	}
}
