package mecnet

import (
	"fmt"

	"dsmec/internal/backhaul"
	"dsmec/internal/compute"
	"dsmec/internal/radio"
)

// Device is one mobile device (level 1). Its index in System.Devices is
// its identity i; user U_i raises tasks through device i.
type Device struct {
	Station     int               // index of the serving base station
	Link        radio.Link        // radio access link to that station
	Proc        compute.Processor // f_i plus κ
	ResourceCap float64           // max_i, the device's computation-resource bound
}

// Station is one base station with its small-scale cloud (level 2).
type Station struct {
	Proc        compute.Processor // f_s, grid powered
	ResourceCap float64           // max_S for this station
}

// Cloud is the remote cloud (level 3).
type Cloud struct {
	Proc compute.Processor // f_c, grid powered
}

// System is a complete MEC topology.
type System struct {
	Devices  []Device
	Stations []Station
	Cloud    Cloud

	// StationWire is the station↔station backhaul (t_B,B / e_B,B).
	StationWire backhaul.Wire
	// CloudWire is the station↔cloud backhaul (t_B,C / e_B,C).
	CloudWire backhaul.Wire

	clusters [][]int // device indices per station, built by Validate
}

// Validate checks structural consistency and builds the cluster index.
// Call it once after constructing a System by hand; the builders in this
// package call it for you.
func (s *System) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("mecnet: system has no devices")
	}
	if len(s.Stations) == 0 {
		return fmt.Errorf("mecnet: system has no stations")
	}
	if err := s.Cloud.Proc.Validate(); err != nil {
		return fmt.Errorf("mecnet: cloud: %w", err)
	}
	if err := s.StationWire.Validate(); err != nil {
		return fmt.Errorf("mecnet: station wire: %w", err)
	}
	if err := s.CloudWire.Validate(); err != nil {
		return fmt.Errorf("mecnet: cloud wire: %w", err)
	}
	for r, st := range s.Stations {
		if err := st.Proc.Validate(); err != nil {
			return fmt.Errorf("mecnet: station %d: %w", r, err)
		}
		if st.ResourceCap < 0 {
			return fmt.Errorf("mecnet: station %d: negative resource cap %g", r, st.ResourceCap)
		}
	}
	clusters := make([][]int, len(s.Stations))
	for i, d := range s.Devices {
		if d.Station < 0 || d.Station >= len(s.Stations) {
			return fmt.Errorf("mecnet: device %d: station %d out of range [0,%d)", i, d.Station, len(s.Stations))
		}
		if err := d.Link.Validate(); err != nil {
			return fmt.Errorf("mecnet: device %d: %w", i, err)
		}
		if err := d.Proc.Validate(); err != nil {
			return fmt.Errorf("mecnet: device %d: %w", i, err)
		}
		if d.ResourceCap < 0 {
			return fmt.Errorf("mecnet: device %d: negative resource cap %g", i, d.ResourceCap)
		}
		clusters[d.Station] = append(clusters[d.Station], i)
	}
	s.clusters = clusters
	return nil
}

// NumDevices returns n, the device count.
func (s *System) NumDevices() int { return len(s.Devices) }

// NumStations returns k, the station count.
func (s *System) NumStations() int { return len(s.Stations) }

// Device returns device i.
func (s *System) Device(i int) (*Device, error) {
	if i < 0 || i >= len(s.Devices) {
		return nil, fmt.Errorf("mecnet: device %d out of range [0,%d)", i, len(s.Devices))
	}
	return &s.Devices[i], nil
}

// StationOf returns the index of the station serving device i.
func (s *System) StationOf(i int) (int, error) {
	d, err := s.Device(i)
	if err != nil {
		return 0, err
	}
	return d.Station, nil
}

// SameCluster reports whether devices a and b attach to the same base
// station. A device is trivially in its own cluster.
func (s *System) SameCluster(a, b int) (bool, error) {
	sa, err := s.StationOf(a)
	if err != nil {
		return false, err
	}
	sb, err := s.StationOf(b)
	if err != nil {
		return false, err
	}
	return sa == sb, nil
}

// Cluster returns the device indices attached to station r, in ascending
// order. The returned slice must not be mutated. Validate must have been
// called.
func (s *System) Cluster(r int) ([]int, error) {
	if s.clusters == nil {
		return nil, fmt.Errorf("mecnet: system not validated")
	}
	if r < 0 || r >= len(s.clusters) {
		return nil, fmt.Errorf("mecnet: station %d out of range [0,%d)", r, len(s.clusters))
	}
	return s.clusters[r], nil
}
