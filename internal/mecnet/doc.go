// Package mecnet describes the three-level topology of a MEC system: n
// mobile devices partitioned into k clusters, each cluster served by one
// base station, and a single remote cloud behind all stations (Fig. 1 of
// the paper).
//
// The package captures the quasi-static scenario the paper assumes: every
// device stays attached to the same base station for the whole assignment
// period.
package mecnet
