package mecnet

import (
	"fmt"
	"math/rand"

	"dsmec/internal/backhaul"
	"dsmec/internal/compute"
	"dsmec/internal/radio"
	"dsmec/internal/rng"
	"dsmec/internal/units"
)

// GenerateParams configures Generate, which builds the evaluation topology
// of Section V.A: devices with 1–2 GHz CPUs attached round-robin to 4 GHz
// stations over randomly chosen 4G/Wi-Fi links, behind a 2.4 GHz cloud.
type GenerateParams struct {
	NumDevices  int
	NumStations int

	// DeviceFreqMin/Max bound the uniformly drawn device CPU clocks.
	// Zero values default to the paper's 1 GHz / 2 GHz.
	DeviceFreqMin units.Frequency
	DeviceFreqMax units.Frequency

	// DeviceResourceCap is max_i (same for every device);
	// StationResourceCap is max_S (same for every station).
	DeviceResourceCap  float64
	StationResourceCap float64

	// Picker selects each device's access link. Nil defaults to the
	// paper's uniform 4G/Wi-Fi choice (Table I).
	Picker *radio.Picker

	// StationFreq and CloudFreq override the paper's 4 GHz / 2.4 GHz when
	// non-zero.
	StationFreq units.Frequency
	CloudFreq   units.Frequency

	// StationWire and CloudWire override the default backhauls when
	// non-nil.
	StationWire *backhaul.Wire
	CloudWire   *backhaul.Wire
}

func (p *GenerateParams) withDefaults() GenerateParams {
	out := *p
	if out.DeviceFreqMin == 0 {
		out.DeviceFreqMin = compute.MinDeviceFrequency
	}
	if out.DeviceFreqMax == 0 {
		out.DeviceFreqMax = compute.MaxDeviceFrequency
	}
	if out.Picker == nil {
		out.Picker = radio.TableIPicker()
	}
	if out.StationFreq == 0 {
		out.StationFreq = compute.StationFrequency
	}
	if out.CloudFreq == 0 {
		out.CloudFreq = compute.CloudFrequency
	}
	return out
}

// Generate builds and validates a System per the given parameters, drawing
// all randomness from r.
func Generate(r *rand.Rand, params GenerateParams) (*System, error) {
	p := params.withDefaults()
	switch {
	case p.NumDevices <= 0:
		return nil, fmt.Errorf("mecnet: NumDevices %d must be positive", p.NumDevices)
	case p.NumStations <= 0:
		return nil, fmt.Errorf("mecnet: NumStations %d must be positive", p.NumStations)
	case p.NumStations > p.NumDevices:
		return nil, fmt.Errorf("mecnet: NumStations %d exceeds NumDevices %d; every cluster needs a device",
			p.NumStations, p.NumDevices)
	case p.DeviceFreqMin > p.DeviceFreqMax:
		return nil, fmt.Errorf("mecnet: DeviceFreqMin %v exceeds DeviceFreqMax %v", p.DeviceFreqMin, p.DeviceFreqMax)
	case p.DeviceResourceCap < 0 || p.StationResourceCap < 0:
		return nil, fmt.Errorf("mecnet: resource caps must be non-negative")
	}

	sys := &System{
		Devices:  make([]Device, p.NumDevices),
		Stations: make([]Station, p.NumStations),
		Cloud:    Cloud{Proc: compute.Processor{Frequency: p.CloudFreq}},
	}
	if p.StationWire != nil {
		sys.StationWire = *p.StationWire
	} else {
		sys.StationWire = backhaul.DefaultStationToStation()
	}
	if p.CloudWire != nil {
		sys.CloudWire = *p.CloudWire
	} else {
		sys.CloudWire = backhaul.DefaultStationToCloud()
	}

	for s := range sys.Stations {
		sys.Stations[s] = Station{
			Proc:        compute.Processor{Frequency: p.StationFreq},
			ResourceCap: p.StationResourceCap,
		}
	}
	for i := range sys.Devices {
		freq := units.Frequency(rng.Uniform(r, float64(p.DeviceFreqMin), float64(p.DeviceFreqMax)))
		sys.Devices[i] = Device{
			Station:     i % p.NumStations, // round-robin keeps clusters balanced
			Link:        p.Picker.Pick(r),
			Proc:        compute.DeviceProcessor(freq),
			ResourceCap: p.DeviceResourceCap,
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
