// Package units defines the physical quantities used throughout the
// data-shared MEC simulator: data sizes, data rates, CPU frequencies,
// energies, and durations.
//
// All quantities are strongly typed wrappers over float64 (or int64 for
// ByteSize) so the compiler rejects, for example, adding an energy to a
// duration. Conversions between related quantities live here too, so the
// arithmetic of the paper's cost model reads naturally:
//
//	t := size.TransferTime(rate)        // ByteSize / BitRate -> Duration
//	e := power.EnergyOver(t)            // Watt * Duration -> Energy
package units
