package units

import (
	"fmt"
	"math"
	"time"
)

// ByteSize is a data size in bytes.
type ByteSize int64

// Common data-size scales. The paper states task inputs in kB; we follow
// the networking convention of decimal kilobytes.
const (
	Byte     ByteSize = 1
	Kilobyte          = 1000 * Byte
	Megabyte          = 1000 * Kilobyte
	Gigabyte          = 1000 * Megabyte
)

// Bytes returns the size as a plain int64 count of bytes.
func (s ByteSize) Bytes() int64 { return int64(s) }

// Bits returns the number of bits in s.
func (s ByteSize) Bits() int64 { return int64(s) * 8 }

// Kilobytes returns the size expressed in decimal kilobytes.
func (s ByteSize) Kilobytes() float64 { return float64(s) / float64(Kilobyte) }

// Scale multiplies the size by a dimensionless factor, rounding to the
// nearest byte. It is used for result-size estimation (η·X).
func (s ByteSize) Scale(f float64) ByteSize {
	return ByteSize(math.Round(float64(s) * f))
}

// TransferTime returns how long it takes to move s over a link with the
// given rate. A non-positive rate yields an infinite duration, which the
// cost model treats as "unreachable".
func (s ByteSize) TransferTime(r BitRate) Duration {
	if r <= 0 {
		return Forever
	}
	return Duration(float64(s.Bits()) / float64(r))
}

// String renders the size using the largest sub-unit with a small mantissa,
// e.g. "3.0MB" or "512B".
func (s ByteSize) String() string {
	switch {
	case s >= Gigabyte:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(Gigabyte))
	case s >= Megabyte:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(Megabyte))
	case s >= Kilobyte:
		return fmt.Sprintf("%.1fkB", float64(s)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// BitRate is a data rate in bits per second.
type BitRate float64

// Common data-rate scales.
const (
	BitPerSecond  BitRate = 1
	KbitPerSecond         = 1e3 * BitPerSecond
	MbitPerSecond         = 1e6 * BitPerSecond
	GbitPerSecond         = 1e9 * BitPerSecond
)

// Mbps returns the rate in megabits per second.
func (r BitRate) Mbps() float64 { return float64(r) / float64(MbitPerSecond) }

// String renders the rate in Mbps, the unit used by Table I of the paper.
func (r BitRate) String() string { return fmt.Sprintf("%.2fMbps", r.Mbps()) }

// Frequency is a CPU frequency in cycles per second (Hz).
type Frequency float64

// Common CPU-frequency scales.
const (
	Hertz     Frequency = 1
	Kilohertz           = 1e3 * Hertz
	Megahertz           = 1e6 * Hertz
	Gigahertz           = 1e9 * Hertz
)

// GHz returns the frequency in gigahertz.
func (f Frequency) GHz() float64 { return float64(f) / float64(Gigahertz) }

// String renders the frequency in GHz.
func (f Frequency) String() string { return fmt.Sprintf("%.2fGHz", f.GHz()) }

// Cycles is a CPU work amount in cycles.
type Cycles float64

// TimeAt returns the duration needed to execute c cycles at frequency f.
// A non-positive frequency yields Forever, marking the processor unusable.
func (c Cycles) TimeAt(f Frequency) Duration {
	if f <= 0 {
		return Forever
	}
	return Duration(float64(c) / float64(f))
}

// Energy is an amount of energy in joules.
type Energy float64

// Joule is the base energy unit.
const (
	Joule      Energy = 1
	Millijoule        = 1e-3 * Joule
)

// Joules returns the energy as a float64 count of joules.
func (e Energy) Joules() float64 { return float64(e) }

// String renders the energy in joules with adaptive precision.
func (e Energy) String() string {
	switch {
	case e == 0:
		return "0J"
	case math.Abs(float64(e)) < 0.01:
		return fmt.Sprintf("%.3gJ", float64(e))
	default:
		return fmt.Sprintf("%.3fJ", float64(e))
	}
}

// Power is an instantaneous power draw in watts.
type Power float64

// Watt is the base power unit.
const Watt Power = 1

// EnergyOver returns the energy consumed by drawing p for duration d.
// Infinite durations yield an infinite energy, keeping "unreachable"
// choices unattractive to every optimizer.
func (p Power) EnergyOver(d Duration) Energy {
	return Energy(float64(p) * float64(d))
}

// String renders the power in watts.
func (p Power) String() string { return fmt.Sprintf("%.2fW", float64(p)) }

// Duration is a length of time in seconds. The simulator uses its own
// duration type (rather than time.Duration) because cost-model arithmetic
// needs sub-nanosecond precision at intermediate steps and infinities for
// infeasible choices.
type Duration float64

// Duration scales.
const (
	Second      Duration = 1
	Millisecond          = 1e-3 * Second
	Microsecond          = 1e-6 * Second
)

// Forever is the sentinel duration for "cannot happen": transfers over dead
// links, compute on zero-frequency processors, and so on.
var Forever = Duration(math.Inf(1))

// Seconds returns the duration as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// IsFinite reports whether the duration is an ordinary finite value.
func (d Duration) IsFinite() bool {
	return !math.IsInf(float64(d), 0) && !math.IsNaN(float64(d))
}

// Std converts the duration to a time.Duration, saturating at the
// representable range. Use only for display and sleeping, never for math.
func (d Duration) Std() time.Duration {
	sec := float64(d)
	if sec >= math.MaxInt64/1e9 {
		return time.Duration(math.MaxInt64)
	}
	if sec <= -math.MaxInt64/1e9 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(sec * 1e9)
}

// String renders the duration in seconds or milliseconds.
func (d Duration) String() string {
	switch {
	case !d.IsFinite():
		return "inf"
	case math.Abs(float64(d)) >= 1:
		return fmt.Sprintf("%.3fs", float64(d))
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	}
}

// DurationMax returns the larger of two durations.
func DurationMax(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}
