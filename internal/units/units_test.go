package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteSizeConversions(t *testing.T) {
	tests := []struct {
		name  string
		size  ByteSize
		bytes int64
		bits  int64
		kb    float64
	}{
		{"zero", 0, 0, 0, 0},
		{"one byte", Byte, 1, 8, 0.001},
		{"one kB", Kilobyte, 1000, 8000, 1},
		{"3000 kB task input", 3000 * Kilobyte, 3_000_000, 24_000_000, 3000},
		{"one MB", Megabyte, 1_000_000, 8_000_000, 1000},
		{"one GB", Gigabyte, 1_000_000_000, 8_000_000_000, 1_000_000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.size.Bytes(); got != tt.bytes {
				t.Errorf("Bytes() = %d, want %d", got, tt.bytes)
			}
			if got := tt.size.Bits(); got != tt.bits {
				t.Errorf("Bits() = %d, want %d", got, tt.bits)
			}
			if got := tt.size.Kilobytes(); got != tt.kb {
				t.Errorf("Kilobytes() = %g, want %g", got, tt.kb)
			}
		})
	}
}

func TestByteSizeScale(t *testing.T) {
	tests := []struct {
		name   string
		size   ByteSize
		factor float64
		want   ByteSize
	}{
		{"identity", 1234, 1, 1234},
		{"result ratio eta=0.2", 1000 * Kilobyte, 0.2, 200 * Kilobyte},
		{"halving rounds", 5, 0.5, 3}, // 2.5 rounds to 3 (round half away from zero)
		{"zero factor", 999, 0, 0},
		{"growth", 100, 1.5, 150},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.size.Scale(tt.factor); got != tt.want {
				t.Errorf("Scale(%g) = %d, want %d", tt.factor, got, tt.want)
			}
		})
	}
}

func TestTransferTime(t *testing.T) {
	// 1 MB over 8 Mbps is exactly one second.
	d := Megabyte.TransferTime(8 * MbitPerSecond)
	if math.Abs(d.Seconds()-1) > 1e-12 {
		t.Errorf("1MB over 8Mbps = %v, want 1s", d)
	}
	// Table I: 3000 kB upload over 4G (5.85 Mbps) is about 4.1 s.
	d = (3000 * Kilobyte).TransferTime(5.85 * MbitPerSecond)
	if d.Seconds() < 4.0 || d.Seconds() > 4.2 {
		t.Errorf("3000kB over 5.85Mbps = %v, want ~4.1s", d)
	}
	if got := Megabyte.TransferTime(0); got != Forever {
		t.Errorf("zero rate should give Forever, got %v", got)
	}
	if got := Megabyte.TransferTime(-5); got != Forever {
		t.Errorf("negative rate should give Forever, got %v", got)
	}
}

func TestTransferTimeProportionality(t *testing.T) {
	// Property: doubling the size doubles the time; doubling the rate
	// halves it.
	f := func(kb uint16, mbps uint8) bool {
		size := ByteSize(kb) * Kilobyte
		// Widen before the +1: mbps+1 in uint8 wraps 0xff to a zero rate,
		// which yields Forever and an Inf−Inf NaN in the property.
		rate := BitRate(int(mbps)+1) * MbitPerSecond
		t1 := size.TransferTime(rate)
		t2 := (2 * size).TransferTime(rate)
		t3 := size.TransferTime(2 * rate)
		tol := 1e-12 * (1 + t1.Seconds())
		return math.Abs(t2.Seconds()-2*t1.Seconds()) < tol &&
			math.Abs(t3.Seconds()-t1.Seconds()/2) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesTimeAt(t *testing.T) {
	// 330 cycles/byte on 3,000,000 bytes at 1.5 GHz: 0.66 s.
	c := Cycles(330 * 3_000_000)
	d := c.TimeAt(1.5 * Gigahertz)
	if math.Abs(d.Seconds()-0.66) > 1e-9 {
		t.Errorf("time = %v, want 0.66s", d)
	}
	if got := c.TimeAt(0); got != Forever {
		t.Errorf("zero frequency should give Forever, got %v", got)
	}
}

func TestEnergyOver(t *testing.T) {
	e := Power(7.32).EnergyOver(2 * Second)
	if math.Abs(e.Joules()-14.64) > 1e-12 {
		t.Errorf("7.32W for 2s = %v, want 14.64J", e)
	}
	if e := Power(5).EnergyOver(Forever); !math.IsInf(e.Joules(), 1) {
		t.Errorf("energy over Forever should be +Inf, got %v", e)
	}
}

func TestDurationIsFinite(t *testing.T) {
	tests := []struct {
		name string
		d    Duration
		want bool
	}{
		{"zero", 0, true},
		{"one second", Second, true},
		{"forever", Forever, false},
		{"negative inf", Duration(math.Inf(-1)), false},
		{"nan", Duration(math.NaN()), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.d.IsFinite(); got != tt.want {
				t.Errorf("IsFinite() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDurationStd(t *testing.T) {
	if got := (250 * Millisecond).Std(); got != 250*time.Millisecond {
		t.Errorf("Std() = %v, want 250ms", got)
	}
	if got := Forever.Std(); got != time.Duration(math.MaxInt64) {
		t.Errorf("Forever.Std() should saturate, got %v", got)
	}
	if got := Duration(math.Inf(-1)).Std(); got != time.Duration(math.MinInt64) {
		t.Errorf("-inf Std() should saturate low, got %v", got)
	}
}

func TestDurationMax(t *testing.T) {
	if got := DurationMax(Second, 2*Second); got != 2*Second {
		t.Errorf("DurationMax = %v, want 2s", got)
	}
	if got := DurationMax(Forever, Second); got != Forever {
		t.Errorf("DurationMax with Forever = %v, want Forever", got)
	}
	if got := DurationMax(-Second, 0); got != 0 {
		t.Errorf("DurationMax(-1,0) = %v, want 0", got)
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		name string
		got  string
		want string
	}{
		{"bytes", (512 * Byte).String(), "512B"},
		{"kilobytes", (1500 * Kilobyte).String(), "1.50MB"},
		{"small kB", (2 * Kilobyte).String(), "2.0kB"},
		{"gigabytes", (2 * Gigabyte).String(), "2.00GB"},
		{"rate", (13.76 * MbitPerSecond).String(), "13.76Mbps"},
		{"freq", (2.4 * Gigahertz).String(), "2.40GHz"},
		{"power", Power(15.7).String(), "15.70W"},
		{"duration s", (2 * Second).String(), "2.000s"},
		{"duration ms", (15 * Millisecond).String(), "15.00ms"},
		{"duration inf", Forever.String(), "inf"},
		{"energy", Energy(14.64).String(), "14.640J"},
		{"energy zero", Energy(0).String(), "0J"},
		{"energy tiny", Energy(0.0001).String(), "0.0001J"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %q, want %q", tt.got, tt.want)
			}
		})
	}
}
