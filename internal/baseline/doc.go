// Package baseline implements the comparison algorithms of the paper's
// evaluation (Section V.B):
//
//   - AllToC: every task goes to the remote cloud.
//   - AllOffload: every task is offloaded off-device, filling the base
//     stations first and spilling to the cloud.
//   - HGOS: a reimplementation of the Heuristic Greedy Offloading Scheme
//     of Guo et al. [12]. The original targets ultra-dense networks and
//     greedily offloads computation to minimize task duration; the paper
//     notes it considers neither per-task deadlines nor the data-shared
//     structure of the workload. Our HGOS therefore greedily gives each
//     task the lowest-latency subsystem that still has resource capacity
//     and never checks the result against the task's deadline or energy
//     budget. This reproduces the published contrast: HGOS energy lands
//     near LP-HTA but above it (duration-greedy offloading moves more raw
//     data than the energy optimum), and its unsatisfied-task rate is much
//     higher and grows with load (Figs. 2–4).
//   - Random: uniform placement; a sanity floor for tests.
//   - BruteForceHTA: the exact HTA optimum by exhaustive search, for small
//     instances — used to measure LP-HTA's empirical approximation ratio.
package baseline
