package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/task"
)

// AllToC assigns every task to the cloud.
func AllToC(ts *task.Set) *core.Assignment {
	a := core.NewAssignment(ts)
	for i := 0; i < ts.Len(); i++ {
		a.PlaceAt(i, costmodel.SubsystemCloud)
	}
	return a
}

// AllOffload offloads every task off its device: onto the base station
// while the station's resource cap allows, then onto the cloud. Tasks are
// considered in ID order within each cluster.
func AllOffload(m *costmodel.Model, ts *task.Set) (*core.Assignment, error) {
	sys := m.System()
	a := core.NewAssignment(ts)
	stationLoad := make([]float64, sys.NumStations())
	for _, t := range sorted(ts) {
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		if stationLoad[st]+t.Resource <= sys.Stations[st].ResourceCap {
			a.Place(t.ID, costmodel.SubsystemStation)
			stationLoad[st] += t.Resource
		} else {
			a.Place(t.ID, costmodel.SubsystemCloud)
		}
	}
	return a, nil
}

// HGOS is the reimplemented Heuristic Greedy Offloading Scheme. Tasks are
// ordered by input size (largest first — the offloading decisions that
// matter most are made while capacity is plentiful) and each takes the
// subsystem with the minimal latency t_ijl among those whose resource
// capacity still fits the task. Deadlines are deliberately ignored; see
// the package comment.
func HGOS(m *costmodel.Model, ts *task.Set) (*core.Assignment, error) {
	sys := m.System()
	a := core.NewAssignment(ts)
	deviceLoad := make([]float64, sys.NumDevices())
	stationLoad := make([]float64, sys.NumStations())

	order := sorted(ts)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].InputSize() > order[j].InputSize()
	})

	for _, t := range order {
		opts, err := m.Eval(t)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}

		best := costmodel.SubsystemCloud // always has capacity
		bestTime := opts.At(costmodel.SubsystemCloud).Time
		if stationLoad[st]+t.Resource <= sys.Stations[st].ResourceCap {
			if c := opts.At(costmodel.SubsystemStation).Time; c < bestTime {
				best, bestTime = costmodel.SubsystemStation, c
			}
		}
		if deviceLoad[t.ID.User]+t.Resource <= sys.Devices[t.ID.User].ResourceCap {
			if c := opts.At(costmodel.SubsystemDevice).Time; c < bestTime {
				best = costmodel.SubsystemDevice
			}
		}

		a.Place(t.ID, best)
		switch best {
		case costmodel.SubsystemDevice:
			deviceLoad[t.ID.User] += t.Resource
		case costmodel.SubsystemStation:
			stationLoad[st] += t.Resource
		}
	}
	return a, nil
}

// Random places every task uniformly at random; for tests and sanity
// floors only.
func Random(r *rand.Rand, ts *task.Set) *core.Assignment {
	a := core.NewAssignment(ts)
	for i := 0; i < ts.Len(); i++ {
		a.PlaceAt(i, costmodel.Subsystems[r.Intn(3)])
	}
	return a
}

// BruteForceLimit bounds the instance size BruteForceHTA accepts.
const BruteForceLimit = 14

// BruteForceHTA finds the exact minimum-energy feasible assignment (no
// cancellations) by exhaustive search with branch-and-bound pruning. It
// returns core.ErrNoFeasible if no full placement satisfies C1–C3.
func BruteForceHTA(m *costmodel.Model, ts *task.Set) (*core.Assignment, error) {
	if ts.Len() > BruteForceLimit {
		return nil, fmt.Errorf("baseline: brute force limited to %d tasks, got %d", BruteForceLimit, ts.Len())
	}
	sys := m.System()
	tasks := sorted(ts)
	opts := make([]costmodel.Options, len(tasks))
	for i, t := range tasks {
		o, err := m.Eval(t)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		opts[i] = o
	}
	stations := make([]int, len(tasks))
	for i, t := range tasks {
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		stations[i] = st
	}

	deviceLoad := make([]float64, sys.NumDevices())
	stationLoad := make([]float64, sys.NumStations())
	choice := make([]costmodel.Subsystem, len(tasks))
	bestChoice := make([]costmodel.Subsystem, len(tasks))
	bestEnergy := math.Inf(1)

	var rec func(i int, energy float64)
	rec = func(i int, energy float64) {
		if energy >= bestEnergy {
			return
		}
		if i == len(tasks) {
			bestEnergy = energy
			copy(bestChoice, choice)
			return
		}
		t := tasks[i]
		for _, l := range costmodel.Subsystems {
			c := opts[i].At(l)
			if c.Time > t.Deadline {
				continue
			}
			switch l {
			case costmodel.SubsystemDevice:
				if deviceLoad[t.ID.User]+t.Resource > sys.Devices[t.ID.User].ResourceCap {
					continue
				}
				deviceLoad[t.ID.User] += t.Resource
			case costmodel.SubsystemStation:
				if stationLoad[stations[i]]+t.Resource > sys.Stations[stations[i]].ResourceCap {
					continue
				}
				stationLoad[stations[i]] += t.Resource
			}
			choice[i] = l
			rec(i+1, energy+float64(c.Energy))
			switch l {
			case costmodel.SubsystemDevice:
				deviceLoad[t.ID.User] -= t.Resource
			case costmodel.SubsystemStation:
				stationLoad[stations[i]] -= t.Resource
			}
		}
	}
	rec(0, 0)

	if math.IsInf(bestEnergy, 1) {
		return nil, core.ErrNoFeasible
	}
	a := core.NewAssignment(ts)
	for i, t := range tasks {
		a.Place(t.ID, bestChoice[i])
	}
	return a, nil
}

// sorted returns pointers to the tasks in deterministic ID order. The
// pointers reference the set's arena and stay valid while it is not
// mutated.
func sorted(ts *task.Set) []*task.Task {
	out := make([]*task.Task, ts.Len())
	for i := range out {
		out[i] = ts.At(i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}
