package baseline

import (
	"errors"
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
	"dsmec/internal/workload"
)

func holisticScenario(t *testing.T, seed int64, params workload.Params) *workload.Scenario {
	t.Helper()
	sc, err := workload.GenerateHolistic(rng.NewSource(seed), params)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestAllToC(t *testing.T) {
	sc := holisticScenario(t, 1, workload.Params{NumDevices: 10, NumStations: 2, NumTasks: 20})
	a := AllToC(sc.Tasks)
	for _, tk := range sc.Tasks.All() {
		if got := a.Of(tk.ID); got != costmodel.SubsystemCloud {
			t.Fatalf("task %v on %v, want cloud", tk.ID, got)
		}
	}
}

func TestAllOffloadRespectsStationCap(t *testing.T) {
	sc := holisticScenario(t, 2, workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 40, StationCap: 10,
	})
	a, err := AllOffload(sc.Model, sc.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, sc.System.NumStations())
	sawStation, sawCloud := false, false
	for _, tk := range sc.Tasks.All() {
		switch a.Of(tk.ID) {
		case costmodel.SubsystemStation:
			sawStation = true
			st, err := sc.System.StationOf(tk.ID.User)
			if err != nil {
				t.Fatal(err)
			}
			load[st] += tk.Resource
		case costmodel.SubsystemCloud:
			sawCloud = true
		default:
			t.Fatalf("task %v not offloaded", tk.ID)
		}
	}
	for st, l := range load {
		if l > sc.System.Stations[st].ResourceCap+1e-9 {
			t.Errorf("station %d overloaded: %g > %g", st, l, sc.System.Stations[st].ResourceCap)
		}
	}
	if !sawStation || !sawCloud {
		t.Error("with a tight cap both station and cloud placements should appear")
	}
}

func TestHGOSRespectsResourceCaps(t *testing.T) {
	sc := holisticScenario(t, 3, workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 50, DeviceCap: 5, StationCap: 15,
	})
	a, err := HGOS(sc.Model, sc.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	devLoad := make([]float64, sc.System.NumDevices())
	stLoad := make([]float64, sc.System.NumStations())
	for _, tk := range sc.Tasks.All() {
		switch a.Of(tk.ID) {
		case costmodel.SubsystemDevice:
			devLoad[tk.ID.User] += tk.Resource
		case costmodel.SubsystemStation:
			st, err := sc.System.StationOf(tk.ID.User)
			if err != nil {
				t.Fatal(err)
			}
			stLoad[st] += tk.Resource
		case costmodel.SubsystemCloud:
		default:
			t.Fatalf("task %v unplaced", tk.ID)
		}
	}
	for i, l := range devLoad {
		if l > sc.System.Devices[i].ResourceCap+1e-9 {
			t.Errorf("device %d overloaded", i)
		}
	}
	for s, l := range stLoad {
		if l > sc.System.Stations[s].ResourceCap+1e-9 {
			t.Errorf("station %d overloaded", s)
		}
	}
}

func TestHGOSIgnoresDeadlinesButSavesEnergy(t *testing.T) {
	// The published contrast (Figs. 2-3): HGOS energy is in LP-HTA's
	// neighbourhood, its unsatisfied rate is much higher.
	sc := holisticScenario(t, 4, workload.Params{NumDevices: 20, NumStations: 3, NumTasks: 80})

	hgos, err := HGOS(sc.Model, sc.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	hgosMetrics, err := core.Evaluate(sc.Model, sc.Tasks, hgos)
	if err != nil {
		t.Fatal(err)
	}
	alltoc, err := core.Evaluate(sc.Model, sc.Tasks, AllToC(sc.Tasks))
	if err != nil {
		t.Fatal(err)
	}
	if hgosMetrics.TotalEnergy >= alltoc.TotalEnergy {
		t.Errorf("HGOS energy %v should be well below AllToC %v",
			hgosMetrics.TotalEnergy, alltoc.TotalEnergy)
	}
}

func TestRandomPlacesEverything(t *testing.T) {
	sc := holisticScenario(t, 5, workload.Params{NumDevices: 10, NumStations: 2, NumTasks: 30})
	a := Random(rng.NewSource(5).Stream("random"), sc.Tasks)
	counts := map[costmodel.Subsystem]int{}
	for _, tk := range sc.Tasks.All() {
		counts[a.Of(tk.ID)]++
	}
	if counts[costmodel.SubsystemNone] != 0 {
		t.Error("random assignment left tasks unplaced")
	}
	if len(counts) < 2 {
		t.Error("30 random placements should hit at least two subsystems")
	}
}

// tinySystem builds a 2-device instance small enough for brute force.
func tinyInstance(t *testing.T, seed int64, numTasks int) *workload.Scenario {
	t.Helper()
	return holisticScenario(t, seed, workload.Params{
		NumDevices: 2, NumStations: 1, NumTasks: numTasks,
		DeviceCap: 5, StationCap: 8,
	})
}

func TestBruteForceOptimalAtMostLPHTA(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		sc := tinyInstance(t, seed, 8)
		opt, err := BruteForceHTA(sc.Model, sc.Tasks)
		if errors.Is(err, core.ErrNoFeasible) {
			continue // some random instances are over-constrained
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := core.CheckFeasible(sc.Model, sc.Tasks, opt); err != nil {
			t.Fatalf("seed %d: brute force produced infeasible assignment: %v", seed, err)
		}
		optMetrics, err := core.Evaluate(sc.Model, sc.Tasks, opt)
		if err != nil {
			t.Fatal(err)
		}

		lph, err := core.LPHTA(sc.Model, sc.Tasks, nil)
		if err != nil {
			t.Fatal(err)
		}
		lphMetrics, err := core.Evaluate(sc.Model, sc.Tasks, lph.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		// LP-HTA may cancel tasks (reducing energy), so the comparison
		// only applies when it placed everything.
		if lphMetrics.Cancelled == 0 && lphMetrics.TotalEnergy < optMetrics.TotalEnergy-1e-9 {
			t.Errorf("seed %d: LP-HTA energy %v beats the exact optimum %v",
				seed, lphMetrics.TotalEnergy, optMetrics.TotalEnergy)
		}
		// Empirical ratio check against the Theorem 2 bound.
		if lphMetrics.Cancelled == 0 && optMetrics.TotalEnergy > 0 {
			ratio := float64(lphMetrics.TotalEnergy) / float64(optMetrics.TotalEnergy)
			if bound := lph.RatioBoundEstimate(); ratio > bound+1e-9 {
				t.Errorf("seed %d: empirical ratio %.4f exceeds bound %.4f", seed, ratio, bound)
			}
		}
	}
}

func TestBruteForceRejectsLargeInstances(t *testing.T) {
	sc := holisticScenario(t, 9, workload.Params{NumDevices: 5, NumStations: 1, NumTasks: BruteForceLimit + 1})
	if _, err := BruteForceHTA(sc.Model, sc.Tasks); err == nil {
		t.Error("BruteForceHTA should reject oversized instances")
	}
}

func TestBruteForceNoFeasible(t *testing.T) {
	// A task whose deadline no subsystem can meet makes the instance
	// infeasible without cancellation.
	sc := tinyInstance(t, 10, 2)
	impossible := &task.Task{
		ID: task.ID{User: 0, Index: 99}, Kind: task.Holistic,
		LocalSize: 3000 * units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: units.Microsecond,
	}
	if err := sc.Tasks.Add(impossible); err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForceHTA(sc.Model, sc.Tasks); !errors.Is(err, core.ErrNoFeasible) {
		t.Errorf("err = %v, want ErrNoFeasible", err)
	}
}
