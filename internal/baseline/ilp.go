package baseline

import (
	"fmt"
	"sort"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/lp"
	"dsmec/internal/mecnet"
	"dsmec/internal/task"
)

// ILPOptimalHTA computes the exact HTA optimum (no cancellations) by
// branch-and-bound over the same per-cluster LP relaxation that LP-HTA
// rounds. It reaches instances far beyond BruteForceHTA's 3^n search and
// returns core.ErrNoFeasible when some cluster admits no full placement.
//
// nodeLimit bounds the branch-and-bound nodes per cluster (0 = default).
func ILPOptimalHTA(m *costmodel.Model, ts *task.Set, nodeLimit int) (*core.Assignment, error) {
	sys := m.System()
	a := core.NewAssignment(ts)

	perCluster := make([][]*task.Task, sys.NumStations())
	for _, t := range sorted(ts) {
		st, err := sys.StationOf(t.ID.User)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		perCluster[st] = append(perCluster[st], t)
	}

	for st, tasks := range perCluster {
		if len(tasks) == 0 {
			continue
		}
		if err := ilpCluster(m, st, tasks, nodeLimit, a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// greedyIncumbent builds a feasible warm-start point for branch-and-bound:
// every task takes its cheapest deadline-feasible subsystem that still has
// resource capacity, largest resource demand first. It returns nil when
// the greedy fails to place some task (branch-and-bound then starts cold).
func greedyIncumbent(sys *mecnet.System, station int, tasks []*task.Task, p *lp.Problem, binary []bool) []float64 {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Resource > tasks[order[b]].Resource
	})

	x := make([]float64, p.NumVars())
	deviceLoad := make(map[int]float64)
	stationLoad := 0.0
	for _, i := range order {
		t := tasks[i]
		best := -1
		bestEnergy := 0.0
		for li := range costmodel.Subsystems {
			v := 3*i + li
			if !binary[v] {
				continue // deadline-infeasible level
			}
			switch costmodel.Subsystems[li] {
			case costmodel.SubsystemDevice:
				if deviceLoad[t.ID.User]+t.Resource > sys.Devices[t.ID.User].ResourceCap {
					continue
				}
			case costmodel.SubsystemStation:
				if stationLoad+t.Resource > sys.Stations[station].ResourceCap {
					continue
				}
			}
			if best < 0 || p.Minimize[v] < bestEnergy {
				best, bestEnergy = li, p.Minimize[v]
			}
		}
		if best < 0 {
			return nil
		}
		x[3*i+best] = 1
		switch costmodel.Subsystems[best] {
		case costmodel.SubsystemDevice:
			deviceLoad[t.ID.User] += t.Resource
		case costmodel.SubsystemStation:
			stationLoad += t.Resource
		}
	}
	return x
}

// ilpCluster solves one cluster exactly and records the placements.
func ilpCluster(m *costmodel.Model, station int, tasks []*task.Task, nodeLimit int, a *core.Assignment) error {
	sys := m.System()
	n := 3 * len(tasks)
	p := &lp.Problem{
		Minimize: make([]float64, n),
		Upper:    make([]float64, n),
	}
	binary := make([]bool, n)

	for i, t := range tasks {
		opts, err := m.Eval(t)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		for li, l := range costmodel.Subsystems {
			v := 3*i + li
			c := opts.At(l)
			p.Minimize[v] = float64(c.Energy)
			if c.Time <= t.Deadline {
				p.Upper[v] = 1
				binary[v] = true
			} else {
				// Deadline-infeasible level: pin to zero as a continuous
				// variable so branch-and-bound never touches it.
				p.Upper[v] = 0
			}
		}
		row := make([]float64, n)
		row[3*i], row[3*i+1], row[3*i+2] = 1, 1, 1
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Sense: lp.EQ, RHS: 1})
	}

	byDevice := make(map[int][]int)
	for i, t := range tasks {
		byDevice[t.ID.User] = append(byDevice[t.ID.User], i)
	}
	devices := make([]int, 0, len(byDevice))
	for dev := range byDevice {
		devices = append(devices, dev)
	}
	sort.Ints(devices)
	for _, dev := range devices {
		row := make([]float64, n)
		for _, i := range byDevice[dev] {
			row[3*i] = tasks[i].Resource
		}
		p.Constraints = append(p.Constraints, lp.Constraint{
			Coeffs: row, Sense: lp.LE, RHS: sys.Devices[dev].ResourceCap,
		})
	}
	stationRow := make([]float64, n)
	for i, t := range tasks {
		stationRow[3*i+1] = t.Resource
	}
	p.Constraints = append(p.Constraints, lp.Constraint{
		Coeffs: stationRow, Sense: lp.LE, RHS: sys.Stations[station].ResourceCap,
	})

	// Gap 1e-6: optima are proven within 0.01%, which keeps the search
	// tractable when many placements have near-identical energies.
	sol, err := lp.SolveBinary(p, binary, lp.BinaryOptions{
		NodeLimit: nodeLimit,
		Incumbent: greedyIncumbent(sys, station, tasks, p, binary),
		Gap:       1e-4,
	})
	if err != nil {
		return fmt.Errorf("baseline: cluster %d: %w", station, err)
	}
	if sol.Status != lp.Optimal {
		return core.ErrNoFeasible
	}

	for i, t := range tasks {
		placed := false
		for li, l := range costmodel.Subsystems {
			if sol.X[3*i+li] > 0.5 {
				a.Place(t.ID, l)
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("baseline: cluster %d: task %v unplaced in optimal solution", station, t.ID)
		}
	}
	return nil
}
