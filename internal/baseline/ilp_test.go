package baseline

import (
	"errors"
	"testing"

	"dsmec/internal/core"
	"dsmec/internal/lp"
	"dsmec/internal/workload"
)

func TestILPMatchesBruteForce(t *testing.T) {
	// On brute-forceable instances the two exact solvers must agree on the
	// optimal energy.
	for seed := int64(0); seed < 10; seed++ {
		sc := tinyInstance(t, seed, 10)

		bf, bfErr := BruteForceHTA(sc.Model, sc.Tasks)
		ilp, ilpErr := ILPOptimalHTA(sc.Model, sc.Tasks, 0)

		if errors.Is(bfErr, core.ErrNoFeasible) {
			if !errors.Is(ilpErr, core.ErrNoFeasible) {
				t.Fatalf("seed %d: brute force infeasible but ILP says %v", seed, ilpErr)
			}
			continue
		}
		if bfErr != nil {
			t.Fatal(bfErr)
		}
		if ilpErr != nil {
			t.Fatalf("seed %d: ILP failed: %v", seed, ilpErr)
		}

		bfM, err := core.Evaluate(sc.Model, sc.Tasks, bf)
		if err != nil {
			t.Fatal(err)
		}
		ilpM, err := core.Evaluate(sc.Model, sc.Tasks, ilp)
		if err != nil {
			t.Fatal(err)
		}
		diff := float64(bfM.TotalEnergy - ilpM.TotalEnergy)
		if diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("seed %d: brute force %v != ILP %v", seed, bfM.TotalEnergy, ilpM.TotalEnergy)
		}
		if err := core.CheckFeasible(sc.Model, sc.Tasks, ilp); err != nil {
			t.Fatalf("seed %d: ILP solution infeasible: %v", seed, err)
		}
	}
}

func TestILPBeyondBruteForceReach(t *testing.T) {
	// 40 tasks across 3 clusters: far beyond 3^40 enumeration, easy for
	// branch-and-bound. The exact optimum must lower-bound LP-HTA.
	sc := holisticScenario(t, 20, workload.Params{
		NumDevices: 12, NumStations: 3, NumTasks: 40,
		DeadlineSlackMin: 1.3, DeadlineSlackMax: 3,
	})
	opt, err := ILPOptimalHTA(sc.Model, sc.Tasks, 0)
	if errors.Is(err, core.ErrNoFeasible) {
		t.Skip("instance infeasible without cancellation")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckFeasible(sc.Model, sc.Tasks, opt); err != nil {
		t.Fatal(err)
	}
	optM, err := core.Evaluate(sc.Model, sc.Tasks, opt)
	if err != nil {
		t.Fatal(err)
	}

	lph, err := core.LPHTA(sc.Model, sc.Tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	lphM, err := core.Evaluate(sc.Model, sc.Tasks, lph.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if lphM.Cancelled == 0 && lphM.TotalEnergy < optM.TotalEnergy-1e-9 {
		t.Errorf("LP-HTA %v beats the exact optimum %v", lphM.TotalEnergy, optM.TotalEnergy)
	}
	// And on this loose-deadline instance LP-HTA should be near-optimal.
	if lphM.Cancelled == 0 {
		ratio := float64(lphM.TotalEnergy) / float64(optM.TotalEnergy)
		if ratio > 1.5 {
			t.Errorf("LP-HTA ratio %.3f unexpectedly far from optimal", ratio)
		}
	}
}

func TestILPNodeLimitPropagates(t *testing.T) {
	sc := holisticScenario(t, 21, workload.Params{
		NumDevices: 10, NumStations: 2, NumTasks: 40,
		DeviceCap: 3, StationCap: 12, // tight caps force heavy branching
	})
	_, err := ILPOptimalHTA(sc.Model, sc.Tasks, 1)
	// Either the node limit trips, or the instance is infeasible/solved in
	// one node per cluster; only the error type matters when it trips.
	if err != nil && !errors.Is(err, core.ErrNoFeasible) && !errors.Is(err, lp.ErrNodeLimit) {
		t.Errorf("unexpected error: %v", err)
	}
}
