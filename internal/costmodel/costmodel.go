package costmodel

import (
	"fmt"

	"dsmec/internal/compute"
	"dsmec/internal/mecnet"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Subsystem identifies where a task runs: the paper's index l.
type Subsystem int

// The three subsystems of the paper, plus SubsystemNone for cancelled
// tasks.
const (
	SubsystemNone    Subsystem = 0
	SubsystemDevice  Subsystem = 1
	SubsystemStation Subsystem = 2
	SubsystemCloud   Subsystem = 3
)

// Subsystems lists the three placement choices in index order.
var Subsystems = [3]Subsystem{SubsystemDevice, SubsystemStation, SubsystemCloud}

// String names the subsystem.
func (s Subsystem) String() string {
	switch s {
	case SubsystemNone:
		return "none"
	case SubsystemDevice:
		return "device"
	case SubsystemStation:
		return "station"
	case SubsystemCloud:
		return "cloud"
	default:
		return fmt.Sprintf("Subsystem(%d)", int(s))
	}
}

// Cost is the delay and energy of one placement choice.
type Cost struct {
	Time   units.Duration // t_ijl
	Energy units.Energy   // E_ijl
}

// Options holds the cost of every subsystem choice for one task, indexed
// by Subsystem (index 0 unused).
type Options struct {
	ByLevel [4]Cost
}

// At returns the cost of running the task on subsystem l.
func (o Options) At(l Subsystem) Cost { return o.ByLevel[l] }

// Model evaluates the Section II formulas against a concrete system.
type Model struct {
	sys    *mecnet.System
	cycles compute.CycleModel
	result compute.ResultModel
}

// New builds a cost model. cycles is λ (CPU cycles per input size), result
// is η (result size per input size); nil values default to the paper's
// evaluation models (λ = 330 cycles/byte, η = 0.2).
func New(sys *mecnet.System, cycles compute.CycleModel, result compute.ResultModel) (*Model, error) {
	if sys == nil {
		return nil, fmt.Errorf("costmodel: nil system")
	}
	if cycles == nil {
		cycles = compute.DefaultCycles()
	}
	if result == nil {
		result = compute.DefaultResult()
	}
	return &Model{sys: sys, cycles: cycles, result: result}, nil
}

// System returns the topology the model evaluates against.
func (m *Model) System() *mecnet.System { return m.sys }

// ResultSize returns η(size), the output size for the given input size.
func (m *Model) ResultSize(size units.ByteSize) units.ByteSize {
	return m.result.ResultSize(size)
}

// Cycles returns λ(size), the cycle demand for the given input size.
func (m *Model) Cycles(size units.ByteSize) units.Cycles {
	return m.cycles.Cycles(size)
}

// Eval returns the cost of every placement choice for t.
func (m *Model) Eval(t *task.Task) (Options, error) {
	dev, err := m.sys.Device(t.ID.User)
	if err != nil {
		return Options{}, fmt.Errorf("costmodel: task %v: %w", t.ID, err)
	}

	var (
		src       *mecnet.Device
		sameClust bool
	)
	if t.HasExternal() {
		src, err = m.sys.Device(t.ExternalSource)
		if err != nil {
			return Options{}, fmt.Errorf("costmodel: task %v external source: %w", t.ID, err)
		}
		sameClust = src.Station == dev.Station
	}

	input := t.InputSize()
	cycles := m.cycles.Cycles(input)
	result := m.result.ResultSize(input)

	var opts Options
	opts.ByLevel[SubsystemDevice] = m.onDevice(t, dev, src, sameClust, cycles)
	opts.ByLevel[SubsystemStation] = m.onStation(t, dev, src, sameClust, cycles, result)
	opts.ByLevel[SubsystemCloud] = m.onCloud(t, dev, src, cycles, result)
	return opts, nil
}

// onDevice is the l = 1 case: retrieve β_ij from the source device (via the
// stations), then compute locally.
//
//	t^(R) = β/r_L^(U) + β/r_i^(D)            (+ t_B,B(β) across clusters)
//	E^(R) = e_L^(T)(β) + e_i^(R)(β)          (+ e_B,B(β) across clusters)
//	t^(C) = λ(α+β)/f_i,  E^(C) = κλ(α+β)f_i²
func (m *Model) onDevice(t *task.Task, dev, src *mecnet.Device, sameClust bool, cycles units.Cycles) Cost {
	var c Cost
	if t.HasExternal() {
		beta := t.ExternalSize
		c.Time += src.Link.UploadTime(beta) + dev.Link.DownloadTime(beta)
		c.Energy += src.Link.UploadEnergy(beta) + dev.Link.DownloadEnergy(beta)
		if !sameClust {
			c.Time += m.sys.StationWire.TransferTime(beta)
			c.Energy += m.sys.StationWire.TransferEnergy(beta)
		}
	}
	c.Time += dev.Proc.ExecTime(cycles)
	c.Energy += dev.Proc.ExecEnergy(cycles)
	return c
}

// onStation is the l = 2 case: the local data goes up from device i while
// the external data goes up from device L (in parallel, hence the max);
// the station computes (free, grid powered); the result comes back down to
// device i.
//
//	t^(R) = max{β/r_L^(U) (+ t_B,B(β)), α/r_i^(U)} + η(α+β)/r_i^(D)
//	E^(R) = e_L^(T)(β) + e_i^(T)(α) + e_i^(R)(η(α+β)) (+ e_B,B(β))
//	t^(C) = λ(α+β)/f_s
func (m *Model) onStation(t *task.Task, dev, src *mecnet.Device, sameClust bool, cycles units.Cycles, result units.ByteSize) Cost {
	var c Cost
	externalPath := units.Duration(0)
	if t.HasExternal() {
		beta := t.ExternalSize
		externalPath = src.Link.UploadTime(beta)
		c.Energy += src.Link.UploadEnergy(beta)
		if !sameClust {
			externalPath += m.sys.StationWire.TransferTime(beta)
			c.Energy += m.sys.StationWire.TransferEnergy(beta)
		}
	}
	localPath := dev.Link.UploadTime(t.LocalSize)
	c.Energy += dev.Link.UploadEnergy(t.LocalSize)

	c.Time += units.DurationMax(externalPath, localPath)
	c.Time += dev.Link.DownloadTime(result)
	c.Energy += dev.Link.DownloadEnergy(result)

	station := &m.sys.Stations[dev.Station]
	c.Time += station.Proc.ExecTime(cycles)
	c.Energy += station.Proc.ExecEnergy(cycles) // zero for grid-powered stations
	return c
}

// onCloud is the l = 3 case: both inputs go up in parallel as for l = 2,
// everything (inputs plus result) crosses the station-to-cloud backhaul,
// the cloud computes, and the result comes down to device i.
//
//	t^(R) = max{β/r_L^(U), α/r_i^(U)} + η(α+β)/r_i^(D)
//	        + t_B,C(α+β+η(α+β))
//	E^(R) = e_L^(T)(β) + e_i^(T)(α) + e_i^(R)(η(α+β))
//	        + e_B,C(α+β+η(α+β))
//	t^(C) = λ(α+β)/f_c
func (m *Model) onCloud(t *task.Task, dev, src *mecnet.Device, cycles units.Cycles, result units.ByteSize) Cost {
	var c Cost
	externalPath := units.Duration(0)
	if t.HasExternal() {
		beta := t.ExternalSize
		externalPath = src.Link.UploadTime(beta)
		c.Energy += src.Link.UploadEnergy(beta)
	}
	localPath := dev.Link.UploadTime(t.LocalSize)
	c.Energy += dev.Link.UploadEnergy(t.LocalSize)

	c.Time += units.DurationMax(externalPath, localPath)
	c.Time += dev.Link.DownloadTime(result)
	c.Energy += dev.Link.DownloadEnergy(result)

	wan := t.InputSize() + result
	c.Time += m.sys.CloudWire.TransferTime(wan)
	c.Energy += m.sys.CloudWire.TransferEnergy(wan)

	c.Time += m.sys.Cloud.Proc.ExecTime(cycles)
	c.Energy += m.sys.Cloud.Proc.ExecEnergy(cycles) // zero for the grid-powered cloud
	return c
}

// EvalAll evaluates every task of a set, returning costs keyed by task ID.
func (m *Model) EvalAll(ts *task.Set) (map[task.ID]Options, error) {
	out := make(map[task.ID]Options, ts.Len())
	for i := 0; i < ts.Len(); i++ {
		t := ts.At(i)
		opts, err := m.Eval(t)
		if err != nil {
			return nil, err
		}
		out[t.ID] = opts
	}
	return out, nil
}
