package costmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dsmec/internal/backhaul"
	"dsmec/internal/compute"
	"dsmec/internal/mecnet"
	"dsmec/internal/radio"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// testSystem builds a deterministic two-cluster system:
// device 0 (4G, 1 GHz) and device 1 (Wi-Fi, 2 GHz) on station 0;
// device 2 (4G, 1.5 GHz) on station 1.
func testSystem(t *testing.T) *mecnet.System {
	t.Helper()
	sys := &mecnet.System{
		Devices: []mecnet.Device{
			{Station: 0, Link: radio.FourG, Proc: compute.DeviceProcessor(1 * units.Gigahertz), ResourceCap: 100},
			{Station: 0, Link: radio.WiFi, Proc: compute.DeviceProcessor(2 * units.Gigahertz), ResourceCap: 100},
			{Station: 1, Link: radio.FourG, Proc: compute.DeviceProcessor(1.5 * units.Gigahertz), ResourceCap: 100},
		},
		Stations: []mecnet.Station{
			{Proc: compute.StationProcessor(), ResourceCap: 1000},
			{Proc: compute.StationProcessor(), ResourceCap: 1000},
		},
		Cloud:       mecnet.Cloud{Proc: compute.CloudProcessor()},
		StationWire: backhaul.DefaultStationToStation(),
		CloudWire:   backhaul.DefaultStationToCloud(),
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func newModel(t *testing.T, sys *mecnet.System) *Model {
	t.Helper()
	m, err := New(sys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubsystemString(t *testing.T) {
	tests := []struct {
		s    Subsystem
		want string
	}{
		{SubsystemNone, "none"},
		{SubsystemDevice, "device"},
		{SubsystemStation, "station"},
		{SubsystemCloud, "cloud"},
		{Subsystem(9), "Subsystem(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Error("New(nil) should fail")
	}
	sys := testSystem(t)
	m, err := New(sys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.System() != sys {
		t.Error("System() should return the constructor argument")
	}
	// Defaults: λ = 330 cycles/byte, η = 0.2.
	if got := m.Cycles(100); got != 33000 {
		t.Errorf("default Cycles(100B) = %v, want 33000", got)
	}
	if got := m.ResultSize(1000); got != 200 {
		t.Errorf("default ResultSize(1000B) = %v, want 200", got)
	}
}

func TestEvalLocalOnlyTaskOnDevice(t *testing.T) {
	// A task with no external data run locally: zero transmission, pure
	// compute. α = 1000 kB on a 1 GHz device.
	m := newModel(t, testSystem(t))
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: 1000 * units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: 10 * units.Second,
	}
	opts, err := m.Eval(tk)
	if err != nil {
		t.Fatal(err)
	}
	got := opts.At(SubsystemDevice)
	// t = λX/f = 330·1e6/1e9 = 0.33 s; E = κλXf² = 1e-27·330e6·1e18 = 0.33 J.
	if math.Abs(got.Time.Seconds()-0.33) > 1e-9 {
		t.Errorf("device time = %v, want 0.33s", got.Time)
	}
	if math.Abs(got.Energy.Joules()-0.33) > 1e-9 {
		t.Errorf("device energy = %v, want 0.33J", got.Energy)
	}
}

func TestEvalLocalOnlyTaskOnStation(t *testing.T) {
	// Station run: upload α over 4G, station computes, download η·α.
	m := newModel(t, testSystem(t))
	alpha := 1000 * units.Kilobyte
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: alpha, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: 10 * units.Second,
	}
	opts, err := m.Eval(tk)
	if err != nil {
		t.Fatal(err)
	}
	got := opts.At(SubsystemStation)

	up := alpha.TransferTime(5.85 * units.MbitPerSecond)
	down := (200 * units.Kilobyte).TransferTime(13.76 * units.MbitPerSecond)
	exec := units.Cycles(330 * 1e6).TimeAt(4 * units.Gigahertz)
	wantTime := up + down + exec
	if math.Abs(got.Time.Seconds()-wantTime.Seconds()) > 1e-9 {
		t.Errorf("station time = %v, want %v", got.Time, wantTime)
	}
	wantEnergy := units.Power(7.32).EnergyOver(up) + units.Power(1.6).EnergyOver(down)
	if math.Abs(got.Energy.Joules()-wantEnergy.Joules()) > 1e-9 {
		t.Errorf("station energy = %v, want %v", got.Energy, wantEnergy)
	}
}

func TestEvalCloudAddsBackhaul(t *testing.T) {
	m := newModel(t, testSystem(t))
	alpha := 1000 * units.Kilobyte
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: alpha, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: 10 * units.Second,
	}
	opts, err := m.Eval(tk)
	if err != nil {
		t.Fatal(err)
	}
	cloud := opts.At(SubsystemCloud)
	station := opts.At(SubsystemStation)

	// Cloud path must include the 250 ms WAN latency plus serialization of
	// α + η·α = 1200 kB at 100 Mbps = 96 ms, and the slower cloud CPU.
	wan := m.System().CloudWire.TransferTime(1200 * units.Kilobyte)
	if wan.Seconds() <= 0.25 {
		t.Fatalf("test setup: WAN time %v should exceed latency", wan)
	}
	execCloud := units.Cycles(330 * 1e6).TimeAt(2.4 * units.Gigahertz)
	execStation := units.Cycles(330 * 1e6).TimeAt(4 * units.Gigahertz)
	wantDelta := wan + execCloud - execStation
	gotDelta := cloud.Time - station.Time
	if math.Abs(gotDelta.Seconds()-wantDelta.Seconds()) > 1e-9 {
		t.Errorf("cloud-station time delta = %v, want %v", gotDelta, wantDelta)
	}
	// E_ij3 > E_ij2 (paper, Section II.B).
	if cloud.Energy <= station.Energy {
		t.Errorf("cloud energy %v should exceed station energy %v", cloud.Energy, station.Energy)
	}
}

func TestEvalExternalSameCluster(t *testing.T) {
	// Task on device 0 with external data held by device 1 (same cluster).
	m := newModel(t, testSystem(t))
	alpha, beta := 500*units.Kilobyte, 250*units.Kilobyte
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: alpha, ExternalSize: beta, ExternalSource: 1,
		Resource: 1, Deadline: 10 * units.Second,
	}
	opts, err := m.Eval(tk)
	if err != nil {
		t.Fatal(err)
	}

	// l = 1: β up from device 1 (Wi-Fi), β down to device 0 (4G), compute.
	dev := opts.At(SubsystemDevice)
	upL := beta.TransferTime(12.88 * units.MbitPerSecond)
	downI := beta.TransferTime(13.76 * units.MbitPerSecond)
	exec := units.Cycles(330 * 750e3).TimeAt(1 * units.Gigahertz)
	wantTime := upL + downI + exec
	if math.Abs(dev.Time.Seconds()-wantTime.Seconds()) > 1e-9 {
		t.Errorf("device time = %v, want %v", dev.Time, wantTime)
	}
	wantEnergy := units.Power(15.7).EnergyOver(upL) + // device 1 Wi-Fi tx
		units.Power(1.6).EnergyOver(downI) + // device 0 4G rx
		units.Energy(1e-27*330*750e3*1e18) // κλ(α+β)f²
	if math.Abs(dev.Energy.Joules()-wantEnergy.Joules()) > 1e-9 {
		t.Errorf("device energy = %v, want %v", dev.Energy, wantEnergy)
	}

	// l = 2: parallel uploads; external path is max'd with local.
	st := opts.At(SubsystemStation)
	localUp := alpha.TransferTime(5.85 * units.MbitPerSecond)
	extUp := beta.TransferTime(12.88 * units.MbitPerSecond)
	resultDown := (150 * units.Kilobyte).TransferTime(13.76 * units.MbitPerSecond)
	execS := units.Cycles(330 * 750e3).TimeAt(4 * units.Gigahertz)
	wantST := units.DurationMax(extUp, localUp) + resultDown + execS
	if math.Abs(st.Time.Seconds()-wantST.Seconds()) > 1e-9 {
		t.Errorf("station time = %v, want %v", st.Time, wantST)
	}
}

func TestEvalExternalCrossCluster(t *testing.T) {
	// Task on device 0 (station 0) with external data on device 2
	// (station 1): the station wire must appear in l = 1 and l = 2 but not
	// in the l = 3 formulas (per the paper's equations).
	sys := testSystem(t)
	m := newModel(t, sys)
	alpha, beta := 500*units.Kilobyte, 250*units.Kilobyte
	cross := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: alpha, ExternalSize: beta, ExternalSource: 2,
		Resource: 1, Deadline: 10 * units.Second,
	}
	// Same-cluster variant with an identical source link (device 2 is 4G;
	// no same-cluster 4G peer exists, so build one by comparing formulas
	// directly instead: cross-cluster must exceed same-cluster by the wire
	// terms when the source links match).
	optsCross, err := m.Eval(cross)
	if err != nil {
		t.Fatal(err)
	}

	wireT := sys.StationWire.TransferTime(beta)
	wireE := sys.StationWire.TransferEnergy(beta)

	// Reconstruct expected l = 1 from first principles.
	dev := optsCross.At(SubsystemDevice)
	upL := beta.TransferTime(5.85 * units.MbitPerSecond) // device 2 is 4G
	downI := beta.TransferTime(13.76 * units.MbitPerSecond)
	exec := units.Cycles(330 * 750e3).TimeAt(1 * units.Gigahertz)
	wantTime := upL + downI + exec + wireT
	if math.Abs(dev.Time.Seconds()-wantTime.Seconds()) > 1e-9 {
		t.Errorf("cross-cluster device time = %v, want %v", dev.Time, wantTime)
	}
	wantEnergy := units.Power(7.32).EnergyOver(upL) +
		units.Power(1.6).EnergyOver(downI) +
		units.Energy(1e-27*330*750e3*1e18) + wireE
	if math.Abs(dev.Energy.Joules()-wantEnergy.Joules()) > 1e-9 {
		t.Errorf("cross-cluster device energy = %v, want %v", dev.Energy, wantEnergy)
	}

	// l = 2: the external path includes the wire inside the max.
	st := optsCross.At(SubsystemStation)
	localUp := alpha.TransferTime(5.85 * units.MbitPerSecond)
	extUp := upL + wireT
	resultDown := (150 * units.Kilobyte).TransferTime(13.76 * units.MbitPerSecond)
	execS := units.Cycles(330 * 750e3).TimeAt(4 * units.Gigahertz)
	wantST := units.DurationMax(extUp, localUp) + resultDown + execS
	if math.Abs(st.Time.Seconds()-wantST.Seconds()) > 1e-9 {
		t.Errorf("cross-cluster station time = %v, want %v", st.Time, wantST)
	}

	// l = 3: per the paper's t_ij3/E_ij3, no station-wire term appears;
	// verify by checking the cloud cost has no wireE dependence: recompute
	// with a free station wire and compare.
	sysFree := testSystem(t)
	sysFree.StationWire.EnergyPerByte = 0
	sysFree.StationWire.Latency = 0
	if err := sysFree.Validate(); err != nil {
		t.Fatal(err)
	}
	mFree := newModel(t, sysFree)
	optsFree, err := mFree.Eval(cross)
	if err != nil {
		t.Fatal(err)
	}
	if optsFree.At(SubsystemCloud) != optsCross.At(SubsystemCloud) {
		t.Error("cloud cost should not depend on the station-to-station wire")
	}
	if optsFree.At(SubsystemDevice) == optsCross.At(SubsystemDevice) {
		t.Error("device cost should depend on the station-to-station wire")
	}
}

func TestEvalErrors(t *testing.T) {
	m := newModel(t, testSystem(t))
	badUser := &task.Task{
		ID: task.ID{User: 9, Index: 0}, Kind: task.Holistic,
		LocalSize: units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: units.Second,
	}
	if _, err := m.Eval(badUser); err == nil {
		t.Error("Eval with out-of-range user should fail")
	}
	badSource := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: units.Kilobyte, ExternalSize: units.Kilobyte, ExternalSource: 9,
		Resource: 1, Deadline: units.Second,
	}
	if _, err := m.Eval(badSource); err == nil {
		t.Error("Eval with out-of-range source should fail")
	}
	if _, err := m.Eval(badSource); err == nil || !strings.Contains(err.Error(), "external source") {
		t.Error("error should mention the external source")
	}
}

func TestEnergyOrderingTypicalTasks(t *testing.T) {
	// The paper's working assumption E_ij1 < E_ij2 < E_ij3 (Corollary 1
	// precondition) should hold for typical evaluation-sized tasks.
	m := newModel(t, testSystem(t))
	r := rng.NewSource(3).Stream("tasks")
	for trial := 0; trial < 200; trial++ {
		alpha := units.ByteSize(rng.UniformInt(r, 100, 3000)) * units.Kilobyte
		beta := alpha.Scale(rng.Uniform(r, 0, 0.5))
		user := rng.UniformInt(r, 0, 2)
		source := task.NoExternalSource
		if beta > 0 {
			source = (user + 1) % 3
		}
		tk := &task.Task{
			ID: task.ID{User: user, Index: trial}, Kind: task.Holistic,
			LocalSize: alpha, ExternalSize: beta, ExternalSource: source,
			Resource: 1, Deadline: 100 * units.Second,
		}
		opts, err := m.Eval(tk)
		if err != nil {
			t.Fatal(err)
		}
		e1 := opts.At(SubsystemDevice).Energy
		e2 := opts.At(SubsystemStation).Energy
		e3 := opts.At(SubsystemCloud).Energy
		if !(e1 < e2 && e2 < e3) {
			t.Fatalf("trial %d: energy ordering violated: E1=%v E2=%v E3=%v (α=%v β=%v)",
				trial, e1, e2, e3, alpha, beta)
		}
	}
}

func TestCostsScaleWithInput(t *testing.T) {
	// Property: larger input never decreases any time or energy.
	m := newModel(t, testSystem(t))
	f := func(a, b uint16) bool {
		small, big := units.ByteSize(a)*units.Kilobyte, units.ByteSize(b)*units.Kilobyte
		if small > big {
			small, big = big, small
		}
		mk := func(size units.ByteSize) *task.Task {
			return &task.Task{
				ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
				LocalSize: size, ExternalSource: task.NoExternalSource,
				Resource: 1, Deadline: units.Second,
			}
		}
		o1, err := m.Eval(mk(small))
		if err != nil {
			return false
		}
		o2, err := m.Eval(mk(big))
		if err != nil {
			return false
		}
		for _, l := range Subsystems {
			if o1.At(l).Time > o2.At(l).Time || o1.At(l).Energy > o2.At(l).Energy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalAll(t *testing.T) {
	m := newModel(t, testSystem(t))
	mk := func(u, j int) *task.Task {
		return &task.Task{
			ID: task.ID{User: u, Index: j}, Kind: task.Holistic,
			LocalSize: 100 * units.Kilobyte, ExternalSource: task.NoExternalSource,
			Resource: 1, Deadline: units.Second,
		}
	}
	ts, err := task.NewSet(mk(0, 0), mk(1, 0), mk(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.EvalAll(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("EvalAll returned %d entries, want 3", len(all))
	}
	for id, opts := range all {
		if opts.At(SubsystemDevice).Time <= 0 {
			t.Errorf("task %v: non-positive device time", id)
		}
	}

	bad := mk(9, 0)
	tsBad, err := task.NewSet(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvalAll(tsBad); err == nil {
		t.Error("EvalAll with bad task should fail")
	}
}
