package costmodel

import (
	"fmt"
	"sort"

	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Infrastructure is the Attribution key for energy drawn from the grid —
// base-station wires and the WAN — rather than from any device battery.
const Infrastructure = -1

// Attribution splits E_ijl by who pays it: device indices map to battery
// energy (radio plus computation), Infrastructure collects the wired
// backhaul shares. The values sum to the corresponding Options energy.
type Attribution map[int]units.Energy

// Battery returns the battery share of device i.
func (a Attribution) Battery(i int) units.Energy { return a[i] }

// Total returns the sum over all payers. Summation runs in sorted key
// order: float addition is order-dependent in the last bits, and map
// order would make the total differ between otherwise identical runs.
func (a Attribution) Total() units.Energy {
	keys := make([]int, 0, len(a))
	for who := range a {
		keys = append(keys, who)
	}
	sort.Ints(keys)
	var sum units.Energy
	for _, who := range keys {
		sum += a[who]
	}
	return sum
}

// Attribute computes who pays the energy of running t on subsystem l.
// The split follows Section II:
//
//   - the source device L_ij pays e_L^(T)(β) whenever external data moves,
//   - the owning device i pays its uploads, downloads and (for l = 1) the
//     computation energy κλ(α+β)f²,
//   - the station↔station and station↔cloud wires bill Infrastructure.
func (m *Model) Attribute(t *task.Task, l Subsystem) (Attribution, error) {
	dev, err := m.sys.Device(t.ID.User)
	if err != nil {
		return nil, fmt.Errorf("costmodel: task %v: %w", t.ID, err)
	}
	out := Attribution{}
	add := func(who int, e units.Energy) {
		if e != 0 {
			out[who] += e
		}
	}

	var sameCluster bool
	if t.HasExternal() {
		src, err := m.sys.Device(t.ExternalSource)
		if err != nil {
			return nil, fmt.Errorf("costmodel: task %v external source: %w", t.ID, err)
		}
		sameCluster = src.Station == dev.Station
		// The source device uploads β for every placement choice.
		add(t.ExternalSource, src.Link.UploadEnergy(t.ExternalSize))
	}

	input := t.InputSize()
	cycles := m.cycles.Cycles(input)
	result := m.result.ResultSize(input)
	home := t.ID.User

	switch l {
	case SubsystemDevice:
		if t.HasExternal() {
			add(home, dev.Link.DownloadEnergy(t.ExternalSize))
			if !sameCluster {
				add(Infrastructure, m.sys.StationWire.TransferEnergy(t.ExternalSize))
			}
		}
		add(home, dev.Proc.ExecEnergy(cycles))

	case SubsystemStation:
		if t.HasExternal() && !sameCluster {
			add(Infrastructure, m.sys.StationWire.TransferEnergy(t.ExternalSize))
		}
		add(home, dev.Link.UploadEnergy(t.LocalSize))
		add(home, dev.Link.DownloadEnergy(result))

	case SubsystemCloud:
		add(home, dev.Link.UploadEnergy(t.LocalSize))
		add(home, dev.Link.DownloadEnergy(result))
		add(Infrastructure, m.sys.CloudWire.TransferEnergy(input+result))

	default:
		return nil, fmt.Errorf("costmodel: task %v: invalid subsystem %d", t.ID, int(l))
	}
	return out, nil
}
