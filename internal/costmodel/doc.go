// Package costmodel implements Section II of the paper: the closed-form
// delay t_ijl and energy E_ijl of running task T_ij on subsystem l, where
// l = 1 is the task's own mobile device, l = 2 its base station, and l = 3
// the remote cloud.
//
// Each cost combines the computation model (II.A) and the transmission
// model (II.B):
//
//	t_ijl = t_ijl^(C) + t_ijl^(R)
//	E_ij1 = E_ij1^(R) + E_ij1^(C)        (battery device computes)
//	E_ijl = E_ijl^(R)            l = 2,3 (grid-powered compute is free)
//
// The transmission terms depend on where the external data lives: same
// cluster as the task's device, or another cluster (adding the
// station-to-station backhaul).
package costmodel
