package costmodel

import (
	"math"
	"testing"

	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

func TestAttributionSumsToTotal(t *testing.T) {
	// Property: for any task and placement, the attribution entries sum
	// exactly to the E_ijl the cost model reports.
	m := newModel(t, testSystem(t))
	r := rng.NewSource(17).Stream("attr")
	for trial := 0; trial < 200; trial++ {
		alpha := units.ByteSize(rng.UniformInt(r, 50, 3000)) * units.Kilobyte
		beta := alpha.Scale(rng.Uniform(r, 0, 0.5))
		user := rng.UniformInt(r, 0, 2)
		source := task.NoExternalSource
		if beta > 0 {
			source = (user + 1 + rng.UniformInt(r, 0, 1)) % 3
			if source == user {
				source = (user + 1) % 3
			}
		}
		tk := &task.Task{
			ID: task.ID{User: user, Index: trial}, Kind: task.Holistic,
			LocalSize: alpha, ExternalSize: beta, ExternalSource: source,
			Resource: 1, Deadline: 100 * units.Second,
		}
		opts, err := m.Eval(tk)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range Subsystems {
			attr, err := m.Attribute(tk, l)
			if err != nil {
				t.Fatal(err)
			}
			want := opts.At(l).Energy
			if got := attr.Total(); math.Abs(got.Joules()-want.Joules()) > 1e-9 {
				t.Fatalf("trial %d level %v: attribution total %v != E_ijl %v",
					trial, l, got, want)
			}
		}
	}
}

func TestAttributionLocalOnlyDevice(t *testing.T) {
	// A local-only task run locally drains only the owner's battery.
	m := newModel(t, testSystem(t))
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: 1000 * units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: 10 * units.Second,
	}
	attr, err := m.Attribute(tk, SubsystemDevice)
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 1 {
		t.Fatalf("attribution = %v, want only device 0", attr)
	}
	if math.Abs(attr.Battery(0).Joules()-0.33) > 1e-9 {
		t.Errorf("device battery = %v, want 0.33J (pure compute)", attr.Battery(0))
	}
}

func TestAttributionExternalSourcePays(t *testing.T) {
	// Cross-cluster external data: the source device pays its upload, the
	// wire bills infrastructure, the owner pays download + compute.
	m := newModel(t, testSystem(t))
	beta := 400 * units.Kilobyte
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: 600 * units.Kilobyte, ExternalSize: beta, ExternalSource: 2,
		Resource: 1, Deadline: 10 * units.Second,
	}
	attr, err := m.Attribute(tk, SubsystemDevice)
	if err != nil {
		t.Fatal(err)
	}
	srcWant := units.Power(7.32).EnergyOver(beta.TransferTime(5.85 * units.MbitPerSecond))
	if math.Abs(attr.Battery(2).Joules()-srcWant.Joules()) > 1e-9 {
		t.Errorf("source battery = %v, want %v", attr.Battery(2), srcWant)
	}
	if attr.Battery(Infrastructure) <= 0 {
		t.Error("cross-cluster wire energy should bill infrastructure")
	}
	if attr.Battery(0) <= 0 {
		t.Error("owner should pay download + compute")
	}
	if attr.Battery(1) != 0 {
		t.Error("uninvolved device must pay nothing")
	}
}

func TestAttributionCloudBillsWAN(t *testing.T) {
	m := newModel(t, testSystem(t))
	tk := &task.Task{
		ID: task.ID{User: 1, Index: 0}, Kind: task.Holistic,
		LocalSize: 1000 * units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: 10 * units.Second,
	}
	attr, err := m.Attribute(tk, SubsystemCloud)
	if err != nil {
		t.Fatal(err)
	}
	// 1200 kB over the WAN at 1e-6 J/B = 1.2 J.
	if math.Abs(attr.Battery(Infrastructure).Joules()-1.2) > 1e-9 {
		t.Errorf("infrastructure share = %v, want 1.2J", attr.Battery(Infrastructure))
	}
}

func TestAttributionErrors(t *testing.T) {
	m := newModel(t, testSystem(t))
	tk := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: units.Second,
	}
	if _, err := m.Attribute(tk, Subsystem(9)); err == nil {
		t.Error("invalid subsystem should fail")
	}
	bad := &task.Task{
		ID: task.ID{User: 9, Index: 0}, Kind: task.Holistic,
		LocalSize: units.Kilobyte, ExternalSource: task.NoExternalSource,
		Resource: 1, Deadline: units.Second,
	}
	if _, err := m.Attribute(bad, SubsystemDevice); err == nil {
		t.Error("bad user should fail")
	}
	badSrc := &task.Task{
		ID: task.ID{User: 0, Index: 0}, Kind: task.Holistic,
		LocalSize: units.Kilobyte, ExternalSize: units.Kilobyte, ExternalSource: 9,
		Resource: 1, Deadline: units.Second,
	}
	if _, err := m.Attribute(badSrc, SubsystemDevice); err == nil {
		t.Error("bad source should fail")
	}
}
