// Package perfbench builds the deterministic problem instances shared by
// the testing.B benchmarks and the mecperf baseline recorder, so both
// measure exactly the same workloads and BENCH_lphta.json numbers are
// comparable with `go test -bench` output.
package perfbench
