package perfbench

import (
	"bytes"
	"fmt"

	"dsmec/internal/core"
	"dsmec/internal/costmodel"
	"dsmec/internal/lp"
	"dsmec/internal/rng"
	"dsmec/internal/scenarioio"
	"dsmec/internal/task"
	"dsmec/internal/workload"
)

// clusterShape fixes how ClusterLP spreads tasks over devices: the C2 row
// density matches what solveClusterLP builds for a generated cluster.
const devicesPerCluster = 10

// ClusterLP builds the LP relaxation P2 of one LP-HTA cluster with the
// given task count, shaped exactly like internal/core's solveClusterLP
// output: 3 variables per task, one C4 equality row per task, one C2 row
// per device, and a C3 station row. sparse selects the index/value row
// form; dense materializes every row as a full 3n vector. Coefficients are
// seeded, so dense and sparse instances describe the identical LP.
func ClusterLP(tasks int, sparse bool) *lp.Problem {
	r := rng.NewSource(7).Stream(fmt.Sprintf("clusterlp-%d", tasks))
	n := 3 * tasks
	p := &lp.Problem{
		Minimize: make([]float64, n),
		Upper:    make([]float64, n),
	}
	resource := make([]float64, tasks)
	for i := 0; i < tasks; i++ {
		resource[i] = 1 + r.Float64()*3
		// Device < station < cloud energy, as in the paper's instances.
		base := 1 + r.Float64()
		p.Minimize[3*i] = base
		p.Minimize[3*i+1] = base * (1.5 + r.Float64())
		p.Minimize[3*i+2] = base * (3 + r.Float64())
		for l := 0; l < 3; l++ {
			p.Upper[3*i+l] = 0.5 + r.Float64()/2 // deadline-derived, capped at 1
		}
	}

	row := func(cols []int, vals []float64, sense lp.Sense, rhs float64) lp.Constraint {
		if sparse {
			return lp.Sparse(cols, vals, sense, rhs)
		}
		coeffs := make([]float64, n)
		for k, c := range cols {
			coeffs[c] = vals[k]
		}
		return lp.Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs}
	}

	for i := 0; i < tasks; i++ {
		p.Constraints = append(p.Constraints,
			row([]int{3 * i, 3*i + 1, 3*i + 2}, []float64{1, 1, 1}, lp.EQ, 1))
	}
	for dev := 0; dev < devicesPerCluster; dev++ {
		var cols []int
		var vals []float64
		load := 0.0
		for i := dev; i < tasks; i += devicesPerCluster {
			cols = append(cols, 3*i)
			vals = append(vals, resource[i])
			load += resource[i]
		}
		if len(cols) == 0 {
			continue
		}
		p.Constraints = append(p.Constraints, row(cols, vals, lp.LE, load*0.6))
	}
	cols := make([]int, tasks)
	vals := make([]float64, tasks)
	total := 0.0
	for i := 0; i < tasks; i++ {
		cols[i] = 3*i + 1
		vals[i] = resource[i]
		total += resource[i]
	}
	p.Constraints = append(p.Constraints, row(cols, vals, lp.LE, total*0.5))
	return p
}

// HolisticScenario generates the seeded scenario the LPHTA and simulator
// benchmarks run against.
func HolisticScenario(tasks int) (*workload.Scenario, error) {
	return workload.GenerateHolistic(rng.NewSource(1), workload.Params{NumTasks: tasks})
}

// ScaledScenario generates a seeded scenario with an explicit topology,
// for large-scale benchmarks where the station count (and with it the
// LP-HTA cluster size) must grow with the task population.
func ScaledScenario(devices, stations, tasks int) (*workload.Scenario, error) {
	return workload.GenerateHolistic(rng.NewSource(1), workload.Params{
		NumDevices: devices, NumStations: stations, NumTasks: tasks,
	})
}

// ScenarioDocument renders the seeded holistic scenario to its JSON
// document form, the input of the scenario_decode benchmark.
func ScenarioDocument(tasks int) ([]byte, error) {
	sc, err := HolisticScenario(tasks)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := scenarioio.Encode(&buf, sc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Assign runs LP-HTA once to produce an assignment for simulator
// benchmarks.
func Assign(m *costmodel.Model, ts *task.Set) (*core.Assignment, error) {
	res, err := core.LPHTA(m, ts, nil)
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}
