// Package backhaul models the wired links behind the radio access network:
// base-station to base-station transfers and base-station to cloud
// transfers.
//
// The paper treats these as abstract functions t_{B,B}(X), e_{B,B}(X),
// t_{B,C}(X), e_{B,C}(X) and fixes their latency constants in the
// evaluation: 15 ms between base stations [15] and 250 ms to the cloud
// (Amazon T2.nano ping, [16]). We model each as a propagation latency plus
// a bandwidth-limited serialization term plus a per-byte energy cost, which
// degenerates to the paper's constants when only latency matters.
package backhaul
