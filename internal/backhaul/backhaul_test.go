package backhaul

import (
	"math"
	"testing"
	"testing/quick"

	"dsmec/internal/units"
)

func TestWireValidate(t *testing.T) {
	tests := []struct {
		name    string
		wire    Wire
		wantErr bool
	}{
		{"default station-station", DefaultStationToStation(), false},
		{"default station-cloud", DefaultStationToCloud(), false},
		{"latency-only", Wire{Latency: 10 * units.Millisecond}, false},
		{"zero everything", Wire{}, false},
		{"negative latency", Wire{Latency: -1}, true},
		{"infinite latency", Wire{Latency: units.Forever}, true},
		{"negative bandwidth", Wire{Bandwidth: -1}, true},
		{"negative energy", Wire{EnergyPerByte: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.wire.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTransferTimeLatencyPlusSerialization(t *testing.T) {
	w := Wire{Latency: 15 * units.Millisecond, Bandwidth: 1 * units.GbitPerSecond}
	// 1 MB at 1 Gbps is 8 ms serialization + 15 ms latency = 23 ms.
	got := w.TransferTime(units.Megabyte)
	if math.Abs(got.Seconds()-0.023) > 1e-12 {
		t.Errorf("TransferTime = %v, want 23ms", got)
	}
}

func TestTransferTimeLatencyOnly(t *testing.T) {
	w := Wire{Latency: 250 * units.Millisecond} // Bandwidth 0 = latency only
	if got := w.TransferTime(10 * units.Megabyte); got != 250*units.Millisecond {
		t.Errorf("latency-only TransferTime = %v, want 250ms", got)
	}
	if got := w.TransferTime(0); got != 250*units.Millisecond {
		t.Errorf("zero-size TransferTime = %v, want 250ms", got)
	}
}

func TestTransferEnergy(t *testing.T) {
	w := Wire{EnergyPerByte: 1e-6}
	if got := w.TransferEnergy(units.Megabyte); math.Abs(got.Joules()-1) > 1e-12 {
		t.Errorf("TransferEnergy(1MB) = %v, want 1J", got)
	}
	if got := w.TransferEnergy(0); got != 0 {
		t.Errorf("TransferEnergy(0) = %v, want 0", got)
	}
}

func TestPaperLatencyConstants(t *testing.T) {
	if got := DefaultStationToStation().Latency; got != 15*units.Millisecond {
		t.Errorf("station-station latency = %v, want 15ms (paper [15])", got)
	}
	if got := DefaultStationToCloud().Latency; got != 250*units.Millisecond {
		t.Errorf("station-cloud latency = %v, want 250ms (paper [16])", got)
	}
}

func TestCloudTransfersDominateStationTransfers(t *testing.T) {
	// The paper's Section II.B argues E_ij3 > E_ij2 because cloud paths
	// cost more per byte and in latency. Our defaults must preserve this
	// for any size.
	bb := DefaultStationToStation()
	bc := DefaultStationToCloud()
	f := func(kb uint16) bool {
		size := units.ByteSize(kb) * units.Kilobyte
		return bc.TransferTime(size) > bb.TransferTime(size) &&
			bc.TransferEnergy(size) >= bb.TransferEnergy(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	w := DefaultStationToCloud()
	f := func(a, b uint32) bool {
		x, y := units.ByteSize(a), units.ByteSize(b)
		if x > y {
			x, y = y, x
		}
		return w.TransferTime(x) <= w.TransferTime(y) &&
			w.TransferEnergy(x) <= w.TransferEnergy(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
