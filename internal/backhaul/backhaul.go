package backhaul

import (
	"fmt"

	"dsmec/internal/units"
)

// Wire is a wired backhaul link with a fixed propagation latency, a
// serialization bandwidth, and a per-byte transfer energy.
type Wire struct {
	Latency       units.Duration // one-way propagation latency
	Bandwidth     units.BitRate  // serialization rate; 0 means latency-only
	EnergyPerByte units.Energy   // marginal energy per byte moved
}

// Validate reports whether the link parameters are meaningful.
func (w Wire) Validate() error {
	switch {
	case w.Latency < 0 || !units.Duration.IsFinite(w.Latency):
		return fmt.Errorf("backhaul: latency %v must be finite and non-negative", w.Latency)
	case w.Bandwidth < 0:
		return fmt.Errorf("backhaul: bandwidth %v must be non-negative", w.Bandwidth)
	case w.EnergyPerByte < 0:
		return fmt.Errorf("backhaul: energy per byte %v must be non-negative", w.EnergyPerByte)
	default:
		return nil
	}
}

// TransferTime returns the end-to-end time to move size bytes across the
// wire: propagation latency plus serialization, t(X) = L + X/B.
func (w Wire) TransferTime(size units.ByteSize) units.Duration {
	t := w.Latency
	if w.Bandwidth > 0 {
		t += size.TransferTime(w.Bandwidth)
	}
	return t
}

// TransferEnergy returns e(X), the energy to move size bytes across the
// wire.
func (w Wire) TransferEnergy(size units.ByteSize) units.Energy {
	return w.EnergyPerByte * units.Energy(size.Bytes())
}

// Evaluation constants from Section V.A of the paper. The bandwidths and
// per-byte energies are not printed in the paper; we pick a metro-Ethernet
// class backhaul (1 Gbps between stations) and a WAN-class cloud uplink
// (100 Mbps) so that serialization matters for multi-megabyte inputs, and
// per-byte energies consistent with e_{B,C} > e_{B,B} (the paper's ordering
// E_ij3 > E_ij2 requires cloud transfers to dominate).
const (
	// StationToStationLatency is t_{B,B}'s fixed part: 15 ms per [15].
	StationToStationLatency = 15 * units.Millisecond
	// StationToCloudLatency is t_{B,C}'s fixed part: 250 ms per [16].
	StationToCloudLatency = 250 * units.Millisecond

	// stationToStationBandwidth serializes inter-station transfers.
	stationToStationBandwidth = 1 * units.GbitPerSecond
	// stationToCloudBandwidth serializes station-to-cloud transfers.
	stationToCloudBandwidth = 100 * units.MbitPerSecond

	// stationToStationEnergyPerByte covers both stations' NICs and the
	// metro path: ~0.1 µJ/B (a fraction of radio costs, per the paper's
	// assumption that edge-side wired energy is small).
	stationToStationEnergyPerByte = 1e-7 * units.Joule
	// stationToCloudEnergyPerByte covers the WAN path and datacenter
	// ingress: ~1 µJ/B, an order of magnitude above the metro path, which
	// preserves E_ij3 > E_ij2.
	stationToCloudEnergyPerByte = 1e-6 * units.Joule
)

// DefaultStationToStation returns the paper-calibrated inter-station wire.
func DefaultStationToStation() Wire {
	return Wire{
		Latency:       StationToStationLatency,
		Bandwidth:     stationToStationBandwidth,
		EnergyPerByte: stationToStationEnergyPerByte,
	}
}

// DefaultStationToCloud returns the paper-calibrated station-to-cloud wire.
func DefaultStationToCloud() Wire {
	return Wire{
		Latency:       StationToCloudLatency,
		Bandwidth:     stationToCloudBandwidth,
		EnergyPerByte: stationToCloudEnergyPerByte,
	}
}
