package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a path from ts and returns status, content type, and body.
func get(t *testing.T, base, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lp.pivots").Add(7)
	reg.Histogram("lp.solve_seconds", TimeBuckets).Observe(0.002)
	m := NewManifest("mecsim", []string{"-tasks", "10"})
	m.SetSeed(42)
	m.Annotate("note", "live")

	ts := httptest.NewServer(Handler(reg, m))
	defer ts.Close()

	status, ctype, body := get(t, ts.URL, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "lp_pivots 7") || !strings.Contains(body, "lp_solve_seconds_bucket") {
		t.Errorf("/metrics body:\n%s", body)
	}

	status, ctype, body = get(t, ts.URL, "/metrics.json")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json status %d content type %q", status, ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a Snapshot: %v", err)
	}
	if snap.Counters["lp.pivots"] != 7 || snap.Histograms["lp.solve_seconds"].Count != 1 {
		t.Errorf("/metrics.json snapshot = %+v", snap)
	}

	status, _, body = get(t, ts.URL, "/manifest")
	if status != http.StatusOK {
		t.Fatalf("/manifest status %d", status)
	}
	var live struct {
		Tool    string         `json:"tool"`
		Seed    int64          `json:"seed"`
		Live    bool           `json:"live"`
		Extra   map[string]any `json:"extra"`
		Metrics Snapshot       `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatalf("/manifest not JSON: %v\n%s", err, body)
	}
	if live.Tool != "mecsim" || live.Seed != 42 || !live.Live || live.Extra["note"] != "live" {
		t.Errorf("/manifest view = %+v", live)
	}
	if live.Metrics.Counters["lp.pivots"] != 7 {
		t.Errorf("/manifest metrics = %+v", live.Metrics)
	}

	status, _, body = get(t, ts.URL, "/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d body %q", status, body[:min(len(body), 120)])
	}

	status, _, body = get(t, ts.URL, "/debug/vars")
	if status != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars status %d", status)
	}

	status, _, body = get(t, ts.URL, "/")
	if status != http.StatusOK || !strings.Contains(body, "/metrics.json") {
		t.Errorf("index status %d body %q", status, body)
	}

	status, _, _ = get(t, ts.URL, "/nope")
	if status != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", status)
	}
}

func TestHandlerNilRegistryAndManifest(t *testing.T) {
	ts := httptest.NewServer(Handler(nil, nil))
	defer ts.Close()
	if status, _, _ := get(t, ts.URL, "/metrics"); status != http.StatusOK {
		t.Errorf("/metrics with nil registry: %d", status)
	}
	status, _, body := get(t, ts.URL, "/manifest")
	if status != http.StatusOK || strings.TrimSpace(body) != "{}" {
		t.Errorf("/manifest with nil manifest: %d %q", status, body)
	}
}

func TestServerLifecycle(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	s, err := NewServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Errorf("URL = %q", s.URL())
	}
	status, _, body := get(t, s.URL(), "/metrics")
	if status != http.StatusOK || !strings.Contains(body, "x 1") {
		t.Errorf("live server /metrics: %d %q", status, body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
	var nilServer *Server
	if err := nilServer.Close(); err != nil {
		t.Errorf("nil server close: %v", err)
	}
}
