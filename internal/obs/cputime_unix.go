//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's user+system CPU time via
// getrusage. The bool is false when the syscall fails.
func processCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond, true
}
