//go:build !unix

package obs

import "time"

// processCPUTime is unavailable off unix; manifests then omit
// cpu_seconds.
func processCPUTime() (time.Duration, bool) { return 0, false }
