package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Trace records spans and exports them in the Chrome trace_event JSON
// format, so a solver or simulator run opens directly in
// chrome://tracing or https://ui.perfetto.dev. A nil *Trace is a valid
// disabled recorder. All methods are safe for concurrent use.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	events  []traceEvent
	nextTID int
}

// traceEvent is one entry of the trace_event "JSON Object Format".
// Complete events (ph "X") carry a microsecond timestamp and duration;
// metadata events (ph "M") name the process.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace starts a recorder; name labels the process in the viewer.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// StartSpan opens a root span on its own track (thread id). End the span
// to record it. Returns nil on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextTID++
	tid := t.nextTID
	t.mu.Unlock()
	return &Span{t: t, name: name, tid: tid, start: time.Now()}
}

// Len returns the number of recorded (ended) spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Trace) add(ev traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// WriteJSON exports the trace. The output is a single JSON object with a
// traceEvents array, the format both chrome://tracing and Perfetto load.
// A nil trace writes a valid empty document.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return writeTraceEvents(w, nil)
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.events)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": t.name},
	})
	events = append(events, t.events...)
	t.mu.Unlock()
	return writeTraceEvents(w, events)
}

// writeTraceEvents encodes the trace_event document envelope.
func writeTraceEvents(w io.Writer, events []traceEvent) error {
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteFile exports the trace to path. A nil trace still writes a valid
// empty trace file — callers export unconditionally and a disabled run
// must produce a loadable artifact — so the nil case routes through
// WriteJSON's guard rather than returning early here.
//
//meclint:allow(nilsafe) nil-safe via WriteJSON; an early return would change the documented nil behavior
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Span is one timed operation. Spans nest: Child spans share the
// parent's track and render inside it in the viewer as long as their
// lifetimes nest (which they do when callers End children before
// parents). A nil *Span is a valid disabled span; all methods, including
// Child, are no-ops that keep returning nil.
type Span struct {
	t     *Trace
	name  string
	tid   int
	start time.Time

	mu    sync.Mutex
	args  map[string]any
	ended bool
}

// Child opens a sub-span on the same track. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// Fork opens a sub-span on a fresh track of the same trace. Concurrent
// workers must Fork rather than Child: spans on one track only render
// correctly when their lifetimes nest, which parallel siblings violate.
// Each worker records onto its own track and the shared trace merges them.
// Returns nil on a nil span.
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	s.t.nextTID++
	tid := s.t.nextTID
	s.t.mu.Unlock()
	return &Span{t: s.t, name: name, tid: tid, start: time.Now()}
}

// Annotate attaches a key/value argument shown in the viewer's span
// details. Values must be JSON-serializable.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End closes the span and records it. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()
	s.t.add(traceEvent{
		Name: s.name,
		Cat:  "dsmec",
		Ph:   "X",
		TS:   float64(s.start.Sub(s.t.start)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(s.start)) / float64(time.Microsecond),
		PID:  1,
		TID:  s.tid,
		Args: args,
	})
}
