package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names are sanitized — every character
// outside [a-zA-Z0-9_:] becomes an underscore, so "lp.pivots" exposes as
// "lp_pivots" — and emitted in sorted order so output is deterministic.
// Histograms render the usual cumulative _bucket{le="..."} series plus
// _sum and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a dotted metric name into the Prometheus alphabet.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest
// round-trip representation, with infinities spelled +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
