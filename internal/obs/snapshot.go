package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// SnapshotRecord is one line of the snapshot JSONL stream: a timestamped
// cumulative registry snapshot plus the counter increments since the
// previous record, so consumers get both absolute values and deltas
// without diffing themselves. The final record of a run carries
// Final=true.
type SnapshotRecord struct {
	At             time.Time        `json:"at"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Final          bool             `json:"final,omitempty"`
	DeltaCounters  map[string]int64 `json:"delta_counters,omitempty"`
	Metrics        Snapshot         `json:"metrics"`
}

// Snapshotter periodically appends SnapshotRecords for a registry to a
// JSONL file. Start one with StartSnapshotter; Close writes a final
// record and releases the file.
type Snapshotter struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	reg   *Registry
	start time.Time
	prev  map[string]int64
	done  chan struct{}
	wg    sync.WaitGroup
	err   error
}

// StartSnapshotter opens (truncating) path and records a snapshot of reg
// every interval until Close. Intervals at or below zero default to one
// second.
func StartSnapshotter(path string, interval time.Duration, reg *Registry) (*Snapshotter, error) {
	if interval <= 0 {
		interval = time.Second
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: snapshot file: %w", err)
	}
	s := &Snapshotter{
		f:     f,
		w:     bufio.NewWriter(f),
		reg:   reg,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.record(false)
			case <-s.done:
				return
			}
		}
	}()
	return s, nil
}

// record appends one snapshot line.
func (s *Snapshotter) record(final bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	snap := s.reg.Snapshot()
	rec := SnapshotRecord{
		At:             time.Now(),
		ElapsedSeconds: time.Since(s.start).Seconds(),
		Final:          final,
		Metrics:        snap,
	}
	if len(snap.Counters) > 0 {
		for name, v := range snap.Counters {
			if d := v - s.prev[name]; d != 0 {
				if rec.DeltaCounters == nil {
					rec.DeltaCounters = make(map[string]int64)
				}
				rec.DeltaCounters[name] = d
			}
		}
		if s.prev == nil {
			s.prev = make(map[string]int64, len(snap.Counters))
		}
		for name, v := range snap.Counters {
			s.prev[name] = v
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// Close stops the ticker, writes a final record, and closes the file.
// Safe on a nil snapshotter.
func (s *Snapshotter) Close() error {
	if s == nil {
		return nil
	}
	close(s.done)
	s.wg.Wait()
	s.record(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	s.f = nil
	return s.err
}

// ReadSnapshots loads a snapshot JSONL file written by a Snapshotter.
func ReadSnapshots(path string) ([]SnapshotRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []SnapshotRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SnapshotRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: %s line %d: %w", path, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
