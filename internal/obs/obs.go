package obs

import "sync/atomic"

// global is the process-wide default registry (nil = disabled).
var global atomic.Pointer[Registry]

// SetGlobal installs reg as the process-wide default metric registry.
// Instrumented code whose options carry no explicit registry records
// here. Pass nil to disable.
func SetGlobal(reg *Registry) {
	if reg == nil {
		global.Store(nil)
		return
	}
	global.Store(reg)
}

// Global returns the process-wide default registry (nil when disabled).
func Global() *Registry { return global.Load() }

// Instruments bundles the optional metric registry, parent trace span,
// and structured logger an instrumented operation records into. The zero
// value is disabled (modulo the SetGlobal / SetGlobalLogger fallbacks);
// copies are cheap and the struct is meant to be embedded by value in
// options types.
type Instruments struct {
	// Metrics receives counters, gauges, and histograms. When nil the
	// process-wide Global registry (if any) is used instead.
	Metrics *Registry
	// Span is the parent span for this operation's child spans. Nil
	// disables tracing.
	Span *Span
	// Log receives structured records. When nil the process-wide
	// GlobalLogger (if any) is used instead.
	Log *Logger
}

// Registry resolves the effective registry: the explicit one, else the
// process-wide default, else nil (disabled).
func (in Instruments) Registry() *Registry {
	if in.Metrics != nil {
		return in.Metrics
	}
	return Global()
}

// Counter returns the named counter from the effective registry
// (nil when disabled).
func (in Instruments) Counter(name string) *Counter { return in.Registry().Counter(name) }

// Gauge returns the named gauge from the effective registry.
func (in Instruments) Gauge(name string) *Gauge { return in.Registry().Gauge(name) }

// Histogram returns the named histogram from the effective registry.
func (in Instruments) Histogram(name string, bounds []float64) *Histogram {
	return in.Registry().Histogram(name, bounds)
}

// WithSpan returns a copy of in whose parent span is s, keeping the same
// metric destination. Use it to hand a child operation its own span.
func (in Instruments) WithSpan(s *Span) Instruments {
	in.Span = s
	return in
}

// Logger resolves the effective logger: the explicit one, else the
// process-wide default, else nil (disabled).
func (in Instruments) Logger() *Logger {
	if in.Log != nil {
		return in.Log
	}
	return GlobalLogger()
}

// Default histogram bucket bounds.
var (
	// TimeBuckets spans 1µs to 100s, exponential-ish: right for phase
	// timings and queue waits.
	TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}
	// CountBuckets spans 1 to 1e6: right for per-solve pivot counts,
	// per-cluster task counts, queue depths.
	CountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000, 100000, 1000000}
)
