package obs

import (
	"sync"
	"testing"

	"dsmec/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
	g.SetMax(1) // below current: no change
	if got := g.Value(); got != 2 {
		t.Errorf("gauge after SetMax(1) = %g, want 2", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax(7) = %g, want 7", got)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: (-inf,1], (1,2], (2,5], overflow.
	want := []int64{2, 1, 1, 1}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 16 {
		t.Errorf("count/sum = %d/%g, want 5/16", s.Count, s.Sum)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{5, 1, 2, 2, 1})
	s := h.Snapshot()
	wantBounds := []float64{1, 2, 5}
	if len(s.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if s.Bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", s.Bounds, wantBounds)
		}
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	if got := len(h1.Snapshot().Bounds); got != 2 {
		t.Errorf("bounds len = %d, want the first registration's 2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)

	var series stats.Series
	series.AddAll(1.5, 3)
	if err := h.Merge(series.Histogram([]float64{1, 2})); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 5 {
		t.Errorf("after merge count/sum = %d/%g, want 3/5", s.Count, s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("after merge counts = %v, want [1 1 1]", s.Counts)
	}

	if err := h.Merge(series.Histogram([]float64{7})); err == nil {
		t.Error("merging mismatched bounds succeeded, want error")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("h", TimeBuckets)
	h.Observe(1)
	if err := h.Merge(stats.HistogramCounts{}); err != nil {
		t.Errorf("nil histogram Merge: %v", err)
	}
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram has samples")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
}

func TestInstrumentsGlobalFallback(t *testing.T) {
	defer SetGlobal(nil)

	var ins Instruments
	ins.Counter("x").Inc() // disabled: no global, no explicit
	if Global() != nil {
		t.Fatal("global registry set unexpectedly")
	}

	g := NewRegistry()
	SetGlobal(g)
	ins.Counter("x").Inc()
	if got := g.Counter("x").Value(); got != 1 {
		t.Errorf("global counter = %d, want 1", got)
	}

	// An explicit registry takes precedence over the global one.
	own := NewRegistry()
	ins.Metrics = own
	ins.Counter("x").Inc()
	if got := own.Counter("x").Value(); got != 1 {
		t.Errorf("explicit counter = %d, want 1", got)
	}
	if got := g.Counter("x").Value(); got != 1 {
		t.Errorf("global counter moved to %d, want 1", got)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// with -race. Each goroutine mixes get-or-create lookups with updates so
// both the sync.Map paths and the atomic value paths are exercised.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 1000

	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Gauge("shared.max").SetMax(float64(j))
				r.Histogram("shared.hist", []float64{250, 500, 750}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if got := r.Counter("shared.counter").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("shared.gauge").Value(); got != float64(total) {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	if got := r.Gauge("shared.max").Value(); got != perG-1 {
		t.Errorf("max gauge = %g, want %d", got, perG-1)
	}
	h := r.Histogram("shared.hist", []float64{250, 500, 750}).Snapshot()
	if h.Count != total {
		t.Errorf("histogram count = %d, want %d", h.Count, total)
	}
	// Each goroutine observes 0..999: 251 ≤ 250, 250 in (250,500], etc.
	want := []int64{251 * goroutines, 250 * goroutines, 250 * goroutines, 249 * goroutines}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], c)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1.5)
	r.Histogram("c", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 1.5 || s.Histograms["c"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestSummaryTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.counter").Add(7)
	r.Gauge("a.gauge").Set(0.25)
	r.Histogram("m.hist", []float64{1, 2}).Observe(1.5)
	out := SummaryTable(r.Snapshot()).String()
	for _, want := range []string{"z.counter", "a.gauge", "m.hist", "counter", "gauge", "histogram", "7", "0.25"} {
		if !contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Disabled-path micro-benchmarks: the acceptance bar is that nil handles
// cost ~a branch, so instrumentation can stay unconditionally in place.
// The BenchmarkObs prefix keeps them under `make bench-obs`'s filter.

func BenchmarkObsCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("x", TimeBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkObsHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x", TimeBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
