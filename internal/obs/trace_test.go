package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
)

// traceDoc mirrors the trace_event JSON Object Format for decoding in
// tests.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeTrace(t *testing.T, tr *Trace) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestTraceExport(t *testing.T) {
	tr := NewTrace("test-process")
	root := tr.StartSpan("root")
	child := root.Child("child")
	child.Annotate("tasks", 7)
	child.End()
	root.End()

	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	doc := decodeTrace(t, tr)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// Metadata event + two complete events.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(doc.TraceEvents), doc.TraceEvents)
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args["name"] != "test-process" {
		t.Errorf("metadata event = %+v", meta)
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Errorf("event %d phase = %q, want X", i, ev.Ph)
		}
		byName[ev.Name] = i + 1
	}
	c, r := doc.TraceEvents[byName["child"]], doc.TraceEvents[byName["root"]]
	if c.TID != r.TID {
		t.Errorf("child tid %d != root tid %d; children must share the parent's track", c.TID, r.TID)
	}
	// Nesting: the child's [ts, ts+dur] interval lies inside the root's.
	if c.TS < r.TS || c.TS+c.Dur > r.TS+r.Dur {
		t.Errorf("child [%g, %g] not contained in root [%g, %g]", c.TS, c.TS+c.Dur, r.TS, r.TS+r.Dur)
	}
	if c.Args["tasks"] != float64(7) {
		t.Errorf("child args = %v", c.Args)
	}
}

func TestTraceRootSpansGetOwnTracks(t *testing.T) {
	tr := NewTrace("p")
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	a.End()
	b.End()
	doc := decodeTrace(t, tr)
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.TID] = true
		}
	}
	if len(tids) != 2 {
		t.Errorf("root spans share a track: tids %v", tids)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("p")
	s := tr.StartSpan("s")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Errorf("double End recorded %d events, want 1", tr.Len())
	}
}

func TestUnendedSpanNotExported(t *testing.T) {
	tr := NewTrace("p")
	tr.StartSpan("open")
	done := tr.StartSpan("done")
	done.End()
	doc := decodeTrace(t, tr)
	for _, ev := range doc.TraceEvents {
		if ev.Name == "open" {
			t.Error("unended span was exported")
		}
	}
}

func TestNilTraceAndSpan(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil trace returned a live span")
	}
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span returned a live child")
	}
	s.Annotate("k", 1)
	s.End()
	if tr.Len() != 0 {
		t.Error("nil trace has events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil trace WriteJSON: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace output invalid: %v", err)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("p")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := tr.StartSpan("work")
				c := s.Child("inner")
				c.Annotate("j", j)
				c.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 1600 {
		t.Errorf("Len = %d, want 1600", got)
	}
}

func TestTraceWriteFile(t *testing.T) {
	tr := NewTrace("p")
	s := tr.StartSpan("s")
	s.End()
	path := filepath.Join(t.TempDir(), "out.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("file is not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("file has %d events, want 2", len(doc.TraceEvents))
	}
}
