package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Log levels, re-exported so instrumented packages need not import
// log/slog directly.
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

// Logger is a nil-safe structured logger over log/slog. A nil *Logger is
// a valid disabled logger: every method is a no-op and Enabled reports
// false, so instrumented code never branches on configuration. Hot loops
// should still guard calls with Enabled — the variadic attribute list
// allocates at the call site even when the logger is nil, and the
// disabled observability path must stay at zero allocations:
//
//	if log.Enabled(obs.LevelDebug) {
//		log.Debug("lp refactorization", "pivots", pivots)
//	}
type Logger struct {
	s *slog.Logger
}

// NewLogger builds a logger writing to w. Level is one of "debug",
// "info", "warn", "error", or "off" (returns a nil, disabled logger);
// format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	lv, off, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	if off {
		return nil, nil
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return &Logger{s: slog.New(h)}, nil
}

// ParseLogLevel maps a level name to a slog level. The second result is
// true for "off" (logging disabled entirely).
func ParseLogLevel(level string) (slog.Level, bool, error) {
	switch strings.ToLower(level) {
	case "debug":
		return LevelDebug, false, nil
	case "", "info":
		return LevelInfo, false, nil
	case "warn", "warning":
		return LevelWarn, false, nil
	case "error":
		return LevelError, false, nil
	case "off", "none":
		return LevelInfo, true, nil
	}
	return LevelInfo, false, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error, or off)", level)
}

// Enabled reports whether records at the given level would be emitted.
// False on a nil logger.
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	return l.s.Enabled(context.Background(), level)
}

// Log emits a record at an arbitrary level.
func (l *Logger) Log(level slog.Level, msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Log(context.Background(), level, msg, args...)
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, args ...any) { l.Log(LevelDebug, msg, args...) }

// Info emits an info record.
func (l *Logger) Info(msg string, args ...any) { l.Log(LevelInfo, msg, args...) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, args ...any) { l.Log(LevelWarn, msg, args...) }

// Error emits an error record.
func (l *Logger) Error(msg string, args ...any) { l.Log(LevelError, msg, args...) }

// With returns a logger whose records all carry the given attributes.
// Nil in, nil out.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// globalLog is the process-wide default logger (nil = disabled),
// mirroring the global metric registry.
var globalLog atomic.Pointer[Logger]

// SetGlobalLogger installs l as the process-wide default logger used by
// instrumented code whose Instruments carry no explicit logger. Pass nil
// to disable.
func SetGlobalLogger(l *Logger) { globalLog.Store(l) }

// GlobalLogger returns the process-wide default logger (nil when
// disabled).
func GlobalLogger() *Logger { return globalLog.Load() }
