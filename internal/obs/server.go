package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the exposition mux served by the obs server:
//
//	/metrics       Prometheus text-format snapshot of reg
//	/metrics.json  the same snapshot as JSON
//	/manifest      live view of the run manifest (clocks-so-far)
//	/debug/pprof/  the standard runtime profiles
//	/debug/vars    expvar (runtime memstats and friends)
//
// reg and m may each be nil; the endpoints then serve empty documents.
// Exported separately from Server so tests can mount it on an
// httptest.Server.
func Handler(reg *Registry, m *Manifest) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/manifest", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if m == nil {
			w.Write([]byte("{}\n"))
			return
		}
		b, err := m.LiveJSON(reg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "dsmec obs endpoints:\n"+
			"  /metrics       Prometheus text format\n"+
			"  /metrics.json  registry snapshot as JSON\n"+
			"  /manifest      live run manifest\n"+
			"  /debug/pprof/  runtime profiles\n"+
			"  /debug/vars    expvar\n")
	})
	return mux
}

// Server is the live exposition server behind the -obs-addr flags. It
// listens immediately on construction (so ":0" callers can learn the
// bound address) and serves until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving Handler(reg, m) on addr. addr follows
// net.Listen conventions; "127.0.0.1:0" picks a free port, reported by
// Addr.
func NewServer(addr string, reg *Registry, m *Manifest) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg, m),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately. Safe to call on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
