package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLoggerNoops(t *testing.T) {
	var l *Logger
	l.Debug("a", "k", 1)
	l.Info("b")
	l.Warn("c")
	l.Error("d")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.With("k", "v") != nil {
		t.Error("With on nil logger should stay nil")
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	if l.Enabled(LevelDebug) || l.Enabled(LevelInfo) {
		t.Error("warn logger enabled below warn")
	}
	if !l.Enabled(LevelWarn) || !l.Enabled(LevelError) {
		t.Error("warn logger disabled at or above warn")
	}
	l.Info("dropped")
	l.Warn("kept", "why", "test")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info record leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "why=test") {
		t.Errorf("warn record missing:\n%s", out)
	}
}

func TestNewLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.With("component", "lp").Debug("solve done", "pivots", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "solve done" || rec["component"] != "lp" || rec["pivots"] != float64(42) {
		t.Errorf("unexpected record: %v", rec)
	}
	if rec["level"] != "DEBUG" {
		t.Errorf("level = %v", rec["level"])
	}
}

func TestNewLoggerOff(t *testing.T) {
	l, err := NewLogger(&bytes.Buffer{}, "off", "text")
	if err != nil {
		t.Fatal(err)
	}
	if l != nil {
		t.Error("off level should yield a nil (disabled) logger")
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestGlobalLogger(t *testing.T) {
	defer SetGlobalLogger(nil)
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	SetGlobalLogger(l)
	var ins Instruments
	if ins.Logger() != l {
		t.Error("Instruments.Logger did not fall back to the global logger")
	}
	own, _ := NewLogger(&buf, "debug", "text")
	ins.Log = own
	if ins.Logger() != own {
		t.Error("explicit logger should win over the global one")
	}
	SetGlobalLogger(nil)
	ins.Log = nil
	if ins.Logger() != nil {
		t.Error("cleared global logger should resolve to nil")
	}
}
