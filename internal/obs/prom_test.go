package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lp.pivots").Add(42)
	r.Gauge("sim.queue_peak.dev.cpu").Set(3.5)
	h := r.Histogram("lp.solve_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lp_pivots counter\nlp_pivots 42\n",
		"# TYPE sim_queue_peak_dev_cpu gauge\nsim_queue_peak_dev_cpu 3.5\n",
		"# TYPE lp_solve_seconds histogram\n",
		`lp_solve_seconds_bucket{le="0.001"} 1`,
		`lp_solve_seconds_bucket{le="0.01"} 1`,
		`lp_solve_seconds_bucket{le="0.1"} 2`,
		`lp_solve_seconds_bucket{le="+Inf"} 3`,
		"lp_solve_seconds_sum 5.0505\n",
		"lp_solve_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	var first, second strings.Builder
	if err := WritePrometheus(&first, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&second, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("exposition not deterministic:\n%s\nvs\n%s", first.String(), second.String())
	}
	if !strings.HasPrefix(first.String(), "# TYPE a counter") {
		t.Errorf("counters not sorted:\n%s", first.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"lp.pivots":        "lp_pivots",
		"sim.busy-seconds": "sim_busy_seconds",
		"9lives":           "_9lives",
		"ok_name:sub":      "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
