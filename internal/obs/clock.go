package obs

import "time"

// Timer is a started wall-clock stopwatch. The observability layer owns
// every wall-clock read in the deterministic packages: solver and
// simulator code must not call time.Now directly (the determinism lint
// forbids it), because a stray wall-clock value that leaks into an
// output breaks the byte-identical-at-any-parallelism guarantee.
// Routing the read through obs keeps the timing visible, greppable, and
// confined to stats/metrics that are documented as wall-clock.
//
// Timer is a value type: the zero Timer reports elapsed time since the
// epoch and is never useful — always start one with StartTimer.
type Timer struct {
	start time.Time
}

// StartTimer starts a stopwatch at the current wall-clock time.
func StartTimer() Timer {
	return Timer{start: time.Now()}
}

// Seconds returns the wall-clock seconds elapsed since StartTimer.
func (t Timer) Seconds() float64 {
	return time.Since(t.start).Seconds()
}
