package obs

import (
	"fmt"
	"sort"

	"dsmec/internal/texttable"
)

// SummaryTable renders a snapshot as a sorted, human-readable table —
// the thing the cmd binaries print next to the machine-readable
// manifest. Counters and gauges print their value; histograms print
// count, mean, and the 50th/95th/99th percentiles, estimated from the
// bucket counts via the shared stats binning rule.
func SummaryTable(s Snapshot) *texttable.Table {
	tb := texttable.New("metric", "type", "value")

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb.AddRowf(n, "counter", s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb.AddRowf(n, "gauge", trimFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		tb.AddRowf(n, "histogram", fmt.Sprintf("count=%d mean=%s p50=%s p95=%s p99=%s",
			h.Count, trimFloat(h.Mean()), trimFloat(h.Quantile(50)), trimFloat(h.Quantile(95)), trimFloat(h.Quantile(99))))
	}
	return tb
}

// trimFloat formats v compactly: integers without a fraction, everything
// else with enough significant digits to be useful.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
