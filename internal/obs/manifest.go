package obs

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// Manifest is the machine-readable record of one run: what was executed
// (tool, args, seed, scenario hash, toolchain), what it cost (wall and
// CPU time), and every final metric value. One manifest JSON document
// per run gives regression checkers (cmd/mecbench -check) and future
// scaling work a comparable baseline.
type Manifest struct {
	Tool         string         `json:"tool"`
	Args         []string       `json:"args,omitempty"`
	Seed         int64          `json:"seed"`
	ScenarioHash string         `json:"scenario_hash,omitempty"`
	GoVersion    string         `json:"go_version"`
	OS           string         `json:"os"`
	Arch         string         `json:"arch"`
	NumCPU       int            `json:"num_cpu"`
	StartedAt    time.Time      `json:"started_at"`
	WallSeconds  float64        `json:"wall_seconds"`
	CPUSeconds   float64        `json:"cpu_seconds,omitempty"`
	Extra        map[string]any `json:"extra,omitempty"`
	Metrics      Snapshot       `json:"metrics"`

	mu        sync.Mutex
	startWall time.Time
	startCPU  time.Duration
	cpuKnown  bool
}

// NewManifest starts a manifest, stamping the environment and the wall
// and CPU clocks.
func NewManifest(tool string, args []string) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      append([]string(nil), args...),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		StartedAt: time.Now(),
		startWall: time.Now(),
	}
	m.startCPU, m.cpuKnown = processCPUTime()
	return m
}

// Annotate attaches an extra key/value to the manifest. Safe for
// concurrent use with LiveJSON.
func (m *Manifest) Annotate(key string, value any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Extra == nil {
		m.Extra = make(map[string]any)
	}
	m.Extra[key] = value
}

// SetSeed records the run's RNG seed. Safe for concurrent use with
// LiveJSON.
func (m *Manifest) SetSeed(seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Seed = seed
}

// SetScenarioHash records the scenario fingerprint. Safe for concurrent
// use with LiveJSON.
func (m *Manifest) SetScenarioHash(hash string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ScenarioHash = hash
}

// Finish stops the clocks and snapshots reg (which may be nil) into the
// manifest. Call it once, just before writing.
func (m *Manifest) Finish(reg *Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.WallSeconds = time.Since(m.startWall).Seconds()
	if m.cpuKnown {
		if cpu, ok := processCPUTime(); ok {
			m.CPUSeconds = (cpu - m.startCPU).Seconds()
		}
	}
	m.Metrics = reg.Snapshot()
}

// LiveJSON marshals a point-in-time view of the manifest for a run that
// is still in flight: the clocks show elapsed-so-far and Metrics holds a
// fresh snapshot of reg, without finalizing the manifest itself. The
// exposition server serves this from /manifest.
func (m *Manifest) LiveJSON(reg *Registry) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	view := struct {
		Tool         string         `json:"tool"`
		Args         []string       `json:"args,omitempty"`
		Seed         int64          `json:"seed"`
		ScenarioHash string         `json:"scenario_hash,omitempty"`
		GoVersion    string         `json:"go_version"`
		OS           string         `json:"os"`
		Arch         string         `json:"arch"`
		NumCPU       int            `json:"num_cpu"`
		StartedAt    time.Time      `json:"started_at"`
		WallSeconds  float64        `json:"wall_seconds"`
		CPUSeconds   float64        `json:"cpu_seconds,omitempty"`
		Live         bool           `json:"live"`
		Extra        map[string]any `json:"extra,omitempty"`
		Metrics      Snapshot       `json:"metrics"`
	}{
		Tool:         m.Tool,
		Args:         m.Args,
		Seed:         m.Seed,
		ScenarioHash: m.ScenarioHash,
		GoVersion:    m.GoVersion,
		OS:           m.OS,
		Arch:         m.Arch,
		NumCPU:       m.NumCPU,
		StartedAt:    m.StartedAt,
		WallSeconds:  time.Since(m.startWall).Seconds(),
		Live:         true,
		Extra:        m.Extra,
		Metrics:      reg.Snapshot(),
	}
	if m.cpuKnown {
		if cpu, ok := processCPUTime(); ok {
			view.CPUSeconds = (cpu - m.startCPU).Seconds()
		}
	}
	return json.MarshalIndent(view, "", " ")
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// HashBytes returns a short stable FNV-1a hex digest of b, used to
// fingerprint scenario files.
func HashBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// StreamHash accumulates the HashBytes digest incrementally, so large
// scenario files can be fingerprinted while they stream through a
// decoder (hang it off an io.TeeReader) instead of being read whole.
type StreamHash struct{ h hash.Hash64 }

// NewStreamHash returns an empty digest; Write bytes into it and call
// Sum for the same string HashBytes would produce over the whole input.
func NewStreamHash() *StreamHash { return &StreamHash{h: fnv.New64a()} }

func (s *StreamHash) Write(p []byte) (int, error) { return s.h.Write(p) }

// Sum formats the digest accumulated so far.
func (s *StreamHash) Sum() string { return fmt.Sprintf("%016x", s.h.Sum64()) }

// HashJSON fingerprints any JSON-serializable value (generation
// parameters, configs). Marshalling failures yield "unhashable", never
// an error: the hash is diagnostic, not load-bearing.
func HashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "unhashable"
	}
	return HashBytes(b)
}
