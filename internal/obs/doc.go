// Package obs is the zero-dependency observability layer of the dsmec
// pipeline: metric registries (counters, gauges, fixed-bucket
// histograms), a span/trace recorder that exports Chrome trace_event
// JSON viewable in chrome://tracing or Perfetto, and run manifests that
// capture everything needed to reproduce and compare runs.
//
// The layer is designed so instrumented code pays ~nothing when
// observability is off: every handle type (*Counter, *Gauge, *Histogram,
// *Span, *Trace) treats a nil receiver as a disabled no-op, and the
// *Registry accessors return nil handles from a nil registry. Hot paths
// therefore never branch on an "enabled" flag — they just call methods
// on possibly-nil handles.
//
// Instrumented layers receive an Instruments value through their options
// structs. A zero Instruments is fully disabled, except that metric
// lookups fall back to the process-wide registry installed with
// SetGlobal — this is how cmd/mecbench collects solver and simulator
// counters from deep inside the experiment harness without threading a
// registry through every experiment definition.
package obs
