package obs

import (
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotterRecordsAndDeltas(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events").Add(5)
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	// A huge interval: only the explicit final record is written, so the
	// test is deterministic.
	s, err := StartSnapshotter(path, time.Hour, reg)
	if err != nil {
		t.Fatal(err)
	}
	s.record(false)
	reg.Counter("events").Add(3)
	reg.Gauge("depth").Set(2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	first, last := recs[0], recs[1]
	if first.Final {
		t.Error("first record marked final")
	}
	if first.Metrics.Counters["events"] != 5 || first.DeltaCounters["events"] != 5 {
		t.Errorf("first record = %+v", first)
	}
	if !last.Final {
		t.Error("last record not marked final")
	}
	if last.Metrics.Counters["events"] != 8 {
		t.Errorf("final cumulative counters = %v", last.Metrics.Counters)
	}
	if last.DeltaCounters["events"] != 3 {
		t.Errorf("final delta counters = %v", last.DeltaCounters)
	}
	if last.Metrics.Gauges["depth"] != 2 {
		t.Errorf("final gauges = %v", last.Metrics.Gauges)
	}
	if last.ElapsedSeconds < first.ElapsedSeconds {
		t.Errorf("elapsed went backwards: %g then %g", first.ElapsedSeconds, last.ElapsedSeconds)
	}
}

func TestSnapshotterPeriodic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ticks").Inc()
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	s, err := StartSnapshotter(path, 5*time.Millisecond, reg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		s.mu.Lock()
		enough := s.prev != nil
		s.mu.Unlock()
		if enough {
			break
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("expected at least one periodic record plus the final one, got %d", len(recs))
	}
}

func TestSnapshotterNilClose(t *testing.T) {
	var s *Snapshotter
	if err := s.Close(); err != nil {
		t.Errorf("nil snapshotter close: %v", err)
	}
}

func TestReadSnapshotsMissingFile(t *testing.T) {
	if _, err := ReadSnapshots(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Error("expected error for missing file")
	}
}
