package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func TestManifestFinishAndWrite(t *testing.T) {
	m := NewManifest("testtool", []string{"-tasks", "10"})
	m.Seed = 42
	m.ScenarioHash = HashBytes([]byte("scenario"))
	m.Annotate("note", "hello")

	reg := NewRegistry()
	reg.Counter("lp.solves").Add(3)
	reg.Gauge("feedback.best_round").Set(2)
	reg.Histogram("lp.solve_seconds", TimeBuckets).Observe(0.01)
	m.Finish(reg)

	if m.GoVersion != runtime.Version() || m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Errorf("environment stamp = %s/%s/%s", m.GoVersion, m.OS, m.Arch)
	}
	if m.WallSeconds < 0 {
		t.Errorf("wall = %g", m.WallSeconds)
	}
	if m.Metrics.Counters["lp.solves"] != 3 {
		t.Errorf("metrics snapshot = %+v", m.Metrics)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Tool != "testtool" || back.Seed != 42 {
		t.Errorf("round trip tool/seed = %s/%d", back.Tool, back.Seed)
	}
	if back.Metrics.Counters["lp.solves"] != 3 {
		t.Errorf("round trip counters = %v", back.Metrics.Counters)
	}
	if back.Metrics.Histograms["lp.solve_seconds"].Count != 1 {
		t.Errorf("round trip histograms = %v", back.Metrics.Histograms)
	}
	if back.Extra["note"] != "hello" {
		t.Errorf("round trip extra = %v", back.Extra)
	}
}

func TestManifestNilRegistry(t *testing.T) {
	m := NewManifest("t", nil)
	m.Finish(nil)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
}

func TestHashStable(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Error("different inputs hash equal")
	}
	if HashBytes([]byte("a")) != HashBytes([]byte("a")) {
		t.Error("equal inputs hash differently")
	}
	if len(HashBytes(nil)) != 16 {
		t.Errorf("hash length = %d, want 16 hex digits", len(HashBytes(nil)))
	}
	type params struct{ Seed int64 }
	if HashJSON(params{1}) != HashJSON(params{1}) {
		t.Error("equal values hash differently")
	}
	if HashJSON(params{1}) == HashJSON(params{2}) {
		t.Error("different values hash equal")
	}
	if HashJSON(make(chan int)) != "unhashable" {
		t.Error("unmarshalable value did not yield the sentinel")
	}
}
