package obs

import "testing"

// TestDisabledObsZeroAlloc is the zero-alloc guard for the disabled
// observability path: with a nil registry, nil logger, and no globals
// installed, every primitive an instrumented hot loop touches must
// allocate nothing. The companion BenchmarkObsDisabledPath reports the
// same property as B/op under `make bench-smoke`.
func TestDisabledObsZeroAlloc(t *testing.T) {
	SetGlobal(nil)
	SetGlobalLogger(nil)
	var ins Instruments
	var log *Logger
	c := ins.Counter("c")
	g := ins.Gauge("g")
	h := ins.Histogram("h", TimeBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		g.SetMax(2)
		h.Observe(0.01)
		ins.Counter("c").Inc()
		ins.Registry().Gauge("g").Set(1)
		if log.Enabled(LevelDebug) {
			log.Debug("never reached", "k", 1)
		}
		if l := ins.Logger(); l.Enabled(LevelDebug) {
			l.Debug("never reached", "k", 2)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkObsDisabledPath(b *testing.B) {
	SetGlobal(nil)
	SetGlobalLogger(nil)
	var ins Instruments
	var log *Logger
	c := ins.Counter("c")
	h := ins.Histogram("h", TimeBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.01)
		if log.Enabled(LevelDebug) {
			log.Debug("never reached", "k", i)
		}
	}
}
