package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dsmec/internal/stats"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v when v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Binning follows stats.Bucketize, so live histograms and offline
// stats.Series histograms share one bucketing rule and can be merged.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicate bounds: they would create permanently empty buckets.
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[stats.Bucketize(v, h.bounds)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds an exported stats histogram into the live histogram. The
// bucket bounds must match (after the constructor's sort/dedup).
func (h *Histogram) Merge(o stats.HistogramCounts) error {
	if h == nil {
		return nil
	}
	// Validate bounds via the stats merge rule on an empty snapshot.
	probe := stats.HistogramCounts{Bounds: h.bounds, Counts: make([]int64, len(h.bounds)+1)}
	if err := probe.Merge(o); err != nil {
		return err
	}
	for i := range probe.Counts {
		h.counts[i].Add(probe.Counts[i])
	}
	h.count.Add(probe.Count)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + probe.Sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// Snapshot exports the current counts.
func (h *Histogram) Snapshot() stats.HistogramCounts {
	if h == nil {
		return stats.HistogramCounts{}
	}
	out := stats.HistogramCounts{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// Registry is a concurrent name→metric map. The zero value is NOT ready
// for use — call NewRegistry — but a nil *Registry is a valid disabled
// registry whose accessors return nil handles. Lookups are lock-free
// after first creation (sync.Map fast path); instrumented code should
// still cache handles across hot loops.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. Returns
// nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. A later call with different bounds returns
// the existing histogram unchanged — first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram(bounds))
	return v.(*Histogram)
}

// Snapshot is a point-in-time export of every metric in a registry,
// JSON-serializable for manifests and budget checks.
type Snapshot struct {
	Counters   map[string]int64                 `json:"counters,omitempty"`
	Gauges     map[string]float64               `json:"gauges,omitempty"`
	Histograms map[string]stats.HistogramCounts `json:"histograms,omitempty"`
}

// Snapshot exports every metric. A nil registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	r.counters.Range(func(k, v any) bool {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64)
		}
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		if s.Histograms == nil {
			s.Histograms = make(map[string]stats.HistogramCounts)
		}
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}
