package obs

import (
	"testing"
	"time"
)

func TestTimerSeconds(t *testing.T) {
	tm := StartTimer()
	time.Sleep(10 * time.Millisecond)
	got := tm.Seconds()
	if got < 0.005 {
		t.Errorf("Timer.Seconds() = %v, want >= 0.005", got)
	}
	if got > 10 {
		t.Errorf("Timer.Seconds() = %v, implausibly large", got)
	}
	// Seconds is monotone non-decreasing across calls.
	if again := tm.Seconds(); again < got {
		t.Errorf("second read %v < first read %v", again, got)
	}
}

func TestTimerZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		tm := StartTimer()
		_ = tm.Seconds()
	})
	if allocs != 0 {
		t.Errorf("Timer allocates %v per run, want 0", allocs)
	}
}
