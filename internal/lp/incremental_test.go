package lp_test

import (
	"math"
	"testing"

	"dsmec/internal/lp"
	"dsmec/internal/obs"
	"dsmec/internal/perfbench"
	"dsmec/internal/rng"
)

// checkResolve runs one warm-capable Resolve and cross-checks it against
// a cold MethodRevised solve of the same (current) problem: identical
// statuses, objectives within 1e-9 relative, and a feasible point. It
// returns both solutions for test-specific checks.
func checkResolve(t *testing.T, inc *lp.Incremental) (got, cold *lp.Solution) {
	t.Helper()
	got, err := inc.Resolve(obs.Instruments{})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	cold, err = lp.Solve(inc.Problem())
	if err != nil {
		t.Fatalf("cold cross-check solve: %v", err)
	}
	if got.Status != cold.Status {
		t.Fatalf("status disagreement: incremental=%v cold=%v", got.Status, cold.Status)
	}
	if got.Status != lp.Optimal {
		return got, cold
	}
	if diff := math.Abs(got.Objective - cold.Objective); diff > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective disagreement: incremental=%.12g cold=%.12g (diff %g)",
			got.Objective, cold.Objective, diff)
	}
	checkFeasiblePoint(t, "incremental", inc.Problem(), got.X)
	checkFeasiblePoint(t, "cold", inc.Problem(), cold.X)
	return got, cold
}

func TestIncrementalColdMatchesSolve(t *testing.T) {
	cases := []struct {
		name string
		p    *lp.Problem
	}{
		{"simple maximization", &lp.Problem{
			Minimize: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 2}, Sense: lp.LE, RHS: 4},
				{Coeffs: []float64{3, 1}, Sense: lp.LE, RHS: 6},
			},
		}},
		{"equality constraint", &lp.Problem{
			Minimize: []float64{1, 2},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.EQ, RHS: 3},
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 2},
			},
		}},
		{"negative rhs le", &lp.Problem{
			Minimize: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{-1}, Sense: lp.LE, RHS: -2},
			},
		}},
		{"infeasible rows", &lp.Problem{
			Minimize: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 2},
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 1},
			},
		}},
		{"unbounded", &lp.Problem{
			Minimize: []float64{-1, 0},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 1},
			},
		}},
		{"tight zero bounds", &lp.Problem{
			Minimize: []float64{-5, -1, -1},
			Upper:    []float64{0, 1, 0},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1, 1}, Sense: lp.LE, RHS: 2},
				{Coeffs: []float64{1, 0, 1}, Sense: lp.GE, RHS: 0},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc, err := lp.NewIncremental(tc.p)
			if err != nil {
				t.Fatalf("NewIncremental: %v", err)
			}
			got, _ := checkResolve(t, inc)
			if got.Warm {
				t.Fatalf("first Resolve reported Warm")
			}
			// Resolving again without mutations must stay consistent
			// (warm when the first solve was optimal).
			again, _ := checkResolve(t, inc)
			if wantWarm := got.Status == lp.Optimal; again.Warm != wantWarm {
				t.Fatalf("second Resolve Warm = %v, want %v", again.Warm, wantWarm)
			}
		})
	}
}

func TestIncrementalRequiresRevised(t *testing.T) {
	p := &lp.Problem{Minimize: []float64{1}, Method: lp.MethodDense}
	if _, err := lp.NewIncremental(p); err == nil {
		t.Fatalf("NewIncremental accepted MethodDense")
	}
}

func TestIncrementalBoundAndRHSMutations(t *testing.T) {
	// Includes a negated row (RHS < 0) so SetRHS exercises the stored
	// sign normalization.
	p := &lp.Problem{
		Minimize: []float64{-2, -3, 1},
		Upper:    []float64{4, 4, 4},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1, 2, 0}, Sense: lp.LE, RHS: 6},
			{Coeffs: []float64{-1, 0, -1}, Sense: lp.LE, RHS: -1},
			{Coeffs: []float64{1, 1, 1}, Sense: lp.EQ, RHS: 5},
		},
	}
	inc, err := lp.NewIncremental(p)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	if sol, _ := checkResolve(t, inc); sol.Status != lp.Optimal {
		t.Fatalf("seed problem not optimal: %v", sol.Status)
	}

	steps := []func(){
		func() { inc.SetUpper(1, 1.5) },         // tighten a bound
		func() { inc.SetRHS(0, 4) },             // tighten an LE row
		func() { inc.SetRHS(1, -2) },            // move the negated row
		func() { inc.SetRHS(2, 3.5) },           // move the EQ row
		func() { inc.SetUpper(0, 0) },           // pin a variable
		func() { inc.SetUpper(1, 4) },           // relax back
		func() { inc.SetUpper(0, 2) },           // unpin
		func() { inc.SetRHS(2, 100) },           // make the EQ unsatisfiable
		func() { inc.SetRHS(2, 3) },             // and feasible again
		func() { inc.SetUpper(2, math.Inf(1)) }, // clear a bound
	}
	for i, step := range steps {
		step()
		sol, _ := checkResolve(t, inc)
		t.Logf("step %d: status=%v warm=%v pivots=%d dual=%d",
			i, sol.Status, sol.Warm, sol.Stats.Pivots, sol.Stats.DualPivots)
	}
}

func TestIncrementalAppendedRows(t *testing.T) {
	p := &lp.Problem{
		Minimize: []float64{1, 2},
		Upper:    []float64{10, 10},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1, 1}, Sense: lp.GE, RHS: 2},
		},
	}
	inc, err := lp.NewIncremental(p)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	checkResolve(t, inc)

	// A new EQ row populated by a new variable (the task-arrival shape).
	row := inc.AddRow(lp.EQ, 1)
	inc.AddVariable(0.5, 1, []int{0, row}, []float64{1, 1})
	if sol, _ := checkResolve(t, inc); !sol.Warm {
		t.Fatalf("EQ append did not resolve warm")
	}

	// A new LE row over existing variables only: its slack seats
	// basically, possibly violated, and the dual phase repairs it.
	rowLE := inc.AddRow(lp.LE, 1.5)
	inc.AddVariable(0, 1.5, []int{rowLE}, []float64{1})
	v := inc.AddVariable(-1, 1, []int{rowLE}, []float64{1})
	if sol, _ := checkResolve(t, inc); !sol.Warm {
		t.Fatalf("LE append did not resolve warm")
	}

	// A GE row referencing the appended variable.
	inc.AddRow(lp.GE, 0.25)
	// The GE row has no coefficients yet: 0 >= 0.25 is infeasible, and
	// the incremental path must report exactly what a cold solve does.
	if sol, _ := checkResolve(t, inc); sol.Status != lp.Infeasible {
		t.Fatalf("empty GE row solved as %v, want infeasible", sol.Status)
	}
	// Populating the row restores feasibility; the solver state was
	// dropped on the infeasible solve, so this one rebuilds cold.
	inc.AddVariable(0.1, 1, []int{3}, []float64{1})
	_ = v
	if sol, _ := checkResolve(t, inc); sol.Status != lp.Optimal {
		t.Fatalf("populated GE row solved as %v, want optimal", sol.Status)
	}
}

// clusterHarness drives task-arrival/departure/deadline mutations
// against an Incremental built from a perfbench.ClusterLP instance,
// mirroring how core.ClusterState mutates a cluster relaxation: one EQ
// row and three columns per task, pinning on removal, bound-only
// deadline tightening.
type clusterHarness struct {
	inc *lp.Incremental
	// Row layout of perfbench.ClusterLP: C4 rows [0,tasks), one row per
	// device (10 per cluster), then the station row.
	devRow0, stationRow int
	vars                [][3]int // per task: device/station/cloud variable
	c4                  []int    // per task: its EQ row
	live                []bool
}

// clusterDevices mirrors perfbench's devicesPerCluster.
const clusterDevices = 10

func newClusterHarness(t *testing.T, tasks int) *clusterHarness {
	t.Helper()
	if tasks < clusterDevices {
		t.Fatalf("need >= %d tasks so every device row exists", clusterDevices)
	}
	p := perfbench.ClusterLP(tasks, true)
	inc, err := lp.NewIncremental(p)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	h := &clusterHarness{inc: inc, devRow0: tasks, stationRow: tasks + clusterDevices}
	for i := 0; i < tasks; i++ {
		h.vars = append(h.vars, [3]int{3 * i, 3*i + 1, 3*i + 2})
		h.c4 = append(h.c4, i)
		h.live = append(h.live, true)
	}
	return h
}

// addTask appends one task with ClusterLP-shaped costs and bounds.
func (h *clusterHarness) addTask(r rngStream) {
	dev := len(h.vars) % clusterDevices
	res := 1 + r.Float64()*3
	base := 1 + r.Float64()
	u := func() float64 { return 0.5 + r.Float64()/2 }
	c4 := h.inc.AddRow(lp.EQ, 1)
	vd := h.inc.AddVariable(base, u(), []int{c4, h.devRow0 + dev}, []float64{1, res})
	vs := h.inc.AddVariable(base*(1.5+r.Float64()), u(), []int{c4, h.stationRow}, []float64{1, res})
	vc := h.inc.AddVariable(base*(3+r.Float64()), u(), []int{c4}, []float64{1})
	h.vars = append(h.vars, [3]int{vd, vs, vc})
	h.c4 = append(h.c4, c4)
	h.live = append(h.live, true)
}

// removeTask pins a live task's columns and zeroes its EQ row.
func (h *clusterHarness) removeTask(i int) {
	for _, v := range h.vars[i] {
		h.inc.SetUpper(v, 0)
	}
	h.inc.SetRHS(h.c4[i], 0)
	h.live[i] = false
}

// tighten shrinks one subsystem bound of a live task, floored so the
// task row stays satisfiable on its own (3 × 0.35 > 1).
func (h *clusterHarness) tighten(i, level int) {
	v := h.vars[i][level]
	u := h.inc.Problem().Upper[v]
	if u*0.7 < 0.35 {
		return
	}
	h.inc.SetUpper(v, u*0.7)
}

// rngStream is the subset of *rand.Rand the harness draws from.
type rngStream interface {
	Float64() float64
	Intn(n int) int
}

// roundedLevels maps an LP point to per-task argmax levels, ties toward
// the lower level — the same rounding rule LP-HTA Step 2 uses for
// integral points.
func (h *clusterHarness) roundedLevels(x []float64) []int {
	out := make([]int, 0, len(h.vars))
	for i, vs := range h.vars {
		if !h.live[i] {
			out = append(out, -1)
			continue
		}
		bestL, bestV := 0, x[vs[0]]
		for l := 1; l < 3; l++ {
			if x[vs[l]] > bestV+1e-9 {
				bestL, bestV = l, x[vs[l]]
			}
		}
		out = append(out, bestL)
	}
	return out
}

func TestIncrementalClusterMutationSequences(t *testing.T) {
	for _, tasks := range []int{12, 25, 40} {
		t.Run(map[int]string{12: "tasks=12", 25: "tasks=25", 40: "tasks=40"}[tasks], func(t *testing.T) {
			h := newClusterHarness(t, tasks)
			r := rng.NewSource(int64(tasks)).Stream("incremental-mutations")

			sol, _ := checkResolve(t, h.inc)
			if sol.Status != lp.Optimal {
				t.Fatalf("seed cluster not optimal: %v", sol.Status)
			}
			prevOptimal := true

			for step := 0; step < 12; step++ {
				switch k := r.Intn(4); {
				case k <= 1: // arrivals twice as likely as the rest
					h.addTask(r)
				case k == 2:
					i := r.Intn(len(h.vars))
					if h.live[i] {
						h.removeTask(i)
					} else {
						h.addTask(r)
					}
				default:
					i := r.Intn(len(h.vars))
					if h.live[i] {
						h.tighten(i, r.Intn(3))
					} else {
						h.addTask(r)
					}
				}

				sol, cold := checkResolve(t, h.inc)
				if sol.Warm != prevOptimal {
					t.Fatalf("step %d: Warm = %v after prevOptimal = %v (unexpected fallback?)",
						step, sol.Warm, prevOptimal)
				}
				prevOptimal = sol.Status == lp.Optimal
				if sol.Status != lp.Optimal {
					continue
				}
				warmLv := h.roundedLevels(sol.X)
				coldLv := h.roundedLevels(cold.X)
				for i := range warmLv {
					if warmLv[i] != coldLv[i] {
						t.Fatalf("step %d: task %d rounds to level %d warm, %d cold",
							step, i, warmLv[i], coldLv[i])
					}
				}
			}
		})
	}
}

// TestIncrementalWarmPivotBudget pins the acceptance criterion: after a
// single task arrival in a 300-task cluster, the warm re-solve must
// finish in under 10% of the pivots a cold MethodRevised solve of the
// same mutated problem needs (and match it exactly otherwise). The
// 150-task case guards the smaller end.
func TestIncrementalWarmPivotBudget(t *testing.T) {
	for _, tasks := range []int{150, 300} {
		t.Run(map[int]string{150: "tasks=150", 300: "tasks=300"}[tasks], func(t *testing.T) {
			h := newClusterHarness(t, tasks)
			r := rng.NewSource(99).Stream("pivot-budget")
			if sol, err := h.inc.Resolve(obs.Instruments{}); err != nil || sol.Status != lp.Optimal {
				t.Fatalf("seed solve: %v %v", sol, err)
			}

			h.addTask(r)
			warm, cold := checkResolve(t, h.inc)
			if !warm.Warm {
				t.Fatalf("arrival re-solve was not warm")
			}
			if warm.Status != lp.Optimal || cold.Status != lp.Optimal {
				t.Fatalf("statuses: warm=%v cold=%v", warm.Status, cold.Status)
			}
			if 10*warm.Stats.Pivots >= cold.Stats.Pivots {
				t.Fatalf("warm re-solve took %d pivots, cold %d: want < 10%%",
					warm.Stats.Pivots, cold.Stats.Pivots)
			}
			warmLv, coldLv := h.roundedLevels(warm.X), h.roundedLevels(cold.X)
			for i := range warmLv {
				if warmLv[i] != coldLv[i] {
					t.Fatalf("task %d rounds to %d warm, %d cold", i, warmLv[i], coldLv[i])
				}
			}
			t.Logf("tasks=%d: warm pivots=%d (dual=%d flips=%d) cold pivots=%d",
				tasks, warm.Stats.Pivots, warm.Stats.DualPivots,
				warm.Stats.BoundFlips, cold.Stats.Pivots)
		})
	}
}
