package lp

import (
	"fmt"
	"sync/atomic"
)

// Method selects which simplex implementation Solve runs.
//
// Both methods implement the same bounded-variable two-phase primal
// simplex semantics (native upper bounds, Dantzig pricing with a Bland
// fallback after degenerate runs) and agree on status and objective; they
// differ in how the basis is represented:
//
//   - MethodRevised (the default) keeps only an LU factorization of the
//     m×m basis matrix, updated with product-form eta vectors and
//     refactorized periodically. Iterations price the sparse constraint
//     columns via BTRAN/FTRAN on the factors and never materialize the
//     dense tableau, so a pivot costs O(m + nnz) instead of O(rows×cols).
//   - MethodDense maintains the full dense tableau B⁻¹A. It is retained
//     as the reference oracle: slower on large sparse problems, but the
//     implementation the cross-check suites compare against.
type Method int

// Solve methods. The zero value MethodAuto resolves to the package
// default (revised; see SetDefaultMethod).
const (
	MethodAuto Method = iota
	MethodRevised
	MethodDense
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodRevised:
		return "revised"
	case MethodDense:
		return "dense"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a CLI flag value into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "auto":
		return MethodAuto, nil
	case "revised":
		return MethodRevised, nil
	case "dense":
		return MethodDense, nil
	default:
		return 0, fmt.Errorf("lp: unknown method %q (want auto, revised, or dense)", s)
	}
}

// defaultMethod is what MethodAuto resolves to (revised unless
// overridden). Stored as an int64 so harnesses may switch it at runtime.
var defaultMethod atomic.Int64

// SetDefaultMethod changes what MethodAuto resolves to, process-wide.
// It exists for harnesses (cmd/mecbench) that build solver options deep
// inside experiment definitions and cannot thread a method through every
// call site — the same pattern obs.SetGlobal uses for metrics. Passing
// MethodAuto restores the built-in default (revised).
func SetDefaultMethod(m Method) {
	if m != MethodDense && m != MethodRevised {
		m = MethodAuto
	}
	defaultMethod.Store(int64(m))
}

// DefaultMethod returns what MethodAuto currently resolves to.
func DefaultMethod() Method {
	if m := Method(defaultMethod.Load()); m == MethodDense || m == MethodRevised {
		return m
	}
	return MethodRevised
}

// resolve maps MethodAuto to the process default.
func (m Method) resolve() Method {
	if m == MethodAuto {
		return DefaultMethod()
	}
	return m
}
