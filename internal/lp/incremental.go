package lp

import (
	"errors"
	"fmt"
	"math"

	"dsmec/internal/obs"
)

// errWarmFallback signals that a warm-started re-solve could not be
// completed safely (singular basis, numerically hostile pivot, dual
// unboundedness within tolerance) and the caller should rebuild cold.
// It never escapes Incremental.Resolve.
var errWarmFallback = errors.New("lp: warm start abandoned")

// Incremental maintains a linear program together with the solver state
// of its last optimal solve, so that small mutations — appended
// variables and rows, bound and right-hand-side changes — re-solve warm
// from the previous optimal basis instead of from scratch.
//
// The supported mutations deliberately exclude objective changes:
// bounds and right-hand sides perturb only primal feasibility, so the
// previous basis stays dual feasible and a dual-simplex phase (plus a
// short primal cleanup for any appended columns) restores optimality in
// a handful of pivots. Appended columns that price dual-infeasible are
// bound-flipped to their finite upper bound; a dual-infeasible column
// with an infinite upper bound forces a cold rebuild instead. Any
// numerically suspect step — a singular refreshed basis, a pivot below
// tolerance, an iteration-limit overrun — also falls back to a cold
// solve of the current problem, so Resolve never trades correctness for
// warmth.
//
// Removal is modeled by pinning: fix the variable at zero with
// SetUpper(j, 0) (and zero any now-trivial row with SetRHS). Pinned
// columns are skipped by pricing, so they cost nothing per iteration;
// callers that accumulate many dead columns can rebuild a compact
// Incremental from live data at their own cadence.
//
// The solver is MethodRevised-only: warm starts are exactly the reuse
// of its LU-factorized basis. Incremental is not safe for concurrent
// use.
type Incremental struct {
	minimize []float64
	cons     []Constraint // all rows in sparse form
	upper    []float64    // materialized (+Inf when absent)

	s      *rsimplex // end state of the last optimal solve (nil otherwise)
	varCol []int     // variable -> solver column
}

// NewIncremental captures a deep copy of p as the starting problem. The
// problem must validate and have at least one variable; p.Method, if
// set, must be MethodAuto or MethodRevised.
func NewIncremental(p *Problem) (*Incremental, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m := p.Method.resolve(); m != MethodRevised {
		return nil, fmt.Errorf("lp: incremental solves require MethodRevised, got %v", p.Method)
	}
	n := p.NumVars()
	inc := &Incremental{
		minimize: append([]float64(nil), p.Minimize...),
		upper:    make([]float64, n),
	}
	for j := range inc.upper {
		inc.upper[j] = math.Inf(1)
	}
	copy(inc.upper, p.Upper)
	inc.cons = make([]Constraint, len(p.Constraints))
	for i := range p.Constraints {
		inc.cons[i] = sparseCopy(&p.Constraints[i])
	}
	return inc, nil
}

// sparseCopy deep-copies a constraint into sparse form.
func sparseCopy(c *Constraint) Constraint {
	out := Constraint{Sense: c.Sense, RHS: c.RHS}
	if c.Cols != nil {
		out.Cols = append([]int{}, c.Cols...)
		out.Coeffs = append([]float64{}, c.Coeffs...)
		return out
	}
	out.Cols = []int{}
	out.Coeffs = []float64{}
	for j, a := range c.Coeffs {
		if a != 0 {
			out.Cols = append(out.Cols, j)
			out.Coeffs = append(out.Coeffs, a)
		}
	}
	return out
}

// NumVars returns the current variable count.
func (inc *Incremental) NumVars() int { return len(inc.minimize) }

// NumRows returns the current constraint count.
func (inc *Incremental) NumRows() int { return len(inc.cons) }

// Problem returns the current effective problem as a live view: it
// shares backing arrays with the Incremental and is valid until the
// next mutation. Cold cross-check solves and fallback rebuilds both
// read it.
func (inc *Incremental) Problem() *Problem {
	return &Problem{
		Minimize:    inc.minimize,
		Constraints: inc.cons,
		Upper:       inc.upper,
		Method:      MethodRevised,
	}
}

// solverLive reports whether warm state exists and is safe to mutate
// in place. Non-optimal solves drop their state, so a live solver is
// always the end state of an optimal one.
func (inc *Incremental) solverLive() bool { return inc.s != nil }

func (inc *Incremental) dropSolver() { inc.s = nil }

// AddRow appends a constraint with no coefficients yet and returns its
// row index. Coefficients reach the row through subsequent AddVariable
// calls — the arrival pattern the daemon needs (a new task brings a new
// assignment row plus the columns that populate it). The RHS is taken
// as-is (no sign normalization); a warm re-solve seats the row's slack
// or pinned artificial basically and lets the dual phase repair it.
func (inc *Incremental) AddRow(sense Sense, rhs float64) int {
	if sense != LE && sense != GE && sense != EQ {
		panic(fmt.Sprintf("lp: AddRow: invalid sense %d", int(sense)))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: AddRow: non-finite rhs %g", rhs))
	}
	i := len(inc.cons)
	inc.cons = append(inc.cons, Constraint{Cols: []int{}, Coeffs: []float64{}, Sense: sense, RHS: rhs})
	if !inc.solverLive() {
		return i
	}
	inc.s.appendRow(sense, rhs)
	return i
}

// AddVariable appends a variable with the given objective cost, upper
// bound, and sparse column (vals[k] in row rows[k]), returning its
// index. Rows may be original or appended; each row index may appear
// once. The new column starts nonbasic at zero, so the previous basis
// stays primal-consistent; if it prices dual-infeasible the next warm
// Resolve bound-flips it (finite upper) or rebuilds cold.
func (inc *Incremental) AddVariable(cost, upper float64, rows []int, vals []float64) int {
	if len(rows) != len(vals) {
		panic(fmt.Sprintf("lp: AddVariable: %d rows for %d values", len(rows), len(vals)))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("lp: AddVariable: non-finite cost %g", cost))
	}
	if math.IsNaN(upper) || upper < 0 {
		panic(fmt.Sprintf("lp: AddVariable: invalid upper bound %g", upper))
	}
	for k, i := range rows {
		if i < 0 || i >= len(inc.cons) {
			panic(fmt.Sprintf("lp: AddVariable: row %d of %d", i, len(inc.cons)))
		}
		if math.IsNaN(vals[k]) || math.IsInf(vals[k], 0) {
			panic(fmt.Sprintf("lp: AddVariable: non-finite coefficient %g", vals[k]))
		}
	}
	v := len(inc.minimize)
	inc.minimize = append(inc.minimize, cost)
	inc.upper = append(inc.upper, upper)
	for k, i := range rows {
		if vals[k] == 0 {
			continue
		}
		inc.cons[i].Cols = append(inc.cons[i].Cols, v)
		inc.cons[i].Coeffs = append(inc.cons[i].Coeffs, vals[k])
	}
	if !inc.solverLive() {
		return v
	}
	s := inc.s
	if s.colVar == nil {
		// Columns stop being a variable prefix now; materialize the map.
		s.colVar = make([]int, s.n)
		for j := range s.colVar {
			s.colVar[j] = -1
		}
		for j := 0; j < s.nStruct; j++ {
			s.colVar[j] = j
		}
	}
	// Apply the stored sign normalization of each target row.
	adj := make([]float64, len(vals))
	for k, i := range rows {
		adj[k] = vals[k]
		if s.rowNeg[i] {
			adj[k] = -vals[k]
		}
	}
	col := s.appendColumn(rows, adj, cost, upper, atLower)
	s.colVar[col] = v
	inc.varCol = append(inc.varCol, col)
	return v
}

// SetUpper changes variable j's upper bound (math.Inf(1) clears it;
// 0 pins the variable). The previous basis stays dual feasible; the
// next Resolve repairs any primal violation with dual pivots.
func (inc *Incremental) SetUpper(j int, u float64) {
	if j < 0 || j >= len(inc.minimize) {
		panic(fmt.Sprintf("lp: SetUpper: variable %d of %d", j, len(inc.minimize)))
	}
	if math.IsNaN(u) || u < 0 {
		panic(fmt.Sprintf("lp: SetUpper: invalid upper bound %g", u))
	}
	inc.upper[j] = u
	if !inc.solverLive() {
		return
	}
	s := inc.s
	col := inc.varCol[j]
	s.upper[col] = u
	// A variable resting at an upper bound that collapsed to zero is
	// equivalently at its lower bound; normalize so pricing and value
	// recomputation treat pinned columns uniformly.
	if u == 0 && s.status[col] == atUpper {
		s.status[col] = atLower
	}
}

// SetRHS changes row i's right-hand side. Senses are fixed at AddRow
// time; the stored sign normalization of original rows is reapplied.
func (inc *Incremental) SetRHS(i int, rhs float64) {
	if i < 0 || i >= len(inc.cons) {
		panic(fmt.Sprintf("lp: SetRHS: row %d of %d", i, len(inc.cons)))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic(fmt.Sprintf("lp: SetRHS: non-finite rhs %g", rhs))
	}
	inc.cons[i].RHS = rhs
	if !inc.solverLive() {
		return
	}
	if inc.s.rowNeg[i] {
		rhs = -rhs
	}
	inc.s.b[i] = rhs
}

// Resolve solves the current problem, warm when the previous solve left
// a reusable optimal basis and cold otherwise. Warm solves are
// cross-checkable: they produce the same status and (within 1e-9) the
// same objective as a cold MethodRevised solve of Problem(). Metrics
// and a trace span are recorded into ins.
func (inc *Incremental) Resolve(ins obs.Instruments) (*Solution, error) {
	span := ins.Span.Child("lp.resolve")
	defer span.End()
	reg := ins.Registry()
	reg.Counter("lp.resolves").Inc()
	timer := obs.StartTimer()

	if inc.solverLive() {
		sol, err := inc.warmResolve(ins, span)
		if err == nil {
			reg.Counter("lp.resolves.warm").Inc()
			inc.recordResolve(span, reg, sol, timer.Seconds())
			return sol, nil
		}
		if !errors.Is(err, errWarmFallback) {
			inc.dropSolver()
			return nil, err
		}
		reg.Counter("lp.resolves.cold_fallback").Inc()
		inc.dropSolver()
	} else {
		reg.Counter("lp.resolves.cold").Inc()
	}

	sol, err := inc.coldSolve(ins, span)
	if err != nil {
		return nil, err
	}
	inc.recordResolve(span, reg, sol, timer.Seconds())
	return sol, nil
}

// recordResolve publishes one resolve's outcome.
func (inc *Incremental) recordResolve(span *obs.Span, reg *obs.Registry, sol *Solution, seconds float64) {
	reg.Counter("lp.pivots").Add(int64(sol.Stats.Pivots))
	reg.Counter("lp.dual_pivots").Add(int64(sol.Stats.DualPivots))
	reg.Counter("lp.bound_flips").Add(int64(sol.Stats.BoundFlips))
	reg.Histogram("lp.resolve_seconds", obs.TimeBuckets).Observe(seconds)
	reg.Histogram("lp.resolve_pivots", obs.CountBuckets).Observe(float64(sol.Stats.Pivots))
	if span != nil {
		span.Annotate("warm", sol.Warm)
		span.Annotate("status", sol.Status.String())
		span.Annotate("vars", inc.NumVars())
		span.Annotate("constraints", inc.NumRows())
		span.Annotate("pivots", sol.Stats.Pivots)
		span.Annotate("dual_pivots", sol.Stats.DualPivots)
	}
}

// coldSolve rebuilds solver state from the mirror problem and runs the
// ordinary two-phase solve, retaining the end state for future warm
// starts when it ends Optimal.
func (inc *Incremental) coldSolve(ins obs.Instruments, span *obs.Span) (*Solution, error) {
	p := inc.Problem()
	log := ins.Logger()
	s := newRevised(p)
	s.log = log
	if err := s.factor(); err != nil {
		inc.dropSolver()
		return nil, err
	}
	sol, err := s.solveFull(inc.minimize, span, log)
	if err != nil {
		inc.dropSolver()
		return nil, err
	}
	sol.Method = MethodRevised
	if sol.Status != Optimal {
		inc.dropSolver()
		return sol, nil
	}
	inc.s = s
	inc.varCol = inc.varCol[:0]
	for v := range inc.minimize {
		inc.varCol = append(inc.varCol, v)
	}
	return sol, nil
}

// warmResolve re-solves from the previous optimal basis: refresh the LU
// factors, restore dual feasibility by bound-flipping any appended
// column that prices wrong-side, recompute the basic values under the
// current bounds and right-hand sides, drive out primal infeasibility
// with dual-simplex pivots, and finish with a primal cleanup pass. Any
// trouble returns errWarmFallback and the caller rebuilds cold.
func (inc *Incremental) warmResolve(ins obs.Instruments, span *obs.Span) (*Solution, error) {
	s := inc.s
	s.log = ins.Logger()
	s.skipFixed = true
	defer func() { s.skipFixed = false }()
	s.stats = SolveStats{}
	s.iterations = 0
	timer := obs.StartTimer()

	if err := s.factor(); err != nil {
		return nil, errWarmFallback
	}
	// Mutations never touch costs or the basis, so only columns appended
	// since the last solve can price dual-infeasible. Flipping such a
	// column to its finite opposite bound restores dual feasibility
	// without a pivot; an unflippable (unbounded) column forces a cold
	// rebuild. The 1e-7 threshold ignores factorization drift on old
	// columns — the primal cleanup pass sweeps up anything that small.
	const dualTol = 1e-7
	s.btranCosts()
	for j := 0; j < s.n; j++ {
		st := s.status[j]
		if st == basic || s.upper[j] == 0 {
			continue
		}
		d := s.cost[j]
		rows, vals := s.column(j)
		for k, i := range rows {
			d -= s.y[i] * vals[k]
		}
		if st == atLower && d < -dualTol {
			if math.IsInf(s.upper[j], 1) {
				return nil, errWarmFallback
			}
			s.status[j] = atUpper
			s.stats.BoundFlips++
		} else if st == atUpper && d > dualTol {
			s.status[j] = atLower
			s.stats.BoundFlips++
		}
	}
	s.recomputeValues()

	dSpan := span.Child("lp.dual")
	err := s.dualSimplex()
	dSpan.Annotate("pivots", s.stats.DualPivots)
	dSpan.End()
	if err != nil {
		return nil, err
	}
	if err := s.run(s.n); err != nil {
		return nil, errWarmFallback
	}
	s.stats.Phase2Iterations = s.iterations
	s.stats.Phase2Seconds = timer.Seconds()

	x, obj := s.extract(inc.minimize)
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  obj,
		Iterations: s.iterations,
		Method:     MethodRevised,
		Warm:       true,
		Stats:      s.stats,
	}, nil
}

// appendRow grows the solver by one constraint row, seating a fresh
// basic column for it: a slack for ≤, a pinned artificial for = and ≥
// (the latter also gets its surplus column). The extended basis matrix
// is block-triangular — old basis, zero block, unit diagonal — so it
// stays nonsingular and the next refactorization accepts it.
func (s *rsimplex) appendRow(sense Sense, rhs float64) {
	i := s.m
	s.m++
	s.b = append(s.b, rhs)
	s.rowNeg = append(s.rowNeg, false)
	var bcol int
	switch sense {
	case LE:
		bcol = s.appendColumn([]int{i}, []float64{1}, 0, math.Inf(1), basic)
	case GE:
		s.appendColumn([]int{i}, []float64{-1}, 0, math.Inf(1), atLower)
		bcol = s.appendColumn([]int{i}, []float64{1}, 0, 0, basic)
	default: // EQ
		bcol = s.appendColumn([]int{i}, []float64{1}, 0, 0, basic)
	}
	s.basis = append(s.basis, bcol)
	s.value = append(s.value, rhs)
	s.w = append(s.w, 0)
	s.y = append(s.y, 0)
	s.cb = append(s.cb, 0)
	s.rhsDense = append(s.rhsDense, 0)
}

// appendColumn adds one column to the sparse matrix and returns its
// index. Zero coefficients are dropped, matching the initial build.
func (s *rsimplex) appendColumn(rows []int, vals []float64, cost, upper float64, st varStatus) int {
	j := s.n
	for k, i := range rows {
		if vals[k] == 0 {
			continue
		}
		s.colRow = append(s.colRow, i)
		s.colVal = append(s.colVal, vals[k])
	}
	s.colPtr = append(s.colPtr, len(s.colRow))
	s.cost = append(s.cost, cost)
	s.upper = append(s.upper, upper)
	s.status = append(s.status, st)
	if s.colVar != nil {
		s.colVar = append(s.colVar, -1)
	}
	s.n++
	return j
}

// dualSimplex restores primal feasibility while preserving dual
// feasibility: each iteration evicts the basic variable with the worst
// bound violation and brings in the nonbasic column whose reduced cost
// reaches zero first along the dual ray (the bounded-variable dual
// ratio test). It is the warm-start counterpart of phase 1 — a new
// task's pinned artificial leaves the basis here, which is why one
// arrival costs a handful of pivots rather than a fresh two-phase
// solve. Ties take the first candidate in scan order, keeping re-solves
// deterministic.
func (s *rsimplex) dualSimplex() error {
	const feasTol = 1e-7
	limit := 2000 * (s.m + s.n + 1)
	rho := make([]float64, s.m)
	pos := make([]float64, s.m)

	for iter := 0; iter < limit; iter++ {
		// Leaving: largest bound violation among the basic values.
		r := -1
		worst := feasTol
		above := false
		for i := 0; i < s.m; i++ {
			v := s.value[i]
			viol := -v
			isAbove := false
			if ub := s.upper[s.basis[i]]; !math.IsInf(ub, 1) {
				if over := v - ub; over > viol {
					viol, isAbove = over, true
				}
			}
			if viol > worst {
				worst, r, above = viol, i, isAbove
			}
		}
		if r < 0 {
			return nil // primal feasible
		}

		// ρ = row r of B⁻¹: unit vector through the eta transposes in
		// reverse, then the LU transpose solve. α_j = ρ·A_j is the pivot
		// row entry of each column.
		for i := range pos {
			pos[i] = 0
		}
		pos[r] = 1
		for t := len(s.etas) - 1; t >= 0; t-- {
			e := &s.etas[t]
			acc := pos[e.r]
			for k, i := range e.idx {
				acc -= e.val[k] * pos[i]
			}
			pos[e.r] = acc / e.wr
		}
		s.lu.btran(rho, pos)
		s.btranCosts() // duals for the ratio test

		// Entering: among columns whose movement pushes x_r toward its
		// violated bound, the one whose reduced cost hits zero first.
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < s.n; j++ {
			st := s.status[j]
			if st == basic || s.upper[j] == 0 {
				continue
			}
			alpha := 0.0
			d := s.cost[j]
			for t, end := s.colPtr[j], s.colPtr[j+1]; t < end; t++ {
				i := s.colRow[t]
				alpha += rho[i] * s.colVal[t]
				d -= s.y[i] * s.colVal[t]
			}
			var ok bool
			if above {
				ok = (st == atLower && alpha > pivotEps) || (st == atUpper && alpha < -pivotEps)
			} else {
				ok = (st == atLower && alpha < -pivotEps) || (st == atUpper && alpha > pivotEps)
			}
			if !ok {
				continue
			}
			mag := d
			if st == atUpper {
				mag = -d
			}
			if mag < 0 {
				mag = 0 // dual-feasible within tolerance; clamp drift
			}
			if ratio := mag / math.Abs(alpha); ratio < bestRatio {
				bestRatio, enter = ratio, j
			}
		}
		if enter < 0 {
			// Dual ray with no blocking column: the primal is infeasible
			// (or numerics have degraded); let the cold path classify it.
			return errWarmFallback
		}

		s.ftranColumn(s.w, enter)
		wr := s.w[r]
		if math.Abs(wr) <= pivotEps {
			return errWarmFallback
		}
		bound := 0.0
		if above {
			bound = s.upper[s.basis[r]]
		}
		// The entering variable moves by delta off its bound; position r
		// lands exactly on the violated bound.
		delta := (s.value[r] - bound) / wr
		enterValue := 0.0
		if s.status[enter] == atUpper {
			enterValue = s.upper[enter]
		}
		for i := 0; i < s.m; i++ {
			if i != r {
				s.value[i] -= s.w[i] * delta
			}
		}
		leaving := s.basis[r]
		if above {
			s.status[leaving] = atUpper
		} else {
			s.status[leaving] = atLower
		}
		s.value[r] = enterValue + delta
		s.status[enter] = basic
		s.stats.DualPivots++
		if delta < eps && delta > -eps {
			s.stats.DegeneratePivots++
		}
		if err := s.pivot(r, enter); err != nil {
			return errWarmFallback
		}
	}
	return errWarmFallback // iteration limit; rebuild cold
}
