package lp

import (
	"errors"
	"fmt"
	"math"

	"dsmec/internal/obs"
)

// refactorInterval bounds the eta file: after this many product-form
// updates the basis is refactorized from scratch and the basic values are
// recomputed from the original right-hand side, keeping both the factors
// and the iterate numerically fresh. ~50 is the classic compromise: long
// enough to amortize the factorization, short enough that eta roundoff
// never accumulates into wrong pivot decisions.
const refactorInterval = 50

// etaVec is one product-form basis update: after a pivot that replaced
// basis position r with the entering column whose FTRAN image was w, the
// new basis inverse is E⁻¹B⁻¹ where E is the identity with column r
// replaced by w. Only the nonzeros of w are kept.
type etaVec struct {
	r   int     // basis position replaced by the pivot
	wr  float64 // w[r], the pivot element (|wr| > pivotEps by ratio test)
	idx []int   // other positions with nonzero w
	val []float64
}

// rsimplex is the bounded-variable revised simplex (MethodRevised). It
// keeps the constraint matrix in sparse column form and only the basis in
// factorized form; iterations run BTRAN to price and FTRAN to pivot, so
// the O(rows×cols) dense tableau is never materialized. Row/column
// bookkeeping (status, basis, value) matches the dense tableau exactly —
// position k here plays the role of tableau row k.
type rsimplex struct {
	m, n     int // rows, total columns
	nStruct  int // structural variable count
	nArt     int // artificial count
	artStart int // first artificial column

	// A over all columns (structural, slack/surplus, artificial) in
	// compressed sparse column form, RHS-sign normalized like the dense
	// tableau's rows.
	colPtr []int
	colRow []int
	colVal []float64

	b      []float64   // normalized RHS ≥ 0, row space
	rowNeg []bool      // rows negated by RHS-sign normalization
	upper  []float64   // per-column upper bound (+Inf when absent)
	status []varStatus // per-column location
	basis  []int       // basis[k] = column basic at position k
	value  []float64   // value[k] = current value of basis[k]

	// skipFixed, when set, excludes columns fixed at zero (upper bound 0)
	// from pricing. A fixed column can never change the solution, but the
	// cold path still prices it to stay iteration-for-iteration identical
	// with the dense oracle; only the incremental warm path (which pins
	// removed variables at zero instead of deleting them) sets this.
	skipFixed bool

	// colVar maps solver columns back to problem variables (-1 for
	// slack/artificial columns). nil means the original prefix layout:
	// variables are exactly columns [0, nStruct). Incremental solves
	// materialize it once columns stop being a prefix.
	colVar []int

	lu   *luFactors
	etas []etaVec
	log  *obs.Logger // refactorization debug records (nil disables)

	cost []float64 // current phase costs

	// Per-solve scratch.
	w        []float64 // FTRAN of the entering column, position space
	y        []float64 // BTRAN duals, row space
	cb       []float64 // basis costs, position space
	rhsDense []float64 // row space, for value recomputation
	rhsRows  []int
	rhsVals  []float64

	iterations int
	stats      SolveStats
}

// newRevised lowers p into bounded standard form with a sparse
// column-major matrix. The classification, signs, and initial
// slack/artificial basis are identical to newTableau's.
func newRevised(p *Problem) *rsimplex {
	n := p.NumVars()
	cons := p.Constraints
	m := len(cons)
	kinds, nSlack, nArt := classifyRows(cons)

	s := &rsimplex{
		m:        m,
		n:        n + nSlack + nArt,
		nStruct:  n,
		nArt:     nArt,
		artStart: n + nSlack,
	}

	// Two-pass CSC build: count entries per column, then fill. Explicit
	// zeros in dense rows are dropped — they scatter to zero anyway.
	counts := make([]int, s.n)
	for _, c := range cons {
		if c.Cols != nil {
			for k, j := range c.Cols {
				if c.Coeffs[k] != 0 {
					counts[j]++
				}
			}
			continue
		}
		for j, a := range c.Coeffs {
			if a != 0 {
				counts[j]++
			}
		}
	}
	for j := n; j < s.n; j++ {
		counts[j] = 1 // slack and artificial unit columns
	}
	s.colPtr = make([]int, s.n+1)
	for j := 0; j < s.n; j++ {
		s.colPtr[j+1] = s.colPtr[j] + counts[j]
	}
	nnz := s.colPtr[s.n]
	s.colRow = make([]int, nnz)
	s.colVal = make([]float64, nnz)
	next := make([]int, s.n)
	copy(next, s.colPtr[:s.n])
	put := func(i, j int, v float64) {
		s.colRow[next[j]] = i
		s.colVal[next[j]] = v
		next[j]++
	}

	s.b = make([]float64, m)
	s.rowNeg = make([]bool, m)
	for i := range kinds {
		s.rowNeg[i] = kinds[i].neg
	}
	s.basis = make([]int, m)
	s.value = make([]float64, m)
	s.upper = make([]float64, s.n)
	s.status = make([]varStatus, s.n)
	for j := range s.upper {
		s.upper[j] = math.Inf(1)
	}
	for j, u := range p.Upper {
		s.upper[j] = u
	}

	slackCol, artCol := n, n+nSlack
	for i, c := range cons {
		sign := 1.0
		if kinds[i].neg {
			sign = -1
		}
		if c.Cols != nil {
			for k, j := range c.Cols {
				if v := sign * c.Coeffs[k]; v != 0 {
					put(i, j, v)
				}
			}
		} else {
			for j, a := range c.Coeffs {
				if v := sign * a; v != 0 {
					put(i, j, v)
				}
			}
		}
		s.b[i] = sign * c.RHS

		switch kinds[i].sense {
		case LE:
			put(i, slackCol, 1)
			s.basis[i] = slackCol
			slackCol++
		case GE:
			put(i, slackCol, -1)
			slackCol++
			put(i, artCol, 1)
			s.basis[i] = artCol
			artCol++
		case EQ:
			put(i, artCol, 1)
			s.basis[i] = artCol
			artCol++
		}
		s.value[i] = s.b[i]
		s.status[s.basis[i]] = basic
	}

	s.cost = make([]float64, s.n)
	s.w = make([]float64, m)
	s.y = make([]float64, m)
	s.cb = make([]float64, m)
	s.rhsDense = make([]float64, m)
	s.rhsRows = make([]int, 0, m)
	s.rhsVals = make([]float64, 0, m)
	return s
}

// column returns the sparse CSC slice of column j.
func (s *rsimplex) column(j int) (rows []int, vals []float64) {
	lo, hi := s.colPtr[j], s.colPtr[j+1]
	return s.colRow[lo:hi], s.colVal[lo:hi]
}

// factor (re)computes the LU factors of the current basis and clears the
// eta file.
func (s *rsimplex) factor() error {
	lu, err := factorBasis(s.m, func(p int) ([]int, []float64) {
		return s.column(s.basis[p])
	})
	if err != nil {
		return fmt.Errorf("lp: basis factorization: %w", err)
	}
	s.lu = lu
	s.etas = s.etas[:0]
	return nil
}

// refactor refreshes the factorization mid-solve and recomputes the
// basic values from the original right-hand side, discarding the
// incremental update drift: x_B = B⁻¹(b − Σ_{j at upper} u_j·A_j).
func (s *rsimplex) refactor() error {
	etas := len(s.etas)
	if err := s.factor(); err != nil {
		return err
	}
	s.stats.Refactorizations++
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("lp refactorization",
			"number", s.stats.Refactorizations,
			"pivots", s.stats.Pivots,
			"etas_dropped", etas)
	}
	s.recomputeValues()
	return nil
}

// recomputeValues rebuilds the basic values from the original right-hand
// side against the current (freshly factorized, eta-free) basis:
// x_B = B⁻¹(b − Σ_{j at upper} u_j·A_j).
func (s *rsimplex) recomputeValues() {
	copy(s.rhsDense, s.b)
	for j := 0; j < s.n; j++ {
		if s.status[j] != atUpper {
			continue
		}
		u := s.upper[j]
		if u == 0 {
			continue
		}
		rows, vals := s.column(j)
		for t, i := range rows {
			s.rhsDense[i] -= u * vals[t]
		}
	}
	s.rhsRows, s.rhsVals = s.rhsRows[:0], s.rhsVals[:0]
	for i, v := range s.rhsDense {
		if v != 0 {
			s.rhsRows = append(s.rhsRows, i)
			s.rhsVals = append(s.rhsVals, v)
		}
	}
	s.lu.ftran(s.value, s.rhsRows, s.rhsVals)
}

// ftranColumn computes w = B⁻¹A_j into dst (position space): the LU
// solve followed by the eta file in application order.
func (s *rsimplex) ftranColumn(dst []float64, j int) {
	rows, vals := s.column(j)
	s.lu.ftran(dst, rows, vals)
	for t := range s.etas {
		e := &s.etas[t]
		tr := dst[e.r] / e.wr
		dst[e.r] = tr
		if tr == 0 {
			continue
		}
		for k, i := range e.idx {
			dst[i] -= e.val[k] * tr
		}
	}
}

// btranCosts computes the duals y = B⁻ᵀc_B into s.y (row space): the eta
// transposes in reverse order, then the LU transpose solve.
func (s *rsimplex) btranCosts() {
	for k, bcol := range s.basis {
		s.cb[k] = s.cost[bcol]
	}
	for t := len(s.etas) - 1; t >= 0; t-- {
		e := &s.etas[t]
		acc := s.cb[e.r]
		for k, i := range e.idx {
			acc -= e.val[k] * s.cb[i]
		}
		s.cb[e.r] = acc / e.wr
	}
	s.lu.btran(s.y, s.cb)
}

// setCosts installs the phase objective.
func (s *rsimplex) setCosts(minimize []float64, phase1 bool) {
	s.stats.ObjectiveInstalls++
	for j := range s.cost {
		s.cost[j] = 0
	}
	if phase1 {
		for j := s.artStart; j < s.n; j++ {
			s.cost[j] = 1
		}
		return
	}
	copy(s.cost, minimize)
}

// pivot installs the entering column at basis position leave: either a
// product-form eta recorded from the FTRAN image in s.w, or — once the
// eta file is full — a fresh factorization of the updated basis.
func (s *rsimplex) pivot(leave, enter int) error {
	s.basis[leave] = enter
	s.iterations++
	s.stats.Pivots++
	if len(s.etas) >= refactorInterval {
		return s.refactor()
	}
	e := etaVec{r: leave, wr: s.w[leave]}
	for i, v := range s.w {
		if i != leave && v != 0 {
			e.idx = append(e.idx, i)
			e.val = append(e.val, v)
		}
	}
	s.etas = append(s.etas, e)
	s.stats.EtaVectors++
	return nil
}

// run iterates the bounded-variable revised simplex until optimality
// (nil), unboundedness (errUnbounded), or the iteration limit. Columns
// j < maxCol are priced (phase 1 allows everything, phase 2 stops at
// artStart — allowed columns are always a prefix). The pricing, ratio
// test, degeneracy escalation to Bland's rule, and tie-breaking
// replicate the dense tableau's runSimplex exactly — only the linear
// algebra behind the numbers differs.
func (s *rsimplex) run(maxCol int) error {
	limit := 2000 * (s.m + s.n + 1)
	degenerate := 0
	useBland := false
	// Hoisted for the pricing loop, the per-iteration hot path: d_j =
	// c_j − y·A_j over the CSC column, with slice headers lifted out so
	// the inner dot product stays bounds-check free.
	colPtr, colRow, colVal := s.colPtr, s.colRow, s.colVal
	cost, status, y := s.cost, s.status, s.y
	upper, skipFixed := s.upper, s.skipFixed

	for iter := 0; iter < limit; iter++ {
		s.btranCosts()

		// Pricing: a variable at lower enters increasing when its reduced
		// cost is negative; one at upper enters decreasing when positive.
		enter := -1
		sigma := 1.0
		if useBland {
			for j := 0; j < maxCol; j++ {
				st := status[j]
				if st == basic || (skipFixed && upper[j] == 0) {
					continue
				}
				d := cost[j]
				for t, end := colPtr[j], colPtr[j+1]; t < end; t++ {
					d -= y[colRow[t]] * colVal[t]
				}
				if st == atLower && d < -eps {
					enter, sigma = j, 1
					break
				}
				if st == atUpper && d > eps {
					enter, sigma = j, -1
					break
				}
			}
		} else {
			best := eps
			for j := 0; j < maxCol; j++ {
				st := status[j]
				if st == basic || (skipFixed && upper[j] == 0) {
					continue
				}
				d := cost[j]
				for t, end := colPtr[j], colPtr[j+1]; t < end; t++ {
					d -= y[colRow[t]] * colVal[t]
				}
				var viol float64
				if st == atLower {
					viol = -d
				} else {
					viol = d
				}
				if viol > best {
					best = viol
					enter = j
					if st == atLower {
						sigma = 1
					} else {
						sigma = -1
					}
				}
			}
		}
		if enter < 0 {
			return nil // optimal
		}

		s.ftranColumn(s.w, enter)

		// Ratio test: the entering variable moves by step ≥ 0 in
		// direction sigma; the basic variable at position i changes by
		// -sigma·w_i·step.
		step := s.upper[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveAt := atLower
		for i := 0; i < s.m; i++ {
			a := sigma * s.w[i]
			switch {
			case a > pivotEps: // basic value falls toward 0
				r := s.value[i] / a
				if r < step+eps && r >= step-eps && leave >= 0 {
					s.stats.RatioTestTies++
				}
				if r < step-eps ||
					(r < step+eps && (leave < 0 || s.basis[i] < s.basis[leave])) {
					step, leave, leaveAt = r, i, atLower
				}
			case a < -pivotEps: // basic value rises toward its bound
				ub := s.upper[s.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				r := (ub - s.value[i]) / -a
				if r < step+eps && r >= step-eps && leave >= 0 {
					s.stats.RatioTestTies++
				}
				if r < step-eps ||
					(r < step+eps && (leave < 0 || s.basis[i] < s.basis[leave])) {
					step, leave, leaveAt = r, i, atUpper
				}
			}
		}
		if math.IsInf(step, 1) {
			return errUnbounded
		}
		if step < 0 {
			step = 0 // numerical guard: never move backwards
		}

		if step < eps {
			degenerate++
			s.stats.DegeneratePivots++
			if degenerate > s.m+s.n {
				if !useBland {
					s.stats.BlandSwitches++
				}
				useBland = true
			}
		} else {
			degenerate = 0
			useBland = false
		}

		if leave < 0 {
			// Bound flip: the entering variable crosses to its other
			// bound without any basis change.
			for i := 0; i < s.m; i++ {
				s.value[i] -= sigma * s.w[i] * step
			}
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
			} else {
				s.status[enter] = atLower
			}
			s.iterations++
			s.stats.BoundFlips++
			continue
		}

		// Basis change: update values, then swap the basis column.
		enterValue := 0.0
		if s.status[enter] == atUpper {
			enterValue = s.upper[enter]
		}
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			s.value[i] -= sigma * s.w[i] * step
		}
		leaving := s.basis[leave]
		s.status[leaving] = leaveAt
		s.value[leave] = enterValue + sigma*step
		s.status[enter] = basic
		if err := s.pivot(leave, enter); err != nil {
			return err
		}
	}
	return ErrIterationLimit
}

// solveRevised runs the two phases on the factorized basis and extracts
// the solution, mirroring the dense tableau's solve. One structural
// difference: where the dense path drives leftover artificials out of the
// basis and retires redundant rows, the revised path pins every
// artificial at zero by clamping its upper bound — the basis must stay
// square and nonsingular, and a unit artificial column fixed at 0 holds a
// redundant row's place without ever affecting feasibility (any pivot
// that would move it hits a zero-length ratio step and evicts it
// instead).
func solveRevised(p *Problem, span *obs.Span, log *obs.Logger) (*Solution, error) {
	s := newRevised(p)
	s.log = log
	if err := s.factor(); err != nil {
		return nil, err
	}
	return s.solveFull(p.Minimize, span, log)
}

// solveFull runs both phases on a freshly factorized solver and extracts
// the solution. Incremental solves reuse it for the initial (cold) solve
// and after any fallback rebuild, then keep the end state for
// warm-started re-solves.
func (s *rsimplex) solveFull(minimize []float64, span *obs.Span, log *obs.Logger) (*Solution, error) {
	artStart := s.artStart

	if s.nArt > 0 {
		p1Span := span.Child("lp.phase1")
		p1Timer := obs.StartTimer()
		s.setCosts(nil, true)
		err := s.run(s.n)
		s.stats.Phase1Iterations = s.iterations
		s.stats.Phase1Seconds = p1Timer.Seconds()
		p1Span.Annotate("iterations", s.iterations)
		p1Span.End()
		if log.Enabled(obs.LevelDebug) {
			log.Debug("lp phase1 done",
				"method", "revised",
				"iterations", s.stats.Phase1Iterations,
				"seconds", s.stats.Phase1Seconds,
				"refactorizations", s.stats.Refactorizations)
		}
		if errors.Is(err, errUnbounded) {
			return nil, errors.New("lp: phase-1 simplex reported unbounded")
		}
		if err != nil {
			return nil, err
		}
		infeas := 0.0
		for i, bcol := range s.basis {
			if bcol >= artStart {
				infeas += s.value[i]
			}
		}
		if infeas > 1e-6 {
			return &Solution{Status: Infeasible, Iterations: s.iterations, Stats: s.stats}, nil
		}
		for j := artStart; j < s.n; j++ {
			s.upper[j] = 0
		}
	}

	p2Span := span.Child("lp.phase2")
	p2Timer := obs.StartTimer()
	s.setCosts(minimize, false)
	err := s.run(artStart)
	s.stats.Phase2Iterations = s.iterations - s.stats.Phase1Iterations
	s.stats.Phase2Seconds = p2Timer.Seconds()
	p2Span.Annotate("iterations", s.stats.Phase2Iterations)
	p2Span.End()
	if log.Enabled(obs.LevelDebug) {
		log.Debug("lp phase2 done",
			"method", "revised",
			"iterations", s.stats.Phase2Iterations,
			"seconds", s.stats.Phase2Seconds,
			"refactorizations", s.stats.Refactorizations)
	}
	if errors.Is(err, errUnbounded) {
		return &Solution{Status: Unbounded, Iterations: s.iterations, Stats: s.stats}, nil
	}
	if err != nil {
		return nil, err
	}

	x, obj := s.extract(minimize)
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: s.iterations, Stats: s.stats}, nil
}

// extract reads the current iterate into problem-variable space and
// prices it with the given objective. With a nil colVar map the
// structural variables are the column prefix [0, nStruct); otherwise
// colVar translates grown column layouts back to variables.
func (s *rsimplex) extract(minimize []float64) (x []float64, obj float64) {
	x = make([]float64, len(minimize))
	if s.colVar == nil {
		for j := 0; j < s.nStruct; j++ {
			if s.status[j] == atUpper {
				x[j] = s.upper[j]
			}
		}
		for i, bcol := range s.basis {
			if bcol < s.nStruct {
				v := s.value[i]
				if v < 0 && v > -1e-6 {
					v = 0
				}
				x[bcol] = v
			}
		}
	} else {
		for j, v := range s.colVar {
			if v >= 0 && s.status[j] == atUpper {
				x[v] = s.upper[j]
			}
		}
		for i, bcol := range s.basis {
			if v := s.colVar[bcol]; v >= 0 {
				val := s.value[i]
				if val < 0 && val > -1e-6 {
					val = 0
				}
				x[v] = val
			}
		}
	}
	for j, c := range minimize {
		obj += c * x[j]
	}
	return x, obj
}
