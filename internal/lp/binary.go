package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNodeLimit is returned when branch-and-bound exhausts its node budget
// before proving optimality.
var ErrNodeLimit = errors.New("lp: branch-and-bound node limit exceeded")

// BinaryOptions tunes SolveBinary.
type BinaryOptions struct {
	// NodeLimit bounds the number of explored branch-and-bound nodes.
	// Zero means the default of 100000.
	NodeLimit int
	// Incumbent optionally provides a known feasible point (binary on the
	// binary variables) whose objective seeds the pruning bound. An
	// infeasible or non-binary incumbent is rejected with an error.
	Incumbent []float64
	// Gap is the relative optimality gap: nodes whose LP bound is within
	// Gap·|incumbent| of the incumbent are pruned, so the returned
	// solution is optimal within that factor. Zero means exact (1e-9
	// absolute tolerance only).
	Gap float64
	// IntegerObjective asserts that every feasible 0/1 solution has an
	// integral objective value, letting the search prune any node whose
	// LP bound rounds up to the incumbent (⌈bound⌉ ≥ incumbent). Min-max
	// assignment problems with unit weights qualify and become tractable.
	IntegerObjective bool
}

// BinarySolution extends Solution with search statistics.
type BinarySolution struct {
	Solution
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

const binaryTol = 1e-6

// SolveBinary solves the mixed 0/1 program
//
//	minimize   c·x
//	subject to the constraints and bounds of p,
//	           x_j ∈ {0,1} for every j with binary[j]
//
// by LP-based branch-and-bound with depth-first search: each node solves
// the LP relaxation, prunes on infeasibility or bound, and otherwise
// branches on the most fractional binary variable (exploring the branch
// nearest the fractional value first). The HTA problem of the paper is
// exactly such a program, so this solver provides exact optima for
// instances far beyond the reach of 3^n enumeration.
func SolveBinary(p *Problem, binary []bool, opts BinaryOptions) (*BinarySolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(binary) != p.NumVars() {
		return nil, fmt.Errorf("lp: %d binary flags for %d variables", len(binary), p.NumVars())
	}
	if opts.NodeLimit == 0 {
		opts.NodeLimit = 100000
	}
	for j, b := range binary {
		if !b {
			continue
		}
		if p.Upper != nil && p.Upper[j] < 1 {
			return nil, fmt.Errorf("lp: binary variable %d has upper bound %g < 1", j, p.Upper[j])
		}
	}

	// node fixes a subset of binary variables.
	type node struct {
		fixed map[int]float64
	}

	best := &BinarySolution{Solution: Solution{Status: Infeasible}}
	bestObj := math.Inf(1)
	if opts.Incumbent != nil {
		if len(opts.Incumbent) != p.NumVars() {
			return nil, fmt.Errorf("lp: incumbent has %d entries for %d variables",
				len(opts.Incumbent), p.NumVars())
		}
		for j, b := range binary {
			if b && opts.Incumbent[j] != 0 && opts.Incumbent[j] != 1 {
				return nil, fmt.Errorf("lp: incumbent entry %d = %g is not binary", j, opts.Incumbent[j])
			}
		}
		if !pointFeasible(p, opts.Incumbent) {
			return nil, fmt.Errorf("lp: incumbent is infeasible")
		}
		obj := 0.0
		for j, c := range p.Minimize {
			obj += c * opts.Incumbent[j]
		}
		x := make([]float64, len(opts.Incumbent))
		copy(x, opts.Incumbent)
		bestObj = obj
		best = &BinarySolution{Solution: Solution{Status: Optimal, X: x, Objective: obj}}
	}

	// applyFixings builds the node's LP: fixing to 0 tightens the upper
	// bound; fixing to 1 adds a GE row (there are no lower bounds in
	// Problem).
	applyFixings := func(n node) *Problem {
		q := &Problem{
			Minimize:    p.Minimize,
			Constraints: p.Constraints,
			Upper:       make([]float64, p.NumVars()),
		}
		if p.Upper != nil {
			copy(q.Upper, p.Upper)
		} else {
			for j := range q.Upper {
				q.Upper[j] = math.Inf(1)
			}
		}
		for j, b := range binary {
			if b && q.Upper[j] > 1 {
				q.Upper[j] = 1
			}
		}
		// Iterate fixings in sorted column order: the rows appended here
		// become simplex constraint rows, and row order steers pivoting,
		// so map order would leak into the solve.
		cols := make([]int, 0, len(n.fixed))
		for j := range n.fixed {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		var extra []Constraint
		for _, j := range cols {
			if n.fixed[j] == 0 {
				q.Upper[j] = 0
			} else {
				row := make([]float64, p.NumVars())
				row[j] = 1
				extra = append(extra, Constraint{Coeffs: row, Sense: GE, RHS: 1})
			}
		}
		if len(extra) > 0 {
			q.Constraints = append(append([]Constraint{}, p.Constraints...), extra...)
		}
		return q
	}

	stack := []node{{fixed: map[int]float64{}}}
	nodes := 0
	for len(stack) > 0 {
		if nodes >= opts.NodeLimit {
			return nil, ErrNodeLimit
		}
		nodes++
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sol, err := Solve(applyFixings(n))
		if err != nil {
			return nil, err
		}
		if sol.Status == Unbounded {
			// A bounded-binary program can only be unbounded through its
			// continuous part; the incumbent logic cannot handle that.
			return &BinarySolution{Solution: *sol, Nodes: nodes}, nil
		}
		margin := 1e-9
		if opts.Gap > 0 && !math.IsInf(bestObj, 1) {
			if g := opts.Gap * math.Abs(bestObj); g > margin {
				margin = g
			}
		}
		if opts.IntegerObjective {
			// Any integral objective at least ⌈bound⌉ cannot beat an
			// integral incumbent unless it is strictly smaller.
			margin = 1 - 1e-6
		}
		if sol.Status != Optimal || sol.Objective >= bestObj-margin {
			continue // pruned
		}

		// Find the most fractional binary variable.
		branch := -1
		worst := binaryTol
		for j, b := range binary {
			if !b {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent. Snap binaries exactly.
			x := make([]float64, len(sol.X))
			copy(x, sol.X)
			for j, b := range binary {
				if b {
					x[j] = math.Round(x[j])
				}
			}
			bestObj = sol.Objective
			best = &BinarySolution{
				Solution: Solution{
					Status: Optimal, X: x,
					Objective:  sol.Objective,
					Iterations: sol.Iterations,
				},
			}
			continue
		}

		// Branch: push the far branch first so the near one pops first.
		near := math.Round(sol.X[branch])
		far := 1 - near
		farFix := cloneFixings(n.fixed)
		farFix[branch] = far
		nearFix := cloneFixings(n.fixed)
		nearFix[branch] = near
		stack = append(stack, node{fixed: farFix}, node{fixed: nearFix})
	}

	best.Nodes = nodes
	return best, nil
}

func cloneFixings(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// MostFractional returns the indices of the k most fractional entries of
// x, ordered by decreasing fractionality. It is exported for diagnostics
// and tests of rounding behaviour.
func MostFractional(x []float64, k int) []int {
	type frac struct {
		idx int
		f   float64
	}
	fr := make([]frac, 0, len(x))
	for j, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > binaryTol {
			fr = append(fr, frac{j, f})
		}
	}
	sort.Slice(fr, func(a, b int) bool {
		// Exact equality is required: a tolerance would break the strict
		// weak ordering sort.Slice depends on.
		//meclint:allow(floatcmp) comparator tie-break needs exact equality for a strict weak ordering
		if fr[a].f != fr[b].f {
			return fr[a].f > fr[b].f
		}
		return fr[a].idx < fr[b].idx
	})
	if k > len(fr) {
		k = len(fr)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = fr[i].idx
	}
	return out
}

// pointFeasible reports whether x satisfies p's constraints and bounds
// within tolerance.
func pointFeasible(p *Problem, x []float64) bool {
	const tol = 1e-6
	for j, v := range x {
		if v < -tol {
			return false
		}
		if p.Upper != nil && v > p.Upper[j]+tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		dot := c.Dot(x)
		switch c.Sense {
		case LE:
			if dot > c.RHS+tol {
				return false
			}
		case GE:
			if dot < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}
