package lp

import (
	"errors"
	"math"
)

// luFactors is a sparse LU factorization of a basis matrix B, the kernel
// of the revised simplex (MethodRevised). Columns of B are processed in a
// static fill-reducing order (fewest nonzeros first) with partial
// pivoting by magnitude, a left-looking Gilbert–Peierls-style scheme: the
// dense accumulator makes each column elimination a cheap scan over the
// pivots chosen so far, while L and U themselves stay sparse — LP-HTA
// bases have at most two nonzeros per column, so the factors are
// essentially as sparse as B.
//
// Indexing convention: "row space" means original constraint rows,
// "position space" means basis positions 0..m-1 (column p of B is the
// basis variable at position p), and "step space" means the order in
// which columns were pivoted. pivRow and colOrd translate between them.
type luFactors struct {
	m int

	// L is unit lower triangular in step order. Column k holds the
	// multipliers of pivot k at original row indices (strictly "below"
	// the diagonal in the permuted sense).
	lptr []int
	lrow []int // original row indices
	lval []float64

	// U column k holds entries u_{jk} for earlier steps j < k; the
	// diagonal is kept separately.
	uptr  []int
	urow  []int // step indices j < k
	uval  []float64
	udiag []float64

	pivRow []int // step k -> original row pivoted at k
	colOrd []int // step k -> basis position whose column was processed

	// scratch reused across solves (one luFactors is owned by one solve).
	rowScratch []float64 // row space
	stepFwd    []float64 // step space
}

// errSingularBasis reports a basis matrix the factorization could not
// pivot — for a simplex basis this means numerics have broken down.
var errSingularBasis = errors.New("lp: singular basis in LU factorization")

// luPivotEps is the smallest acceptable LU pivot magnitude. It is far
// below pivotEps: the simplex ratio test already keeps eta pivots above
// pivotEps, so anything smaller here means the basis degenerated
// numerically rather than a poor pivot choice.
const luPivotEps = 1e-11

// factorBasis computes the LU factors of the m×m basis whose column at
// position p is returned (sparsely, in row space) by col.
func factorBasis(m int, col func(p int) (rows []int, vals []float64)) (*luFactors, error) {
	f := &luFactors{
		m:      m,
		lptr:   make([]int, 1, m+1),
		uptr:   make([]int, 1, m+1),
		udiag:  make([]float64, m),
		pivRow: make([]int, m),
		colOrd: make([]int, m),

		rowScratch: make([]float64, m),
		stepFwd:    make([]float64, m),
	}

	// Static column order: fewest nonzeros first (an approximate
	// Markowitz choice that is exact for the unit and two-entry columns
	// dominating LP-HTA bases). Counting sort keeps this O(m + nnz).
	counts := make([]int, m)
	maxCount := 0
	for p := 0; p < m; p++ {
		rows, _ := col(p)
		counts[p] = len(rows)
		if len(rows) > maxCount {
			maxCount = len(rows)
		}
	}
	bucket := make([]int, maxCount+2)
	for _, c := range counts {
		bucket[c+1]++
	}
	for i := 1; i < len(bucket); i++ {
		bucket[i] += bucket[i-1]
	}
	for p := 0; p < m; p++ {
		f.colOrd[bucket[counts[p]]] = p
		bucket[counts[p]]++
	}

	x := make([]float64, m)       // dense accumulator, row space
	mark := make([]bool, m)       // which rows of x are live
	touched := make([]int, 0, 16) // rows to reset after each column
	hp := make([]int, 0, 16)      // min-heap of live pivot steps to eliminate
	pos := make([]int, m)         // original row -> pivot step, -1 if free
	for i := range pos {
		pos[i] = -1
	}

	// push/pop maintain hp as a binary min-heap so elimination steps are
	// processed in ascending pivot order without scanning all k earlier
	// steps per column.
	push := func(v int) {
		hp = append(hp, v)
		for i := len(hp) - 1; i > 0; {
			p := (i - 1) / 2
			if hp[p] <= hp[i] {
				break
			}
			hp[p], hp[i] = hp[i], hp[p]
			i = p
		}
	}
	pop := func() int {
		v := hp[0]
		last := len(hp) - 1
		hp[0] = hp[last]
		hp = hp[:last]
		for i := 0; ; {
			sm := i
			if l := 2*i + 1; l < len(hp) && hp[l] < hp[sm] {
				sm = l
			}
			if r := 2*i + 2; r < len(hp) && hp[r] < hp[sm] {
				sm = r
			}
			if sm == i {
				break
			}
			hp[i], hp[sm] = hp[sm], hp[i]
			i = sm
		}
		return v
	}

	for k := 0; k < m; k++ {
		rows, vals := col(f.colOrd[k])
		touched = touched[:0]
		for t, r := range rows {
			x[r] = vals[t]
			if !mark[r] {
				mark[r] = true
				touched = append(touched, r)
				if pos[r] >= 0 {
					push(pos[r])
				}
			}
		}

		// Left-looking elimination driven by a worklist: only steps whose
		// pivot row is live in x are visited, in ascending order. A row
		// filled by column j of L is necessarily pivoted after j (it was
		// unpivoted when step j ran), so pushed steps always exceed the one
		// being popped and each step is seen at most once.
		for len(hp) > 0 {
			j := pop()
			pr := f.pivRow[j]
			v := x[pr]
			if v == 0 {
				continue // exact cancellation; cleanup resets the mark
			}
			f.urow = append(f.urow, j)
			f.uval = append(f.uval, v)
			x[pr] = 0
			mark[pr] = false
			for t := f.lptr[j]; t < f.lptr[j+1]; t++ {
				r := f.lrow[t]
				if !mark[r] {
					mark[r] = true
					touched = append(touched, r)
					if pos[r] >= 0 {
						push(pos[r])
					}
				}
				x[r] -= f.lval[t] * v
			}
		}
		f.uptr = append(f.uptr, len(f.urow))

		// Partial pivoting among rows not yet assigned to a pivot.
		best, bestAbs := -1, luPivotEps
		for _, r := range touched {
			if !mark[r] || pos[r] >= 0 {
				continue
			}
			if a := math.Abs(x[r]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return nil, errSingularBasis
		}
		piv := x[best]
		f.udiag[k] = piv
		f.pivRow[k] = best
		pos[best] = k
		x[best] = 0
		mark[best] = false

		for _, r := range touched {
			if !mark[r] {
				continue
			}
			if v := x[r]; v != 0 && pos[r] < 0 {
				f.lrow = append(f.lrow, r)
				f.lval = append(f.lval, v/piv)
			}
			x[r] = 0
			mark[r] = false
		}
		f.lptr = append(f.lptr, len(f.lrow))
	}
	return f, nil
}

// ftran solves B w = v. The right-hand side is given sparsely in row
// space; the result is written densely into dst in position space
// (dst[p] multiplies the basis column at position p).
func (f *luFactors) ftran(dst []float64, rhsRows []int, rhsVals []float64) {
	x := f.rowScratch
	for i := range x {
		x[i] = 0
	}
	for t, r := range rhsRows {
		x[r] = rhsVals[t]
	}
	// Forward: L y = x in step order.
	y := f.stepFwd
	for k := 0; k < f.m; k++ {
		v := x[f.pivRow[k]]
		y[k] = v
		if v == 0 {
			continue
		}
		for t := f.lptr[k]; t < f.lptr[k+1]; t++ {
			x[f.lrow[t]] -= f.lval[t] * v
		}
	}
	// Backward: U z = y, z overwrites y.
	for k := f.m - 1; k >= 0; k-- {
		z := y[k] / f.udiag[k]
		y[k] = z
		if z == 0 {
			continue
		}
		for t := f.uptr[k]; t < f.uptr[k+1]; t++ {
			y[f.urow[t]] -= f.uval[t] * z
		}
	}
	for k := 0; k < f.m; k++ {
		dst[f.colOrd[k]] = y[k]
	}
}

// btran solves Bᵀ y = c. The right-hand side is dense in position space
// (c[p] is the cost of the basis variable at position p); the result is
// written densely into dst in row space.
func (f *luFactors) btran(dst []float64, c []float64) {
	// Forward: Uᵀ s = Qᵀc in step order (Uᵀ is lower triangular there).
	s := f.stepFwd
	for k := 0; k < f.m; k++ {
		acc := c[f.colOrd[k]]
		for t := f.uptr[k]; t < f.uptr[k+1]; t++ {
			acc -= f.uval[t] * s[f.urow[t]]
		}
		s[k] = acc / f.udiag[k]
	}
	// Backward: Lᵀ y = s. Column k of L touches only rows pivoted at
	// later steps, so descending k has every referenced value ready.
	for i := range dst {
		dst[i] = 0
	}
	for k := f.m - 1; k >= 0; k-- {
		acc := s[k]
		for t := f.lptr[k]; t < f.lptr[k+1]; t++ {
			acc -= f.lval[t] * dst[f.lrow[t]]
		}
		dst[f.pivRow[k]] = acc
	}
}
