package lp

import (
	"math"
	"math/rand"
	"testing"
)

// denseCols adapts a dense column-major matrix to factorBasis's sparse
// column callback.
func denseCols(cols [][]float64) (int, func(p int) ([]int, []float64)) {
	m := len(cols)
	rows := make([][]int, m)
	vals := make([][]float64, m)
	for p, col := range cols {
		for i, v := range col {
			if v != 0 {
				rows[p] = append(rows[p], i)
				vals[p] = append(vals[p], v)
			}
		}
	}
	return m, func(p int) ([]int, []float64) { return rows[p], vals[p] }
}

// matVec computes B·x for the dense column-major matrix (x in position
// space, result in row space).
func matVec(cols [][]float64, x []float64) []float64 {
	out := make([]float64, len(cols))
	for p, col := range cols {
		for i, v := range col {
			out[i] += v * x[p]
		}
	}
	return out
}

// checkSolves factorizes B and verifies both solve directions against the
// definition: ftran returns w with B·w = v, btran returns y with Bᵀy = c.
func checkSolves(t *testing.T, cols [][]float64) {
	t.Helper()
	m, col := denseCols(cols)
	f, err := factorBasis(m, col)
	if err != nil {
		t.Fatalf("factorBasis: %v", err)
	}

	rnd := rand.New(rand.NewSource(42))
	v := make([]float64, m)
	vRows := make([]int, m)
	for i := range v {
		v[i] = rnd.Float64()*4 - 2
		vRows[i] = i
	}
	w := make([]float64, m)
	f.ftran(w, vRows, v)
	back := matVec(cols, w)
	for i := range back {
		if math.Abs(back[i]-v[i]) > 1e-9 {
			t.Fatalf("ftran: (B·w)[%d] = %g, want %g", i, back[i], v[i])
		}
	}

	c := make([]float64, m)
	for p := range c {
		c[p] = rnd.Float64()*4 - 2
	}
	y := make([]float64, m)
	f.btran(y, c)
	// (Bᵀy)[p] = column p of B dotted with y.
	for p, colVals := range cols {
		dot := 0.0
		for i, bv := range colVals {
			dot += bv * y[i]
		}
		if math.Abs(dot-c[p]) > 1e-9 {
			t.Fatalf("btran: (Bᵀy)[%d] = %g, want %g", p, dot, c[p])
		}
	}
}

func TestLUIdentity(t *testing.T) {
	checkSolves(t, [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
}

func TestLUPermutation(t *testing.T) {
	// A pure permutation forces pivoting away from the diagonal.
	checkSolves(t, [][]float64{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}})
}

func TestLUDenseSmall(t *testing.T) {
	checkSolves(t, [][]float64{
		{2, 1, 0},
		{-1, 3, 2},
		{4, 0, -2},
	})
}

func TestLUNeedsRowPivoting(t *testing.T) {
	// Zero in the natural pivot position: fails without partial pivoting.
	checkSolves(t, [][]float64{
		{0, 2},
		{1, 1},
	})
}

func TestLUSimplexShapedBasis(t *testing.T) {
	// A basis like LP-HTA's: mostly unit slack columns plus a few
	// two-entry structural columns.
	checkSolves(t, [][]float64{
		{1, 1, 0, 0, 0},
		{0, 0, 0, 1, 0},
		{0, 2.5, 1, 0, 0},
		{0, 0, 0, 0, 1},
		{3, 0, 0, 1, 0},
	})
}

func TestLURandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rnd.Intn(12)
		cols := make([][]float64, m)
		for p := range cols {
			cols[p] = make([]float64, m)
			// Sparse random columns with a guaranteed entry so the matrix
			// is almost surely nonsingular.
			cols[p][rnd.Intn(m)] = 1 + rnd.Float64()
			for i := range cols[p] {
				if rnd.Intn(3) == 0 {
					cols[p][i] += rnd.Float64()*2 - 1
				}
			}
		}
		// Reject the (rare) singular draws: factorization must either
		// succeed and solve correctly, or report errSingularBasis.
		mm, col := denseCols(cols)
		if _, err := factorBasis(mm, col); err != nil {
			continue
		}
		checkSolves(t, cols)
	}
}

func TestLUSingular(t *testing.T) {
	cases := []struct {
		name string
		cols [][]float64
	}{
		{"zero column", [][]float64{{1, 0}, {0, 0}}},
		{"duplicate columns", [][]float64{{1, 2}, {1, 2}}},
		{"rank deficient", [][]float64{
			{1, 0, 1},
			{0, 1, 1},
			{1, 1, 2},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, col := denseCols(tc.cols)
			if _, err := factorBasis(m, col); err == nil {
				t.Error("factorBasis succeeded on a singular matrix")
			}
		})
	}
}
