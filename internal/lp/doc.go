// Package lp is a self-contained dense linear-programming solver.
//
// It solves problems of the form
//
//	minimize    c·x
//	subject to  a_i·x {≤,≥,=} b_i     for every constraint i
//	            0 ≤ x_j ≤ u_j         (u_j may be +∞)
//
// using the two-phase primal simplex method on a dense tableau. The paper's
// LP-HTA algorithm (Section III.A) needs an optimal solution of the relaxed
// problem P2; it cites Karmarkar's interior-point method [17], but any
// LP-optimal point works for the rounding and repair steps, and a simplex
// vertex solution has at most as many fractional entries as any interior
// optimum. Problem sizes in the paper's evaluation are a few hundred
// variables per cluster, well within dense-tableau territory.
//
// The implementation uses Dantzig pricing with an automatic switch to
// Bland's rule after a run of degenerate pivots, which guarantees
// termination.
package lp
