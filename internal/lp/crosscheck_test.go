package lp_test

import (
	"math"
	"testing"

	"dsmec/internal/lp"
	"dsmec/internal/perfbench"
	"dsmec/internal/rng"
)

// crossSolve runs one problem through both simplex implementations and
// enforces the method contract: identical status, objectives within
// 1e-9 relative, and a feasible point from each. It returns both
// solutions for test-specific checks.
func crossSolve(t *testing.T, p *lp.Problem) (dense, revised *lp.Solution) {
	t.Helper()
	solve := func(m lp.Method) *lp.Solution {
		q := *p
		q.Method = m
		s, err := lp.Solve(&q)
		if err != nil {
			t.Fatalf("%v solve: %v", m, err)
		}
		if s.Method != m {
			t.Fatalf("Solution.Method = %v, want %v", s.Method, m)
		}
		return s
	}
	dense = solve(lp.MethodDense)
	revised = solve(lp.MethodRevised)

	if dense.Status != revised.Status {
		t.Fatalf("status disagreement: dense=%v revised=%v", dense.Status, revised.Status)
	}
	if dense.Status != lp.Optimal {
		return dense, revised
	}
	if diff := math.Abs(dense.Objective - revised.Objective); diff > 1e-9*(1+math.Abs(dense.Objective)) {
		t.Fatalf("objective disagreement: dense=%.12g revised=%.12g (diff %g)",
			dense.Objective, revised.Objective, diff)
	}
	checkFeasiblePoint(t, "dense", p, dense.X)
	checkFeasiblePoint(t, "revised", p, revised.X)
	return dense, revised
}

// checkFeasiblePoint verifies x satisfies every constraint and bound of p
// within a loose tolerance.
func checkFeasiblePoint(t *testing.T, label string, p *lp.Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range x {
		if v < -tol {
			t.Fatalf("%s: x[%d] = %g negative", label, j, v)
		}
		if p.Upper != nil && !math.IsInf(p.Upper[j], 1) && v > p.Upper[j]+tol {
			t.Fatalf("%s: x[%d] = %g above bound %g", label, j, v, p.Upper[j])
		}
	}
	for i := range p.Constraints {
		c := &p.Constraints[i]
		dot := c.Dot(x)
		switch c.Sense {
		case lp.LE:
			if dot > c.RHS+tol*(1+math.Abs(c.RHS)) {
				t.Fatalf("%s: row %d: %g > %g", label, i, dot, c.RHS)
			}
		case lp.GE:
			if dot < c.RHS-tol*(1+math.Abs(c.RHS)) {
				t.Fatalf("%s: row %d: %g < %g", label, i, dot, c.RHS)
			}
		case lp.EQ:
			if math.Abs(dot-c.RHS) > tol*(1+math.Abs(c.RHS)) {
				t.Fatalf("%s: row %d: %g != %g", label, i, dot, c.RHS)
			}
		}
	}
}

// TestCrossCheckCorpus runs every fixed problem from the dense test suite
// — plus degenerate, cycling, and tight-bound stress cases — through both
// methods.
func TestCrossCheckCorpus(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		p    *lp.Problem
	}{
		{"simple maximization", &lp.Problem{
			Minimize: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 2}, Sense: lp.LE, RHS: 4},
				{Coeffs: []float64{3, 1}, Sense: lp.LE, RHS: 6},
			},
		}},
		{"equality constraint", &lp.Problem{
			Minimize: []float64{1, 2},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.EQ, RHS: 3},
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 2},
			},
		}},
		{"ge constraint", &lp.Problem{
			Minimize: []float64{2, 3},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.GE, RHS: 4},
				{Coeffs: []float64{1, 0}, Sense: lp.GE, RHS: 1},
			},
		}},
		{"pure upper bounds", &lp.Problem{
			Minimize: []float64{-1, -1},
			Upper:    []float64{3, 2},
		}},
		{"mixed infinite bounds", &lp.Problem{
			Minimize: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 7},
			},
			Upper: []float64{inf, 1},
		}},
		{"negative rhs le", &lp.Problem{
			Minimize: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{-1}, Sense: lp.LE, RHS: -2},
			},
		}},
		{"negative rhs ge", &lp.Problem{
			Minimize: []float64{-1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{-1}, Sense: lp.GE, RHS: -5},
			},
		}},
		{"negative rhs eq", &lp.Problem{
			Minimize: []float64{1, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, -1}, Sense: lp.EQ, RHS: -3},
			},
		}},
		{"infeasible rows", &lp.Problem{
			Minimize: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 2},
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 1},
			},
		}},
		{"infeasible equality vs bounds", &lp.Problem{
			Minimize: []float64{1, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.EQ, RHS: 5},
			},
			Upper: []float64{1, 1},
		}},
		{"unbounded", &lp.Problem{
			Minimize: []float64{-1, 0},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 1},
			},
		}},
		{"redundant equalities", &lp.Problem{
			Minimize: []float64{1, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.EQ, RHS: 2},
				{Coeffs: []float64{1, 1}, Sense: lp.EQ, RHS: 2},
				{Coeffs: []float64{2, 2}, Sense: lp.EQ, RHS: 4},
			},
		}},
		{"degenerate vertex", &lp.Problem{
			Minimize: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 2},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 2},
			},
		}},
		{"zero rhs degeneracy", &lp.Problem{
			Minimize: []float64{-1, -2},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 3},
			},
		}},
		// Beale's classic cycling example: Dantzig pricing with naive
		// tie-breaking cycles forever; both implementations must escape via
		// their shared Bland's-rule escalation and agree on the optimum
		// (−0.05).
		{"beale cycling", &lp.Problem{
			Minimize: []float64{-0.75, 150, -0.02, 6},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{0.25, -60, -0.04, 9}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0.5, -90, -0.02, 3}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0, 0, 1, 0}, Sense: lp.LE, RHS: 1},
			},
		}},
		// Zero-width bounds pin variables at 0 while they still appear in
		// rows; the revised method must treat them exactly like the dense
		// tableau does.
		{"tight zero bounds", &lp.Problem{
			Minimize: []float64{-5, -1, -1},
			Upper:    []float64{0, 1, 0},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1, 1}, Sense: lp.LE, RHS: 2},
				{Coeffs: []float64{1, 0, 1}, Sense: lp.GE, RHS: 0},
			},
		}},
		{"bound flip heavy", &lp.Problem{
			Minimize: []float64{-3, -2, -1, -4},
			Upper:    []float64{0.5, 0.5, 0.5, 0.5},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1, 1, 1}, Sense: lp.LE, RHS: 10},
			},
		}},
		{"sparse rows", &lp.Problem{
			Minimize: []float64{1, -2, 3, -1, 0},
			Upper:    []float64{2, 2, 2, 2, 2},
			Constraints: []lp.Constraint{
				lp.Sparse([]int{0, 2}, []float64{1, 1}, lp.LE, 3),
				lp.Sparse([]int{1, 3}, []float64{1, 1}, lp.LE, 2.5),
				lp.Sparse([]int{0, 1, 4}, []float64{1, -1, 2}, lp.GE, -1),
			},
		}},
		{"mixed sparse dense rows", &lp.Problem{
			Minimize: []float64{-1, -1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1, 0}, Sense: lp.LE, RHS: 2},
				lp.Sparse([]int{2}, []float64{1}, lp.LE, 1.5),
				lp.Sparse([]int{0, 2}, []float64{1, 1}, lp.LE, 2),
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crossSolve(t, tc.p)
		})
	}
}

// TestCrossCheckClusterLPs runs the LP-HTA-shaped benchmark instances —
// the exact problems BENCH_lphta.json measures — through both methods, in
// both their sparse and dense row forms.
func TestCrossCheckClusterLPs(t *testing.T) {
	for _, tasks := range []int{10, 30, 90, 150} {
		for _, sparse := range []bool{false, true} {
			p := perfbench.ClusterLP(tasks, sparse)
			dense, revised := crossSolve(t, p)
			if dense.Status != lp.Optimal {
				t.Fatalf("tasks=%d sparse=%v: status %v, want optimal", tasks, sparse, dense.Status)
			}
			// The benchmark instances are the ones the perf gate watches, so
			// also pin the stronger property: identical iterate-independent
			// stats and near-identical pivot paths would be too brittle, but
			// the revised method must report its factorization work.
			if revised.Stats.Refactorizations == 0 && revised.Iterations > 2*refactorCheckLimit {
				t.Errorf("tasks=%d: %d iterations with no refactorizations", tasks, revised.Iterations)
			}
		}
	}
}

// refactorCheckLimit mirrors the solver's refactorization interval; a run
// twice that long must have refactorized at least once.
const refactorCheckLimit = 50

// TestCrossCheckRandom fuzzes both methods against each other on small
// random problems with mixed senses, signs, and bounds.
func TestCrossCheckRandom(t *testing.T) {
	r := rng.NewSource(4321).Stream("lp-crosscheck")
	for trial := 0; trial < 250; trial++ {
		n := rng.UniformInt(r, 1, 6)
		m := rng.UniformInt(r, 0, 6)
		p := &lp.Problem{
			Minimize: make([]float64, n),
			Upper:    make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.Minimize[j] = rng.Uniform(r, -5, 5)
			if rng.UniformInt(r, 0, 4) == 0 {
				p.Upper[j] = math.Inf(1)
			} else {
				p.Upper[j] = rng.Uniform(r, 0, 5) // zero-width bounds included
			}
		}
		for i := 0; i < m; i++ {
			c := lp.Constraint{Coeffs: make([]float64, n), RHS: rng.Uniform(r, -3, 6)}
			for j := 0; j < n; j++ {
				if rng.UniformInt(r, 0, 3) == 0 {
					continue // keep some sparsity
				}
				c.Coeffs[j] = rng.Uniform(r, -3, 3)
			}
			switch rng.UniformInt(r, 0, 3) {
			case 0:
				c.Sense = lp.LE
			case 1:
				c.Sense = lp.GE
			default:
				c.Sense = lp.EQ
			}
			p.Constraints = append(p.Constraints, c)
		}
		crossSolve(t, p)
	}
}

// TestCrossCheckStatsDiffer documents the observable difference between
// the methods: only the revised simplex reports factorization work.
func TestCrossCheckStatsDiffer(t *testing.T) {
	p := perfbench.ClusterLP(90, true)
	dense, revised := crossSolve(t, p)
	if dense.Stats.Refactorizations != 0 || dense.Stats.EtaVectors != 0 {
		t.Errorf("dense reported factorization stats: %+v", dense.Stats)
	}
	if revised.Stats.Refactorizations == 0 || revised.Stats.EtaVectors == 0 {
		t.Errorf("revised reported no factorization work: %+v", revised.Stats)
	}
}
