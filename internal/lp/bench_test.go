package lp_test

import (
	"fmt"
	"testing"

	"dsmec/internal/lp"
	"dsmec/internal/perfbench"
)

// The build benchmarks isolate constraint-row construction — the memory
// the sparse form is meant to save; the solve benchmarks cover the full
// hot path (build + tableau lowering + simplex) on the same instance.

func benchBuild(b *testing.B, tasks int, sparse bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perfbench.ClusterLP(tasks, sparse)
		if len(p.Constraints) == 0 {
			b.Fatal("empty problem")
		}
	}
}

func benchSolve(b *testing.B, tasks int, sparse bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := perfbench.ClusterLP(tasks, sparse)
		s, err := lp.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		if s.Status != lp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkClusterLPBuild(b *testing.B) {
	for _, tasks := range []int{30, 90, 300} {
		for _, sparse := range []bool{false, true} {
			form := "dense"
			if sparse {
				form = "sparse"
			}
			b.Run(fmt.Sprintf("tasks=%d/%s", tasks, form), func(b *testing.B) {
				benchBuild(b, tasks, sparse)
			})
		}
	}
}

func BenchmarkLPSolveCluster(b *testing.B) {
	for _, tasks := range []int{30, 90} {
		for _, sparse := range []bool{false, true} {
			form := "dense"
			if sparse {
				form = "sparse"
			}
			b.Run(fmt.Sprintf("tasks=%d/%s", tasks, form), func(b *testing.B) {
				benchSolve(b, tasks, sparse)
			})
		}
	}
}

// BenchmarkLPSolveMethod compares the two simplex implementations on the
// same sparse-row instances mecperf records (at go-test-friendly sizes).
func BenchmarkLPSolveMethod(b *testing.B) {
	for _, tasks := range []int{90, 300} {
		for _, method := range []lp.Method{lp.MethodDense, lp.MethodRevised} {
			b.Run(fmt.Sprintf("tasks=%d/method=%s", tasks, method), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := perfbench.ClusterLP(tasks, true)
					p.Method = method
					s, err := lp.Solve(p)
					if err != nil {
						b.Fatal(err)
					}
					if s.Status != lp.Optimal {
						b.Fatalf("status %v", s.Status)
					}
				}
			})
		}
	}
}
