package lp

import (
	"errors"
	"math"
	"testing"

	"dsmec/internal/rng"
)

func allBinary(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// bruteForceBinary enumerates all 0/1 assignments of the binary variables
// (continuous variables must be absent) and returns the best feasible
// objective.
func bruteForceBinary(p *Problem) float64 {
	n := p.NumVars()
	best := math.Inf(1)
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		if !feasible(p, x) {
			continue
		}
		obj := 0.0
		for j := range x {
			obj += p.Minimize[j] * x[j]
		}
		if obj < best {
			best = obj
		}
	}
	return best
}

func TestSolveBinaryKnapsackShape(t *testing.T) {
	// max 60x0+100x1+120x2 s.t. 10x0+20x1+30x2 <= 50: classic optimum 220
	// at (0,1,1).
	p := &Problem{
		Minimize: []float64{-60, -100, -120},
		Constraints: []Constraint{
			{Coeffs: []float64{10, 20, 30}, Sense: LE, RHS: 50},
		},
	}
	s, err := SolveBinary(p, allBinary(3), BinaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("Status = %v", s.Status)
	}
	if !almostEqual(s.Objective, -220) {
		t.Errorf("objective = %g, want -220", s.Objective)
	}
	if s.X[0] != 0 || s.X[1] != 1 || s.X[2] != 1 {
		t.Errorf("x = %v, want [0 1 1]", s.X)
	}
	if s.Nodes <= 0 {
		t.Error("Nodes should be positive")
	}
}

func TestSolveBinaryInfeasible(t *testing.T) {
	// x0 + x1 = 1.5 has no binary solution.
	p := &Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 1.5},
		},
	}
	s, err := SolveBinary(p, allBinary(2), BinaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("Status = %v, want infeasible", s.Status)
	}
}

func TestSolveBinaryMixed(t *testing.T) {
	// One binary decision gating a continuous variable:
	// min -y s.t. y <= 2*x0, y <= 1.2, x0 binary. Optimum: x0=1, y=1.2.
	p := &Problem{
		Minimize: []float64{0.5, -1}, // small cost on x0 so it only opens when useful
		Constraints: []Constraint{
			{Coeffs: []float64{-2, 1}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 1.2},
		},
	}
	s, err := SolveBinary(p, []bool{true, false}, BinaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("Status = %v", s.Status)
	}
	if !almostEqual(s.Objective, 0.5-1.2) {
		t.Errorf("objective = %g, want -0.7", s.Objective)
	}
	if s.X[0] != 1 || !almostEqual(s.X[1], 1.2) {
		t.Errorf("x = %v, want [1 1.2]", s.X)
	}
}

func TestSolveBinaryValidation(t *testing.T) {
	p := &Problem{Minimize: []float64{1}}
	if _, err := SolveBinary(p, []bool{true, true}, BinaryOptions{}); err == nil {
		t.Error("flag-count mismatch should fail")
	}
	bad := &Problem{Minimize: []float64{1}, Upper: []float64{0.5}}
	if _, err := SolveBinary(bad, []bool{true}, BinaryOptions{}); err == nil {
		t.Error("binary variable with upper bound < 1 should fail")
	}
	if _, err := SolveBinary(&Problem{}, nil, BinaryOptions{}); err == nil {
		t.Error("invalid problem should fail")
	}
}

func TestSolveBinaryNodeLimit(t *testing.T) {
	// A problem needing more than one node with NodeLimit 1.
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 1.5},
		},
	}
	if _, err := SolveBinary(p, allBinary(2), BinaryOptions{NodeLimit: 1}); !errors.Is(err, ErrNodeLimit) {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
}

func TestSolveBinaryAgainstBruteForce(t *testing.T) {
	r := rng.NewSource(77).Stream("bnb")
	for trial := 0; trial < 150; trial++ {
		n := rng.UniformInt(r, 1, 10)
		m := rng.UniformInt(r, 1, 5)
		p := &Problem{Minimize: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Minimize[j] = rng.Uniform(r, -5, 5)
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), RHS: rng.Uniform(r, -2, float64(n))}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = rng.Uniform(r, -2, 2)
			}
			if rng.UniformInt(r, 0, 1) == 0 {
				c.Sense = LE
			} else {
				c.Sense = GE
			}
			p.Constraints = append(p.Constraints, c)
		}

		want := bruteForceBinary(p)
		got, err := SolveBinary(p, allBinary(n), BinaryOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(want, 1) {
			if got.Status != Infeasible {
				t.Fatalf("trial %d: status %v, brute force says infeasible\nX=%v",
					trial, got.Status, got.X)
			}
			continue
		}
		if got.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found %g", trial, got.Status, want)
		}
		if math.Abs(got.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: objective %g, brute force %g (x=%v)",
				trial, got.Objective, want, got.X)
		}
		// The returned point must be feasible and binary.
		if !feasible(p, got.X) {
			t.Fatalf("trial %d: infeasible incumbent", trial)
		}
		for j, v := range got.X {
			if v != 0 && v != 1 {
				t.Fatalf("trial %d: x[%d] = %g not binary", trial, j, v)
			}
		}
	}
}

func TestMostFractional(t *testing.T) {
	x := []float64{0, 0.5, 1, 0.9, 0.4999}
	got := MostFractional(x, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("MostFractional = %v, want [1 4]", got)
	}
	if got := MostFractional(x, 10); len(got) != 3 {
		t.Errorf("k beyond fractional count should clamp, got %v", got)
	}
	if got := MostFractional([]float64{0, 1, 2}, 3); len(got) != 0 {
		t.Errorf("integral vector should yield nothing, got %v", got)
	}
}

func TestSolveBinaryWithIncumbent(t *testing.T) {
	// Knapsack instance; a feasible but suboptimal incumbent must not
	// change the optimum, and must seed pruning.
	p := &Problem{
		Minimize: []float64{-60, -100, -120},
		Constraints: []Constraint{
			{Coeffs: []float64{10, 20, 30}, Sense: LE, RHS: 50},
		},
	}
	s, err := SolveBinary(p, allBinary(3), BinaryOptions{
		Incumbent: []float64{1, 1, 0}, // value 160, weight 30: feasible
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEqual(s.Objective, -220) {
		t.Errorf("objective = %g (%v), want -220", s.Objective, s.Status)
	}

	// An incumbent that is already optimal must be returned when nothing
	// beats it.
	s2, err := SolveBinary(p, allBinary(3), BinaryOptions{
		Incumbent: []float64{0, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s2.Objective, -220) {
		t.Errorf("objective with optimal incumbent = %g, want -220", s2.Objective)
	}
}

func TestSolveBinaryIncumbentValidation(t *testing.T) {
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 1},
		},
	}
	tests := []struct {
		name string
		inc  []float64
	}{
		{"wrong length", []float64{1}},
		{"non-binary entry", []float64{0.5, 0}},
		{"infeasible", []float64{1, 1}}, // violates the LE row
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SolveBinary(p, allBinary(2), BinaryOptions{Incumbent: tt.inc}); err == nil {
				t.Error("bad incumbent should be rejected")
			}
		})
	}
}

func TestSolveBinaryIntegerObjectivePruning(t *testing.T) {
	// Min-max style instance with an integral objective: 6 unit items on 2
	// machines, makespan variable z. IntegerObjective pruning must still
	// find the exact optimum (3) and agree with the plain search.
	const items, machines = 6, 2
	nVars := items*machines + 1
	z := items * machines
	p := &Problem{Minimize: make([]float64, nVars), Upper: make([]float64, nVars)}
	binary := make([]bool, nVars)
	p.Minimize[z] = 1
	p.Upper[z] = math.Inf(1)
	for v := 0; v < z; v++ {
		p.Upper[v] = 1
		binary[v] = true
	}
	for it := 0; it < items; it++ {
		row := make([]float64, nVars)
		for mch := 0; mch < machines; mch++ {
			row[it*machines+mch] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: EQ, RHS: 1})
	}
	for mch := 0; mch < machines; mch++ {
		row := make([]float64, nVars)
		for it := 0; it < items; it++ {
			row[it*machines+mch] = 1
		}
		row[z] = -1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Sense: LE, RHS: 0})
	}

	plain, err := SolveBinary(p, binary, BinaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SolveBinary(p, binary, BinaryOptions{IntegerObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(plain.Objective, 3) || !almostEqual(fast.Objective, 3) {
		t.Errorf("objectives %g / %g, want 3", plain.Objective, fast.Objective)
	}
	if fast.Nodes > plain.Nodes {
		t.Errorf("integer-objective pruning explored %d nodes, plain %d; want fewer or equal",
			fast.Nodes, plain.Nodes)
	}
}
