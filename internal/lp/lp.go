package lp

import (
	"errors"
	"fmt"
	"math"

	"dsmec/internal/obs"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // a·x ≤ b
	GE                  // a·x ≥ b
	EQ                  // a·x = b
)

// String renders the sense symbol.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one linear constraint a·x (sense) b, in one of two forms:
//
//   - dense: Cols is nil and Coeffs has one entry per variable;
//   - sparse: Cols lists the columns with nonzero coefficients in strictly
//     increasing order and Coeffs holds the matching values.
//
// Sparse rows are lowered into the tableau only at solve time, so building
// a problem costs memory proportional to the nonzero count rather than
// rows × variables. The LP-HTA cluster relaxations have 3-nonzero C4 rows
// and per-device C2 rows, which makes the dense form quadratic in the
// cluster size; use Sparse there.
type Constraint struct {
	Coeffs []float64
	// Cols, when non-nil, selects the sparse form: Coeffs[k] is the
	// coefficient of variable Cols[k]. Must be strictly increasing.
	Cols  []int
	Sense Sense
	RHS   float64
}

// Sparse builds a sparse constraint: coeffs[k] applies to variable
// cols[k], every other coefficient is zero. cols must be strictly
// increasing (Validate enforces this).
func Sparse(cols []int, coeffs []float64, sense Sense, rhs float64) Constraint {
	return Constraint{Cols: cols, Coeffs: coeffs, Sense: sense, RHS: rhs}
}

// Dot returns a·x for either constraint form.
func (c *Constraint) Dot(x []float64) float64 {
	dot := 0.0
	if c.Cols != nil {
		for k, j := range c.Cols {
			dot += c.Coeffs[k] * x[j]
		}
		return dot
	}
	for j, a := range c.Coeffs {
		dot += a * x[j]
	}
	return dot
}

// scatter writes the row's coefficients, scaled by sign, into the dense
// prefix of dst (which must be zeroed).
func (c *Constraint) scatter(dst []float64, sign float64) {
	if c.Cols != nil {
		for k, j := range c.Cols {
			dst[j] = sign * c.Coeffs[k]
		}
		return
	}
	for j, a := range c.Coeffs {
		dst[j] = sign * a
	}
}

// Problem is a linear program in minimization form. All variables have an
// implicit lower bound of zero. Upper, if non-nil, gives per-variable upper
// bounds; use math.Inf(1) for unbounded variables.
type Problem struct {
	Minimize    []float64
	Constraints []Constraint
	Upper       []float64
	// Method selects the simplex implementation; the zero value
	// (MethodAuto) resolves to the package default, MethodRevised.
	Method Method
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Minimize) }

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if n == 0 {
		return errors.New("lp: problem has no variables")
	}
	for i, c := range p.Constraints {
		if c.Cols != nil {
			if len(c.Coeffs) != len(c.Cols) {
				return fmt.Errorf("lp: sparse constraint %d has %d coefficients for %d columns",
					i, len(c.Coeffs), len(c.Cols))
			}
			for k, col := range c.Cols {
				if col < 0 || col >= n {
					return fmt.Errorf("lp: sparse constraint %d references column %d of %d", i, col, n)
				}
				if k > 0 && col <= c.Cols[k-1] {
					return fmt.Errorf("lp: sparse constraint %d columns not strictly increasing at %d", i, k)
				}
			}
		} else if len(c.Coeffs) != n {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
		if c.Sense != LE && c.Sense != GE && c.Sense != EQ {
			return fmt.Errorf("lp: constraint %d has invalid sense %d", i, int(c.Sense))
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has non-finite rhs %g", i, c.RHS)
		}
		for j, a := range c.Coeffs {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d is non-finite", i, j)
			}
		}
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: %d upper bounds, want %d", len(p.Upper), n)
	}
	for j, u := range p.Upper {
		if math.IsNaN(u) || u < 0 {
			return fmt.Errorf("lp: variable %d has invalid upper bound %g", j, u)
		}
	}
	for j, c := range p.Minimize {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: objective coefficient %d is non-finite", j)
		}
	}
	switch p.Method {
	case MethodAuto, MethodRevised, MethodDense:
	default:
		return fmt.Errorf("lp: invalid method %d", int(p.Method))
	}
	return nil
}

// Status reports how a solve ended.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve. X and Objective are meaningful only when
// Status == Optimal.
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Iterations int
	// Method is the simplex implementation that produced the solution
	// (never MethodAuto).
	Method Method
	// Warm is set by Incremental.Resolve when the solve reused the
	// previous optimal basis instead of starting from scratch.
	Warm bool
	// Stats breaks the solve down for observability.
	Stats SolveStats
}

// SolveStats counts what the simplex actually did. The dense tableau
// never refactorizes a basis; the closest analog — full reduced-cost row
// reinstallations (one per phase) — is counted as ObjectiveInstalls.
type SolveStats struct {
	// Pivots counts basis changes (excludes bound flips).
	Pivots int
	// BoundFlips counts nonbasic variables crossing to their other bound
	// without a basis change.
	BoundFlips int
	// DegeneratePivots counts iterations with a ~zero step.
	DegeneratePivots int
	// RatioTestTies counts leaving-row ties within tolerance, where the
	// anti-cycling index rule had to arbitrate.
	RatioTestTies int
	// BlandSwitches counts escalations to Bland's rule after a
	// degenerate run.
	BlandSwitches int
	// DualPivots counts the subset of Pivots driven by the dual simplex
	// phase of a warm-started incremental re-solve (always 0 for cold
	// solves).
	DualPivots int
	// ObjectiveInstalls counts reduced-cost row installations.
	ObjectiveInstalls int
	// Refactorizations counts basis LU refactorizations beyond the
	// initial factorization (MethodRevised only; the dense tableau never
	// factorizes a basis).
	Refactorizations int
	// EtaVectors counts product-form basis updates applied between
	// refactorizations (MethodRevised only).
	EtaVectors int
	// Phase1Iterations and Phase2Iterations split Solution.Iterations.
	Phase1Iterations int
	Phase2Iterations int
	// Phase1Seconds and Phase2Seconds are wall-clock phase timings.
	Phase1Seconds float64
	Phase2Seconds float64
}

// ErrIterationLimit is returned when the simplex fails to converge within
// its iteration budget, which indicates a numerically hostile problem.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const (
	// eps is the general feasibility/optimality tolerance.
	eps = 1e-9
	// pivotEps rejects pivots too small to divide by safely.
	pivotEps = 1e-7
)

// Solve solves the problem with the two-phase simplex method. Metrics
// are recorded to the process-wide obs registry when one is installed;
// use SolveObserved to direct them (and trace spans) explicitly.
func Solve(p *Problem) (*Solution, error) {
	return SolveObserved(p, obs.Instruments{})
}

// SolveObserved solves the problem and records counters, timings, and a
// trace span into ins. A zero ins falls back to the process-wide
// registry and disables tracing.
func SolveObserved(p *Problem, ins obs.Instruments) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	method := p.Method.resolve()
	span := ins.Span.Child("lp.solve")
	log := ins.Logger()
	var (
		sol *Solution
		err error
	)
	if method == MethodDense {
		var t *tableau
		t, err = newTableau(p)
		if err == nil {
			sol, err = t.solve(p, span, log)
		}
	} else {
		sol, err = solveRevised(p, span, log)
	}
	if sol != nil {
		sol.Method = method
	}
	record(ins, span, p, method, sol, err)
	span.End()
	return sol, err
}

// record publishes one solve's outcome. The counter lookups cost a few
// nanoseconds each against a disabled (nil) registry.
func record(ins obs.Instruments, span *obs.Span, p *Problem, method Method, sol *Solution, err error) {
	reg := ins.Registry()
	log := ins.Logger()
	if span != nil {
		span.Annotate("vars", p.NumVars())
		span.Annotate("constraints", len(p.Constraints))
		span.Annotate("method", method.String())
	}
	if reg == nil && span == nil && log == nil {
		return
	}
	reg.Counter("lp.solves").Inc()
	reg.Counter("lp.solves." + method.String()).Inc()
	if err != nil {
		reg.Counter("lp.errors").Inc()
		if span != nil {
			span.Annotate("error", err.Error())
		}
		log.Warn("lp solve failed",
			"method", method.String(),
			"vars", p.NumVars(),
			"constraints", len(p.Constraints),
			"err", err.Error())
		return
	}
	st := sol.Stats
	reg.Counter("lp.pivots").Add(int64(st.Pivots))
	reg.Counter("lp.bound_flips").Add(int64(st.BoundFlips))
	reg.Counter("lp.degenerate_pivots").Add(int64(st.DegeneratePivots))
	reg.Counter("lp.ratio_test_ties").Add(int64(st.RatioTestTies))
	reg.Counter("lp.bland_switches").Add(int64(st.BlandSwitches))
	reg.Counter("lp.dual_pivots").Add(int64(st.DualPivots))
	reg.Counter("lp.objective_installs").Add(int64(st.ObjectiveInstalls))
	reg.Counter("lp.refactorizations").Add(int64(st.Refactorizations))
	reg.Counter("lp.eta_vectors").Add(int64(st.EtaVectors))
	reg.Counter("lp.phase1_iterations").Add(int64(st.Phase1Iterations))
	reg.Counter("lp.phase2_iterations").Add(int64(st.Phase2Iterations))
	switch sol.Status {
	case Infeasible:
		reg.Counter("lp.infeasible").Inc()
	case Unbounded:
		reg.Counter("lp.unbounded").Inc()
	}
	reg.Histogram("lp.solve_seconds", obs.TimeBuckets).Observe(st.Phase1Seconds + st.Phase2Seconds)
	reg.Histogram("lp.pivots_per_solve", obs.CountBuckets).Observe(float64(st.Pivots))
	reg.Histogram("lp.degenerate_pivots_per_solve", obs.CountBuckets).Observe(float64(st.DegeneratePivots))
	if method == MethodRevised {
		reg.Histogram("lp.eta_vectors_per_solve", obs.CountBuckets).Observe(float64(st.EtaVectors))
		// Mean pivots between basis refactorizations this solve (the
		// initial factorization counts as interval zero's start).
		reg.Histogram("lp.refactor_interval_pivots", obs.CountBuckets).
			Observe(float64(st.Pivots) / float64(st.Refactorizations+1))
	}
	if span != nil {
		span.Annotate("status", sol.Status.String())
		span.Annotate("iterations", sol.Iterations)
		span.Annotate("pivots", st.Pivots)
	}
	if log.Enabled(obs.LevelDebug) {
		log.Debug("lp solve done",
			"method", method.String(),
			"status", sol.Status.String(),
			"vars", p.NumVars(),
			"constraints", len(p.Constraints),
			"pivots", st.Pivots,
			"degenerate_pivots", st.DegeneratePivots,
			"refactorizations", st.Refactorizations,
			"seconds", st.Phase1Seconds+st.Phase2Seconds)
	}
}

// varStatus tracks where a nonbasic variable currently sits.
type varStatus uint8

const (
	atLower varStatus = iota // nonbasic at value 0
	atUpper                  // nonbasic at its upper bound
	basic
)

// tableau is the bounded-variable standard form: minimize c·x subject to
// A x = b with 0 ≤ x_j ≤ u_j, b ≥ 0 after normalization. Upper bounds are
// handled natively by the simplex (nonbasic variables may rest at either
// bound), so no extra rows are materialized for them — this keeps the
// LP-HTA relaxations linear in the task count rather than quadratic.
// Columns: structural variables first, then slack/surplus, then
// artificials.
type tableau struct {
	m, n    int // rows, total columns
	nStruct int // structural variable count
	nArt    int // artificial count

	rows   [][]float64 // T = B⁻¹A, maintained by pivoting
	active []bool      // redundant rows discovered in phase 1 are retired

	upper  []float64   // per-column upper bound (+Inf when absent)
	status []varStatus // per-column location
	basis  []int       // basis[i] = column basic in row i
	value  []float64   // value[i] = current value of basis[i]

	obj        []float64 // reduced-cost row
	iterations int
	stats      SolveStats
}

// rowKind is one constraint row after RHS-sign normalization: the
// effective sense, and whether the row was negated to make its RHS ≥ 0.
type rowKind struct {
	sense Sense
	neg   bool
}

// classifyRows normalizes every row to RHS ≥ 0 and counts the slack and
// artificial columns the standard form needs. Shared by the dense tableau
// and the revised simplex so both lower the identical standard form.
func classifyRows(cons []Constraint) (kinds []rowKind, nSlack, nArt int) {
	kinds = make([]rowKind, len(cons))
	for i, c := range cons {
		sense := c.Sense
		neg := c.RHS < 0
		if neg {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		kinds[i] = rowKind{sense: sense, neg: neg}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	return kinds, nSlack, nArt
}

// newTableau converts p into bounded standard form.
func newTableau(p *Problem) (*tableau, error) {
	n := p.NumVars()
	cons := p.Constraints
	m := len(cons)
	t := &tableau{m: m, nStruct: n}

	kinds, nSlack, nArt := classifyRows(cons)
	t.n = n + nSlack + nArt
	t.nArt = nArt

	t.rows = make([][]float64, m)
	t.active = make([]bool, m)
	t.basis = make([]int, m)
	t.value = make([]float64, m)
	t.upper = make([]float64, t.n)
	t.status = make([]varStatus, t.n)
	for j := range t.upper {
		t.upper[j] = math.Inf(1)
	}
	for j, u := range p.Upper {
		t.upper[j] = u
	}

	slackCol, artCol := n, n+nSlack
	for i, c := range cons {
		row := make([]float64, t.n)
		sign := 1.0
		if kinds[i].neg {
			sign = -1
		}
		c.scatter(row, sign)
		rhs := sign * c.RHS

		switch kinds[i].sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
		t.active[i] = true
		t.value[i] = rhs
		t.status[t.basis[i]] = basic
	}
	return t, nil
}

// setObjective installs the reduced-cost row for the given costs.
func (t *tableau) setObjective(costs []float64) {
	t.stats.ObjectiveInstalls++
	t.obj = make([]float64, t.n)
	copy(t.obj, costs)
	for i, b := range t.basis {
		if !t.active[i] {
			continue
		}
		cb := costs[b]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.n; j++ {
			t.obj[j] -= cb * row[j]
		}
	}
}

// pivot performs a basis change on (row, col), updating T and the
// reduced-cost row. Values are maintained by the caller.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1

	for i := range t.rows {
		if i == row || !t.active[i] {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	if f := t.obj[col]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
	t.iterations++
	t.stats.Pivots++
}

// errUnbounded signals an unbounded phase-2 objective.
var errUnbounded = errors.New("lp: unbounded")

// runSimplex iterates the bounded-variable simplex until optimality (nil),
// unboundedness (errUnbounded), or the iteration limit. allowed reports
// whether a column may enter the basis (used to bar artificials in
// phase 2).
func (t *tableau) runSimplex(allowed func(col int) bool) error {
	limit := 2000 * (t.m + t.n + 1)
	degenerate := 0
	useBland := false

	for iter := 0; iter < limit; iter++ {
		// Pricing: a variable at lower enters increasing when its reduced
		// cost is negative; one at upper enters decreasing when positive.
		enter := -1
		sigma := 1.0
		if useBland {
			for j := 0; j < t.n; j++ {
				if !allowed(j) || t.status[j] == basic {
					continue
				}
				if t.status[j] == atLower && t.obj[j] < -eps {
					enter, sigma = j, 1
					break
				}
				if t.status[j] == atUpper && t.obj[j] > eps {
					enter, sigma = j, -1
					break
				}
			}
		} else {
			best := eps
			for j := 0; j < t.n; j++ {
				if !allowed(j) || t.status[j] == basic {
					continue
				}
				var viol float64
				if t.status[j] == atLower {
					viol = -t.obj[j]
				} else {
					viol = t.obj[j]
				}
				if viol > best {
					best = viol
					enter = j
					if t.status[j] == atLower {
						sigma = 1
					} else {
						sigma = -1
					}
				}
			}
		}
		if enter < 0 {
			return nil // optimal
		}

		// Ratio test: the entering variable moves by step ≥ 0 in
		// direction sigma; basic variable i changes by -sigma·w_i·step.
		step := t.upper[enter] // bound-flip distance (may be +Inf)
		leave := -1
		leaveAt := atLower
		for i := 0; i < t.m; i++ {
			if !t.active[i] {
				continue
			}
			w := t.rows[i][enter]
			a := sigma * w
			switch {
			case a > pivotEps: // basic value falls toward 0
				s := t.value[i] / a
				if s < step+eps && s >= step-eps && leave >= 0 {
					t.stats.RatioTestTies++
				}
				if s < step-eps ||
					(s < step+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					step, leave, leaveAt = s, i, atLower
				}
			case a < -pivotEps: // basic value rises toward its bound
				ub := t.upper[t.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				s := (ub - t.value[i]) / -a
				if s < step+eps && s >= step-eps && leave >= 0 {
					t.stats.RatioTestTies++
				}
				if s < step-eps ||
					(s < step+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					step, leave, leaveAt = s, i, atUpper
				}
			}
		}
		if math.IsInf(step, 1) {
			return errUnbounded
		}
		if step < 0 {
			step = 0 // numerical guard: never move backwards
		}

		if step < eps {
			degenerate++
			t.stats.DegeneratePivots++
			if degenerate > t.m+t.n {
				if !useBland {
					t.stats.BlandSwitches++
				}
				useBland = true
			}
		} else {
			degenerate = 0
			useBland = false
		}

		if leave < 0 {
			// Bound flip: the entering variable crosses to its other
			// bound without any basis change.
			for i := 0; i < t.m; i++ {
				if t.active[i] {
					t.value[i] -= sigma * t.rows[i][enter] * step
				}
			}
			if t.status[enter] == atLower {
				t.status[enter] = atUpper
			} else {
				t.status[enter] = atLower
			}
			t.iterations++
			t.stats.BoundFlips++
			continue
		}

		// Basis change: update values, then pivot.
		enterValue := 0.0
		if t.status[enter] == atUpper {
			enterValue = t.upper[enter]
		}
		for i := 0; i < t.m; i++ {
			if i == leave || !t.active[i] {
				continue
			}
			t.value[i] -= sigma * t.rows[i][enter] * step
		}
		leaving := t.basis[leave]
		t.status[leaving] = leaveAt
		t.value[leave] = enterValue + sigma*step
		t.status[enter] = basic
		t.pivot(leave, enter)
	}
	return ErrIterationLimit
}

// solve runs the two phases and extracts the solution. span, when
// non-nil, receives one child span per phase; log, when enabled at debug,
// receives one record per phase transition.
func (t *tableau) solve(p *Problem, span *obs.Span, log *obs.Logger) (*Solution, error) {
	allowAll := func(int) bool { return true }
	artStart := t.n - t.nArt

	if t.nArt > 0 {
		p1Span := span.Child("lp.phase1")
		p1Timer := obs.StartTimer()
		phase1 := make([]float64, t.n)
		for j := artStart; j < t.n; j++ {
			phase1[j] = 1
		}
		t.setObjective(phase1)
		err := t.runSimplex(allowAll)
		t.stats.Phase1Iterations = t.iterations
		t.stats.Phase1Seconds = p1Timer.Seconds()
		p1Span.Annotate("iterations", t.iterations)
		p1Span.End()
		if log.Enabled(obs.LevelDebug) {
			log.Debug("lp phase1 done",
				"method", "dense",
				"iterations", t.stats.Phase1Iterations,
				"seconds", t.stats.Phase1Seconds)
		}
		if errors.Is(err, errUnbounded) {
			return nil, errors.New("lp: phase-1 simplex reported unbounded")
		}
		if err != nil {
			return nil, err
		}
		infeas := 0.0
		for i, b := range t.basis {
			if t.active[i] && b >= artStart {
				infeas += t.value[i]
			}
		}
		if infeas > 1e-6 {
			return &Solution{Status: Infeasible, Iterations: t.iterations, Stats: t.stats}, nil
		}
		// Drive surviving artificials out of the basis, or retire their
		// rows as redundant.
		for i := 0; i < t.m; i++ {
			if !t.active[i] || t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if t.status[j] != basic && math.Abs(t.rows[i][j]) > pivotEps {
					// Zero-step pivot: the solution is unchanged, so the
					// entering variable keeps its current value (0 at
					// lower, u_j at upper) as its new basic value.
					enterVal := 0.0
					if t.status[j] == atUpper {
						enterVal = t.upper[j]
					}
					t.status[t.basis[i]] = atLower
					t.status[j] = basic
					t.value[i] = enterVal
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				t.active[i] = false
			}
		}
	}

	p2Span := span.Child("lp.phase2")
	p2Timer := obs.StartTimer()
	costs := make([]float64, t.n)
	copy(costs, p.Minimize)
	t.setObjective(costs)
	noArt := func(col int) bool { return col < artStart }
	err := t.runSimplex(noArt)
	t.stats.Phase2Iterations = t.iterations - t.stats.Phase1Iterations
	t.stats.Phase2Seconds = p2Timer.Seconds()
	p2Span.Annotate("iterations", t.stats.Phase2Iterations)
	p2Span.End()
	if log.Enabled(obs.LevelDebug) {
		log.Debug("lp phase2 done",
			"method", "dense",
			"iterations", t.stats.Phase2Iterations,
			"seconds", t.stats.Phase2Seconds)
	}
	if errors.Is(err, errUnbounded) {
		return &Solution{Status: Unbounded, Iterations: t.iterations, Stats: t.stats}, nil
	}
	if err != nil {
		return nil, err
	}

	x := make([]float64, t.nStruct)
	for j := 0; j < t.nStruct; j++ {
		if t.status[j] == atUpper {
			x[j] = t.upper[j]
		}
	}
	for i, b := range t.basis {
		if t.active[i] && b < t.nStruct {
			v := t.value[i]
			if v < 0 && v > -1e-6 {
				v = 0
			}
			x[b] = v
		}
	}
	obj := 0.0
	for j, c := range p.Minimize {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: t.iterations, Stats: t.stats}, nil
}
