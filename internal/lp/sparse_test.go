package lp

import (
	"strings"
	"testing"

	"dsmec/internal/rng"
)

// sparsify converts a dense constraint to the index/value form.
func sparsify(c Constraint) Constraint {
	cols := []int{}
	vals := []float64{}
	for j, v := range c.Coeffs {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return Sparse(cols, vals, c.Sense, c.RHS)
}

func TestSparseMatchesDense(t *testing.T) {
	// Identical problems in dense and sparse form must solve to the same
	// point bit-for-bit: scatter writes the same tableau rows the dense
	// copy loop did.
	p := &Problem{
		Minimize: []float64{1, 2, 3, 0.5},
		Upper:    []float64{1, 1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0}, Sense: EQ, RHS: 1},
			{Coeffs: []float64{2, 0, 0, 1}, Sense: LE, RHS: 1.5},
			{Coeffs: []float64{0, 1, 0, 1}, Sense: GE, RHS: 0.5},
		},
	}
	q := &Problem{Minimize: p.Minimize, Upper: p.Upper}
	for _, c := range p.Constraints {
		q.Constraints = append(q.Constraints, sparsify(c))
	}
	ds, qs := solveOK(t, p), solveOK(t, q)
	if ds.Objective != qs.Objective {
		t.Errorf("objectives differ: dense %g, sparse %g", ds.Objective, qs.Objective)
	}
	for j := range ds.X {
		if ds.X[j] != qs.X[j] {
			t.Errorf("x[%d] differs: dense %g, sparse %g", j, ds.X[j], qs.X[j])
		}
	}
	if ds.Iterations != qs.Iterations {
		t.Errorf("iteration counts differ: dense %d, sparse %d", ds.Iterations, qs.Iterations)
	}
}

func TestSparseMatchesDenseRandom(t *testing.T) {
	r := rng.NewSource(11).Stream("sparse")
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(6)
		p := &Problem{Minimize: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Minimize[j] = r.Float64()*4 - 2
			p.Upper[j] = 0.5 + r.Float64()*2
		}
		rows := 1 + r.Intn(4)
		for i := 0; i < rows; i++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				if r.Float64() < 0.6 {
					coeffs[j] = r.Float64() * 3
				}
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: coeffs, Sense: Sense(1 + r.Intn(3)), RHS: r.Float64() * float64(n),
			})
		}
		q := &Problem{Minimize: p.Minimize, Upper: p.Upper}
		for _, c := range p.Constraints {
			q.Constraints = append(q.Constraints, sparsify(c))
		}
		ds, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Status != qs.Status {
			t.Fatalf("trial %d: status differs: dense %v, sparse %v", trial, ds.Status, qs.Status)
		}
		if ds.Status != Optimal {
			continue
		}
		if ds.Objective != qs.Objective {
			t.Errorf("trial %d: objectives differ: dense %g, sparse %g", trial, ds.Objective, qs.Objective)
		}
		for j := range ds.X {
			if ds.X[j] != qs.X[j] {
				t.Errorf("trial %d: x[%d] differs: dense %g, sparse %g", trial, j, ds.X[j], qs.X[j])
			}
		}
	}
}

func TestMixedSparseDenseRows(t *testing.T) {
	// The two forms may coexist in one problem.
	p := &Problem{
		Minimize: []float64{1, 1, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Sense: EQ, RHS: 2},
			Sparse([]int{0}, []float64{1}, LE, 0.5),
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.X[0], 0.5) || !almostEqual(s.X[1], 1.5) || !almostEqual(s.X[2], 0) {
		t.Errorf("x = %v, want [0.5 1.5 0]", s.X)
	}
}

func TestConstraintDot(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	dense := Constraint{Coeffs: []float64{0, 1, 0, 2}}
	if got := dense.Dot(x); got != 10 {
		t.Errorf("dense Dot = %g, want 10", got)
	}
	sparse := Sparse([]int{1, 3}, []float64{1, 2}, LE, 0)
	if got := sparse.Dot(x); got != 10 {
		t.Errorf("sparse Dot = %g, want 10", got)
	}
}

func TestValidateSparseErrors(t *testing.T) {
	base := func() *Problem {
		return &Problem{Minimize: []float64{1, 1, 1}}
	}
	tests := []struct {
		name string
		row  Constraint
		want string
	}{
		{"length mismatch", Sparse([]int{0, 1}, []float64{1}, LE, 1), "coefficients for"},
		{"column out of range", Sparse([]int{0, 3}, []float64{1, 1}, LE, 1), "references column"},
		{"negative column", Sparse([]int{-1}, []float64{1}, LE, 1), "references column"},
		{"not increasing", Sparse([]int{1, 0}, []float64{1, 1}, LE, 1), "strictly increasing"},
		{"duplicate column", Sparse([]int{1, 1}, []float64{1, 1}, LE, 1), "strictly increasing"},
	}
	for _, tt := range tests {
		p := base()
		p.Constraints = []Constraint{tt.row}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tt.name, err, tt.want)
		}
	}
	// An empty (but non-nil) sparse row is valid: vacuously zero.
	p := base()
	p.Constraints = []Constraint{Sparse([]int{}, []float64{}, LE, 1)}
	if err := p.Validate(); err != nil {
		t.Errorf("empty sparse row: Validate() = %v, want nil", err)
	}
}
