package lp

import (
	"math"
	"testing"

	"dsmec/internal/rng"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve() error: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("Status = %v, want optimal", s.Status)
	}
	return s
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings wrong")
	}
	if Sense(9).String() != "Sense(9)" {
		t.Error("unknown sense string wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string wrong")
	}
}

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  ->  min -(x+y), optimum at (1.6, 1.2).
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Sense: LE, RHS: 4},
			{Coeffs: []float64{3, 1}, Sense: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, -2.8) {
		t.Errorf("objective = %g, want -2.8", s.Objective)
	}
	if !almostEqual(s.X[0], 1.6) || !almostEqual(s.X[1], 1.2) {
		t.Errorf("x = %v, want [1.6 1.2]", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+2y s.t. x+y=3, x<=2 -> x=2, y=1, obj=4.
	p := &Problem{
		Minimize: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 3},
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
	if !almostEqual(s.X[0], 2) || !almostEqual(s.X[1], 1) {
		t.Errorf("x = %v, want [2 1]", s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y>=4, x>=1 -> x=4,y=0 obj=8? Check: obj coeff of x
	// smaller, so push all onto x: x=4, y=0, obj 8.
	p := &Problem{
		Minimize: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 4},
			{Coeffs: []float64{1, 0}, Sense: GE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, 8) {
		t.Errorf("objective = %g, want 8", s.Objective)
	}
}

func TestUpperBounds(t *testing.T) {
	// max x+y with x<=3 (bound), y<=2 (bound) -> obj -5 at (3,2).
	p := &Problem{
		Minimize: []float64{-1, -1},
		Upper:    []float64{3, 2},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, -5) {
		t.Errorf("objective = %g, want -5", s.Objective)
	}
	if !almostEqual(s.X[0], 3) || !almostEqual(s.X[1], 2) {
		t.Errorf("x = %v, want [3 2]", s.X)
	}
}

func TestInfiniteUpperBoundsSkipped(t *testing.T) {
	// x unbounded above but constrained by a row; y bounded at 1.
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 7},
		},
		Upper: []float64{math.Inf(1), 1},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, -8) {
		t.Errorf("objective = %g, want -8", s.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2) -> x=2.
	p := &Problem{
		Minimize: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.X[0], 2) {
		t.Errorf("x = %v, want [2]", s.X)
	}

	// min x s.t. -x >= -5 (i.e. x <= 5), maximize instead: min -x -> x=5.
	p2 := &Problem{
		Minimize: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: GE, RHS: -5},
		},
	}
	s2 := solveOK(t, p2)
	if !almostEqual(s2.X[0], 5) {
		t.Errorf("x = %v, want [5]", s2.X)
	}

	// Equality with negative RHS: x - y = -3, min x+y -> x=0, y=3.
	p3 := &Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Sense: EQ, RHS: -3},
		},
	}
	s3 := solveOK(t, p3)
	if !almostEqual(s3.X[0], 0) || !almostEqual(s3.X[1], 3) {
		t.Errorf("x = %v, want [0 3]", s3.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Minimize: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("Status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x + y = 5 with x,y <= 1 is infeasible.
	p := &Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 5},
		},
		Upper: []float64{1, 1},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("Status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Minimize: []float64{-1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("Status = %v, want unbounded", s.Status)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows exercise the redundant-row handling after
	// phase 1.
	p := &Problem{
		Minimize: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{2, 2}, Sense: EQ, RHS: 4},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, 2) {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex: multiple constraints meet at the optimum.
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 2}, // duplicate active
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, -2) {
		t.Errorf("objective = %g, want -2", s.Objective)
	}
}

func TestZeroRHSDegeneracy(t *testing.T) {
	// Start degenerate: x <= 0 forces x = 0.
	p := &Problem{
		Minimize: []float64{-1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 0},
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if !almostEqual(s.Objective, -6) {
		t.Errorf("objective = %g, want -6 (x=0, y=3)", s.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		p    *Problem
	}{
		{"no variables", &Problem{}},
		{"wrong constraint width", &Problem{
			Minimize:    []float64{1, 2},
			Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: 1}},
		}},
		{"bad sense", &Problem{
			Minimize:    []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{1}, Sense: 0, RHS: 1}},
		}},
		{"nan rhs", &Problem{
			Minimize:    []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: math.NaN()}},
		}},
		{"inf coefficient", &Problem{
			Minimize:    []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Sense: LE, RHS: 1}},
		}},
		{"wrong bound width", &Problem{Minimize: []float64{1, 2}, Upper: []float64{1}}},
		{"negative bound", &Problem{Minimize: []float64{1}, Upper: []float64{-1}}},
		{"nan objective", &Problem{Minimize: []float64{math.NaN()}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(tt.p); err == nil {
				t.Error("Solve() = nil error, want validation error")
			}
		})
	}
}

func TestAssignmentShapedLP(t *testing.T) {
	// A miniature of the paper's P2: 2 tasks × 3 subsystems. Each task
	// must pick exactly one subsystem (fractionally); a capacity row
	// limits subsystem 1 usage. Energies favour subsystem 1.
	//
	// Variables: x[t*3+l] for task t, level l.
	e := []float64{1, 5, 9 /* task 0 */, 2, 4, 8 /* task 1 */}
	p := &Problem{
		Minimize: e,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Sense: EQ, RHS: 1},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Sense: EQ, RHS: 1},
			// Capacity: both tasks demand 2 units on level 1, cap 3.
			{Coeffs: []float64{2, 0, 0, 2, 0, 0}, Sense: LE, RHS: 3},
		},
		Upper: []float64{1, 1, 1, 1, 1, 1},
	}
	s := solveOK(t, p)
	// Optimal: put as much as possible on level 1. Task 1 gains more from
	// level 1 (saves 2/unit vs task 0's 4/unit? task0 saves 5-1=4, task1
	// saves 4-2=2 per unit of level-1). So task 0 fully local (uses 2 cap),
	// task 1 gets 0.5 local + 0.5 station: obj = 1 + 0.5·2 + 0.5·4 = 4.
	if !almostEqual(s.Objective, 4) {
		t.Errorf("objective = %g, want 4", s.Objective)
	}
	// Row sums remain 1.
	if !almostEqual(s.X[0]+s.X[1]+s.X[2], 1) || !almostEqual(s.X[3]+s.X[4]+s.X[5], 1) {
		t.Errorf("assignment rows must sum to 1: %v", s.X)
	}
}

// feasible reports whether x satisfies p within tolerance.
func feasible(p *Problem, x []float64) bool {
	for j, v := range x {
		if v < -1e-6 {
			return false
		}
		if p.Upper != nil && v > p.Upper[j]+1e-6 {
			return false
		}
	}
	for _, c := range p.Constraints {
		dot := 0.0
		for j, a := range c.Coeffs {
			dot += a * x[j]
		}
		switch c.Sense {
		case LE:
			if dot > c.RHS+1e-6 {
				return false
			}
		case GE:
			if dot < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(dot-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// plane is one hyperplane of the brute-force vertex enumeration.
type plane struct {
	coeffs []float64
	rhs    float64
}

// bruteForceOptimal enumerates all vertices of a fully box-bounded LP by
// activating every n-subset of the constraint/bound hyperplanes and returns
// the best feasible objective, or +Inf if none is feasible.
func bruteForceOptimal(p *Problem) float64 {
	n := p.NumVars()
	var planes []plane
	for _, c := range p.Constraints {
		planes = append(planes, plane{c.Coeffs, c.RHS})
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		planes = append(planes, plane{lo, 0})
		if p.Upper != nil && !math.IsInf(p.Upper[j], 1) {
			hi := make([]float64, n)
			hi[j] = 1
			planes = append(planes, plane{hi, p.Upper[j]})
		}
	}

	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(planes, idx, n)
			if ok && feasible(p, x) {
				obj := 0.0
				for j := range x {
					obj += p.Minimize[j] * x[j]
				}
				if obj < best {
					best = obj
				}
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n×n system given by the selected planes using
// Gaussian elimination with partial pivoting.
func solveSquare(planes []plane, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		copy(a[i], planes[idx[i]].coeffs)
		b[i] = planes[idx[i]].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > pv {
				pv = math.Abs(a[r][col])
				piv = r
			}
		}
		if piv < 0 {
			return nil, false // singular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c2 := col; c2 < n; c2++ {
				a[r][c2] -= f * a[col][c2]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func TestAgainstBruteForceRandom(t *testing.T) {
	// Random small box-bounded LPs: the simplex optimum must match the
	// brute-force vertex enumeration.
	r := rng.NewSource(1234).Stream("lp-fuzz")
	for trial := 0; trial < 300; trial++ {
		n := rng.UniformInt(r, 1, 4)
		m := rng.UniformInt(r, 0, 4)
		p := &Problem{
			Minimize: make([]float64, n),
			Upper:    make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.Minimize[j] = rng.Uniform(r, -5, 5)
			p.Upper[j] = rng.Uniform(r, 0.5, 5)
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), RHS: rng.Uniform(r, -3, 6)}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = rng.Uniform(r, -3, 3)
			}
			switch rng.UniformInt(r, 0, 2) {
			case 0:
				c.Sense = LE
			case 1:
				c.Sense = GE
			default:
				c.Sense = EQ
			}
			p.Constraints = append(p.Constraints, c)
		}

		want := bruteForceOptimal(p)
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: Solve error: %v\nproblem: %+v", trial, err, p)
		}
		if math.IsInf(want, 1) {
			if s.Status == Optimal {
				// Brute force can miss feasible regions whose vertices are
				// nearly singular; accept if the simplex point verifies.
				if !feasible(p, s.X) {
					t.Fatalf("trial %d: simplex claims optimal with infeasible point %v", trial, s.X)
				}
				continue
			}
			if s.Status != Infeasible {
				t.Fatalf("trial %d: Status = %v, want infeasible", trial, s.Status)
			}
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: Status = %v, want optimal (brute force found %g)\nproblem: %+v",
				trial, s.Status, want, p)
		}
		if !feasible(p, s.X) {
			t.Fatalf("trial %d: solution %v violates constraints", trial, s.X)
		}
		if math.Abs(s.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: objective %g, brute force %g\nx=%v\nproblem: %+v",
				trial, s.Objective, want, s.X, p)
		}
	}
}

func TestSolutionAlwaysFeasibleRandomBig(t *testing.T) {
	// Larger random LPs (beyond brute-force reach): verify feasibility and
	// that the reported objective matches c·x.
	r := rng.NewSource(99).Stream("lp-big")
	for trial := 0; trial < 50; trial++ {
		n := rng.UniformInt(r, 5, 30)
		m := rng.UniformInt(r, 1, 15)
		p := &Problem{Minimize: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Minimize[j] = rng.Uniform(r, -2, 2)
			p.Upper[j] = rng.Uniform(r, 0.1, 4)
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: rng.Uniform(r, 1, 10)}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = rng.Uniform(r, 0, 2) // non-negative LE rows with positive RHS stay feasible
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: Status = %v, want optimal (origin is feasible)", trial, s.Status)
		}
		if !feasible(p, s.X) {
			t.Fatalf("trial %d: infeasible solution", trial)
		}
		dot := 0.0
		for j := range s.X {
			dot += p.Minimize[j] * s.X[j]
		}
		if math.Abs(dot-s.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective mismatch: reported %g, c·x=%g", trial, s.Objective, dot)
		}
		// Sanity: objective can never beat the bound-relaxed minimum
		// sum_j min(0, c_j)·u_j.
		lb := 0.0
		for j := range p.Minimize {
			if p.Minimize[j] < 0 {
				lb += p.Minimize[j] * p.Upper[j]
			}
		}
		if s.Objective < lb-1e-6 {
			t.Fatalf("trial %d: objective %g below lower bound %g", trial, s.Objective, lb)
		}
	}
}

func TestIterationsReported(t *testing.T) {
	p := &Problem{
		Minimize: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Sense: LE, RHS: 4},
			{Coeffs: []float64{3, 1}, Sense: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Iterations <= 0 {
		t.Error("Iterations should be positive for a non-trivial solve")
	}
}

func TestNativeBoundsMatchExplicitRows(t *testing.T) {
	// The bounded-variable simplex must agree with the same problem posed
	// with explicit x_j <= u_j rows and infinite native bounds.
	r := rng.NewSource(321).Stream("lp-bounds")
	for trial := 0; trial < 200; trial++ {
		n := rng.UniformInt(r, 1, 5)
		m := rng.UniformInt(r, 0, 4)
		bounds := make([]float64, n)
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Uniform(r, -5, 5)
			bounds[j] = rng.Uniform(r, 0.5, 5)
		}
		var cons []Constraint
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), RHS: rng.Uniform(r, -3, 6)}
			for j := 0; j < n; j++ {
				c.Coeffs[j] = rng.Uniform(r, -3, 3)
			}
			switch rng.UniformInt(r, 0, 2) {
			case 0:
				c.Sense = LE
			case 1:
				c.Sense = GE
			default:
				c.Sense = EQ
			}
			cons = append(cons, c)
		}

		native := &Problem{Minimize: obj, Constraints: cons, Upper: bounds}

		inf := make([]float64, n)
		rows := make([]Constraint, len(cons))
		copy(rows, cons)
		for j := 0; j < n; j++ {
			inf[j] = math.Inf(1)
			coef := make([]float64, n)
			coef[j] = 1
			rows = append(rows, Constraint{Coeffs: coef, Sense: LE, RHS: bounds[j]})
		}
		explicit := &Problem{Minimize: obj, Constraints: rows, Upper: inf}

		sn, err := Solve(native)
		if err != nil {
			t.Fatalf("trial %d native: %v", trial, err)
		}
		se, err := Solve(explicit)
		if err != nil {
			t.Fatalf("trial %d explicit: %v", trial, err)
		}
		if sn.Status != se.Status {
			t.Fatalf("trial %d: status native %v != explicit %v", trial, sn.Status, se.Status)
		}
		if sn.Status == Optimal &&
			math.Abs(sn.Objective-se.Objective) > 1e-5*(1+math.Abs(se.Objective)) {
			t.Fatalf("trial %d: objective native %g != explicit %g", trial, sn.Objective, se.Objective)
		}
	}
}
