// Package task defines the computation tasks of a data-shared MEC system.
//
// A task T_ij = (op_ij, LD_ij, ED_ij, L_ij, C_ij, T_ij) is the j-th task
// raised by user U_i. Its input splits into local data LD_ij (size α_ij,
// held by the user's own device) and external data ED_ij (size β_ij, held
// by device L_ij, possibly in another cluster). The task also carries a
// resource demand C_ij (memory/threads/VM slots) and a deadline T_ij.
//
// Tasks come in two kinds (Sections III and IV of the paper):
//
//   - Holistic: all input must be gathered at a single subsystem before
//     processing.
//   - Divisible: the result can be computed from partial results over a
//     partition of the input (Sum, Count, and similar aggregates), so the
//     work can be rearranged to follow the data.
package task
