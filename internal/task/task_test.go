package task

import (
	"strings"
	"testing"

	"dsmec/internal/datamap"
	"dsmec/internal/units"
)

func validTask() *Task {
	return &Task{
		ID:             ID{User: 0, Index: 0},
		Kind:           Holistic,
		OpSize:         units.Kilobyte,
		LocalSize:      100 * units.Kilobyte,
		ExternalSize:   50 * units.Kilobyte,
		ExternalSource: 3,
		Resource:       2,
		Deadline:       2 * units.Second,
	}
}

func TestIDString(t *testing.T) {
	if got := (ID{User: 3, Index: 7}).String(); got != "T[3,7]" {
		t.Errorf("String() = %q, want T[3,7]", got)
	}
}

func TestIDLess(t *testing.T) {
	tests := []struct {
		a, b ID
		want bool
	}{
		{ID{0, 0}, ID{0, 1}, true},
		{ID{0, 1}, ID{0, 0}, false},
		{ID{0, 9}, ID{1, 0}, true},
		{ID{1, 0}, ID{0, 9}, false},
		{ID{1, 1}, ID{1, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Holistic.String() != "holistic" || Divisible.String() != "divisible" {
		t.Error("kind names wrong")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestTaskAccessors(t *testing.T) {
	tk := validTask()
	if got := tk.InputSize(); got != 150*units.Kilobyte {
		t.Errorf("InputSize = %v, want 150kB", got)
	}
	if !tk.HasExternal() {
		t.Error("HasExternal = false, want true")
	}
	tk.ExternalSize = 0
	tk.ExternalSource = NoExternalSource
	if tk.HasExternal() {
		t.Error("HasExternal = true for local-only task")
	}
}

func TestInputBlocks(t *testing.T) {
	tk := validTask()
	tk.Kind = Divisible
	tk.LocalBlocks = datamap.NewSet(1, 2)
	tk.ExternalBlocks = datamap.NewSet(2, 3)
	if got := tk.InputBlocks(); !got.Equal(datamap.NewSet(1, 2, 3)) {
		t.Errorf("InputBlocks = %v, want {1,2,3}", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Task)
	}{
		{"negative user", func(tk *Task) { tk.ID.User = -1 }},
		{"negative index", func(tk *Task) { tk.ID.Index = -1 }},
		{"bad kind", func(tk *Task) { tk.Kind = 0 }},
		{"negative op size", func(tk *Task) { tk.OpSize = -1 }},
		{"negative local", func(tk *Task) { tk.LocalSize = -1 }},
		{"negative external", func(tk *Task) { tk.ExternalSize = -1 }},
		{"external without source", func(tk *Task) { tk.ExternalSource = NoExternalSource }},
		{"external from self", func(tk *Task) { tk.ExternalSource = tk.ID.User }},
		{"source without external", func(tk *Task) {
			tk.ExternalSize = 0 // keeps ExternalSource = 3
		}},
		{"negative resource", func(tk *Task) { tk.Resource = -1 }},
		{"zero deadline", func(tk *Task) { tk.Deadline = 0 }},
	}
	if err := validTask().Validate(); err != nil {
		t.Fatalf("base task invalid: %v", err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tk := validTask()
			tt.mutate(tk)
			if err := tk.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestValidateLocalOnlyTask(t *testing.T) {
	tk := validTask()
	tk.ExternalSize = 0
	tk.ExternalSource = NoExternalSource
	if err := tk.Validate(); err != nil {
		t.Errorf("local-only task should validate, got %v", err)
	}
}

func TestNewSet(t *testing.T) {
	a := validTask()
	b := validTask()
	b.ID = ID{User: 1, Index: 0}
	s, err := NewSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	got, ok := s.Get(ID{User: 1, Index: 0})
	if !ok || got.ID != b.ID || got.LocalSize != b.LocalSize {
		t.Error("Get failed to find inserted task")
	}
	if _, ok := s.Get(ID{User: 9, Index: 9}); ok {
		t.Error("Get found a task that was never added")
	}
}

func TestNewSetRejectsDuplicatesAndInvalid(t *testing.T) {
	a := validTask()
	dup := validTask()
	if _, err := NewSet(a, dup); err == nil {
		t.Error("duplicate IDs should be rejected")
	}
	bad := validTask()
	bad.Deadline = 0
	if _, err := NewSet(bad); err == nil {
		t.Error("invalid task should be rejected")
	}
	if _, err := NewSet(nil); err == nil {
		t.Error("nil task should be rejected")
	}
}

func TestSetAddOnZeroValue(t *testing.T) {
	var s Set
	if err := s.Add(validTask()); err != nil {
		t.Fatalf("Add on zero-value Set: %v", err)
	}
	if s.Len() != 1 {
		t.Error("Add did not insert")
	}
}

func TestByUser(t *testing.T) {
	mk := func(u, j int) *Task {
		tk := validTask()
		tk.ID = ID{User: u, Index: j}
		if u == tk.ExternalSource {
			tk.ExternalSource = u + 1
		}
		return tk
	}
	s, err := NewSet(mk(0, 0), mk(1, 0), mk(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	byUser := s.ByUser()
	if len(byUser[0]) != 2 || len(byUser[1]) != 1 {
		t.Errorf("ByUser sizes = %d,%d want 2,1", len(byUser[0]), len(byUser[1]))
	}
	if s.At(byUser[0][0]).ID.Index != 0 || s.At(byUser[0][1]).ID.Index != 1 {
		t.Error("ByUser must preserve insertion order")
	}
}

func TestUniverse(t *testing.T) {
	a := validTask()
	a.Kind = Divisible
	a.LocalBlocks = datamap.NewSet(1, 2)
	a.ExternalBlocks = datamap.NewSet(3)
	b := validTask()
	b.ID = ID{User: 1, Index: 0}
	b.Kind = Divisible
	b.LocalBlocks = datamap.NewSet(2, 4)
	b.ExternalBlocks = nil

	s, err := NewSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Universe(); !got.Equal(datamap.NewSet(1, 2, 3, 4)) {
		t.Errorf("Universe = %v, want {1,2,3,4}", got)
	}
}
