package task

import (
	"fmt"

	"dsmec/internal/datamap"
	"dsmec/internal/units"
)

// ID identifies task T_ij: User is i (the raising user and its device),
// Index is j.
type ID struct {
	User  int
	Index int
}

// String renders the ID as "T[i,j]".
func (id ID) String() string { return fmt.Sprintf("T[%d,%d]", id.User, id.Index) }

// Less orders IDs lexicographically, for deterministic iteration.
func (id ID) Less(other ID) bool {
	if id.User != other.User {
		return id.User < other.User
	}
	return id.Index < other.Index
}

// Kind distinguishes holistic from divisible tasks.
type Kind int

// Task kinds.
const (
	Holistic Kind = iota + 1
	Divisible
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Holistic:
		return "holistic"
	case Divisible:
		return "divisible"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NoExternalSource marks a task whose input is entirely local (β_ij = 0).
const NoExternalSource = -1

// Task is one computation task. LocalSize and ExternalSize are α_ij and
// β_ij. ExternalSource is L_ij, the device holding ED_ij (NoExternalSource
// when β_ij = 0). Divisible tasks additionally carry the identities of
// their input blocks so the Section IV algorithms can rearrange them.
type Task struct {
	ID   ID
	Kind Kind

	// OpSize is the size of the operation descriptor op_ij: the code or
	// query that must be shipped to wherever the task (or a slice of it)
	// runs. It is what the Task Rearrangement Method transmits instead of
	// raw data.
	OpSize units.ByteSize

	LocalSize      units.ByteSize // α_ij
	ExternalSize   units.ByteSize // β_ij
	ExternalSource int            // L_ij

	Resource float64        // C_ij
	Deadline units.Duration // T_ij

	// LocalBlocks and ExternalBlocks identify LD_ij and ED_ij for
	// divisible tasks. Holistic tasks may leave them nil.
	LocalBlocks    *datamap.Set
	ExternalBlocks *datamap.Set
}

// InputSize returns α_ij + β_ij, the total input the task must see.
func (t *Task) InputSize() units.ByteSize { return t.LocalSize + t.ExternalSize }

// HasExternal reports whether the task needs data from another device.
func (t *Task) HasExternal() bool { return t.ExternalSize > 0 }

// InputBlocks returns LD_ij ∪ ED_ij as a fresh set. It is only meaningful
// for divisible tasks.
func (t *Task) InputBlocks() *datamap.Set {
	return datamap.UnionOf(t.LocalBlocks, t.ExternalBlocks)
}

// Validate reports whether the task is internally consistent.
func (t *Task) Validate() error {
	switch {
	case t.ID.User < 0 || t.ID.Index < 0:
		return fmt.Errorf("task %v: negative id components", t.ID)
	case t.Kind != Holistic && t.Kind != Divisible:
		return fmt.Errorf("task %v: invalid kind %d", t.ID, int(t.Kind))
	case t.OpSize < 0:
		return fmt.Errorf("task %v: negative op size %v", t.ID, t.OpSize)
	case t.LocalSize < 0:
		return fmt.Errorf("task %v: negative local size %v", t.ID, t.LocalSize)
	case t.ExternalSize < 0:
		return fmt.Errorf("task %v: negative external size %v", t.ID, t.ExternalSize)
	case t.ExternalSize > 0 && t.ExternalSource == NoExternalSource:
		return fmt.Errorf("task %v: external data without a source device", t.ID)
	case t.ExternalSize > 0 && t.ExternalSource == t.ID.User:
		return fmt.Errorf("task %v: external source is the task's own device", t.ID)
	case t.ExternalSize == 0 && t.ExternalSource != NoExternalSource:
		return fmt.Errorf("task %v: source device %d given but no external data", t.ID, t.ExternalSource)
	case t.Resource < 0:
		return fmt.Errorf("task %v: negative resource demand %g", t.ID, t.Resource)
	case t.Deadline <= 0:
		return fmt.Errorf("task %v: deadline %v must be positive", t.ID, t.Deadline)
	default:
		return nil
	}
}

// Set is an ordered collection of tasks with unique IDs. Tasks live in a
// single flat value arena, so a million-task set costs one backing array
// plus the ID index instead of a pointer per task; algorithms address
// tasks by their dense arena index (see IndexOf/At).
type Set struct {
	tasks []Task
	index map[ID]int32
}

// NewSet builds a task set, validating every task and rejecting duplicate
// IDs.
func NewSet(tasks ...*Task) (*Set, error) {
	s := &Set{
		tasks: make([]Task, 0, len(tasks)),
		index: make(map[ID]int32, len(tasks)),
	}
	for _, t := range tasks {
		if err := s.Add(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Grow preallocates arena capacity for n additional tasks, so streaming
// producers that know the final size avoid repeated reallocation.
func (s *Set) Grow(n int) {
	if n <= 0 {
		return
	}
	if s.index == nil {
		s.index = make(map[ID]int32, n)
	}
	if cap(s.tasks)-len(s.tasks) < n {
		grown := make([]Task, len(s.tasks), len(s.tasks)+n)
		copy(grown, s.tasks)
		s.tasks = grown
	}
}

// Add validates t and copies it into the arena. Pointers previously
// returned by At/All may be invalidated by the append; mutate the set
// fully before handing out task pointers.
func (s *Set) Add(t *Task) error {
	if t == nil {
		return fmt.Errorf("task: nil task")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := s.index[t.ID]; dup {
		return fmt.Errorf("task %v: duplicate id", t.ID)
	}
	if s.index == nil {
		s.index = make(map[ID]int32)
	}
	s.index[t.ID] = int32(len(s.tasks))
	s.tasks = append(s.tasks, *t)
	return nil
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.tasks) }

// At returns a pointer into the arena for the i-th task (insertion
// order). The pointer stays valid until the next Add.
func (s *Set) At(i int) *Task { return &s.tasks[i] }

// All returns the backing arena in insertion order. Callers must treat it
// as read-only.
func (s *Set) All() []Task { return s.tasks }

// IndexOf returns the dense arena index of the task with the given ID.
func (s *Set) IndexOf(id ID) (int, bool) {
	i, ok := s.index[id]
	return int(i), ok
}

// Get returns the task with the given ID, or false. The pointer stays
// valid until the next Add.
func (s *Set) Get(id ID) (*Task, bool) {
	i, ok := s.index[id]
	if !ok {
		return nil, false
	}
	return &s.tasks[i], true
}

// ByUser groups the arena indices of the tasks by raising user. The slice
// values preserve insertion order.
func (s *Set) ByUser() map[int][]int {
	out := make(map[int][]int)
	for i := range s.tasks {
		u := s.tasks[i].ID.User
		out[u] = append(out[u], i)
	}
	return out
}

// Universe returns D = ∪_ij (LD_ij ∪ ED_ij), the total data the set needs,
// as block identities. Only divisible tasks contribute blocks.
func (s *Set) Universe() *datamap.Set {
	u := datamap.NewSet()
	for i := range s.tasks {
		u.Union(s.tasks[i].LocalBlocks).Union(s.tasks[i].ExternalBlocks)
	}
	return u
}
