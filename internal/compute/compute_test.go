package compute

import (
	"math"
	"testing"
	"testing/quick"

	"dsmec/internal/units"
)

func TestLinearCycles(t *testing.T) {
	m := DefaultCycles()
	tests := []struct {
		name string
		size units.ByteSize
		want units.Cycles
	}{
		{"zero", 0, 0},
		{"one byte", 1, 330},
		{"3000 kB", 3000 * units.Kilobyte, 330 * 3e6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Cycles(tt.size); got != tt.want {
				t.Errorf("Cycles(%v) = %v, want %v", tt.size, got, tt.want)
			}
		})
	}
}

func TestProportionalResult(t *testing.T) {
	m := DefaultResult()
	if got := m.ResultSize(1000 * units.Kilobyte); got != 200*units.Kilobyte {
		t.Errorf("ResultSize = %v, want 200kB (eta=0.2)", got)
	}
	half := ProportionalResult{Ratio: 0.05}
	if got := half.ResultSize(2000 * units.Kilobyte); got != 100*units.Kilobyte {
		t.Errorf("ResultSize = %v, want 100kB", got)
	}
}

func TestConstantResult(t *testing.T) {
	m := ConstantResult{Size: 8 * units.Kilobyte}
	for _, in := range []units.ByteSize{0, units.Kilobyte, 5 * units.Megabyte} {
		if got := m.ResultSize(in); got != 8*units.Kilobyte {
			t.Errorf("ResultSize(%v) = %v, want 8kB", in, got)
		}
	}
}

func TestProcessorValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Processor
		wantErr bool
	}{
		{"device", DeviceProcessor(1.5 * units.Gigahertz), false},
		{"station", StationProcessor(), false},
		{"cloud", CloudProcessor(), false},
		{"zero frequency", Processor{}, true},
		{"negative frequency", Processor{Frequency: -1}, true},
		{"negative kappa", Processor{Frequency: 1e9, Kappa: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestExecTime(t *testing.T) {
	// Paper sanity check: 3000 kB at 330 cycles/byte on a 1.5 GHz device
	// takes 0.66 s.
	p := DeviceProcessor(1.5 * units.Gigahertz)
	c := DefaultCycles().Cycles(3000 * units.Kilobyte)
	if got := p.ExecTime(c); math.Abs(got.Seconds()-0.66) > 1e-9 {
		t.Errorf("ExecTime = %v, want 0.66s", got)
	}
	// Station at 4 GHz is proportionally faster.
	if got := StationProcessor().ExecTime(c); math.Abs(got.Seconds()-0.2475) > 1e-9 {
		t.Errorf("station ExecTime = %v, want 0.2475s", got)
	}
}

func TestExecEnergy(t *testing.T) {
	// κ·λ·X·f² = 1e-27 · 330·3e6 · (1.5e9)² = 2.2275 J.
	p := DeviceProcessor(1.5 * units.Gigahertz)
	c := DefaultCycles().Cycles(3000 * units.Kilobyte)
	if got := p.ExecEnergy(c); math.Abs(got.Joules()-2.2275) > 1e-9 {
		t.Errorf("ExecEnergy = %v, want 2.2275J", got)
	}
}

func TestGridProcessorsConsumeNoEnergy(t *testing.T) {
	c := DefaultCycles().Cycles(5 * units.Megabyte)
	if got := StationProcessor().ExecEnergy(c); got != 0 {
		t.Errorf("station ExecEnergy = %v, want 0 (grid powered)", got)
	}
	if got := CloudProcessor().ExecEnergy(c); got != 0 {
		t.Errorf("cloud ExecEnergy = %v, want 0 (grid powered)", got)
	}
}

func TestEnergyQuadraticInFrequency(t *testing.T) {
	// Property: doubling f doubles speed but quadruples energy — the
	// tradeoff at the heart of offloading decisions.
	cyc := units.Cycles(1e9)
	f := func(ghz uint8) bool {
		base := units.Frequency(ghz%8+1) * units.Gigahertz
		p1 := DeviceProcessor(base)
		p2 := DeviceProcessor(2 * base)
		t1, t2 := p1.ExecTime(cyc), p2.ExecTime(cyc)
		e1, e2 := p1.ExecEnergy(cyc), p2.ExecEnergy(cyc)
		relTime := math.Abs(t1.Seconds()/t2.Seconds() - 2)
		relEnergy := math.Abs(e2.Joules()/e1.Joules() - 4)
		return relTime < 1e-9 && relEnergy < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperFrequencyConstants(t *testing.T) {
	if StationFrequency != 4*units.Gigahertz {
		t.Errorf("station frequency = %v, want 4GHz", StationFrequency)
	}
	if CloudFrequency != 2.4*units.Gigahertz {
		t.Errorf("cloud frequency = %v, want 2.4GHz (T2.nano)", CloudFrequency)
	}
	if MinDeviceFrequency != 1*units.Gigahertz || MaxDeviceFrequency != 2*units.Gigahertz {
		t.Error("device frequency range must be 1-2GHz per Section V.A")
	}
}
