// Package compute models task execution on processors: CPU-cycle demand as
// a function of input size, execution time, and — for battery-powered
// mobile devices — the dynamic energy of computation.
//
// Following the paper (and [6], [14], [22]):
//
//   - cycle demand is λ_ijl(y): CPU cycles to process y bytes. The
//     evaluation uses the linear model λ(y) = λ·y with λ = 330 cycles/byte.
//   - execution time is λ(y)/f for a processor at frequency f.
//   - device computation energy is κ·λ(y)·f² with κ = 1e-27 J/(cycle·Hz²).
//     Base stations and the cloud are grid powered, so their computation
//     energy is "extremely small comparing with that cost by transmission"
//     and ignored (κ = 0).
//   - result size is η(y) = η·y with η = 0.2 in the evaluation; results may
//     also be constant-size (Fig. 5(b)'s "constant" series).
package compute
