package compute

import (
	"fmt"

	"dsmec/internal/units"
)

// Paper evaluation constants (Section V.A, following [22]).
const (
	// DefaultKappa is κ, the switched-capacitance energy coefficient of a
	// mobile CPU: E = κ·cycles·f².
	DefaultKappa = 1e-27
	// DefaultLambda is λ, CPU cycles needed per input byte.
	DefaultLambda = 330
	// DefaultEta is η, the output-size to input-size ratio.
	DefaultEta = 0.2
)

// CycleModel maps an input size to a CPU-cycle demand: the paper's
// λ_ijl(y).
type CycleModel interface {
	// Cycles returns the cycles needed to process size bytes.
	Cycles(size units.ByteSize) units.Cycles
}

// LinearCycles is the evaluation's λ(y) = PerByte·y model.
type LinearCycles struct {
	// PerByte is λ in cycles per byte.
	PerByte float64
}

var _ CycleModel = LinearCycles{}

// Cycles implements CycleModel.
func (m LinearCycles) Cycles(size units.ByteSize) units.Cycles {
	return units.Cycles(m.PerByte * float64(size.Bytes()))
}

// DefaultCycles returns the paper's λ = 330 cycles/byte model.
func DefaultCycles() LinearCycles { return LinearCycles{PerByte: DefaultLambda} }

// ResultModel maps an input size to the size of the computation result: the
// paper's η(y).
type ResultModel interface {
	// ResultSize returns the output size for an input of size bytes.
	ResultSize(size units.ByteSize) units.ByteSize
}

// ProportionalResult is η(y) = Ratio·y, the evaluation default with
// Ratio = 0.2.
type ProportionalResult struct {
	Ratio float64
}

var _ ResultModel = ProportionalResult{}

// ResultSize implements ResultModel.
func (m ProportionalResult) ResultSize(size units.ByteSize) units.ByteSize {
	return size.Scale(m.Ratio)
}

// ConstantResult is η(y) = Size regardless of input, Fig. 5(b)'s
// "constant" series (e.g. a Count or Sum aggregate).
type ConstantResult struct {
	Size units.ByteSize
}

var _ ResultModel = ConstantResult{}

// ResultSize implements ResultModel.
func (m ConstantResult) ResultSize(units.ByteSize) units.ByteSize { return m.Size }

// DefaultResult returns the paper's η = 0.2 proportional model.
func DefaultResult() ProportionalResult { return ProportionalResult{Ratio: DefaultEta} }

// Processor is a CPU with a clock frequency and an energy coefficient.
// Grid-powered processors (base stations, cloud) use Kappa = 0, matching
// the paper's decision to ignore their computation energy.
type Processor struct {
	Frequency units.Frequency
	Kappa     float64 // κ; 0 for grid-powered processors
}

// Validate reports whether the processor is usable.
func (p Processor) Validate() error {
	switch {
	case p.Frequency <= 0:
		return fmt.Errorf("compute: frequency %v must be positive", p.Frequency)
	case p.Kappa < 0:
		return fmt.Errorf("compute: kappa %g must be non-negative", p.Kappa)
	default:
		return nil
	}
}

// ExecTime returns the time to execute the given cycle demand:
// t^(C) = λ(y)/f.
func (p Processor) ExecTime(c units.Cycles) units.Duration {
	return c.TimeAt(p.Frequency)
}

// ExecEnergy returns the computation energy E^(C) = κ·λ(y)·f². It is zero
// for grid-powered processors.
func (p Processor) ExecEnergy(c units.Cycles) units.Energy {
	return units.Energy(p.Kappa * float64(c) * float64(p.Frequency) * float64(p.Frequency))
}

// Evaluation processor frequencies (Section V.A).
const (
	// MinDeviceFrequency and MaxDeviceFrequency bound the uniformly drawn
	// mobile-device CPU clocks.
	MinDeviceFrequency = 1 * units.Gigahertz
	MaxDeviceFrequency = 2 * units.Gigahertz
	// StationFrequency is f_s, the base-station clock.
	StationFrequency = 4 * units.Gigahertz
	// CloudFrequency is f_c, the Amazon T2.nano clock.
	CloudFrequency = 2.4 * units.Gigahertz
)

// DeviceProcessor returns a battery-powered processor at frequency f with
// the paper's κ.
func DeviceProcessor(f units.Frequency) Processor {
	return Processor{Frequency: f, Kappa: DefaultKappa}
}

// StationProcessor returns the evaluation's base-station processor: 4 GHz,
// grid powered.
func StationProcessor() Processor {
	return Processor{Frequency: StationFrequency}
}

// CloudProcessor returns the evaluation's cloud processor: 2.4 GHz, grid
// powered.
func CloudProcessor() Processor {
	return Processor{Frequency: CloudFrequency}
}
