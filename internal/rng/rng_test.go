package rng

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sample(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

func equalSeq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStreamDeterminism(t *testing.T) {
	s1 := NewSource(42)
	s2 := NewSource(42)
	if !equalSeq(sample(s1.Stream("workload"), 64), sample(s2.Stream("workload"), 64)) {
		t.Error("same seed + same name should produce identical sequences")
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	s := NewSource(42)
	a := sample(s.Stream("workload"), 64)
	b := sample(s.Stream("network"), 64)
	if equalSeq(a, b) {
		t.Error("different stream names should produce different sequences")
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := sample(NewSource(1).Stream("w"), 64)
	b := sample(NewSource(2).Stream("w"), 64)
	if equalSeq(a, b) {
		t.Error("different seeds should produce different sequences")
	}
}

func TestStreamNameSeparator(t *testing.T) {
	// The seed/name separator must prevent ("1","x") colliding with
	// seed formatting quirks; spot-check a pair that concatenates equal.
	a := sample(NewSource(0x1).Stream("2x"), 16)
	b := sample(NewSource(0x12).Stream("x"), 16)
	if equalSeq(a, b) {
		t.Error("seed/name boundary collision")
	}
}

func TestDerive(t *testing.T) {
	root := NewSource(7)
	c1 := root.Derive("trial-0")
	c2 := root.Derive("trial-1")
	c1again := NewSource(7).Derive("trial-0")

	if c1.Seed() != c1again.Seed() {
		t.Error("Derive should be deterministic")
	}
	if c1.Seed() == c2.Seed() {
		t.Error("sibling derives should differ")
	}
	if c1.Seed() == root.Seed() {
		t.Error("child should differ from parent")
	}
	// Derive and Stream namespaces must not collide.
	a := sample(root.Stream("t"), 16)
	b := sample(root.Derive("t").Stream(""), 16)
	if equalSeq(a, b) {
		t.Error("Derive and Stream namespaces collide")
	}
}

func TestSeed(t *testing.T) {
	if got := NewSource(99).Seed(); got != 99 {
		t.Errorf("Seed() = %d, want 99", got)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewSource(3).Stream("u")
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		// Keep values in a sane range to avoid overflow-induced NaN.
		if lo < -1e12 || hi > 1e12 {
			return true
		}
		v := Uniform(r, lo, hi)
		return v >= lo && (v < hi || lo == hi && v == lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := NewSource(3).Stream("u")
	if got := Uniform(r, 5, 5); got != 5 {
		t.Errorf("Uniform(5,5) = %g, want 5", got)
	}
	if got := Uniform(r, 5, 4); got != 5 {
		t.Errorf("Uniform with hi<lo should return lo, got %g", got)
	}
}

func TestUniformIntRange(t *testing.T) {
	r := NewSource(4).Stream("ui")
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := UniformInt(r, 2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		seen[v] = true
	}
	// All four values should appear in 1000 draws.
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn", v)
		}
	}
	if got := UniformInt(r, 7, 7); got != 7 {
		t.Errorf("UniformInt(7,7) = %d, want 7", got)
	}
	if got := UniformInt(r, 7, 3); got != 7 {
		t.Errorf("UniformInt with hi<lo should return lo, got %d", got)
	}
}
