// Package rng provides deterministic, named random-number streams.
//
// Every stochastic component of the simulator (workload generation, network
// assignment, data placement, ...) draws from its own stream, derived from a
// root seed plus a stable name. Two benefits follow:
//
//  1. Experiments are exactly reproducible from a single seed.
//  2. Changing how many random numbers one component consumes does not
//     perturb any other component, because streams never share state.
package rng
