package rng

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Source creates independent random streams from a root seed.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed the source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns a new *rand.Rand whose sequence depends only on the root
// seed and the given name. Calling Stream twice with the same name yields
// two independent generators with identical sequences.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	// The hash input mixes seed and name; FNV keeps this allocation-free
	// beyond the hasher itself and is stable across platforms and releases.
	_, _ = h.Write([]byte(strconv.FormatInt(s.seed, 16)))
	_, _ = h.Write([]byte{0}) // separator so ("1","x") != ("", "1x")
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(h.Sum64()))) //nolint:gosec // simulation, not crypto
}

// Derive returns a child source whose streams are independent from the
// parent's and from any sibling derived under a different name. Use it to
// give each trial of a repeated experiment its own namespace.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strconv.FormatInt(s.seed, 16)))
	_, _ = h.Write([]byte{1}) // distinct tag from Stream derivation
	_, _ = h.Write([]byte(name))
	return &Source{seed: int64(h.Sum64())}
}

// Uniform returns a value uniformly distributed in [lo, hi). It tolerates
// lo == hi by returning lo, which keeps degenerate parameter sweeps valid.
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// UniformInt returns an integer uniformly distributed in [lo, hi]. It
// tolerates lo == hi by returning lo.
func UniformInt(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}
