// Package workload generates the synthetic scenarios of the paper's
// evaluation (Section V.A): a MEC topology plus a task population with
// the published parameter ranges — input sizes up to a configurable
// maximum, external data between 0 and 0.5 times the local data, deadlines
// tied to what the system can actually achieve, and per-edge resource
// caps that become contended as the task count grows.
//
// Beyond the paper's even spread, Params carries load-shape knobs
// (HotTaskFrac/HotDeviceFrac flash crowds, StationWave diurnal tilt,
// HotSourceFrac data-locality skew) that reshape who raises tasks and
// where their data lives without perturbing any other random draw; all
// knobs at zero reproduce the legacy generator byte for byte. The
// package also owns the budget machinery shared by mecbench and mecwc:
// ParseBudgets validates budget files into Budget values (rejecting
// unknown metrics and malformed bounds with a structured *BudgetError),
// and CheckBudgets evaluates them against metric resolvers.
package workload
