// Package workload generates the synthetic scenarios of the paper's
// evaluation (Section V.A): a MEC topology plus a task population with
// the published parameter ranges — input sizes up to a configurable
// maximum, external data between 0 and 0.5 times the local data, deadlines
// tied to what the system can actually achieve, and per-edge resource
// caps that become contended as the task count grows.
package workload
