package workload

import (
	"testing"

	"dsmec/internal/costmodel"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

func TestGenerateHolisticDefaults(t *testing.T) {
	sc, err := GenerateHolistic(rng.NewSource(1), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.System.NumDevices() != 50 || sc.System.NumStations() != 5 {
		t.Errorf("default topology %dx%d, want 50x5",
			sc.System.NumDevices(), sc.System.NumStations())
	}
	if sc.Tasks.Len() != 100 {
		t.Errorf("default task count = %d, want 100", sc.Tasks.Len())
	}
	if sc.Placement != nil {
		t.Error("holistic scenario should have no placement")
	}
	if sc.Params.MaxInput != 3000*units.Kilobyte {
		t.Errorf("effective MaxInput = %v, want 3000kB", sc.Params.MaxInput)
	}
}

func TestGenerateHolisticTaskProperties(t *testing.T) {
	p := Params{NumDevices: 20, NumStations: 4, NumTasks: 200}
	sc, err := GenerateHolistic(rng.NewSource(2), p)
	if err != nil {
		t.Fatal(err)
	}
	eff := sc.Params
	sawExternal := false
	for _, tk := range sc.Tasks.All() {
		if err := tk.Validate(); err != nil {
			t.Fatalf("generated task invalid: %v", err)
		}
		if tk.Kind != task.Holistic {
			t.Fatalf("task %v kind = %v, want holistic", tk.ID, tk.Kind)
		}
		if tk.LocalSize > eff.MaxInput || tk.LocalSize < eff.MaxInput.Scale(eff.MinInputFrac) {
			t.Errorf("task %v local size %v outside [%v, %v]",
				tk.ID, tk.LocalSize, eff.MaxInput.Scale(eff.MinInputFrac), eff.MaxInput)
		}
		if float64(tk.ExternalSize) > 0.5*float64(tk.LocalSize)+1 {
			t.Errorf("task %v external %v exceeds 0.5×local %v", tk.ID, tk.ExternalSize, tk.LocalSize)
		}
		if tk.HasExternal() {
			sawExternal = true
			if tk.ExternalSource == tk.ID.User {
				t.Errorf("task %v sources external data from itself", tk.ID)
			}
		}
		if tk.Resource < eff.ResourceMin || tk.Resource > eff.ResourceMax {
			t.Errorf("task %v resource %g outside range", tk.ID, tk.Resource)
		}
		if tk.Deadline <= 0 || !tk.Deadline.IsFinite() {
			t.Errorf("task %v deadline %v invalid", tk.ID, tk.Deadline)
		}
	}
	if !sawExternal {
		t.Error("200 tasks should include some with external data")
	}
	// Tasks spread across devices evenly: 200 tasks / 20 devices = 10 each.
	byUser := sc.Tasks.ByUser()
	for u, tasks := range byUser {
		if len(tasks) != 10 {
			t.Errorf("device %d has %d tasks, want 10", u, len(tasks))
		}
	}
}

func TestDeadlinesMostlyAchievable(t *testing.T) {
	sc, err := GenerateHolistic(rng.NewSource(3), Params{NumTasks: 200})
	if err != nil {
		t.Fatal(err)
	}
	achievable := 0
	for _, tk := range sc.Tasks.All() {
		opts, err := sc.Model.Eval(&tk)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range costmodel.Subsystems {
			if opts.At(l).Time <= tk.Deadline {
				achievable++
				break
			}
		}
	}
	// Slack spans [0.95, 2.2]: a small fraction lands below 1.0 and is
	// unachievable by construction; most must be fine.
	if frac := float64(achievable) / 200; frac < 0.9 {
		t.Errorf("only %.0f%% of tasks achievable; deadlines too tight", frac*100)
	}
	if achievable == 200 {
		t.Log("note: all tasks achievable this seed (slack floor 0.95 rarely binds)")
	}
}

func TestGenerateHolisticDeterminism(t *testing.T) {
	gen := func() *Scenario {
		sc, err := GenerateHolistic(rng.NewSource(4), Params{NumTasks: 50})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := gen(), gen()
	for i, tk := range a.Tasks.All() {
		other := b.Tasks.All()[i]
		if tk.ID != other.ID || tk.LocalSize != other.LocalSize ||
			tk.ExternalSize != other.ExternalSize || tk.Deadline != other.Deadline ||
			tk.Resource != other.Resource {
			t.Fatalf("task %d differs between identical seeds", i)
		}
	}
}

func TestGenerateDivisible(t *testing.T) {
	sc, err := GenerateDivisible(rng.NewSource(5), Params{
		NumDevices: 20, NumStations: 3, NumTasks: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Placement == nil {
		t.Fatal("divisible scenario must carry a placement")
	}
	universe := sc.Tasks.Universe()
	if universe.IsEmpty() {
		t.Fatal("divisible tasks must reference blocks")
	}
	if !sc.Placement.Covered(universe) {
		t.Error("every referenced block must be held by some device")
	}
	for _, tk := range sc.Tasks.All() {
		if err := tk.Validate(); err != nil {
			t.Fatalf("task %v invalid: %v", tk.ID, err)
		}
		if tk.Kind != task.Divisible {
			t.Fatalf("task %v kind = %v, want divisible", tk.ID, tk.Kind)
		}
		// Block bookkeeping must match the declared sizes.
		if got := sc.Placement.SizeOf(tk.LocalBlocks); got != tk.LocalSize {
			t.Errorf("task %v local size %v != blocks %v", tk.ID, tk.LocalSize, got)
		}
		if got := sc.Placement.SizeOf(tk.ExternalBlocks); got != tk.ExternalSize {
			t.Errorf("task %v external size %v != blocks %v", tk.ID, tk.ExternalSize, got)
		}
		// Local blocks must actually be held by the raising device.
		holding, err := sc.Placement.Holding(tk.ID.User)
		if err != nil {
			t.Fatal(err)
		}
		if !tk.LocalBlocks.SubsetOf(holding) {
			t.Errorf("task %v local blocks not in the device's holding", tk.ID)
		}
		// External blocks must not be (they would be local otherwise).
		if tk.ExternalBlocks.Intersects(holding) {
			t.Errorf("task %v external blocks overlap the device's holding", tk.ID)
		}
		if tk.HasExternal() {
			src, err := sc.Placement.Holding(tk.ExternalSource)
			if err != nil {
				t.Fatal(err)
			}
			if !tk.ExternalBlocks.Intersects(src) {
				t.Errorf("task %v external source %d holds none of the external blocks",
					tk.ID, tk.ExternalSource)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []struct {
		name string
		p    Params
	}{
		{"negative tasks", Params{NumTasks: -1}},
		{"stations exceed devices", Params{NumDevices: 2, NumStations: 5}},
		{"bad input frac", Params{MinInputFrac: 1.5}},
		{"inverted slack", Params{DeadlineSlackMin: 2, DeadlineSlackMax: 1}},
		{"inverted resources", Params{ResourceMin: 5, ResourceMax: 2}},
		{"negative external ratio", Params{ExternalMaxRatio: -1}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := GenerateHolistic(rng.NewSource(1), tt.p); err == nil {
				t.Error("GenerateHolistic should reject")
			}
			if _, err := GenerateDivisible(rng.NewSource(1), tt.p); err == nil {
				t.Error("GenerateDivisible should reject")
			}
		})
	}
}

func TestResultModelOverride(t *testing.T) {
	sc, err := GenerateHolistic(rng.NewSource(6), Params{
		NumTasks:    10,
		ResultModel: compileTimeConstResult{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Model.ResultSize(999 * units.Kilobyte); got != 7*units.Kilobyte {
		t.Errorf("ResultSize = %v, want the 7kB constant override", got)
	}
}

type compileTimeConstResult struct{}

func (compileTimeConstResult) ResultSize(units.ByteSize) units.ByteSize {
	return 7 * units.Kilobyte
}
