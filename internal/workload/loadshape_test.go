package workload

import (
	"testing"

	"dsmec/internal/rng"
	"dsmec/internal/task"
)

// tasksPerDevice counts how many tasks each device raises.
func tasksPerDevice(t *testing.T, p Params) []int {
	t.Helper()
	sc, err := GenerateHolistic(rng.NewSource(3), p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, sc.System.NumDevices())
	for i := 0; i < sc.Tasks.Len(); i++ {
		counts[sc.Tasks.At(i).ID.User]++
	}
	return counts
}

func TestFlashCrowdConcentratesTasks(t *testing.T) {
	counts := tasksPerDevice(t, Params{
		NumDevices: 50, NumStations: 5, NumTasks: 200,
		HotTaskFrac: 0.7, HotDeviceFrac: 0.1,
	})
	hot := 0
	for d := 0; d < 5; d++ { // the hottest 10% of 50 devices
		hot += counts[d]
	}
	if hot != 140 { // 70% of 200
		t.Errorf("hot devices raise %d tasks, want 140", hot)
	}
	// The cold remainder stays evenly spread.
	for d := 5; d < 50; d++ {
		if counts[d] < 1 || counts[d] > 2 {
			t.Errorf("cold device %d raises %d tasks, want 1..2", d, counts[d])
		}
	}
}

func TestDiurnalWaveTiltsStations(t *testing.T) {
	p := Params{NumDevices: 40, NumStations: 8, NumTasks: 400, StationWave: 0.8}
	sc, err := GenerateHolistic(rng.NewSource(3), p)
	if err != nil {
		t.Fatal(err)
	}
	perStation := make([]int, 8)
	for i := 0; i < sc.Tasks.Len(); i++ {
		s, err := sc.System.StationOf(sc.Tasks.At(i).ID.User)
		if err != nil {
			t.Fatal(err)
		}
		perStation[s]++
	}
	min, max := perStation[0], perStation[0]
	total := 0
	for _, c := range perStation {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		total += c
	}
	if total != 400 {
		t.Fatalf("apportioned %d tasks, want 400", total)
	}
	// Amplitude 0.8 means the crest station carries ~9x the trough
	// (1.8 vs 0.2 weight); demand far more than flat ±1 spread.
	if max-min < 40 {
		t.Errorf("station load spread %d..%d too flat for a 0.8 wave: %v", min, max, perStation)
	}
}

func TestDataLocalitySkewRestrictsSources(t *testing.T) {
	p := Params{
		NumDevices: 50, NumStations: 5, NumTasks: 300,
		HotSourceFrac: 0.1, ExternalMaxRatio: 1.2,
	}
	sc, err := GenerateHolistic(rng.NewSource(3), p)
	if err != nil {
		t.Fatal(err)
	}
	external := 0
	for i := 0; i < sc.Tasks.Len(); i++ {
		tk := sc.Tasks.At(i)
		if tk.ExternalSource == task.NoExternalSource {
			continue
		}
		external++
		if tk.ExternalSource >= 5 { // hot pool: 10% of 50 devices
			t.Fatalf("task %v reads from device %d outside the hot pool", tk.ID, tk.ExternalSource)
		}
		if tk.ExternalSource == tk.ID.User {
			t.Fatalf("task %v reads external data from itself", tk.ID)
		}
	}
	if external < 200 {
		t.Errorf("only %d/300 tasks have external reads; skew recipe should produce mostly-external traffic", external)
	}
}

// TestZeroKnobsMatchLegacySpread pins that the load-shape knobs default
// to the paper's exact spread: deviceAssigner with zero knobs is n % D.
// (The committed mecgen/mecsim goldens pin the full byte-level identity.)
func TestZeroKnobsMatchLegacySpread(t *testing.T) {
	counts := tasksPerDevice(t, Params{NumDevices: 10, NumStations: 2, NumTasks: 40})
	for d, c := range counts {
		if c != 4 {
			t.Errorf("device %d raises %d tasks, want 4", d, c)
		}
	}
}

func TestLoadShapeValidation(t *testing.T) {
	bad := []Params{
		{NumDevices: 10, NumStations: 2, NumTasks: 10, HotTaskFrac: 1.5},
		{NumDevices: 10, NumStations: 2, NumTasks: 10, HotDeviceFrac: -0.1},
		{NumDevices: 10, NumStations: 2, NumTasks: 10, StationWave: 1},
		{NumDevices: 10, NumStations: 2, NumTasks: 10, HotSourceFrac: 2},
		{NumDevices: 10, NumStations: 2, NumTasks: 10, StationWave: 0.5, HotTaskFrac: 0.5},
	}
	for i, p := range bad {
		if _, err := GenerateHolistic(rng.NewSource(1), p); err == nil {
			t.Errorf("case %d: invalid load shape accepted", i)
		}
	}
}

// TestDivisibleHonorsLoadShape proves the divisible generator shares the
// same device assigner.
func TestDivisibleHonorsLoadShape(t *testing.T) {
	sc, err := GenerateDivisible(rng.NewSource(3), Params{
		NumDevices: 20, NumStations: 2, NumTasks: 100,
		HotTaskFrac: 0.7, HotDeviceFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for i := 0; i < sc.Tasks.Len(); i++ {
		if sc.Tasks.At(i).ID.User < 2 {
			hot++
		}
	}
	if hot != 70 {
		t.Errorf("hot devices raise %d tasks, want 70", hot)
	}
}

func TestApportion(t *testing.T) {
	quotas := apportion([]float64{1, 2, 1}, 8)
	if quotas[0]+quotas[1]+quotas[2] != 8 {
		t.Fatalf("quotas %v do not sum to 8", quotas)
	}
	if quotas[1] != 4 {
		t.Errorf("weight-2 station got %d of 8, want 4", quotas[1])
	}
	if got := apportion([]float64{0, 0}, 5); got[0] != 0 || got[1] != 0 {
		t.Errorf("zero weights apportioned %v", got)
	}
	// Zero-weight entries must never receive remainder tasks.
	quotas = apportion([]float64{1.5, 0, 1.5}, 5)
	if quotas[1] != 0 {
		t.Errorf("zero-weight entry got %d tasks: %v", quotas[1], quotas)
	}
}
