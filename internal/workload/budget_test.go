package workload

import (
	"errors"
	"strings"
	"testing"

	"dsmec/internal/obs"
	"dsmec/internal/stats"
)

// TestParseBudgetsRejectsMalformedFiles drives every parsing edge case
// that must surface as a structured *BudgetError (the CLIs map it to exit
// code 2): malformed JSON, empty budget lists, unnamed and unbounded
// budgets, unknown metric names, negative limits, and inverted ranges.
// mecbench and mecwc share this validation, so the edge cases are pinned
// once, here.
func TestParseBudgetsRejectsMalformedFiles(t *testing.T) {
	cases := map[string]struct {
		doc    string
		detail string // substring the error must carry
	}{
		"malformed JSON":  {`{not json`, "malformed JSON"},
		"empty list":      {`{"budgets": []}`, "no budgets"},
		"missing list":    {`{}`, "no budgets"},
		"unnamed budget":  {`{"budgets": [{"max": 1}]}`, "empty metric name"},
		"unbounded":       {`{"budgets": [{"metric": "lp.pivots"}]}`, "neither min nor max"},
		"unknown metric":  {`{"budgets": [{"metric": "no.such.metric", "min": 1}]}`, "unknown metric"},
		"unknown root":    {`{"budgets": [{"metric": "lq.pivots", "max": 1}]}`, "unknown metric"},
		"bare root":       {`{"budgets": [{"metric": "sim", "max": 1}]}`, "unknown metric"},
		"trailing dot":    {`{"budgets": [{"metric": "sim.", "max": 1}]}`, "unknown metric"},
		"negative max":    {`{"budgets": [{"metric": "lp.pivots", "max": -1}]}`, "negative max"},
		"negative min":    {`{"budgets": [{"metric": "goodput", "min": -0.5}]}`, "negative min"},
		"inverted bounds": {`{"budgets": [{"metric": "lp.pivots", "min": 10, "max": 5}]}`, "max 5 < min 10"},
	}
	for name, tc := range cases {
		_, err := ParseBudgets([]byte(tc.doc), "budgets.json")
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Errorf("%s: error %T is not a *BudgetError", name, err)
			continue
		}
		if !strings.Contains(be.Detail, tc.detail) {
			t.Errorf("%s: detail %q does not mention %q", name, be.Detail, tc.detail)
		}
		if be.Path != "budgets.json" {
			t.Errorf("%s: path = %q", name, be.Path)
		}
		var buf strings.Builder
		be.WriteJSON(&buf)
		if !strings.Contains(buf.String(), `"error":"budget_file"`) {
			t.Errorf("%s: structured record missing error kind: %s", name, buf.String())
		}
	}
}

func TestParseBudgetsAcceptsValidFiles(t *testing.T) {
	budgets, err := ParseBudgets([]byte(`{"budgets": [
		{"metric": "lp.pivots", "max": 500000},
		{"metric": "sim.deadline_misses.fault", "max": 3},
		{"metric": "miss_rate.capacity", "max": 0.25},
		{"metric": "goodput", "min": 0.6},
		{"metric": "total_energy_joules", "max": 100},
		{"metric": "alloc_bytes_per_task", "max": 1000000},
		{"metric": "wall_seconds", "max": 120},
		{"metric": "bench.experiment_seconds.count", "min": 1}
	]}`), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 8 {
		t.Errorf("parsed %d budgets, want 8", len(budgets))
	}
}

func TestLoadBudgetsMissingFile(t *testing.T) {
	_, err := LoadBudgets("testdata/definitely-missing.json")
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not a *BudgetError", err)
	}
}

func TestDerivedMetricCatalog(t *testing.T) {
	names := DerivedMetricNames()
	if len(names) == 0 {
		t.Fatal("empty derived catalog")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("catalog not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, want := range []string{"miss_rate", "miss_rate.fault", "miss_rate.capacity", "goodput", "total_energy_joules"} {
		if DerivedMetricHelp(want) == "" {
			t.Errorf("catalog missing %q", want)
		}
	}
}

func TestCheckBudgetsViolationRecords(t *testing.T) {
	m := &obs.Manifest{Metrics: obs.Snapshot{
		Counters: map[string]int64{"lp.pivots": 612},
		Gauges:   map[string]float64{"sim.utilization.st.cpu": 0.25},
	}}
	maxPivots, minUtil := 500.0, 0.5
	var out strings.Builder
	vs := CheckBudgets([]Budget{
		{Metric: "lp.pivots", Max: &maxPivots},
		{Metric: "sim.utilization.st.cpu", Min: &minUtil},
		{Metric: "lp.no_such_counter", Min: &minUtil},
	}, ManifestResolver(m), &out)
	if len(vs) != 3 {
		t.Fatalf("got %d violations, want 3:\n%s", len(vs), out.String())
	}
	// The exact JSON shape is load-bearing: CI wrappers parse these lines.
	for _, want := range []string{
		`{"budget":"lp.pivots","kind":"max","limit":500,"actual":612,"margin":112}`,
		`{"budget":"sim.utilization.st.cpu","kind":"min","limit":0.5,"actual":0.25,"margin":0.25}`,
		`{"budget":"lp.no_such_counter","kind":"missing"}`,
	} {
		if !strings.Contains(out.String(), want+"\n") {
			t.Errorf("missing violation line %s in:\n%s", want, out.String())
		}
	}
}

func TestCheckBudgetsPassAndChain(t *testing.T) {
	m := &obs.Manifest{WallSeconds: 1.5, Metrics: obs.Snapshot{
		Counters: map[string]int64{"sim.events": 10},
	}}
	derived := func(name string) (float64, bool) {
		if name == "goodput" {
			return 0.9, true
		}
		return 0, false
	}
	maxWall, minGood, minEvents := 60.0, 0.5, 1.0
	var out strings.Builder
	vs := CheckBudgets([]Budget{
		{Metric: "wall_seconds", Max: &maxWall},
		{Metric: "goodput", Min: &minGood},
		{Metric: "sim.events", Min: &minEvents},
	}, ChainResolvers(derived, ManifestResolver(m)), &out)
	if len(vs) != 0 {
		t.Fatalf("unexpected violations:\n%s", out.String())
	}
	if strings.Count(out.String(), "budget ok") != 3 {
		t.Errorf("expected 3 'budget ok' lines:\n%s", out.String())
	}
}

func TestManifestResolverHistogramSuffixes(t *testing.T) {
	m := &obs.Manifest{Metrics: obs.Snapshot{
		Histograms: map[string]stats.HistogramCounts{
			"bench.experiment_seconds": {Count: 4, Sum: 2.0},
		},
	}}
	r := ManifestResolver(m)
	for name, want := range map[string]float64{
		"bench.experiment_seconds.count": 4,
		"bench.experiment_seconds.sum":   2.0,
		"bench.experiment_seconds.mean":  0.5,
	} {
		got, ok := r(name)
		if !ok || got != want {
			t.Errorf("%s = %g, %v; want %g, true", name, got, ok, want)
		}
	}
	if _, ok := r("bench.experiment_seconds.p95"); ok {
		t.Error("unknown suffix resolved")
	}
}
