package workload

import (
	"fmt"
	"math"

	"dsmec/internal/compute"
	"dsmec/internal/costmodel"
	"dsmec/internal/datamap"
	"dsmec/internal/mecnet"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Params configures scenario generation. Zero values take the defaults
// listed on each field.
type Params struct {
	NumDevices  int // default 50
	NumStations int // default 5
	NumTasks    int // default 100

	// MaxInput is the maximum per-task input size (paper: 3000 kB in most
	// figures). Task inputs are drawn uniformly in [MinInputFrac·MaxInput,
	// MaxInput].
	MaxInput     units.ByteSize // default 3000 kB
	MinInputFrac float64        // default 0.1

	// ExternalMaxRatio bounds β_ij/α_ij (paper: "0 to 0.5 times the local
	// data").
	ExternalMaxRatio float64 // default 0.5

	// Deadline slack: T_ij = slack · min_l t_ijl with slack drawn
	// uniformly from [DeadlineSlackMin, DeadlineSlackMax]. Values below 1
	// produce tasks no subsystem can serve, which every algorithm must
	// cancel; the default range keeps that population small.
	DeadlineSlackMin float64 // default 0.95
	DeadlineSlackMax float64 // default 2.2

	// Resource demands C_ij ~ U[ResourceMin, ResourceMax].
	ResourceMin float64 // default 1
	ResourceMax float64 // default 4

	// DeviceCap is max_i; StationCap is max_S. The defaults keep devices
	// comfortable at light load (~100 tasks over 50 devices) and
	// contended at heavy load (450 tasks).
	DeviceCap  float64 // default 10
	StationCap float64 // default 100

	// OpSize is the descriptor size shipped by task rearrangement.
	OpSize units.ByteSize // default 2 kB

	// ResultModel overrides the η model (default: proportional 0.2).
	ResultModel compute.ResultModel

	// Divisible-scenario knobs.
	BlockSize   units.ByteSize // default 100 kB
	NumBlocks   int            // default: enough for ~2× the data demand
	Replication int            // default 2: min devices holding each block
}

func (p Params) withDefaults() Params {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.NumDevices, 50)
	def(&p.NumStations, 5)
	def(&p.NumTasks, 100)
	if p.MaxInput == 0 {
		p.MaxInput = 3000 * units.Kilobyte
	}
	deff(&p.MinInputFrac, 0.1)
	deff(&p.ExternalMaxRatio, 0.5)
	deff(&p.DeadlineSlackMin, 0.95)
	deff(&p.DeadlineSlackMax, 2.2)
	deff(&p.ResourceMin, 1)
	deff(&p.ResourceMax, 4)
	deff(&p.DeviceCap, 10)
	deff(&p.StationCap, 100)
	if p.OpSize == 0 {
		p.OpSize = 2 * units.Kilobyte
	}
	if p.ResultModel == nil {
		p.ResultModel = compute.DefaultResult()
	}
	if p.BlockSize == 0 {
		p.BlockSize = 100 * units.Kilobyte
	}
	def(&p.Replication, 2)
	return p
}

func (p Params) validate() error {
	switch {
	case p.NumDevices <= 0 || p.NumStations <= 0 || p.NumTasks <= 0:
		return fmt.Errorf("workload: counts must be positive")
	case p.NumStations > p.NumDevices:
		return fmt.Errorf("workload: more stations (%d) than devices (%d)", p.NumStations, p.NumDevices)
	case p.MaxInput <= 0:
		return fmt.Errorf("workload: MaxInput must be positive")
	case p.MinInputFrac < 0 || p.MinInputFrac > 1:
		return fmt.Errorf("workload: MinInputFrac %g outside [0,1]", p.MinInputFrac)
	case p.ExternalMaxRatio < 0:
		return fmt.Errorf("workload: negative ExternalMaxRatio")
	case p.DeadlineSlackMin <= 0 || p.DeadlineSlackMax < p.DeadlineSlackMin:
		return fmt.Errorf("workload: invalid deadline slack range [%g,%g]",
			p.DeadlineSlackMin, p.DeadlineSlackMax)
	case p.ResourceMin < 0 || p.ResourceMax < p.ResourceMin:
		return fmt.Errorf("workload: invalid resource range [%g,%g]", p.ResourceMin, p.ResourceMax)
	default:
		return nil
	}
}

// Scenario bundles a generated system, its cost model, the task set, and —
// for divisible scenarios — the data placement.
type Scenario struct {
	System    *mecnet.System
	Model     *costmodel.Model
	Tasks     *task.Set
	Placement *datamap.Placement // nil for holistic scenarios
	Params    Params             // the effective (defaulted) parameters
}

// GenerateHolistic builds a Section V.B scenario: holistic tasks whose
// external data is a random fraction (up to ExternalMaxRatio) of the local
// data, held by a random other device.
func GenerateHolistic(src *rng.Source, params Params) (*Scenario, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	sys, model, err := generateSystem(src, p)
	if err != nil {
		return nil, err
	}

	r := src.Stream("tasks")
	ts := &task.Set{}
	counter := make(map[int]int)
	for n := 0; n < p.NumTasks; n++ {
		dev := n % p.NumDevices // spread tasks evenly, as the paper assumes
		alpha := drawInput(r, p)
		beta := alpha.Scale(rng.Uniform(r, 0, p.ExternalMaxRatio))
		source := task.NoExternalSource
		if beta > 0 {
			source = rng.UniformInt(r, 0, p.NumDevices-2)
			if source >= dev {
				source++ // uniform over devices other than dev
			}
		}
		tk := &task.Task{
			ID:             task.ID{User: dev, Index: counter[dev]},
			Kind:           task.Holistic,
			OpSize:         p.OpSize,
			LocalSize:      alpha,
			ExternalSize:   beta,
			ExternalSource: source,
			Resource:       rng.Uniform(r, p.ResourceMin, p.ResourceMax),
		}
		counter[dev]++
		if err := setDeadline(model, tk, r, p); err != nil {
			return nil, err
		}
		if err := ts.Add(tk); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	return &Scenario{System: sys, Model: model, Tasks: ts, Params: p}, nil
}

// GenerateDivisible builds a Section V.C scenario: a shared block universe
// with overlapping per-device holdings, and divisible tasks whose inputs
// are contiguous block windows — local where the window overlaps the
// raising device's holding, external elsewhere.
func GenerateDivisible(src *rng.Source, params Params) (*Scenario, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	sys, model, err := generateSystem(src, p)
	if err != nil {
		return nil, err
	}

	blocksPerTask := int(math.Ceil(float64(p.MaxInput) / float64(p.BlockSize)))
	if p.NumBlocks == 0 {
		// Size the universe so distinct tasks overlap but do not all hit
		// the same blocks: about one task-window per two tasks.
		p.NumBlocks = blocksPerTask * (p.NumTasks/2 + 1)
	}
	placement, err := datamap.NewPlacement(p.NumDevices, p.NumBlocks, p.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	perDevice := p.NumBlocks * p.Replication / p.NumDevices
	if perDevice < blocksPerTask {
		perDevice = blocksPerTask
	}
	if err := placement.GenerateOverlapping(src.Stream("placement"), datamap.OverlapParams{
		BlocksPerDevice: perDevice,
		Replication:     p.Replication,
	}); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	r := src.Stream("tasks")
	ts := &task.Set{}
	counter := make(map[int]int)
	for n := 0; n < p.NumTasks; n++ {
		dev := n % p.NumDevices
		size := drawInput(r, p)
		window := int(math.Ceil(float64(size) / float64(p.BlockSize)))
		if window > p.NumBlocks {
			window = p.NumBlocks
		}
		start := r.Intn(p.NumBlocks)
		input := datamap.NewSet()
		for off := 0; off < window; off++ {
			input.Add(datamap.BlockID((start + off) % p.NumBlocks))
		}

		holding, err := placement.Holding(dev)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		local := input.Intersect(holding)
		external := input.Clone().Subtract(local)

		source := task.NoExternalSource
		if !external.IsEmpty() {
			owners := placement.Owners(external.Blocks()[0])
			for _, o := range owners {
				if o != dev {
					source = o
					break
				}
			}
			if source == task.NoExternalSource {
				// Replication ≥ 2 makes this unreachable; keep the
				// scenario valid regardless by treating the data as local.
				local.Union(external)
				external = datamap.NewSet()
			}
		}

		tk := &task.Task{
			ID:             task.ID{User: dev, Index: counter[dev]},
			Kind:           task.Divisible,
			OpSize:         p.OpSize,
			LocalSize:      placement.SizeOf(local),
			ExternalSize:   placement.SizeOf(external),
			ExternalSource: source,
			Resource:       rng.Uniform(r, p.ResourceMin, p.ResourceMax),
			LocalBlocks:    local,
			ExternalBlocks: external,
		}
		counter[dev]++
		if err := setDeadline(model, tk, r, p); err != nil {
			return nil, err
		}
		if err := ts.Add(tk); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	return &Scenario{System: sys, Model: model, Tasks: ts, Placement: placement, Params: p}, nil
}

// generateSystem builds the topology and cost model shared by both
// scenario kinds.
func generateSystem(src *rng.Source, p Params) (*mecnet.System, *costmodel.Model, error) {
	sys, err := mecnet.Generate(src.Stream("system"), mecnet.GenerateParams{
		NumDevices:         p.NumDevices,
		NumStations:        p.NumStations,
		DeviceResourceCap:  p.DeviceCap,
		StationResourceCap: p.StationCap,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	model, err := costmodel.New(sys, nil, p.ResultModel)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	return sys, model, nil
}

// drawInput draws one task's total input size.
func drawInput(r interface{ Float64() float64 }, p Params) units.ByteSize {
	f := p.MinInputFrac + r.Float64()*(1-p.MinInputFrac)
	return p.MaxInput.Scale(f)
}

// setDeadline sets T_ij = slack · min_l t_ijl.
func setDeadline(model *costmodel.Model, tk *task.Task, r interface{ Float64() float64 }, p Params) error {
	tk.Deadline = units.Second // placeholder so Eval's validation passes
	opts, err := model.Eval(tk)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	minT := units.Forever
	for _, l := range costmodel.Subsystems {
		if t := opts.At(l).Time; t < minT {
			minT = t
		}
	}
	slack := p.DeadlineSlackMin + r.Float64()*(p.DeadlineSlackMax-p.DeadlineSlackMin)
	tk.Deadline = units.Duration(slack) * minT
	return nil
}
