package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dsmec/internal/compute"
	"dsmec/internal/costmodel"
	"dsmec/internal/datamap"
	"dsmec/internal/mecnet"
	"dsmec/internal/rng"
	"dsmec/internal/task"
	"dsmec/internal/units"
)

// Params configures scenario generation. Zero values take the defaults
// listed on each field.
type Params struct {
	NumDevices  int // default 50
	NumStations int // default 5
	NumTasks    int // default 100

	// MaxInput is the maximum per-task input size (paper: 3000 kB in most
	// figures). Task inputs are drawn uniformly in [MinInputFrac·MaxInput,
	// MaxInput].
	MaxInput     units.ByteSize // default 3000 kB
	MinInputFrac float64        // default 0.1

	// ExternalMaxRatio bounds β_ij/α_ij (paper: "0 to 0.5 times the local
	// data").
	ExternalMaxRatio float64 // default 0.5

	// Deadline slack: T_ij = slack · min_l t_ijl with slack drawn
	// uniformly from [DeadlineSlackMin, DeadlineSlackMax]. Values below 1
	// produce tasks no subsystem can serve, which every algorithm must
	// cancel; the default range keeps that population small.
	DeadlineSlackMin float64 // default 0.95
	DeadlineSlackMax float64 // default 2.2

	// Resource demands C_ij ~ U[ResourceMin, ResourceMax].
	ResourceMin float64 // default 1
	ResourceMax float64 // default 4

	// DeviceCap is max_i; StationCap is max_S. The defaults keep devices
	// comfortable at light load (~100 tasks over 50 devices) and
	// contended at heavy load (450 tasks).
	DeviceCap  float64 // default 10
	StationCap float64 // default 100

	// OpSize is the descriptor size shipped by task rearrangement.
	OpSize units.ByteSize // default 2 kB

	// ResultModel overrides the η model (default: proportional 0.2).
	ResultModel compute.ResultModel

	// Divisible-scenario knobs.
	BlockSize   units.ByteSize // default 100 kB
	NumBlocks   int            // default: enough for ~2× the data demand
	Replication int            // default 2: min devices holding each block

	// Load-shape knobs (named recipes; see recipe.go). All default to
	// zero, which reproduces the paper's even spread byte-for-byte.

	// HotTaskFrac concentrates that fraction of tasks on the hottest
	// HotDeviceFrac of devices (a flash crowd); the rest spread evenly
	// over the remaining devices. HotDeviceFrac 0 with a positive
	// HotTaskFrac pins the crowd on a single device.
	HotTaskFrac   float64 // in [0,1]
	HotDeviceFrac float64 // in [0,1]

	// StationWave tilts per-station load like time zones under a diurnal
	// wave: station s receives tasks in proportion to
	// 1 + StationWave·sin(2π·s/S), apportioned by largest remainder and
	// round-robined over the station's own devices.
	StationWave float64 // in [0,1)

	// HotSourceFrac draws every task's external-data source from the
	// first max(2, HotSourceFrac·D) devices instead of uniformly over
	// all of them — data-locality skew, where a few devices hold the
	// data everyone else reads.
	HotSourceFrac float64 // in [0,1]
}

func (p Params) withDefaults() Params {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.NumDevices, 50)
	def(&p.NumStations, 5)
	def(&p.NumTasks, 100)
	if p.MaxInput == 0 {
		p.MaxInput = 3000 * units.Kilobyte
	}
	deff(&p.MinInputFrac, 0.1)
	deff(&p.ExternalMaxRatio, 0.5)
	deff(&p.DeadlineSlackMin, 0.95)
	deff(&p.DeadlineSlackMax, 2.2)
	deff(&p.ResourceMin, 1)
	deff(&p.ResourceMax, 4)
	deff(&p.DeviceCap, 10)
	deff(&p.StationCap, 100)
	if p.OpSize == 0 {
		p.OpSize = 2 * units.Kilobyte
	}
	if p.ResultModel == nil {
		p.ResultModel = compute.DefaultResult()
	}
	if p.BlockSize == 0 {
		p.BlockSize = 100 * units.Kilobyte
	}
	def(&p.Replication, 2)
	return p
}

func (p Params) validate() error {
	switch {
	case p.NumDevices <= 0 || p.NumStations <= 0 || p.NumTasks <= 0:
		return fmt.Errorf("workload: counts must be positive")
	case p.NumStations > p.NumDevices:
		return fmt.Errorf("workload: more stations (%d) than devices (%d)", p.NumStations, p.NumDevices)
	case p.MaxInput <= 0:
		return fmt.Errorf("workload: MaxInput must be positive")
	case p.MinInputFrac < 0 || p.MinInputFrac > 1:
		return fmt.Errorf("workload: MinInputFrac %g outside [0,1]", p.MinInputFrac)
	case p.ExternalMaxRatio < 0:
		return fmt.Errorf("workload: negative ExternalMaxRatio")
	case p.DeadlineSlackMin <= 0 || p.DeadlineSlackMax < p.DeadlineSlackMin:
		return fmt.Errorf("workload: invalid deadline slack range [%g,%g]",
			p.DeadlineSlackMin, p.DeadlineSlackMax)
	case p.ResourceMin < 0 || p.ResourceMax < p.ResourceMin:
		return fmt.Errorf("workload: invalid resource range [%g,%g]", p.ResourceMin, p.ResourceMax)
	case p.HotTaskFrac < 0 || p.HotTaskFrac > 1:
		return fmt.Errorf("workload: HotTaskFrac %g outside [0,1]", p.HotTaskFrac)
	case p.HotDeviceFrac < 0 || p.HotDeviceFrac > 1:
		return fmt.Errorf("workload: HotDeviceFrac %g outside [0,1]", p.HotDeviceFrac)
	case p.StationWave < 0 || p.StationWave >= 1:
		return fmt.Errorf("workload: StationWave %g outside [0,1)", p.StationWave)
	case p.HotSourceFrac < 0 || p.HotSourceFrac > 1:
		return fmt.Errorf("workload: HotSourceFrac %g outside [0,1]", p.HotSourceFrac)
	case p.StationWave > 0 && p.HotTaskFrac > 0:
		return fmt.Errorf("workload: StationWave and HotTaskFrac are mutually exclusive load shapes")
	default:
		return nil
	}
}

// deviceAssigner maps task index n to the device that raises it. The
// default (all load-shape knobs zero) is the paper's even spread
// n % NumDevices; the flash-crowd and diurnal-wave shapes redirect the
// mapping without consuming any randomness, so the per-task draws (sizes,
// ratios, resources, deadlines) stay on the exact same stream positions.
func deviceAssigner(p Params, sys *mecnet.System) (func(n int) int, error) {
	switch {
	case p.HotTaskFrac > 0:
		hot := int(math.Round(p.HotDeviceFrac * float64(p.NumDevices)))
		if hot < 1 {
			hot = 1
		}
		cold := p.NumDevices - hot
		nHot := int(math.Round(p.HotTaskFrac * float64(p.NumTasks)))
		return func(n int) int {
			if n < nHot {
				return n % hot
			}
			if cold == 0 {
				return n % p.NumDevices
			}
			return hot + (n-nHot)%cold
		}, nil
	case p.StationWave > 0:
		clusters := make([][]int, p.NumStations)
		weights := make([]float64, p.NumStations)
		for s := 0; s < p.NumStations; s++ {
			devs, err := sys.Cluster(s)
			if err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			clusters[s] = devs
			if len(devs) > 0 {
				weights[s] = 1 + p.StationWave*math.Sin(2*math.Pi*float64(s)/float64(p.NumStations))
			}
		}
		quotas := apportion(weights, p.NumTasks)
		// Tasks are laid out station by station: prefix[s] is the first
		// task index of station s's block.
		prefix := make([]int, p.NumStations+1)
		for s, q := range quotas {
			prefix[s+1] = prefix[s] + q
		}
		return func(n int) int {
			s := sort.SearchInts(prefix[1:], n+1)
			devs := clusters[s]
			return devs[(n-prefix[s])%len(devs)]
		}, nil
	default:
		return func(n int) int { return n % p.NumDevices }, nil
	}
}

// apportion splits total into integer quotas proportional to the weights
// (largest-remainder method; deterministic, ties broken by index).
func apportion(weights []float64, total int) []int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	quotas := make([]int, len(weights))
	if sum <= 0 || total <= 0 {
		return quotas
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		quotas[i] = int(exact)
		assigned += quotas[i]
		rems = append(rems, rem{idx: i, frac: exact - float64(quotas[i])})
	}
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; i < total-assigned; i++ {
		quotas[rems[i%len(rems)].idx]++
	}
	return quotas
}

// Scenario bundles a generated system, its cost model, the task set, and —
// for divisible scenarios — the data placement.
type Scenario struct {
	System    *mecnet.System
	Model     *costmodel.Model
	Tasks     *task.Set
	Placement *datamap.Placement // nil for holistic scenarios
	Params    Params             // the effective (defaulted) parameters
}

// GenerateHolistic builds a Section V.B scenario: holistic tasks whose
// external data is a random fraction (up to ExternalMaxRatio) of the local
// data, held by a random other device.
func GenerateHolistic(src *rng.Source, params Params) (*Scenario, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	sys, model, err := generateSystem(src, p)
	if err != nil {
		return nil, err
	}

	assign, err := deviceAssigner(p, sys)
	if err != nil {
		return nil, err
	}
	r := src.Stream("tasks")
	ts := &task.Set{}
	counter := make(map[int]int)
	for n := 0; n < p.NumTasks; n++ {
		dev := assign(n) // default: spread evenly, as the paper assumes
		alpha := drawInput(r, p)
		beta := alpha.Scale(rng.Uniform(r, 0, p.ExternalMaxRatio))
		source := task.NoExternalSource
		if beta > 0 {
			source = drawSource(r, p, dev)
		}
		tk := &task.Task{
			ID:             task.ID{User: dev, Index: counter[dev]},
			Kind:           task.Holistic,
			OpSize:         p.OpSize,
			LocalSize:      alpha,
			ExternalSize:   beta,
			ExternalSource: source,
			Resource:       rng.Uniform(r, p.ResourceMin, p.ResourceMax),
		}
		counter[dev]++
		if err := setDeadline(model, tk, r, p); err != nil {
			return nil, err
		}
		if err := ts.Add(tk); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	return &Scenario{System: sys, Model: model, Tasks: ts, Params: p}, nil
}

// GenerateDivisible builds a Section V.C scenario: a shared block universe
// with overlapping per-device holdings, and divisible tasks whose inputs
// are contiguous block windows — local where the window overlaps the
// raising device's holding, external elsewhere.
func GenerateDivisible(src *rng.Source, params Params) (*Scenario, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	sys, model, err := generateSystem(src, p)
	if err != nil {
		return nil, err
	}

	blocksPerTask := int(math.Ceil(float64(p.MaxInput) / float64(p.BlockSize)))
	if p.NumBlocks == 0 {
		// Size the universe so distinct tasks overlap but do not all hit
		// the same blocks: about one task-window per two tasks.
		p.NumBlocks = blocksPerTask * (p.NumTasks/2 + 1)
	}
	placement, err := datamap.NewPlacement(p.NumDevices, p.NumBlocks, p.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	perDevice := p.NumBlocks * p.Replication / p.NumDevices
	if perDevice < blocksPerTask {
		perDevice = blocksPerTask
	}
	if err := placement.GenerateOverlapping(src.Stream("placement"), datamap.OverlapParams{
		BlocksPerDevice: perDevice,
		Replication:     p.Replication,
	}); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	assign, err := deviceAssigner(p, sys)
	if err != nil {
		return nil, err
	}
	r := src.Stream("tasks")
	ts := &task.Set{}
	counter := make(map[int]int)
	for n := 0; n < p.NumTasks; n++ {
		dev := assign(n)
		size := drawInput(r, p)
		window := int(math.Ceil(float64(size) / float64(p.BlockSize)))
		if window > p.NumBlocks {
			window = p.NumBlocks
		}
		start := r.Intn(p.NumBlocks)
		input := datamap.NewSet()
		for off := 0; off < window; off++ {
			input.Add(datamap.BlockID((start + off) % p.NumBlocks))
		}

		holding, err := placement.Holding(dev)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		local := input.Intersect(holding)
		external := input.Clone().Subtract(local)

		source := task.NoExternalSource
		if !external.IsEmpty() {
			owners := placement.Owners(external.Blocks()[0])
			for _, o := range owners {
				if o != dev {
					source = o
					break
				}
			}
			if source == task.NoExternalSource {
				// Replication ≥ 2 makes this unreachable; keep the
				// scenario valid regardless by treating the data as local.
				local.Union(external)
				external = datamap.NewSet()
			}
		}

		tk := &task.Task{
			ID:             task.ID{User: dev, Index: counter[dev]},
			Kind:           task.Divisible,
			OpSize:         p.OpSize,
			LocalSize:      placement.SizeOf(local),
			ExternalSize:   placement.SizeOf(external),
			ExternalSource: source,
			Resource:       rng.Uniform(r, p.ResourceMin, p.ResourceMax),
			LocalBlocks:    local,
			ExternalBlocks: external,
		}
		counter[dev]++
		if err := setDeadline(model, tk, r, p); err != nil {
			return nil, err
		}
		if err := ts.Add(tk); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	return &Scenario{System: sys, Model: model, Tasks: ts, Placement: placement, Params: p}, nil
}

// generateSystem builds the topology and cost model shared by both
// scenario kinds.
func generateSystem(src *rng.Source, p Params) (*mecnet.System, *costmodel.Model, error) {
	sys, err := mecnet.Generate(src.Stream("system"), mecnet.GenerateParams{
		NumDevices:         p.NumDevices,
		NumStations:        p.NumStations,
		DeviceResourceCap:  p.DeviceCap,
		StationResourceCap: p.StationCap,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	model, err := costmodel.New(sys, nil, p.ResultModel)
	if err != nil {
		return nil, nil, fmt.Errorf("workload: %w", err)
	}
	return sys, model, nil
}

// drawInput draws one task's total input size.
func drawInput(r interface{ Float64() float64 }, p Params) units.ByteSize {
	f := p.MinInputFrac + r.Float64()*(1-p.MinInputFrac)
	return p.MaxInput.Scale(f)
}

// drawSource picks the device holding a holistic task's external data:
// uniform over all other devices by default, or — under data-locality
// skew — uniform over the hot pool at the front of the device range.
// Both paths consume exactly one draw from the stream.
func drawSource(r *rand.Rand, p Params, dev int) int {
	if p.HotSourceFrac > 0 {
		pool := int(math.Round(p.HotSourceFrac * float64(p.NumDevices)))
		// A pool of at least two guarantees a hot device can still read
		// from a peer instead of itself.
		if pool < 2 {
			pool = 2
		}
		if pool > p.NumDevices {
			pool = p.NumDevices
		}
		if dev >= pool {
			return rng.UniformInt(r, 0, pool-1)
		}
		source := rng.UniformInt(r, 0, pool-2)
		if source >= dev {
			source++ // uniform over pool members other than dev
		}
		return source
	}
	source := rng.UniformInt(r, 0, p.NumDevices-2)
	if source >= dev {
		source++ // uniform over devices other than dev
	}
	return source
}

// setDeadline sets T_ij = slack · min_l t_ijl.
func setDeadline(model *costmodel.Model, tk *task.Task, r interface{ Float64() float64 }, p Params) error {
	tk.Deadline = units.Second // placeholder so Eval's validation passes
	opts, err := model.Eval(tk)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	minT := units.Forever
	for _, l := range costmodel.Subsystems {
		if t := opts.At(l).Time; t < minT {
			minT = t
		}
	}
	slack := p.DeadlineSlackMin + r.Float64()*(p.DeadlineSlackMax-p.DeadlineSlackMin)
	tk.Deadline = units.Duration(slack) * minT
	return nil
}
