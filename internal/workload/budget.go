package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dsmec/internal/obs"
)

// Budget is one metric bound of a budgets.json file. Unset bounds do not
// apply. Budgets gate CI runs: mecbench -check and the mecwc workload-check
// runner both evaluate them against a finished run.
type Budget struct {
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
}

type budgetFile struct {
	Budgets []Budget `json:"budgets"`
}

// BudgetError reports a malformed budget file: unparseable JSON, an empty
// budget list, an unknown metric name, or an invalid limit. Tooling maps
// it to exit code 2 ("bad input") with a structured JSON record on stderr,
// so CI wrappers can tell a broken budget file from a real regression.
type BudgetError struct {
	Path   string // the file, "" when parsed from memory
	Detail string
}

// Error renders the failure with its source path.
func (e *BudgetError) Error() string {
	if e.Path == "" {
		return "budgets: " + e.Detail
	}
	return fmt.Sprintf("budgets %s: %s", e.Path, e.Detail)
}

// WriteJSON emits the machine-readable form of the error.
func (e *BudgetError) WriteJSON(w io.Writer) {
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":  "budget_file",
		"path":   e.Path,
		"detail": e.Detail,
	})
}

// derivedMetrics are the workload-level quantities the mecwc runner
// computes from a finished simulation, resolvable by budget files in
// addition to the raw registry metrics. The list doubles as parse-time
// validation: a metric name must be one of these, a run clock, or carry a
// known registry namespace root.
var derivedMetrics = map[string]string{
	"miss_rate":            "deadline misses / tasks",
	"miss_rate.fault":      "fault-attributed misses / tasks",
	"miss_rate.capacity":   "capacity (queueing) misses / tasks",
	"goodput":              "tasks completing within deadline / tasks",
	"total_energy_joules":  "total energy of the run (J)",
	"makespan_seconds":     "completion time of the last task",
	"mean_latency_seconds": "mean sojourn time over placed tasks",
	"tasks_total":          "tasks in the scenario",
	"tasks_placed":         "tasks that completed in the simulator",
	"tasks_lost":           "tasks the recovery policy gave up on",
	"tasks_cancelled":      "tasks the assignment did not place",
	"alloc_bytes_per_task": "heap bytes allocated per task (B/op)",
}

// clockMetrics are the run clocks every manifest carries.
var clockMetrics = map[string]bool{
	"wall_seconds": true,
	"cpu_seconds":  true,
}

// knownMetricRoots are the registry namespaces the repo emits (see
// docs/OBSERVABILITY.md). A budget naming a metric outside the derived
// catalog, the clocks, and these roots can never resolve, so it is
// rejected when the file is parsed rather than surfacing as a puzzling
// "metric not found" at the end of a long run.
var knownMetricRoots = map[string]bool{
	"lp":       true,
	"lphta":    true,
	"dta":      true,
	"sim":      true,
	"bench":    true,
	"gen":      true,
	"feedback": true,
	"mecwc":    true,
}

// DerivedMetricNames lists the derived metric catalog, sorted.
func DerivedMetricNames() []string {
	names := make([]string, 0, len(derivedMetrics))
	for name := range derivedMetrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DerivedMetricHelp describes one derived metric, "" when unknown.
func DerivedMetricHelp(name string) string { return derivedMetrics[name] }

// validMetricName reports whether a budget metric can ever resolve.
func validMetricName(name string) bool {
	if clockMetrics[name] || derivedMetrics[name] != "" {
		return true
	}
	root, rest, found := strings.Cut(name, ".")
	if !found || rest == "" {
		return false
	}
	return knownMetricRoots[root]
}

// ParseBudgets validates a budget document. path is used in error
// messages only. Every failure is a *BudgetError.
func ParseBudgets(data []byte, path string) ([]Budget, error) {
	fail := func(format string, args ...any) ([]Budget, error) {
		return nil, &BudgetError{Path: path, Detail: fmt.Sprintf(format, args...)}
	}
	var bf budgetFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fail("malformed JSON: %v", err)
	}
	if len(bf.Budgets) == 0 {
		return fail("no budgets defined")
	}
	for _, b := range bf.Budgets {
		if b.Metric == "" {
			return fail("budget with empty metric name")
		}
		if !validMetricName(b.Metric) {
			return fail("unknown metric %q: not a derived workload metric, a run clock, or a registry metric under a known namespace (%s)",
				b.Metric, strings.Join(sortedKeys(knownMetricRoots), ", "))
		}
		if b.Max == nil && b.Min == nil {
			return fail("%s has neither min nor max", b.Metric)
		}
		if b.Max != nil && *b.Max < 0 {
			return fail("%s: negative max %g (all budgetable quantities are non-negative)", b.Metric, *b.Max)
		}
		if b.Min != nil && *b.Min < 0 {
			return fail("%s: negative min %g (all budgetable quantities are non-negative)", b.Metric, *b.Min)
		}
		if b.Max != nil && b.Min != nil && *b.Max < *b.Min {
			return fail("%s: max %g < min %g", b.Metric, *b.Max, *b.Min)
		}
	}
	return bf.Budgets, nil
}

// LoadBudgets reads and validates a budgets.json file.
func LoadBudgets(path string) ([]Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &BudgetError{Path: path, Detail: err.Error()}
	}
	return ParseBudgets(data, path)
}

// Violation is the machine-readable record emitted alongside each human
// "budget FAIL" line, so CI wrappers can parse failures without scraping
// the column-aligned text. Margin is how far past the limit the run
// landed, always non-negative.
type Violation struct {
	Budget string   `json:"budget"`
	Kind   string   `json:"kind"` // "max", "min", or "missing"
	Limit  *float64 `json:"limit,omitempty"`
	Actual *float64 `json:"actual,omitempty"`
	Margin *float64 `json:"margin,omitempty"`
}

// Resolver looks one budget metric up in a finished run.
type Resolver func(name string) (float64, bool)

// ManifestResolver resolves budget metrics against a finished run
// manifest: counters and gauges by name, the wall_seconds/cpu_seconds
// clocks, and histograms via a .count/.sum/.mean suffix.
func ManifestResolver(m *obs.Manifest) Resolver {
	return func(name string) (float64, bool) {
		switch name {
		case "wall_seconds":
			return m.WallSeconds, true
		case "cpu_seconds":
			return m.CPUSeconds, true
		}
		if v, ok := m.Metrics.Counters[name]; ok {
			return float64(v), true
		}
		if v, ok := m.Metrics.Gauges[name]; ok {
			return v, true
		}
		for _, suffix := range []string{".count", ".sum", ".mean"} {
			base, found := strings.CutSuffix(name, suffix)
			if !found {
				continue
			}
			h, ok := m.Metrics.Histograms[base]
			if !ok {
				continue
			}
			switch suffix {
			case ".count":
				return float64(h.Count), true
			case ".sum":
				return h.Sum, true
			case ".mean":
				return h.Mean(), true
			}
		}
		return 0, false
	}
}

// ChainResolvers tries each resolver in order.
func ChainResolvers(rs ...Resolver) Resolver {
	return func(name string) (float64, bool) {
		for _, r := range rs {
			if r == nil {
				continue
			}
			if v, ok := r(name); ok {
				return v, true
			}
		}
		return 0, false
	}
}

// CheckBudgets resolves every budget and returns the violations, in
// budget order. Each budget prints one human line to w ("budget ok" or
// "budget FAIL"), and each failure additionally prints a one-line JSON
// Violation record. A metric no resolver knows is a violation of kind
// "missing".
func CheckBudgets(budgets []Budget, resolve Resolver, w io.Writer) []Violation {
	var violations []Violation
	fail := func(v Violation) {
		violations = append(violations, v)
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "%s\n", data)
	}
	for _, b := range budgets {
		v, ok := resolve(b.Metric)
		if !ok {
			fmt.Fprintf(w, "budget FAIL %-32s metric not found in run\n", b.Metric)
			fail(Violation{Budget: b.Metric, Kind: "missing"})
			continue
		}
		switch {
		case b.Max != nil && v > *b.Max:
			fmt.Fprintf(w, "budget FAIL %-32s %g > max %g\n", b.Metric, v, *b.Max)
			margin := v - *b.Max
			fail(Violation{Budget: b.Metric, Kind: "max", Limit: b.Max, Actual: &v, Margin: &margin})
		case b.Min != nil && v < *b.Min:
			fmt.Fprintf(w, "budget FAIL %-32s %g < min %g\n", b.Metric, v, *b.Min)
			margin := *b.Min - v
			fail(Violation{Budget: b.Metric, Kind: "min", Limit: b.Min, Actual: &v, Margin: &margin})
		default:
			fmt.Fprintf(w, "budget ok   %-32s %g\n", b.Metric, v)
		}
	}
	return violations
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
