package datamap

import (
	"fmt"
	"math/rand"

	"dsmec/internal/rng"
	"dsmec/internal/units"
)

// Placement records which device holds which data blocks: the paper's
// {D_i | 1 ≤ i ≤ n}. Holdings may overlap across devices.
type Placement struct {
	blockSize units.ByteSize
	numBlocks int
	holdings  []*Set // indexed by device
}

// NewPlacement creates a placement over numBlocks uniform blocks of
// blockSize bytes each, with one (initially empty) holding per device.
func NewPlacement(numDevices, numBlocks int, blockSize units.ByteSize) (*Placement, error) {
	switch {
	case numDevices <= 0:
		return nil, fmt.Errorf("datamap: numDevices %d must be positive", numDevices)
	case numBlocks < 0:
		return nil, fmt.Errorf("datamap: numBlocks %d must be non-negative", numBlocks)
	case blockSize <= 0:
		return nil, fmt.Errorf("datamap: blockSize %v must be positive", blockSize)
	}
	h := make([]*Set, numDevices)
	for i := range h {
		h[i] = NewSet()
	}
	return &Placement{blockSize: blockSize, numBlocks: numBlocks, holdings: h}, nil
}

// NumDevices returns the number of devices the placement covers.
func (p *Placement) NumDevices() int { return len(p.holdings) }

// NumBlocks returns the size of the block universe.
func (p *Placement) NumBlocks() int { return p.numBlocks }

// BlockSize returns the uniform size of one block.
func (p *Placement) BlockSize() units.ByteSize { return p.blockSize }

// SizeOf returns the total byte size of a block set under this placement.
func (p *Placement) SizeOf(s *Set) units.ByteSize {
	return p.blockSize * units.ByteSize(s.Len())
}

// Holding returns device i's holding D_i. The returned set is live: callers
// must not mutate it. Use Holding(i).Clone() for a private copy.
func (p *Placement) Holding(i int) (*Set, error) {
	if i < 0 || i >= len(p.holdings) {
		return nil, fmt.Errorf("datamap: device %d out of range [0,%d)", i, len(p.holdings))
	}
	return p.holdings[i], nil
}

// Assign adds block b to device i's holding.
func (p *Placement) Assign(i int, b BlockID) error {
	if i < 0 || i >= len(p.holdings) {
		return fmt.Errorf("datamap: device %d out of range [0,%d)", i, len(p.holdings))
	}
	if int(b) < 0 || int(b) >= p.numBlocks {
		return fmt.Errorf("datamap: block %d out of range [0,%d)", b, p.numBlocks)
	}
	p.holdings[i].Add(b)
	return nil
}

// Owners returns the devices whose holdings contain b, in ascending order.
func (p *Placement) Owners(b BlockID) []int {
	var owners []int
	for i, h := range p.holdings {
		if h.Contains(b) {
			owners = append(owners, i)
		}
	}
	return owners
}

// Usable returns UD_i = D ∩ D_i for every device, the inputs to the
// Section IV division algorithms.
func (p *Placement) Usable(universe *Set) []*Set {
	out := make([]*Set, len(p.holdings))
	for i, h := range p.holdings {
		out[i] = h.Intersect(universe)
	}
	return out
}

// Covered reports whether the union of all holdings contains every block of
// universe, i.e. whether the universe can be processed without touching
// data that no device has.
func (p *Placement) Covered(universe *Set) bool {
	return universe.SubsetOf(UnionOf(p.holdings...))
}

// OverlapParams tunes GenerateOverlapping.
type OverlapParams struct {
	// BlocksPerDevice is the average holding size; each device draws its
	// holding size uniformly from [BlocksPerDevice/2, 3·BlocksPerDevice/2].
	BlocksPerDevice int
	// Replication is the minimum number of devices that hold each block;
	// blocks under-replicated after the random draw are topped up. It
	// models overlapping monitoring regions. Must be >= 1 and <= devices.
	Replication int
}

// GenerateOverlapping populates the placement with random overlapping
// holdings: each device takes a contiguous region of the block space (a
// monitoring region) with random extent, and every block is replicated on
// at least Replication devices. Contiguous regions mirror the paper's
// motivating scenarios (traffic monitoring, object tracking) where each
// device covers a spatial neighbourhood.
func (p *Placement) GenerateOverlapping(r *rand.Rand, params OverlapParams) error {
	if params.BlocksPerDevice <= 0 {
		return fmt.Errorf("datamap: BlocksPerDevice %d must be positive", params.BlocksPerDevice)
	}
	if params.Replication < 1 || params.Replication > len(p.holdings) {
		return fmt.Errorf("datamap: Replication %d must be in [1,%d]", params.Replication, len(p.holdings))
	}
	if p.numBlocks == 0 {
		return nil
	}
	for i := range p.holdings {
		extent := rng.UniformInt(r, params.BlocksPerDevice/2, params.BlocksPerDevice*3/2)
		if extent > p.numBlocks {
			extent = p.numBlocks
		}
		if extent < 1 {
			extent = 1
		}
		start := r.Intn(p.numBlocks)
		for off := 0; off < extent; off++ {
			p.holdings[i].Add(BlockID((start + off) % p.numBlocks))
		}
	}
	// Top up under-replicated blocks so the universe stays coverable even
	// with small per-device extents.
	for b := 0; b < p.numBlocks; b++ {
		owners := p.Owners(BlockID(b))
		for len(owners) < params.Replication {
			candidate := r.Intn(len(p.holdings))
			if !p.holdings[candidate].Contains(BlockID(b)) {
				p.holdings[candidate].Add(BlockID(b))
				owners = append(owners, candidate)
			}
		}
	}
	return nil
}

// FullUniverse returns the set {0, ..., NumBlocks-1}.
func (p *Placement) FullUniverse() *Set {
	s := NewSet()
	for b := 0; b < p.numBlocks; b++ {
		s.Add(BlockID(b))
	}
	return s
}
