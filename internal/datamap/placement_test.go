package datamap

import (
	"testing"

	"dsmec/internal/rng"
	"dsmec/internal/units"
)

func TestNewPlacementValidation(t *testing.T) {
	tests := []struct {
		name      string
		devices   int
		blocks    int
		blockSize units.ByteSize
		wantErr   bool
	}{
		{"valid", 5, 100, units.Kilobyte, false},
		{"zero blocks ok", 5, 0, units.Kilobyte, false},
		{"zero devices", 0, 100, units.Kilobyte, true},
		{"negative blocks", 5, -1, units.Kilobyte, true},
		{"zero block size", 5, 100, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPlacement(tt.devices, tt.blocks, tt.blockSize)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewPlacement() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlacementAccessors(t *testing.T) {
	p, err := NewPlacement(3, 10, 2*units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 3 || p.NumBlocks() != 10 || p.BlockSize() != 2*units.Kilobyte {
		t.Error("accessors disagree with constructor")
	}
	if got := p.SizeOf(NewSet(1, 2, 3)); got != 6*units.Kilobyte {
		t.Errorf("SizeOf = %v, want 6kB", got)
	}
}

func TestAssignAndHolding(t *testing.T) {
	p, err := NewPlacement(2, 5, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(0, 3); err != nil {
		t.Fatal(err)
	}
	h, err := p.Holding(0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(3) {
		t.Error("assigned block missing from holding")
	}
	if err := p.Assign(5, 0); err == nil {
		t.Error("Assign to out-of-range device should fail")
	}
	if err := p.Assign(0, 99); err == nil {
		t.Error("Assign of out-of-range block should fail")
	}
	if err := p.Assign(0, -1); err == nil {
		t.Error("Assign of negative block should fail")
	}
	if _, err := p.Holding(-1); err == nil {
		t.Error("Holding(-1) should fail")
	}
}

func TestOwners(t *testing.T) {
	p, err := NewPlacement(3, 4, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []int{0, 2} {
		if err := p.Assign(dev, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Owners(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Owners(1) = %v, want [0 2]", got)
	}
	if got := p.Owners(0); got != nil {
		t.Errorf("Owners(0) = %v, want nil", got)
	}
}

func TestUsableAndCovered(t *testing.T) {
	p, err := NewPlacement(2, 6, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	// D_0 = {0,1,2}, D_1 = {2,3}
	for _, b := range []BlockID{0, 1, 2} {
		if err := p.Assign(0, b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range []BlockID{2, 3} {
		if err := p.Assign(1, b); err != nil {
			t.Fatal(err)
		}
	}
	universe := NewSet(1, 2, 3)
	usable := p.Usable(universe)
	if !usable[0].Equal(NewSet(1, 2)) {
		t.Errorf("UD_0 = %v, want {1,2}", usable[0])
	}
	if !usable[1].Equal(NewSet(2, 3)) {
		t.Errorf("UD_1 = %v, want {2,3}", usable[1])
	}
	if !p.Covered(universe) {
		t.Error("universe {1,2,3} should be covered")
	}
	if p.Covered(NewSet(5)) {
		t.Error("block 5 is held by nobody; should not be covered")
	}
}

func TestFullUniverse(t *testing.T) {
	p, err := NewPlacement(1, 4, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FullUniverse(); !got.Equal(NewSet(0, 1, 2, 3)) {
		t.Errorf("FullUniverse = %v", got)
	}
}

func TestGenerateOverlapping(t *testing.T) {
	const devices, blocks = 20, 200
	p, err := NewPlacement(devices, blocks, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSource(7).Stream("placement")
	params := OverlapParams{BlocksPerDevice: 30, Replication: 2}
	if err := p.GenerateOverlapping(r, params); err != nil {
		t.Fatal(err)
	}

	// Every block must be replicated at least twice.
	for b := 0; b < blocks; b++ {
		if owners := p.Owners(BlockID(b)); len(owners) < 2 {
			t.Fatalf("block %d has %d owners, want >= 2", b, len(owners))
		}
	}
	// The full universe must be coverable.
	if !p.Covered(p.FullUniverse()) {
		t.Error("generated placement does not cover the universe")
	}
	// Holdings should be non-trivial but not the whole universe.
	for i := 0; i < devices; i++ {
		h, err := p.Holding(i)
		if err != nil {
			t.Fatal(err)
		}
		if h.IsEmpty() {
			t.Errorf("device %d has empty holding", i)
		}
	}
}

func TestGenerateOverlappingDeterminism(t *testing.T) {
	gen := func() *Placement {
		p, err := NewPlacement(10, 50, units.Kilobyte)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSource(11).Stream("p")
		if err := p.GenerateOverlapping(r, OverlapParams{BlocksPerDevice: 10, Replication: 1}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := gen(), gen()
	for i := 0; i < 10; i++ {
		ha, _ := a.Holding(i)
		hb, _ := b.Holding(i)
		if !ha.Equal(hb) {
			t.Fatalf("device %d holdings differ between identical seeds", i)
		}
	}
}

func TestGenerateOverlappingValidation(t *testing.T) {
	p, err := NewPlacement(3, 10, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSource(1).Stream("p")
	if err := p.GenerateOverlapping(r, OverlapParams{BlocksPerDevice: 0, Replication: 1}); err == nil {
		t.Error("zero BlocksPerDevice should fail")
	}
	if err := p.GenerateOverlapping(r, OverlapParams{BlocksPerDevice: 5, Replication: 0}); err == nil {
		t.Error("zero Replication should fail")
	}
	if err := p.GenerateOverlapping(r, OverlapParams{BlocksPerDevice: 5, Replication: 4}); err == nil {
		t.Error("Replication beyond device count should fail")
	}
}

func TestGenerateOverlappingEmptyUniverse(t *testing.T) {
	p, err := NewPlacement(3, 0, units.Kilobyte)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSource(1).Stream("p")
	if err := p.GenerateOverlapping(r, OverlapParams{BlocksPerDevice: 5, Replication: 1}); err != nil {
		t.Errorf("empty universe should be a no-op, got %v", err)
	}
}
