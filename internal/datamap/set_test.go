package datamap

import (
	"testing"
	"testing/quick"
)

func TestNewSetAndBasics(t *testing.T) {
	s := NewSet(3, 1, 2, 3) // duplicate 3 collapses
	if got := s.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) {
		t.Error("missing inserted elements")
	}
	if s.Contains(4) {
		t.Error("Contains(4) = true, want false")
	}
	s.Add(4)
	if !s.Contains(4) {
		t.Error("Add(4) did not insert")
	}
	s.Remove(4)
	if s.Contains(4) {
		t.Error("Remove(4) did not delete")
	}
	s.Remove(99) // removing absent element is a no-op
	if s.Len() != 3 {
		t.Errorf("Len() after no-op remove = %d, want 3", s.Len())
	}
}

func TestZeroValueSet(t *testing.T) {
	var s Set
	if s.Len() != 0 || !s.IsEmpty() {
		t.Error("zero-value Set should be empty")
	}
	s.Add(5) // Add must lazily allocate
	if !s.Contains(5) {
		t.Error("Add on zero-value Set failed")
	}
}

func TestNilSetOperations(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.Contains(1) || !s.IsEmpty() {
		t.Error("nil Set should behave as empty")
	}
	if got := s.Blocks(); got != nil {
		t.Errorf("nil.Blocks() = %v, want nil", got)
	}
	s.Remove(1) // must not panic
	if c := s.Clone(); c.Len() != 0 {
		t.Error("nil.Clone() should be empty")
	}
	if s.Intersects(NewSet(1)) {
		t.Error("nil should intersect nothing")
	}
	if !s.SubsetOf(NewSet()) {
		t.Error("nil is a subset of everything")
	}
	if !s.Equal(NewSet()) {
		t.Error("nil should equal empty")
	}
}

func TestBlocksSorted(t *testing.T) {
	s := NewSet(9, 2, 7, 1)
	got := s.Blocks()
	want := []BlockID{1, 2, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Blocks() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocks() = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	c.Add(3)
	s.Remove(1)
	if s.Contains(3) {
		t.Error("mutating clone affected original")
	}
	if !c.Contains(1) {
		t.Error("mutating original affected clone")
	}
}

func TestUnionSubtractIntersect(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)

	if got := a.Intersect(b); !got.Equal(NewSet(3)) {
		t.Errorf("Intersect = %v, want {3}", got)
	}
	if got := a.IntersectLen(b); got != 1 {
		t.Errorf("IntersectLen = %d, want 1", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(NewSet(9)) {
		t.Error("Intersects({9}) = true, want false")
	}

	u := a.Clone().Union(b)
	if !u.Equal(NewSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v, want {1,2,3,4}", u)
	}

	d := a.Clone().Subtract(b)
	if !d.Equal(NewSet(1, 2)) {
		t.Errorf("Subtract = %v, want {1,2}", d)
	}

	// Union/Subtract with nil arguments are no-ops.
	if got := a.Clone().Union(nil); !got.Equal(a) {
		t.Error("Union(nil) changed the set")
	}
	if got := a.Clone().Subtract(nil); !got.Equal(a) {
		t.Error("Subtract(nil) changed the set")
	}
}

func TestEqualAndSubset(t *testing.T) {
	a := NewSet(1, 2)
	if !a.Equal(NewSet(2, 1)) {
		t.Error("order must not matter")
	}
	if a.Equal(NewSet(1, 3)) {
		t.Error("{1,2} != {1,3}")
	}
	if a.Equal(NewSet(1)) {
		t.Error("sets of different size are not equal")
	}
	if !NewSet(1).SubsetOf(a) {
		t.Error("{1} ⊆ {1,2}")
	}
	if a.SubsetOf(NewSet(1)) {
		t.Error("{1,2} ⊄ {1}")
	}
	if !NewSet().SubsetOf(NewSet()) {
		t.Error("∅ ⊆ ∅")
	}
}

func TestString(t *testing.T) {
	if got := NewSet(3, 1).String(); got != "{1, 3}" {
		t.Errorf("String() = %q, want {1, 3}", got)
	}
	if got := NewSet().String(); got != "{}" {
		t.Errorf("empty String() = %q, want {}", got)
	}
}

func TestUnionOf(t *testing.T) {
	got := UnionOf(NewSet(1), NewSet(2, 3), nil, NewSet(3))
	if !got.Equal(NewSet(1, 2, 3)) {
		t.Errorf("UnionOf = %v, want {1,2,3}", got)
	}
	if got := UnionOf(); got.Len() != 0 {
		t.Error("UnionOf() should be empty")
	}
}

func fromBools(bits []bool) *Set {
	s := NewSet()
	for i, b := range bits {
		if b {
			s.Add(BlockID(i))
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	// Property: |A| + |B| = |A ∪ B| + |A ∩ B|, and
	// A \ B, A ∩ B partition A.
	f := func(aBits, bBits [24]bool) bool {
		a := fromBools(aBits[:])
		b := fromBools(bBits[:])
		union := a.Clone().Union(b)
		inter := a.Intersect(b)
		diff := a.Clone().Subtract(b)
		if a.Len()+b.Len() != union.Len()+inter.Len() {
			return false
		}
		if diff.Len()+inter.Len() != a.Len() {
			return false
		}
		if inter.Intersects(diff) {
			return false
		}
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		if inter.Len() != a.IntersectLen(b) {
			return false
		}
		return diff.Clone().Union(inter).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
