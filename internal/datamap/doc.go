// Package datamap models the shared data layer of a data-shared MEC
// system: the universe of data blocks d_1..d_M, the per-device holdings
// D_i (which may overlap, because the monitoring regions of two devices
// may overlap), and the usable sets UD_i = D ∩ D_i that the divisible-task
// algorithms of Section IV partition or cover.
package datamap
