package datamap

import (
	"fmt"
	"sort"
	"strings"
)

// BlockID identifies a data block d_r in the universe. Blocks are the unit
// of data placement and division, "a data item or a data block determined
// by [19]" in the paper's terms.
type BlockID int

// Set is a mutable set of data blocks. The zero value is an empty set
// ready for use (operations on a nil Set treat it as empty; Add requires a
// non-nil receiver obtained from NewSet).
type Set struct {
	blocks map[BlockID]struct{}
}

// NewSet returns a set containing the given blocks.
func NewSet(blocks ...BlockID) *Set {
	s := &Set{blocks: make(map[BlockID]struct{}, len(blocks))}
	for _, b := range blocks {
		s.blocks[b] = struct{}{}
	}
	return s
}

// Add inserts b into the set.
func (s *Set) Add(b BlockID) {
	if s.blocks == nil {
		s.blocks = make(map[BlockID]struct{})
	}
	s.blocks[b] = struct{}{}
}

// Remove deletes b from the set if present.
func (s *Set) Remove(b BlockID) {
	if s == nil {
		return
	}
	delete(s.blocks, b)
}

// Contains reports whether b is in the set.
func (s *Set) Contains(b BlockID) bool {
	if s == nil {
		return false
	}
	_, ok := s.blocks[b]
	return ok
}

// Len returns the number of blocks in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.blocks)
}

// IsEmpty reports whether the set has no blocks.
func (s *Set) IsEmpty() bool { return s.Len() == 0 }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{blocks: make(map[BlockID]struct{}, s.Len())}
	if s != nil {
		for b := range s.blocks {
			c.blocks[b] = struct{}{}
		}
	}
	return c
}

// Blocks returns the set's contents in ascending order. The slice is
// freshly allocated.
func (s *Set) Blocks() []BlockID {
	if s == nil {
		return nil
	}
	out := make([]BlockID, 0, len(s.blocks))
	for b := range s.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union inserts every block of other into s and returns s.
func (s *Set) Union(other *Set) *Set {
	if other == nil {
		return s
	}
	for b := range other.blocks {
		s.Add(b)
	}
	return s
}

// Subtract removes every block of other from s and returns s.
func (s *Set) Subtract(other *Set) *Set {
	if s == nil || other == nil {
		return s
	}
	for b := range other.blocks {
		delete(s.blocks, b)
	}
	return s
}

// Intersect returns a new set holding the blocks present in both s and
// other.
func (s *Set) Intersect(other *Set) *Set {
	out := NewSet()
	if s == nil || other == nil {
		return out
	}
	small, large := s, other
	if small.Len() > large.Len() {
		small, large = large, small
	}
	for b := range small.blocks {
		if large.Contains(b) {
			out.Add(b)
		}
	}
	return out
}

// IntersectLen returns |s ∩ other| without allocating the intersection.
func (s *Set) IntersectLen(other *Set) int {
	if s == nil || other == nil {
		return 0
	}
	small, large := s, other
	if small.Len() > large.Len() {
		small, large = large, small
	}
	n := 0
	for b := range small.blocks {
		if large.Contains(b) {
			n++
		}
	}
	return n
}

// Intersects reports whether s and other share at least one block.
func (s *Set) Intersects(other *Set) bool {
	if s == nil || other == nil {
		return false
	}
	small, large := s, other
	if small.Len() > large.Len() {
		small, large = large, small
	}
	for b := range small.blocks {
		if large.Contains(b) {
			return true
		}
	}
	return false
}

// Equal reports whether s and other contain exactly the same blocks.
func (s *Set) Equal(other *Set) bool {
	if s.Len() != other.Len() {
		return false
	}
	if s == nil {
		return true
	}
	for b := range s.blocks {
		if !other.Contains(b) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every block of s is also in other.
func (s *Set) SubsetOf(other *Set) bool {
	if s == nil {
		return true
	}
	for b := range s.blocks {
		if !other.Contains(b) {
			return false
		}
	}
	return true
}

// String renders the set as a sorted block list, e.g. "{1, 2, 7}".
func (s *Set) String() string {
	ids := s.Blocks()
	parts := make([]string, len(ids))
	for i, b := range ids {
		parts[i] = fmt.Sprintf("%d", int(b))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// UnionOf returns a new set that is the union of all given sets.
func UnionOf(sets ...*Set) *Set {
	out := NewSet()
	for _, s := range sets {
		out.Union(s)
	}
	return out
}
