// Package cover implements the data-division algorithms of Section IV of
// the paper: partitioning the required data universe D among devices whose
// holdings can serve it.
//
//   - BalancedPartition (Section IV.A): an Optimal Coverage of D with
//     Smallest Set Size — disjoint per-device slices C_i ⊆ UD_i covering D
//     with the largest slice as small as possible. The paper's greedy
//     repeatedly takes the device whose remaining usable set is smallest
//     and assigns all of it; the submodularity argument (Theorem 3) bounds
//     the greedy at 1/(1−e⁻¹) of optimal.
//   - FewestSets (Section IV.B): an Optimal Coverage of D with Smallest
//     Set Number — classical greedy set cover (largest remaining usable
//     set first) with the standard O(ln n) bound.
//   - BalancedPartitionLPT: an ablation variant that assigns block by
//     block to the least-loaded owner, longest-processing-time style.
//
// Exact solvers (OptimalMaxLoad, OptimalSetCount) are provided for small
// instances so tests and benchmarks can measure empirical approximation
// ratios.
package cover
