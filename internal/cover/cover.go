package cover

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dsmec/internal/datamap"
	"dsmec/internal/lp"
)

// ErrUncoverable is returned when some required block is held by no
// device.
var ErrUncoverable = errors.New("cover: universe not covered by the union of usable sets")

// Result is a data division: Coverage[i] is the slice C_i assigned to
// device i (possibly empty), Involved lists devices with non-empty slices
// in ascending order, and MaxLoad is the largest slice size.
type Result struct {
	Coverage []*datamap.Set
	Involved []int
	MaxLoad  int
}

// finalize fills the derived fields from Coverage.
func (r *Result) finalize() {
	r.Involved = r.Involved[:0]
	r.MaxLoad = 0
	for i, c := range r.Coverage {
		if c.Len() > 0 {
			r.Involved = append(r.Involved, i)
		}
		if c.Len() > r.MaxLoad {
			r.MaxLoad = c.Len()
		}
	}
}

// usableIn returns UD_i ∩ D for every device, validating inputs.
func usableIn(universe *datamap.Set, usable []*datamap.Set) ([]*datamap.Set, error) {
	if len(usable) == 0 {
		return nil, fmt.Errorf("cover: no usable sets")
	}
	out := make([]*datamap.Set, len(usable))
	for i, u := range usable {
		out[i] = u.Intersect(universe)
	}
	if !universe.SubsetOf(datamap.UnionOf(out...)) {
		return nil, ErrUncoverable
	}
	return out, nil
}

// BalancedPartition is the paper's Section IV.A greedy. At every step it
// picks the device with the smallest non-empty remaining usable set,
// assigns that whole set to the device, and removes it from the remaining
// universe.
func BalancedPartition(universe *datamap.Set, usable []*datamap.Set) (*Result, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return nil, err
	}
	res := &Result{Coverage: make([]*datamap.Set, len(ud))}
	for i := range res.Coverage {
		res.Coverage[i] = datamap.NewSet()
	}
	remaining := universe.Clone()
	for remaining.Len() > 0 {
		r := -1
		best := 0
		for i, u := range ud {
			n := u.IntersectLen(remaining)
			if n == 0 {
				continue
			}
			if r < 0 || n < best {
				r, best = i, n
			}
		}
		if r < 0 {
			// usableIn guaranteed coverage, so this cannot happen; guard
			// anyway rather than loop forever.
			return nil, ErrUncoverable
		}
		slice := ud[r].Intersect(remaining)
		res.Coverage[r] = slice
		remaining.Subtract(slice)
	}
	res.finalize()
	return res, nil
}

// BalancedPartitionLPT is an ablation variant of BalancedPartition: it
// orders blocks by how few devices hold them (scarcest first) and assigns
// each to its least-loaded owner, in the style of
// longest-processing-time-first machine scheduling.
func BalancedPartitionLPT(universe *datamap.Set, usable []*datamap.Set) (*Result, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return nil, err
	}
	res := &Result{Coverage: make([]*datamap.Set, len(ud))}
	for i := range res.Coverage {
		res.Coverage[i] = datamap.NewSet()
	}

	blocks := universe.Blocks()
	owners := make(map[datamap.BlockID][]int, len(blocks))
	for _, b := range blocks {
		for i, u := range ud {
			if u.Contains(b) {
				owners[b] = append(owners[b], i)
			}
		}
	}
	sort.SliceStable(blocks, func(a, b int) bool {
		return len(owners[blocks[a]]) < len(owners[blocks[b]])
	})
	for _, b := range blocks {
		best := -1
		for _, i := range owners[b] {
			if best < 0 || res.Coverage[i].Len() < res.Coverage[best].Len() {
				best = i
			}
		}
		res.Coverage[best].Add(b)
	}
	res.finalize()
	return res, nil
}

// FewestSets is the Section IV.B greedy set cover: repeatedly take the
// device covering the most still-uncovered blocks.
func FewestSets(universe *datamap.Set, usable []*datamap.Set) (*Result, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return nil, err
	}
	res := &Result{Coverage: make([]*datamap.Set, len(ud))}
	for i := range res.Coverage {
		res.Coverage[i] = datamap.NewSet()
	}
	remaining := universe.Clone()
	for remaining.Len() > 0 {
		r := -1
		best := 0
		for i, u := range ud {
			// Strict > keeps the lowest-indexed maximizer, making the
			// greedy deterministic.
			if n := u.IntersectLen(remaining); n > best {
				r, best = i, n
			}
		}
		if r < 0 || best == 0 {
			return nil, ErrUncoverable
		}
		slice := ud[r].Intersect(remaining)
		res.Coverage[r] = slice
		remaining.Subtract(slice)
	}
	res.finalize()
	return res, nil
}

// Verify checks the three conditions of Definitions 1 and 2: slices are
// subsets of their device's usable data, pairwise disjoint, and their
// union is exactly the universe.
func Verify(universe *datamap.Set, usable []*datamap.Set, res *Result) error {
	if len(res.Coverage) != len(usable) {
		return fmt.Errorf("cover: %d slices for %d devices", len(res.Coverage), len(usable))
	}
	union := datamap.NewSet()
	total := 0
	for i, c := range res.Coverage {
		if !c.SubsetOf(usable[i]) {
			return fmt.Errorf("cover: slice %d not a subset of its usable set", i)
		}
		if !c.SubsetOf(universe) {
			return fmt.Errorf("cover: slice %d exceeds the universe", i)
		}
		union.Union(c)
		total += c.Len()
	}
	if !union.Equal(universe) {
		return fmt.Errorf("cover: union of slices misses part of the universe")
	}
	if total != universe.Len() {
		return fmt.Errorf("cover: slices overlap (%d assigned blocks for %d universe blocks)",
			total, universe.Len())
	}
	return nil
}

// OptimalMaxLoad exhaustively computes the smallest achievable maximum
// slice size (the objective of problem P3). Exponential; tests only.
func OptimalMaxLoad(universe *datamap.Set, usable []*datamap.Set) (int, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return 0, err
	}
	blocks := universe.Blocks()
	if len(blocks) > 16 {
		return 0, fmt.Errorf("cover: OptimalMaxLoad limited to 16 blocks, got %d", len(blocks))
	}
	loads := make([]int, len(ud))
	best := len(blocks) + 1
	var rec func(idx, curMax int)
	rec = func(idx, curMax int) {
		if curMax >= best {
			return // prune
		}
		if idx == len(blocks) {
			best = curMax
			return
		}
		b := blocks[idx]
		for i, u := range ud {
			if !u.Contains(b) {
				continue
			}
			loads[i]++
			next := curMax
			if loads[i] > next {
				next = loads[i]
			}
			rec(idx+1, next)
			loads[i]--
		}
	}
	rec(0, 0)
	if best > len(blocks) {
		return 0, ErrUncoverable
	}
	return best, nil
}

// OptimalSetCount exhaustively computes the smallest number of devices
// whose usable sets cover the universe. Exponential; tests only.
func OptimalSetCount(universe *datamap.Set, usable []*datamap.Set) (int, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return 0, err
	}
	n := len(ud)
	if n > 20 {
		return 0, fmt.Errorf("cover: OptimalSetCount limited to 20 devices, got %d", n)
	}
	bestCount := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		count := 0
		union := datamap.NewSet()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				count++
				union.Union(ud[i])
			}
		}
		if count < bestCount && universe.SubsetOf(union) {
			bestCount = count
		}
	}
	if bestCount > n {
		return 0, ErrUncoverable
	}
	return bestCount, nil
}

// OptimalMaxLoadILP solves problem P3 exactly by 0/1 branch-and-bound:
// binary variables y_ri assign block r to device i, and a continuous
// makespan variable bounds every device's load. It reaches instances far
// beyond OptimalMaxLoad's exhaustive search. nodeLimit bounds the
// branch-and-bound nodes (0 = default).
func OptimalMaxLoadILP(universe *datamap.Set, usable []*datamap.Set, nodeLimit int) (int, error) {
	ud, err := usableIn(universe, usable)
	if err != nil {
		return 0, err
	}
	blocks := universe.Blocks()
	nBlocks := len(blocks)
	nDev := len(ud)
	if nBlocks == 0 {
		return 0, nil
	}

	// Variables: y[r*nDev+i] for each block r and device i, then maxsize.
	nVars := nBlocks*nDev + 1
	msVar := nBlocks * nDev
	p := &lp.Problem{
		Minimize: make([]float64, nVars),
		Upper:    make([]float64, nVars),
	}
	binary := make([]bool, nVars)
	p.Minimize[msVar] = 1
	p.Upper[msVar] = math.Inf(1)
	for r := range blocks {
		for i := 0; i < nDev; i++ {
			v := r*nDev + i
			if ud[i].Contains(blocks[r]) {
				p.Upper[v] = 1
				binary[v] = true
			} // else pinned to zero: p_ri = ∞ in the paper's formulation
		}
	}

	// Each block assigned exactly once.
	for r := range blocks {
		row := make([]float64, nVars)
		for i := 0; i < nDev; i++ {
			if binary[r*nDev+i] {
				row[r*nDev+i] = 1
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Sense: lp.EQ, RHS: 1})
	}
	// Per-device load bounded by maxsize.
	for i := 0; i < nDev; i++ {
		row := make([]float64, nVars)
		any := false
		for r := range blocks {
			if binary[r*nDev+i] {
				row[r*nDev+i] = 1
				any = true
			}
		}
		if !any {
			continue
		}
		row[msVar] = -1
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Sense: lp.LE, RHS: 0})
	}

	// Warm start from the LPT heuristic (often already optimal) and
	// exploit objective integrality: block counts are integers, so any
	// node whose LP bound rounds up to the incumbent is pruned.
	var incumbent []float64
	if lpt, err := BalancedPartitionLPT(universe, usable); err == nil {
		incumbent = make([]float64, nVars)
		for i, slice := range lpt.Coverage {
			for r := range blocks {
				if slice.Contains(blocks[r]) {
					incumbent[r*nDev+i] = 1
				}
			}
		}
		incumbent[msVar] = float64(lpt.MaxLoad)
	}

	sol, err := lp.SolveBinary(p, binary, lp.BinaryOptions{
		NodeLimit:        nodeLimit,
		Incumbent:        incumbent,
		IntegerObjective: true,
	})
	if err != nil {
		return 0, fmt.Errorf("cover: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, ErrUncoverable
	}
	return int(math.Round(sol.Objective)), nil
}
